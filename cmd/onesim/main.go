// Command onesim runs one scheduling simulation: a generated Table 2
// workload trace replayed on a simulated GPU cluster under a chosen
// scheduler, reporting per-run and per-job completion statistics.
//
// Examples:
//
//	onesim -sched ones
//	onesim -sched tiresias -gpus 32 -jobs 60 -interarrival 20
//	onesim -sched ones -pop 16 -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/schedulers"
	"repro/internal/workload"
)

func main() {
	var (
		sched        = flag.String("sched", "ones", "scheduler: "+strings.Join(schedulers.Names(), "|"))
		gpus         = flag.Int("gpus", 64, "cluster capacity in GPUs (4 per server)")
		jobs         = flag.Int("jobs", 120, "number of jobs in the trace")
		interarrival = flag.Float64("interarrival", 12, "mean seconds between arrivals")
		seed         = flag.Int64("seed", 1, "trace and scheduler RNG seed")
		pop          = flag.Int("pop", 32, "ONES population size K")
		verbose      = flag.Bool("verbose", false, "print per-job metrics")
		events       = flag.Bool("events", false, "print the scheduling event log")
	)
	flag.Parse()

	cfg := core.RunConfig{
		Scheduler: core.SchedulerKind(*sched),
		Topo:      cluster.Topology{Servers: (*gpus + 3) / 4, GPUsPerServer: 4},
		Trace: workload.Config{
			Seed:             *seed,
			NumJobs:          *jobs,
			MeanInterarrival: *interarrival,
			MaxReqGPUs:       8,
		},
		Seed:       *seed,
		Population: *pop,
	}
	res, err := core.RunWithEvents(cfg, *events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onesim:", err)
		os.Exit(1)
	}
	sum := metrics.Summarize(res)
	fmt.Printf("scheduler   %s\n", sum.Scheduler)
	fmt.Printf("jobs        %d (unfinished: %d)\n", sum.Jobs, res.Unfinished)
	fmt.Printf("makespan    %.1f s\n", sum.Makespan)
	fmt.Printf("avg JCT     %.2f s   (median %.1f, p75 %.1f, max %.1f)\n",
		sum.MeanJCT, sum.JCTBox.Median, sum.JCTBox.Q3, sum.JCTBox.Max)
	fmt.Printf("avg exec    %.2f s\n", sum.MeanExec)
	fmt.Printf("avg queue   %.2f s\n", sum.MeanQueue)
	fmt.Printf("reconfigs   %d\n", sum.Reconfigs)
	fmt.Printf("utilization %.1f%%\n", 100*res.Utilization())
	if *verbose {
		fmt.Printf("\n%6s %-26s %10s %10s %10s %10s\n", "job", "task", "submit", "jct", "exec", "queue")
		for _, j := range res.Jobs {
			fmt.Printf("%6d %-26s %10.1f %10.1f %10.1f %10.1f\n",
				j.ID, j.Name, j.Submit, j.JCT, j.Exec, j.Queue)
		}
	}
	if *events {
		fmt.Printf("\n%10s %-9s %6s %6s %8s\n", "time", "event", "job", "gpus", "batch")
		for _, ev := range res.Events {
			fmt.Printf("%10.1f %-9s %6d %6d %8d\n", ev.Time, ev.Kind, ev.Job, ev.GPUs, ev.Batch)
		}
	}
}
