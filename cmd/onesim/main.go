// Command onesim runs one scheduling simulation through the public ones
// SDK: a generated Table 2 workload trace replayed on a simulated GPU
// cluster under a chosen scheduler and scenario, reporting per-run and
// per-job completion statistics.
//
// Examples:
//
//	onesim -sched ones
//	onesim -sched tiresias -gpus 32 -jobs 60 -interarrival 20
//	onesim -sched ones -scenario diurnal+spot -pop 16 -verbose
//	onesim -topology 4x8,2x4 -scenario rack-drain   # mixed fleet, rack failure
//	onesim -sched tiresias -gpus 8 -scenario burst -autoscaler reactive-aggressive
//	onesim -sched ones -json | jq .mean_jct_s
//	onesim -cache-dir ~/.cache/onesim -sched ones   # rerun is instant
//	onesim -sched ones -v                           # per-cell progress on stderr
//	onesim -sched ones -metrics 2>&1 >/dev/null     # Prometheus dump on stderr
//
// With -json every outcome is machine-readable: success prints the full
// result object, and any failure (unknown scheduler or scenario, run
// error) prints {"error": "..."} to stdout — so a pipeline's jq/python
// stage always has JSON to parse — and exits non-zero. Without -json,
// errors go to stderr as plain text.
//
// The process exits non-zero on error; Ctrl-C cancels the run cleanly —
// mid-cell, within sub-second latency. With -cache-dir, completed runs
// persist and identical reruns are served from disk, byte-identical.
//
// -v streams per-cell progress lines to stderr while the run executes
// and closes with a one-line summary (cells, cache hits, wall time).
// -metrics dumps the session's telemetry registry as Prometheus text to
// stderr after the run — the same series onesd serves on GET /metrics.
// Both write only to stderr, so they compose with -json pipelines, and
// neither perturbs the simulation: results are byte-identical with or
// without them (see DESIGN.md "Observability").
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/pkg/ones"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse flags, build a session,
// simulate, render. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("onesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sched        = fs.String("sched", "ones", "scheduler: "+strings.Join(ones.Schedulers(), "|"))
		scenarioName = fs.String("scenario", "steady", `world model (compose with "+", e.g. "diurnal+spot")`)
		autoscaler   = fs.String("autoscaler", "", `reactive autoscaling policy ("reactive-conservative", "reactive-aggressive", "reactive-emergency"); empty = no controller`)
		gpus         = fs.Int("gpus", 64, "cluster capacity in GPUs (4 per server); ignored with -topology")
		topology     = fs.String("topology", "", `heterogeneous cluster shape, e.g. "4x8,2x4" (COUNTxGPUS groups, one rack per group)`)
		jobs         = fs.Int("jobs", 120, "number of jobs in the trace")
		interarrival = fs.Float64("interarrival", 12, "mean seconds between arrivals")
		seed         = fs.Int64("seed", 1, "master RNG seed")
		pop          = fs.Int("pop", 32, "ONES population size K")
		evoParallel  = fs.Int("evo-parallel", 0, "goroutines for ONES's in-cell evolution (0 = derive from free workers); results are identical at any setting")
		cacheDir     = fs.String("cache-dir", "", "persist completed runs here; identical reruns load instead of simulating")
		verbose      = fs.Bool("verbose", false, "print per-job metrics")
		progressV    = fs.Bool("v", false, "stream per-cell progress lines to stderr, ending with a one-line summary")
		dumpMetrics  = fs.Bool("metrics", false, "dump the run's telemetry as Prometheus text to stderr after the run")
		events       = fs.Bool("events", false, "print the scheduling event log")
		asJSON       = fs.Bool("json", false, "emit the full result (or an {\"error\": ...} object) as JSON for scripting")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	topoOpt := ones.WithTopology((*gpus+3)/4, 4)
	if *topology != "" {
		topoOpt = ones.WithShape(*topology)
	}
	opts := []ones.Option{
		ones.WithScheduler(*sched),
		ones.WithScenario(*scenarioName),
		topoOpt,
		ones.WithTrace(ones.Trace{Jobs: *jobs, MeanInterarrival: *interarrival, Seed: *seed}),
		ones.WithSeed(*seed),
		ones.WithPopulation(*pop),
		ones.WithEvolutionParallelism(*evoParallel),
		ones.WithEventLog(*events),
	}
	if *autoscaler != "" {
		opts = append(opts, ones.WithAutoscaler(*autoscaler))
	}
	if *cacheDir != "" {
		cache, err := ones.NewCache(*cacheDir, func(format string, a ...any) {
			fmt.Fprintf(stderr, "onesim: "+format+"\n", a...)
		})
		if err != nil {
			return fail(stdout, stderr, *asJSON, err)
		}
		opts = append(opts, ones.WithCache(cache))
	}
	var prog *progressPrinter
	if *progressV {
		prog = &progressPrinter{w: stderr}
		opts = append(opts, ones.WithObserver(prog))
	}
	var metrics *ones.Metrics
	if *dumpMetrics {
		metrics = ones.NewMetrics()
		opts = append(opts, ones.WithMetrics(metrics))
	}
	s, err := ones.New(opts...)
	if err != nil {
		return fail(stdout, stderr, *asJSON, err)
	}
	res, err := s.Run(ctx)
	if prog != nil {
		prog.summary()
	}
	if metrics != nil {
		// Dump on every outcome: a failed or cancelled run's counters are
		// exactly when the telemetry is most interesting.
		metrics.WritePrometheus(stderr)
	}
	if err != nil {
		return fail(stdout, stderr, *asJSON, err)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(stdout, stderr, false, err)
		}
		return 0
	}

	fmt.Fprintf(stdout, "scheduler   %s\n", res.Scheduler)
	fmt.Fprintf(stdout, "scenario    %s\n", res.Scenario)
	if res.Autoscaler != "" {
		fmt.Fprintf(stdout, "autoscaler  %s (scale-ups: %d, scale-downs: %d)\n",
			res.Autoscaler, res.ScaleUps, res.ScaleDowns)
	}
	if res.Shape != "" {
		fmt.Fprintf(stdout, "topology    %s (%d GPUs", res.Shape, res.Capacity)
		for _, rc := range res.Racks {
			fmt.Fprintf(stdout, "; rack %d: %d×srv/%d GPUs", rc.Rack, rc.Servers, rc.GPUs)
		}
		fmt.Fprintf(stdout, ")\n")
	}
	fmt.Fprintf(stdout, "jobs        %d (unfinished: %d)\n", len(res.Jobs), res.Unfinished)
	fmt.Fprintf(stdout, "makespan    %.1f s\n", res.Makespan)
	fmt.Fprintf(stdout, "avg JCT     %.2f s   (median %.1f, p75 %.1f, max %.1f)\n",
		res.MeanJCT, res.JCT.Median, res.JCT.Q3, res.JCT.Max)
	fmt.Fprintf(stdout, "avg exec    %.2f s\n", res.MeanExec)
	fmt.Fprintf(stdout, "avg queue   %.2f s\n", res.MeanQueue)
	fmt.Fprintf(stdout, "reconfigs   %d\n", res.Reconfigs)
	if res.Evictions > 0 || res.CapacityEvents > 0 {
		fmt.Fprintf(stdout, "evictions   %d (capacity events: %d", res.Evictions, res.CapacityEvents)
		if res.RackDrainEvictions > 0 {
			fmt.Fprintf(stdout, "; rack-drain evictions: %d", res.RackDrainEvictions)
		}
		fmt.Fprintf(stdout, ")\n")
	}
	fmt.Fprintf(stdout, "utilization %.1f%%\n", 100*res.Utilization)
	if *verbose {
		fmt.Fprintf(stdout, "\n%6s %-26s %10s %10s %10s %10s\n", "job", "task", "submit", "jct", "exec", "queue")
		for _, j := range res.Jobs {
			fmt.Fprintf(stdout, "%6d %-26s %10.1f %10.1f %10.1f %10.1f\n",
				j.ID, j.Name, j.Submit, j.JCT, j.Exec, j.Queue)
		}
	}
	if *events {
		fmt.Fprintf(stdout, "\n%10s %-9s %6s %6s %8s\n", "time", "event", "job", "gpus", "batch")
		for _, ev := range res.Events {
			fmt.Fprintf(stdout, "%10.1f %-9s %6d %6d %8d\n", ev.Time, ev.Kind, ev.Job, ev.GPUs, ev.Batch)
		}
	}
	return 0
}

// progressPrinter implements ones.Observer for -v: one stderr line per
// cell lifecycle event while the run executes, then a one-line summary
// (cells, cache hits, wall time). Events can arrive from several worker
// goroutines, so the counters sit behind a mutex. Cached cells emit no
// cell events — they surface only as a jump in Done — which is how the
// summary separates cache hits from simulated cells.
type progressPrinter struct {
	w io.Writer

	mu       sync.Mutex
	executed int           // cells that actually simulated (cell-done events)
	total    int           // cells the batch planned (run-done)
	finished bool          // run-done arrived: every planned cell completed
	elapsed  time.Duration // run wall time (run-done)
}

// Observe implements ones.Observer.
func (p *progressPrinter) Observe(ev ones.Progress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case ones.KindRunStart:
		fmt.Fprintf(p.w, "onesim: run started: %d cell(s) planned\n", ev.Total)
	case ones.KindCellStart:
		fmt.Fprintf(p.w, "onesim: cell %s simulating\n", ev.Cell)
	case ones.KindCellDone:
		p.executed++
		fmt.Fprintf(p.w, "onesim: cell %s done in %.1fs (%d/%d)\n",
			ev.Cell, ev.Elapsed.Seconds(), ev.Done, ev.Total)
	case ones.KindExperimentStart:
		fmt.Fprintf(p.w, "onesim: experiment %s started\n", ev.Experiment)
	case ones.KindExperimentDone:
		fmt.Fprintf(p.w, "onesim: experiment %s done in %.1fs\n", ev.Experiment, ev.Elapsed.Seconds())
	case ones.KindRunDone:
		p.total, p.elapsed, p.finished = ev.Total, ev.Elapsed, true
	}
}

// summary prints the closing one-liner after the run returns. A planned
// cell that finished without simulating (no cell events) was served from
// the cache — memory or disk — so hits fall out as total − simulated on
// a completed run. An aborted run never reaches run-done; its partial
// count is reported without guessing at cache attribution.
func (p *progressPrinter) summary() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.finished {
		fmt.Fprintf(p.w, "onesim: aborted after %d simulated cell(s)\n", p.executed)
		return
	}
	hits := p.total - p.executed
	if hits < 0 {
		hits = 0 // more cells executed than planned: never happens, stay sane
	}
	fmt.Fprintf(p.w, "onesim: %d cell(s) (%d cache hit(s)) in %.1fs\n",
		p.total, hits, p.elapsed.Seconds())
}

// fail reports an error and returns the exit code. In JSON mode the
// error goes to STDOUT as a JSON object — a scripting pipeline reading
// onesim's output gets parseable JSON on every path, success or failure
// — while plain mode keeps the traditional stderr line.
func fail(stdout, stderr io.Writer, asJSON bool, err error) int {
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.Encode(map[string]string{"error": err.Error()})
	} else {
		fmt.Fprintln(stderr, "onesim:", err)
	}
	return 1
}
