// Command onesim runs one scheduling simulation through the public ones
// SDK: a generated Table 2 workload trace replayed on a simulated GPU
// cluster under a chosen scheduler and scenario, reporting per-run and
// per-job completion statistics.
//
// Examples:
//
//	onesim -sched ones
//	onesim -sched tiresias -gpus 32 -jobs 60 -interarrival 20
//	onesim -sched ones -scenario diurnal+spot -pop 16 -verbose
//	onesim -sched ones -json | jq .mean_jct_s
//
// The process exits non-zero on error; Ctrl-C cancels the run cleanly at
// the next cell boundary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/pkg/ones"
)

func main() {
	var (
		sched        = flag.String("sched", "ones", "scheduler: "+strings.Join(ones.Schedulers(), "|"))
		scenarioName = flag.String("scenario", "steady", `world model (compose with "+", e.g. "diurnal+spot")`)
		gpus         = flag.Int("gpus", 64, "cluster capacity in GPUs (4 per server)")
		jobs         = flag.Int("jobs", 120, "number of jobs in the trace")
		interarrival = flag.Float64("interarrival", 12, "mean seconds between arrivals")
		seed         = flag.Int64("seed", 1, "master RNG seed")
		pop          = flag.Int("pop", 32, "ONES population size K")
		verbose      = flag.Bool("verbose", false, "print per-job metrics")
		events       = flag.Bool("events", false, "print the scheduling event log")
		asJSON       = flag.Bool("json", false, "emit the full result as JSON for scripting")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s, err := ones.New(
		ones.WithScheduler(*sched),
		ones.WithScenario(*scenarioName),
		ones.WithTopology((*gpus+3)/4, 4),
		ones.WithTrace(ones.Trace{Jobs: *jobs, MeanInterarrival: *interarrival, Seed: *seed}),
		ones.WithSeed(*seed),
		ones.WithPopulation(*pop),
		ones.WithEventLog(*events),
	)
	if err != nil {
		fatal(err)
	}
	res, err := s.Run(ctx)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("scheduler   %s\n", res.Scheduler)
	fmt.Printf("scenario    %s\n", res.Scenario)
	fmt.Printf("jobs        %d (unfinished: %d)\n", len(res.Jobs), res.Unfinished)
	fmt.Printf("makespan    %.1f s\n", res.Makespan)
	fmt.Printf("avg JCT     %.2f s   (median %.1f, p75 %.1f, max %.1f)\n",
		res.MeanJCT, res.JCT.Median, res.JCT.Q3, res.JCT.Max)
	fmt.Printf("avg exec    %.2f s\n", res.MeanExec)
	fmt.Printf("avg queue   %.2f s\n", res.MeanQueue)
	fmt.Printf("reconfigs   %d\n", res.Reconfigs)
	if res.Evictions > 0 || res.CapacityEvents > 0 {
		fmt.Printf("evictions   %d (capacity events: %d)\n", res.Evictions, res.CapacityEvents)
	}
	fmt.Printf("utilization %.1f%%\n", 100*res.Utilization)
	if *verbose {
		fmt.Printf("\n%6s %-26s %10s %10s %10s %10s\n", "job", "task", "submit", "jct", "exec", "queue")
		for _, j := range res.Jobs {
			fmt.Printf("%6d %-26s %10.1f %10.1f %10.1f %10.1f\n",
				j.ID, j.Name, j.Submit, j.JCT, j.Exec, j.Queue)
		}
	}
	if *events {
		fmt.Printf("\n%10s %-9s %6s %6s %8s\n", "time", "event", "job", "gpus", "batch")
		for _, ev := range res.Events {
			fmt.Printf("%10.1f %-9s %6d %6d %8d\n", ev.Time, ev.Kind, ev.Job, ev.GPUs, ev.Batch)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "onesim:", err)
	os.Exit(1)
}
