package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runCLI invokes the command body and decodes stdout as a single JSON
// value when asJSON is set.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestJSONErrorUnknownScheduler: -json failures emit {"error": ...} on
// stdout (the stream a pipeline parses) and exit non-zero.
func TestJSONErrorUnknownScheduler(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-sched", "bogus")
	if code == 0 {
		t.Fatal("unknown scheduler exited 0")
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(stdout), &e); err != nil {
		t.Fatalf("stdout %q is not a JSON object: %v", stdout, err)
	}
	if e["error"] == "" || !strings.Contains(e["error"], "bogus") {
		t.Errorf("error object %v does not name the offending scheduler", e)
	}
}

// TestJSONErrorUnknownScenario covers the second -json error path.
func TestJSONErrorUnknownScenario(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-scenario", "nope")
	if code == 0 {
		t.Fatal("unknown scenario exited 0")
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(stdout), &e); err != nil {
		t.Fatalf("stdout %q is not a JSON object: %v", stdout, err)
	}
	if e["error"] == "" || !strings.Contains(e["error"], "nope") {
		t.Errorf("error object %v does not name the offending scenario", e)
	}
}

// TestPlainErrorStderr: without -json, errors keep the traditional
// plain-text stderr line and an empty stdout.
func TestPlainErrorStderr(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-sched", "bogus")
	if code == 0 {
		t.Fatal("unknown scheduler exited 0")
	}
	if stdout != "" {
		t.Errorf("plain-mode error wrote to stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "bogus") {
		t.Errorf("stderr %q does not name the error", stderr)
	}
}

// TestHelpExitsZero: -h prints usage and succeeds, as the old
// flag.ExitOnError behaviour did — help in a set -e script is not an
// error.
func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr, "-sched") {
		t.Errorf("usage text missing from stderr: %q", stderr)
	}
}

// TestJSONSuccess: the success path still emits the result object.
func TestJSONSuccess(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-sched", "fifo", "-jobs", "8", "-interarrival", "25")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	if _, bad := res["error"]; bad {
		t.Fatalf("success emitted an error object: %v", res)
	}
	if res["scheduler"] != "FIFO" {
		t.Errorf("scheduler = %v, want FIFO", res["scheduler"])
	}
}

// TestVerboseCellProgress: -v streams per-cell lines and a final
// summary to stderr while stdout stays the normal report.
func TestVerboseCellProgress(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-v", "-sched", "fifo", "-jobs", "8", "-interarrival", "25")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"run started: 1 cell(s) planned",
		"simulating",
		"done in",
		"1 cell(s) (0 cache hit(s)) in",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-v stderr missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stdout, "onesim:") {
		t.Errorf("-v progress leaked onto stdout:\n%s", stdout)
	}
}

// TestVerboseCountsCacheHit: with a warm cache the rerun simulates
// nothing and the summary attributes the cell to the cache.
func TestVerboseCountsCacheHit(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-v", "-cache-dir", dir, "-sched", "fifo", "-jobs", "8", "-interarrival", "25"}
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("cold run exit %d: %s", code, stderr)
	}
	code, _, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("warm run exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "1 cell(s) (1 cache hit(s)) in") {
		t.Errorf("warm -v summary did not count the cache hit:\n%s", stderr)
	}
	if strings.Contains(stderr, "simulating") {
		t.Errorf("warm run simulated a cell:\n%s", stderr)
	}
}

// TestMetricsDump: -metrics appends the Prometheus exposition to stderr
// after the run, without touching the stdout report.
func TestMetricsDump(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-metrics", "-sched", "fifo", "-jobs", "8", "-interarrival", "25")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"# TYPE engine_cells_completed_total counter",
		"engine_cells_completed_total 1",
		"engine_cell_seconds_count 1",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-metrics stderr missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stdout, "# TYPE") {
		t.Errorf("metrics leaked onto stdout:\n%s", stdout)
	}
}

// TestCancelledRunJSONError: a dead context surfaces as a JSON error
// too (the run-failure path), not a zero exit with partial output.
func TestCancelledRunJSONError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-json", "-sched", "fifo", "-jobs", "8"}, &out, &errb)
	if code == 0 {
		t.Fatal("cancelled run exited 0")
	}
	var e map[string]string
	if err := json.Unmarshal(out.Bytes(), &e); err != nil {
		t.Fatalf("stdout %q is not a JSON object: %v", out.String(), err)
	}
	if e["error"] == "" {
		t.Error("cancelled run emitted no error object")
	}
}

// TestAutoscalerFlag: -autoscaler runs the closed loop and reports the
// controller's activity in both output modes; a bogus name fails fast.
func TestAutoscalerFlag(t *testing.T) {
	args := []string{"-sched", "tiresias", "-gpus", "8", "-scenario", "burst",
		"-autoscaler", "reactive-aggressive", "-jobs", "10", "-interarrival", "8", "-seed", "7"}
	code, stdout, _ := runCLI(t, append([]string{"-json"}, args...)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stdout)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	if res["autoscaler"] != "reactive-aggressive" {
		t.Errorf("autoscaler = %v", res["autoscaler"])
	}
	if ups, _ := res["scale_ups"].(float64); ups == 0 {
		t.Errorf("scale_ups = %v, want nonzero", res["scale_ups"])
	}

	code, stdout, _ = runCLI(t, args...)
	if code != 0 {
		t.Fatalf("plain mode exit %d", code)
	}
	if !strings.Contains(stdout, "autoscaler  reactive-aggressive") || !strings.Contains(stdout, "scale-ups") {
		t.Errorf("plain report missing the autoscaler line:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t, "-json", "-autoscaler", "bogus")
	if code == 0 {
		t.Fatal("unknown autoscaler exited 0")
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(stdout), &e); err != nil || !strings.Contains(e["error"], "bogus") {
		t.Errorf("error object %v does not name the offending autoscaler", e)
	}
}
