// Command onesd is the ONES scheduling daemon: an HTTP control plane
// over the public ones SDK that multiplexes many client sessions in one
// process, shares one singleflight result cache across all of them, and
// (with -cache-dir) persists every completed simulation cell to disk so
// restarts serve warm work without recomputation.
//
//	onesd -addr :8080 -cache-dir /var/cache/onesd
//
//	curl -s localhost:8080/v1/schedulers
//	curl -s -X POST localhost:8080/v1/runs -d '{"scheduler":"ones","jobs":60,"quick":true}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -sN localhost:8080/v1/runs/run-000001/stream
//	curl -s -X DELETE localhost:8080/v1/runs/run-000001
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/runs/run-000001/trace
//
// Every daemon serves Prometheus metrics on GET /metrics (engine, cache,
// evolution and HTTP series — see DESIGN.md "Observability"), per-run
// span traces on GET /v1/runs/{id}/trace, liveness on GET /healthz and
// readiness on GET /readyz (503 once shutdown begins). -pprof
// additionally mounts the Go profiler under /debug/pprof/.
//
// See cmd/onesd/README.md for the full endpoint reference and
// DESIGN.md ("Network service") for cache layout and cancellation
// semantics. SIGINT/SIGTERM shut the daemon down gracefully: in-flight
// runs are cancelled (aborting mid-cell within sub-second latency),
// streams receive their terminal event, and the listener drains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/ones"
	"repro/pkg/ones/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist completed simulation cells here (empty: shared in-memory cache only)")
		timeout   = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight runs on shutdown")
		withPprof = flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "onesd: ", log.LstdFlags)

	cache, err := ones.NewCache(*cacheDir, logger.Printf)
	if err != nil {
		logger.Fatal(err)
	}
	if *cacheDir != "" {
		logger.Printf("persisting cells to %s", *cacheDir)
	}

	metrics := ones.NewMetrics()
	srv := serve.New(cache, logger, serve.WithMetrics(metrics))
	handler := srv.Handler()
	if *withPprof {
		// Mount the profiler on an outer mux so the API handler stays
		// unaware of it; /debug/pprof/ is index + named profiles.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = outer
		logger.Printf("profiling enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Printf("shutting down (signal)")
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	}

	// Cancel every in-flight run first — mid-cell cancellation makes
	// this sub-second — so streaming handlers reach their terminal event
	// and the HTTP drain below completes promptly.
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("run drain: %v", err)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Printf("http drain: %v", err)
	}
	fmt.Fprintln(os.Stderr, "onesd: bye")
}
