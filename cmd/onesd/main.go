// Command onesd is the ONES scheduling daemon: an HTTP control plane
// over the public ones SDK that multiplexes many client sessions in one
// process, shares one singleflight result cache across all of them, and
// (with -cache-dir) persists every completed simulation cell to disk so
// restarts serve warm work without recomputation.
//
//	onesd -addr :8080 -cache-dir /var/cache/onesd
//
//	curl -s localhost:8080/v1/schedulers
//	curl -s -X POST localhost:8080/v1/runs -d '{"scheduler":"ones","jobs":60,"quick":true}'
//	curl -s localhost:8080/v1/runs/run-000001
//	curl -sN localhost:8080/v1/runs/run-000001/stream
//	curl -s -X DELETE localhost:8080/v1/runs/run-000001
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/v1/runs/run-000001/trace
//
// Every daemon serves Prometheus metrics on GET /metrics (engine, cache,
// evolution and HTTP series — see DESIGN.md "Observability"), per-run
// span traces on GET /v1/runs/{id}/trace, liveness on GET /healthz and
// readiness on GET /readyz (503 once shutdown begins). -pprof
// additionally mounts the Go profiler under /debug/pprof/.
//
// Production hardening (all opt-in, see DESIGN.md "Admission & bounded
// state"): -max-runs/-run-ttl bound the run table, -cache-max-entries/
// -cache-ttl/-cache-max-bytes bound the result cache (swept every
// -sweep-interval even when idle), -auth-token requires a bearer token
// on /v1 (probes and /metrics stay open), -rate-limit/-rate-burst add
// per-endpoint token buckets (429 + Retry-After), and -breaker-backlog/
// -breaker-cooldown shed run creation with 503s while compute is backed
// up.
//
// See cmd/onesd/README.md for the full endpoint reference and
// DESIGN.md ("Network service") for cache layout and cancellation
// semantics. SIGINT/SIGTERM shut the daemon down gracefully: in-flight
// runs are cancelled (aborting mid-cell within sub-second latency),
// streams receive their terminal event, and the listener drains.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/ones"
	"repro/pkg/ones/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache-dir", "", "persist completed simulation cells here (empty: shared in-memory cache only)")
		timeout   = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight runs on shutdown")
		withPprof = flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")

		maxRuns    = flag.Int("max-runs", 0, "cap the run table; oldest finished runs are evicted beyond it (0: unbounded)")
		runTTL     = flag.Duration("run-ttl", 0, "evict finished runs this long after completion (0: keep forever)")
		cacheMax   = flag.Int("cache-max-entries", 0, "cap the in-memory result memo, LRU-evicting completed entries (0: unbounded)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "evict completed memo entries idle this long (0: never)")
		cacheBytes = flag.Int64("cache-max-bytes", 0, "cap the -cache-dir size in bytes, removing oldest files (0: unbounded)")
		sweepEvery = flag.Duration("sweep-interval", time.Minute, "how often to sweep cache limits when idle")

		authToken   = flag.String("auth-token", "", "require this bearer token on /v1 endpoints (empty: no auth)")
		rateLimit   = flag.Float64("rate-limit", 0, "per-endpoint requests per second; excess answered 429 (0: unlimited)")
		rateBurst   = flag.Int("rate-burst", 0, "token-bucket burst per endpoint (0: one second's worth)")
		brkBacklog  = flag.Int("breaker-backlog", 0, "shed run creation with 503s once this many runs execute concurrently (0: disabled)")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long the breaker stays open before probing again")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "onesd: ", log.LstdFlags)

	cache, err := ones.NewCache(*cacheDir, logger.Printf)
	if err != nil {
		logger.Fatal(err)
	}
	if *cacheDir != "" {
		logger.Printf("persisting cells to %s", *cacheDir)
	}
	cache.SetLimits(ones.CacheLimits{
		MaxEntries:   *cacheMax,
		TTL:          *cacheTTL,
		MaxDiskBytes: *cacheBytes,
	})

	metrics := ones.NewMetrics()
	srv := serve.New(cache, logger, serve.WithMetrics(metrics), serve.WithConfig(serve.Config{
		MaxRuns:         *maxRuns,
		RunTTL:          *runTTL,
		AuthToken:       *authToken,
		RatePerSec:      *rateLimit,
		RateBurst:       *rateBurst,
		BreakerBacklog:  *brkBacklog,
		BreakerCooldown: *brkCooldown,
	}))
	handler := srv.Handler()
	if *withPprof {
		// Mount the profiler on an outer mux so the API handler stays
		// unaware of it; /debug/pprof/ is index + named profiles.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = outer
		logger.Printf("profiling enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Sweep the cache limits periodically so TTL'd entries expire and the
	// disk directory shrinks even while the daemon is idle (inserts sweep
	// inline; this ticker covers the no-traffic case). Stops on shutdown.
	if *sweepEvery > 0 {
		go func() {
			tick := time.NewTicker(*sweepEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					cache.Sweep()
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Printf("shutting down (signal)")
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	}

	// Cancel every in-flight run first — mid-cell cancellation makes
	// this sub-second — so streaming handlers reach their terminal event
	// and the HTTP drain below completes promptly.
	shutCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("run drain: %v", err)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Printf("http drain: %v", err)
	}
	fmt.Fprintln(os.Stderr, "onesd: bye")
}
