package main

import (
	"regexp"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvolution500Jobs 	       1	67929149333 ns/op	      2330 ones-jct-s	4382075624 B/op	47384258 allocs/op
BenchmarkIterate-8   	     100	   1000000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkFig06OnlinePredictor 	       2	 600000000 ns/op
PASS
`

func parsed(t *testing.T, text string) Report {
	t.Helper()
	r, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseBenchText(t *testing.T) {
	r := parsed(t, benchText)
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" {
		t.Fatalf("header mis-parsed: %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(r.Benchmarks))
	}
	ev := r.Benchmarks[0]
	if ev.Name != "Evolution500Jobs" || ev.Metrics["ns/op"] != 67929149333 || ev.Metrics["ones-jct-s"] != 2330 {
		t.Fatalf("headline line mis-parsed: %+v", ev)
	}
	if it := r.Benchmarks[1]; it.Name != "Iterate" || it.Procs != 8 {
		t.Fatalf("procs suffix mis-parsed: %+v", it)
	}
}

// scale returns a copy of the report with every ns/op multiplied by f —
// a synthetic slowdown (f > 1) or speedup (f < 1).
func scale(r Report, f float64) Report {
	out := Report{Benchmarks: make([]Benchmark, len(r.Benchmarks))}
	for i, b := range r.Benchmarks {
		nb := Benchmark{Name: b.Name, Procs: b.Procs, Iterations: b.Iterations, Metrics: map[string]float64{}}
		for k, v := range b.Metrics {
			nb.Metrics[k] = v
		}
		nb.Metrics["ns/op"] *= f
		out.Benchmarks[i] = nb
	}
	return out
}

// TestGateFailsSyntheticSlowdown is the gate's acceptance test: a 2×
// slowdown on the headline benchmarks MUST produce violations, while the
// identical run and runs within the 15% budget must pass.
func TestGateFailsSyntheticSlowdown(t *testing.T) {
	base := parsed(t, benchText)
	headline := regexp.MustCompile(`Evolution500Jobs|Iterate`)

	violations, err := gate(scale(base, 2), base, headline, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 2 {
		t.Fatalf("2x slowdown: want 2 violations (both headline benchmarks), got %v", violations)
	}
	for _, v := range violations {
		if !strings.Contains(v, "ns/op") {
			t.Errorf("violation should cite ns/op: %q", v)
		}
	}

	if v, err := gate(base, base, headline, 0.15); err != nil || len(v) != 0 {
		t.Fatalf("identical run must pass: %v, %v", v, err)
	}
	if v, err := gate(scale(base, 1.10), base, headline, 0.15); err != nil || len(v) != 0 {
		t.Fatalf("+10%% (within the 15%% budget) must pass: %v, %v", v, err)
	}
	if v, err := gate(scale(base, 0.5), base, headline, 0.15); err != nil || len(v) != 0 {
		t.Fatalf("speedups must pass: %v, %v", v, err)
	}
}

func TestGateIgnoresNonHeadline(t *testing.T) {
	base := parsed(t, benchText)
	headline := regexp.MustCompile(`Evolution500Jobs`)
	// Slow down everything: only the headline benchmark may violate.
	violations, err := gate(scale(base, 3), base, headline, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "Evolution500Jobs") {
		t.Fatalf("want exactly the headline violation, got %v", violations)
	}
}

func TestGateErrors(t *testing.T) {
	base := parsed(t, benchText)
	// A deleted headline benchmark must not slip through as a pass.
	cur := Report{Benchmarks: base.Benchmarks[1:]}
	if _, err := gate(cur, base, regexp.MustCompile(`Evolution500Jobs`), 0.15); err == nil {
		t.Fatal("missing headline benchmark should be an error")
	}
	// A headline regexp matching nothing is a misconfigured gate.
	if _, err := gate(base, base, regexp.MustCompile(`NoSuchBenchmark`), 0.15); err == nil {
		t.Fatal("empty headline selection should be an error")
	}
}
