// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so CI can archive each
// run's benchmark numbers (BENCH_engine.json) and the perf trajectory
// can be compared across commits without reparsing free-form text.
//
//	go test -run '^$' -bench . -benchtime 1x | benchjson > BENCH_engine.json
//
// With -baseline it additionally acts as a perf-regression gate: the
// fresh run (still emitted on stdout) is compared against the committed
// baseline document, and the process exits nonzero if any benchmark
// matching -headline regressed in ns/op by more than -max-regress:
//
//	go test -run '^$' -bench . -benchtime 1x | \
//	  benchjson -baseline BENCH_6.json -headline 'Evolution500Jobs|Iterate|Score|EventQueue' -max-regress 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line, metrics keyed by unit
// ("ns/op", "allocs/op", and every custom b.ReportMetric unit).
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the archived document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against (empty = convert only)")
	headline := flag.String("headline", ".", "regexp selecting the gated benchmark names")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed ns/op regression vs the baseline (0.15 = +15%)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	re, err := regexp.Compile(*headline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -headline:", err)
		os.Exit(1)
	}
	violations, err := gate(report, base, re, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate passed (headline %q, max regression %.0f%%)\n", *headline, *maxRegress*100)
}

// parse reads `go test -bench` text output into a Report.
func parse(r io.Reader) (Report, error) {
	report := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// gate compares the fresh run against the baseline on every headline
// benchmark and returns one violation string per benchmark whose ns/op
// regressed by more than maxRegress. A headline benchmark present in the
// baseline but missing from the fresh run is an error: a silently
// deleted benchmark must not pass the gate.
func gate(cur, base Report, headline *regexp.Regexp, maxRegress float64) ([]string, error) {
	curNs := make(map[string]float64, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			curNs[b.Name] = ns
		}
	}
	var violations []string
	gated := 0
	for _, b := range base.Benchmarks {
		if !headline.MatchString(b.Name) {
			continue
		}
		baseNs, ok := b.Metrics["ns/op"]
		if !ok || baseNs <= 0 {
			continue
		}
		ns, ok := curNs[b.Name]
		if !ok {
			return nil, fmt.Errorf("headline benchmark %s missing from this run", b.Name)
		}
		gated++
		if ratio := ns / baseNs; ratio > 1+maxRegress {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit %+.0f%%)",
					b.Name, ns, baseNs, (ratio-1)*100, maxRegress*100))
		}
	}
	if gated == 0 {
		return nil, fmt.Errorf("headline %q matched no baseline benchmark with ns/op", headline)
	}
	return violations, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1000   1052 ns/op   123.4 custom-unit   ...
//
// The fields after the iteration count alternate value/unit.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
