// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so CI can archive each
// run's benchmark numbers (BENCH_engine.json) and the perf trajectory
// can be compared across commits without reparsing free-form text.
//
//	go test -run '^$' -bench . -benchtime 1x | benchjson > BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line, metrics keyed by unit
// ("ns/op", "allocs/op", and every custom b.ReportMetric unit).
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the archived document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1000   1052 ns/op   123.4 custom-unit   ...
//
// The fields after the iteration count alternate value/unit.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
