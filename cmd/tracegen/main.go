// Command tracegen generates, summarizes and validates workload traces
// (the Table 2 job mix) through the public ones SDK, under any named
// scenario's arrival process — including "+"-composed scenarios.
//
// Examples:
//
//	tracegen -jobs 120 -o trace.json
//	tracegen -scenario burst -jobs 200 -o burst.json
//	tracegen -scenario diurnal+spot -summary
//	tracegen -list-scenarios
//	tracegen -in trace.json -summary
//	tracegen -summary -topology 4x8,2x4   # check the trace against a mixed cluster
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pkg/ones"
)

func main() {
	var (
		jobs         = flag.Int("jobs", 120, "number of jobs to generate")
		interarrival = flag.Float64("interarrival", 12, "mean seconds between arrivals")
		seed         = flag.Int64("seed", 1, "RNG seed")
		maxGPUs      = flag.Int("max-gpus", 8, "largest user GPU request")
		scenarioName = flag.String("scenario", "", "named scenario whose arrival process shapes the trace (see -list-scenarios)")
		topology     = flag.String("topology", "", `cluster shape to check the trace against in -summary, e.g. "4x8,2x4"`)
		listScen     = flag.Bool("list-scenarios", false, "list named scenarios and exit")
		out          = flag.String("o", "", "write the trace as JSON to this file (default: stdout)")
		in           = flag.String("in", "", "read an existing trace instead of generating")
		summary      = flag.Bool("summary", false, "print composition summary instead of JSON")
	)
	flag.Parse()

	if *listScen {
		for _, s := range ones.Scenarios() {
			capacity := "fixed capacity"
			if s.ElasticCapacity {
				capacity = "elastic capacity"
			}
			fmt.Printf("%-14s %-45s arrivals: %s; %s\n", s.Name, s.Title, s.Arrival, capacity)
		}
		return
	}

	var trace *ones.TraceData
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		trace, err = ones.DecodeTrace(data)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		trace, err = ones.GenerateTrace(ones.Trace{
			Jobs:             *jobs,
			MeanInterarrival: *interarrival,
			MaxGPUs:          *maxGPUs,
			Seed:             *seed,
		}, *scenarioName)
		if err != nil {
			fatal(err)
		}
	}

	if *summary {
		s := trace.Summary()
		fmt.Printf("jobs            %d\n", s.Jobs)
		fmt.Printf("makespan        %.1f s (last submission)\n", s.Makespan)
		fmt.Printf("mean GPU req    %.2f (max %d)\n", s.MeanGPUReq, s.MaxGPUReq)
		if *topology != "" {
			sh, err := ones.ParseShape(*topology)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("cluster         %s: %d servers, %d GPUs, %d rack(s)\n",
				sh.Shape, sh.Servers, sh.TotalGPUs, len(sh.Racks))
			for _, r := range sh.Racks {
				fmt.Printf("  rack %-12d %d servers, %d GPUs\n", r.Rack, r.Servers, r.GPUs)
			}
			if s.MaxGPUReq > sh.MaxServerGPUs {
				fmt.Printf("note: largest request (%d GPUs) exceeds the biggest server (%d GPUs); such jobs span machines\n",
					s.MaxGPUReq, sh.MaxServerGPUs)
			}
			if s.MaxGPUReq > sh.TotalGPUs {
				fmt.Printf("warning: largest request (%d GPUs) exceeds the whole cluster (%d GPUs)\n",
					s.MaxGPUReq, sh.TotalGPUs)
			}
		}
		fmt.Println("by class:")
		for class, n := range s.ByClass {
			fmt.Printf("  %-14s %d\n", class, n)
		}
		fmt.Println("by model:")
		for model, n := range s.ByModel {
			fmt.Printf("  %-14s %d\n", model, n)
		}
		return
	}

	data, err := trace.JSON()
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d jobs to %s\n", trace.Jobs(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
