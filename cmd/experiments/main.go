// Command experiments regenerates the paper's tables and figures.
//
// Examples:
//
//	experiments -exp fig15          # the headline scheduler comparison
//	experiments -exp all -quick     # everything, at smoke-test scale
//	experiments -exp fig16          # live scaling-overhead measurement
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig2|fig3|fig6|fig13|fig14|fig15|fig16|fig17|fig18|table2|table3|table4|all")
		quick = flag.Bool("quick", false, "shrink traces and populations for a fast pass")
		seed  = flag.Int64("seed", 1, "RNG seed")
		jobs  = flag.Int("jobs", 0, "override trace length")
		pop   = flag.Int("pop", 0, "override ONES population size")
	)
	flag.Parse()

	opt := core.DefaultOptions()
	if *quick {
		opt = core.QuickOptions()
	}
	opt.Seed = *seed
	if *jobs > 0 {
		opt.Jobs = *jobs
	}
	if *pop > 0 {
		opt.Population = *pop
	}
	suite := core.NewSuite(opt)

	type experiment struct {
		name string
		run  func() (string, error)
	}
	registry := []experiment{
		{"fig2", func() (string, error) { return suite.Fig2(), nil }},
		{"fig3", func() (string, error) { return suite.Fig3(), nil }},
		{"fig6", suite.Fig6},
		{"table2", func() (string, error) { return suite.Table2(), nil }},
		{"table3", func() (string, error) { return suite.Table3(), nil }},
		{"fig13", suite.Fig13},
		{"fig14", suite.Fig14},
		{"fig15", suite.Fig15},
		{"table4", suite.Table4},
		{"fig16", func() (string, error) {
			_, out, err := suite.Fig16()
			return out, err
		}},
		{"fig17", suite.Fig17},
		{"fig18", suite.Fig18},
	}

	want := strings.ToLower(*exp)
	found := false
	for _, e := range registry {
		if want != "all" && want != e.name {
			continue
		}
		found = true
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
