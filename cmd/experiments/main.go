// Command experiments regenerates the paper's tables and figures through
// the parallel experiment engine. Experiments are selected by registry
// name; their declared simulation cells are prewarmed across a worker
// pool before anything renders, so runs shared between figures (Fig 15,
// Fig 17, Fig 18, Table 4) execute exactly once. Progress and timing go
// to stderr; stdout carries only the tables and figures, byte-identical
// for a given seed at any -parallel setting.
//
// Examples:
//
//	experiments -exp fig15            # the headline scheduler comparison
//	experiments -exp all -quick       # everything, at smoke-test scale
//	experiments -exp fig17,fig18      # the capacity sweep, one warm pass
//	experiments -list                 # what can run
//	experiments -exp all -parallel 1  # serial baseline for timing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	_ "repro/internal/experiments" // populate the experiment registry
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments to run: comma-separated registry names, or \"all\"")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		quick    = flag.Bool("quick", false, "shrink traces and populations for a fast pass")
		seed     = flag.Int64("seed", 1, "master RNG seed (traces and per-cell scheduler seeds derive from it)")
		jobs     = flag.Int("jobs", 0, "override trace length")
		pop      = flag.Int("pop", 0, "override ONES population size")
		parallel = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress progress and timing output on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range engine.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	p := engine.DefaultParams()
	if *quick {
		p = engine.QuickParams()
	}
	p.Seed = *seed
	if *jobs > 0 {
		p.Jobs = *jobs
	}
	if *pop > 0 {
		p.Population = *pop
	}
	p.Workers = *parallel

	var selected []engine.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = engine.Experiments()
	} else {
		for _, name := range strings.Split(strings.ToLower(*exp), ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			e, ok := engine.LookupExperiment(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (known: %s)\n",
					name, strings.Join(engine.ExperimentNames(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(2)
	}

	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	r := engine.NewRunner(p)
	r.OnCell = func(cell engine.Cell, elapsed time.Duration) {
		progress("  cell %-24s %8.2fs\n", cell, elapsed.Seconds())
	}

	// Prewarm: run every declared simulation cell across the pool before
	// rendering, so independent runs overlap instead of serializing
	// behind the figure order.
	start := time.Now()
	if cells := engine.DeclaredCells(selected, r.Params()); len(cells) > 0 {
		progress("warming %d simulation cells on %d workers…\n", len(cells), r.Workers())
		if _, err := r.Results(cells); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: prewarm: %v\n", err)
			os.Exit(1)
		}
		progress("cells warm after %.2fs\n", time.Since(start).Seconds())
	}

	for _, e := range selected {
		expStart := time.Now()
		out, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		progress("[%s] %.2fs\n", e.Name, time.Since(expStart).Seconds())
	}
	progress("total %.2fs (%d simulation cells)\n", time.Since(start).Seconds(), r.CachedCells())
}
