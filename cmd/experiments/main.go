// Command experiments regenerates the paper's tables and figures through
// the public ones SDK. Experiments are selected by registry name; their
// declared simulation cells are prewarmed across the session's worker
// pool before anything renders, so runs shared between figures (Fig 15,
// Fig 17, Fig 18, Table 4) execute exactly once. Progress and timing go
// to stderr (streamed through the SDK's Observer interface); stdout
// carries only the tables and figures, byte-identical for a given seed
// at any -parallel setting. Ctrl-C cancels cleanly at the next cell
// boundary.
//
// Examples:
//
//	experiments -exp fig15            # the headline scheduler comparison
//	experiments -exp all -quick       # everything, at smoke-test scale
//	experiments -exp fig17,fig18      # the capacity sweep, one warm pass
//	experiments -list                 # what can run
//	experiments -exp all -parallel 1  # serial baseline for timing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/pkg/ones"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments to run: comma-separated registry names, or \"all\"")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		quick    = flag.Bool("quick", false, "shrink traces and populations for a fast pass")
		seed     = flag.Int64("seed", 1, "master RNG seed (traces and per-cell scheduler seeds derive from it)")
		jobs     = flag.Int("jobs", 0, "override trace length")
		pop      = flag.Int("pop", 0, "override ONES population size")
		parallel = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress progress and timing output on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range ones.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	var names []string
	if strings.EqualFold(*exp, "all") {
		for _, e := range ones.Experiments() {
			names = append(names, e.Name)
		}
	} else {
		for _, name := range strings.Split(strings.ToLower(*exp), ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(2)
	}

	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	opts := []ones.Option{
		ones.WithSeed(*seed),
		ones.WithWorkers(*parallel),
		ones.WithObserver(ones.ObserverFunc(func(p ones.Progress) {
			switch p.Kind {
			case ones.KindRunStart:
				if p.Total > p.Done {
					progress("warming %d simulation cells…\n", p.Total-p.Done)
				}
			case ones.KindCellDone:
				progress("  cell %-24s %8.2fs\n", p.Cell, p.Elapsed.Seconds())
			case ones.KindExperimentDone:
				progress("[%s] %.2fs\n", p.Experiment, p.Elapsed.Seconds())
			}
		})),
	}
	if *quick {
		// Scale first so explicit -jobs/-pop overrides below still win.
		opts = append([]ones.Option{ones.WithQuickScale()}, opts...)
	}
	if *jobs > 0 {
		opts = append(opts, ones.WithTrace(ones.Trace{Jobs: *jobs}))
	}
	if *pop > 0 {
		opts = append(opts, ones.WithPopulation(*pop))
	}

	s, err := ones.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	progress("running %d experiments on %d workers…\n", len(names), s.Workers())
	results, err := s.RunExperiments(ctx, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Println(r.Output)
	}
	progress("total %.2fs (%d simulation cells)\n", time.Since(start).Seconds(), s.SimulatedCells())
}
