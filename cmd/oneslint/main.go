// Command oneslint runs the repo's static-analysis suite
// (internal/analysis): repo-specific analyzers that machine-check the
// determinism, cache-key, telemetry and lock-discipline invariants every
// reproduced result rests on. It is dependency-free — stdlib go/ast +
// go/parser + go/types only — so the zero-dependency module stays that
// way.
//
// Usage:
//
//	oneslint [-only detrand,cellkey] [-list] [packages]
//
// Packages are directory patterns relative to the module root ("./..."
// by default; a trailing /... recurses). Findings print as
// "file:line: [analyzer] message"; the exit status is 1 when any
// finding survives the //ones:allow escape hatch, 2 on load errors,
// 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "oneslint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oneslint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oneslint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for i, p := range patterns {
		patterns[i] = strings.TrimPrefix(p, "./")
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oneslint:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "oneslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
