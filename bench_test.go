// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of ONES's design choices. Each benchmark
// reports the experiment's headline quantity through b.ReportMetric so the
// -bench output doubles as a results table.
package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	_ "repro/internal/experiments" // populate the experiment registry
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runExperiment renders one registered experiment on a fresh quick
// runner.
func runExperiment(b *testing.B, name string) string {
	b.Helper()
	e, ok := engine.LookupExperiment(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	out, err := e.Run(context.Background(), engine.NewRunner(engine.QuickParams()))
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// --- Figure 2: throughput vs workers, elastic vs fixed batch ---

func BenchmarkFig02ThroughputCurves(b *testing.B) {
	p := perfmodel.CIFARResNet50()
	net := perfmodel.DefaultNetwork()
	var elastic8, fixedPeak float64
	for i := 0; i < b.N; i++ {
		fixedPeak = 0
		for c := 1; c <= 8; c++ {
			if x := perfmodel.PackedThroughput(p, net, 256, c, 4); x > fixedPeak {
				fixedPeak = x
			}
			elastic8 = perfmodel.PackedThroughput(p, net, 256*c, c, 4)
		}
	}
	b.ReportMetric(elastic8, "elastic-c8-img/s")
	b.ReportMetric(fixedPeak, "fixed-peak-img/s")
}

// --- Figure 3: convergence vs GPUs at fixed local batch ---

func BenchmarkFig03ConvergenceCurves(b *testing.B) {
	p := perfmodel.CIFARResNet50()
	var acc1, acc8 float64
	for i := 0; i < b.N; i++ {
		for _, c := range []int{1, 2, 4, 8} {
			B := 256 * c
			eff := 200 / perfmodel.EpochPenalty(p, B, false)
			a := perfmodel.AccuracyAt(p, eff, B, false)
			if c == 1 {
				acc1 = a
			}
			if c == 8 {
				acc8 = a
			}
		}
	}
	b.ReportMetric(acc1, "acc-1gpu")
	b.ReportMetric(acc8, "acc-8gpu")
}

// --- Figure 6: online progress prediction ---

func BenchmarkFig06OnlinePredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig6")
	}
}

// --- Table 2: workload generation ---

func BenchmarkTable2TraceGeneration(b *testing.B) {
	cfg := workload.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 13/14: loss under abrupt vs gradual rescaling ---

func BenchmarkFig13AbruptRescale(b *testing.B) {
	var spike float64
	for i := 0; i < b.N; i++ {
		tr, err := perfmodel.NewTrainer(perfmodel.CIFARResNet50(), 40000, 256, true)
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 30; e++ {
			tr.AdvanceEpoch()
		}
		before := tr.Loss()
		tr.SetBatch(4096)
		spike = tr.Loss() - before
	}
	b.ReportMetric(spike, "loss-spike")
}

func BenchmarkFig14GradualRescale(b *testing.B) {
	var spike float64
	for i := 0; i < b.N; i++ {
		tr, err := perfmodel.NewTrainer(perfmodel.CIFARResNet50(), 40000, 256, true)
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 30; e++ {
			tr.AdvanceEpoch()
		}
		before := tr.Loss()
		tr.SetBatch(1024)
		for e := 0; e < 30; e++ {
			tr.AdvanceEpoch()
		}
		tr.SetBatch(4096)
		if d := tr.Loss() - before; d > spike {
			spike = d
		}
	}
	b.ReportMetric(spike, "loss-spike")
}

// --- Figure 15 / Table 4: the headline comparison ---

// fig15Once caches one quick comparison so Table 4 and the distribution
// benches don't re-run the simulations inside the timed loop.
var fig15Once struct {
	sync.Once
	results []*simulator.Result
	err     error
}

func fig15Results(b *testing.B) []*simulator.Result {
	fig15Once.Do(func() {
		r := engine.NewRunner(engine.QuickParams())
		fig15Once.results, fig15Once.err = r.Compare(context.Background(), 0, engine.PaperSchedulers())
	})
	if fig15Once.err != nil {
		b.Fatal(fig15Once.err)
	}
	return fig15Once.results
}

func BenchmarkFig15SchedulerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := engine.NewRunner(engine.QuickParams())
		results, err := r.Compare(context.Background(), 0, engine.PaperSchedulers())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Scheduler {
			case "ONES":
				b.ReportMetric(r.MeanJCT(), "ones-jct-s")
			case "Tiresias":
				b.ReportMetric(r.MeanJCT(), "tiresias-jct-s")
			case "DRL":
				b.ReportMetric(r.MeanJCT(), "drl-jct-s")
			case "Optimus":
				b.ReportMetric(r.MeanJCT(), "optimus-jct-s")
			}
		}
	}
}

func BenchmarkTable4Wilcoxon(b *testing.B) {
	results := fig15Results(b)
	var ones, base []float64
	for _, r := range results {
		if r.Scheduler == "ONES" {
			ones = r.JCTs()
		}
		if r.Scheduler == "Tiresias" {
			base = r.JCTs()
		}
	}
	b.ResetTimer()
	var p float64
	for i := 0; i < b.N; i++ {
		res, err := stats.Wilcoxon(ones, base, stats.TwoSided)
		if err != nil {
			b.Fatal(err)
		}
		p = res.P
	}
	b.ReportMetric(p, "p-two-sided")
}

// --- Figure 16: live scaling overheads ---

func benchRescale(b *testing.B, viaCheckpoint bool) {
	spec := runtime.Spec{
		Name:        "bench",
		ParamCount:  1 << 18,
		GlobalBatch: 256,
		LR:          0.05,
		Momentum:    0.9,
		DatasetSize: 1 << 18,
	}
	var total float64
	for i := 0; i < b.N; i++ {
		j, err := runtime.Start(spec, 2)
		if err != nil {
			b.Fatal(err)
		}
		var secs float64
		if viaCheckpoint {
			d, err := j.RescaleCheckpoint(4, 512)
			if err != nil {
				b.Fatal(err)
			}
			secs = d.Seconds()
		} else {
			d, err := j.RescaleElastic(4, 512)
			if err != nil {
				b.Fatal(err)
			}
			secs = d.Seconds()
		}
		total += secs
		j.Stop()
	}
	b.ReportMetric(total/float64(b.N)*1000, "interrupt-ms")
}

func BenchmarkFig16ElasticScaling(b *testing.B)    { benchRescale(b, false) }
func BenchmarkFig16CheckpointScaling(b *testing.B) { benchRescale(b, true) }

// --- Figures 17/18: scalability sweep ---

func BenchmarkFig17Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := engine.QuickParams()
		p.Capacities = []int{16, 64}
		r := engine.NewRunner(p)
		// Warm the whole sweep in one batch; the per-capacity reads
		// below are cache hits.
		if _, err := r.Results(context.Background(), engine.SweepCells(engine.PaperSchedulers(), p.Capacities)); err != nil {
			b.Fatal(err)
		}
		for _, capGPUs := range p.Capacities {
			results, err := r.Compare(context.Background(), capGPUs, engine.PaperSchedulers())
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Scheduler == "ONES" {
					if capGPUs == 16 {
						b.ReportMetric(res.MeanJCT(), "ones-16gpu-jct-s")
					} else {
						b.ReportMetric(res.MeanJCT(), "ones-64gpu-jct-s")
					}
				}
			}
		}
	}
}

// --- Scenario sweep: robustness under changing worlds ---

func BenchmarkScenarioNodeFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := engine.NewRunner(engine.QuickParams())
		res, err := r.Result(context.Background(), engine.Cell{Scheduler: "ones", Scenario: "node-failure"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanJCT(), "ones-jct-s")
		b.ReportMetric(float64(res.Evictions), "evictions")
	}
}

func BenchmarkScenarioBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := engine.NewRunner(engine.QuickParams())
		res, err := r.Result(context.Background(), engine.Cell{Scheduler: "ones", Scenario: "burst"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanJCT(), "ones-jct-s")
	}
}

// --- Engine: worker-pool scaling on the full sweep ---

func benchEngineSweep(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		p := engine.QuickParams()
		p.Workers = workers
		r := engine.NewRunner(p)
		cells := engine.SweepCells(engine.PaperSchedulers(), p.Capacities)
		if _, err := r.Results(context.Background(), cells); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSweepSerial(b *testing.B)   { benchEngineSweep(b, 1) }
func BenchmarkEngineSweepParallel(b *testing.B) { benchEngineSweep(b, 0) }

// --- Evolution hot path: the headline perf benchmark ---

// BenchmarkEvolution500Jobs is the headline wall-time benchmark for the
// evolution hot path: one full ONES simulation of a 500-job trace on a
// 32-GPU cluster. Nearly all of its time is spent inside
// evolution.Engine.Iterate (candidate generation + SRUF scoring), so its
// ns/op tracks the optimizations guarded by BENCH_6.json: the throughput
// memo, one-pass genome aggregation, pooled clones and the flat event
// queue.
func BenchmarkEvolution500Jobs(b *testing.B) {
	cfg := workload.Config{Seed: 6, NumJobs: 500, MeanInterarrival: 12, MaxReqGPUs: 8}
	tr, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var jct float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := schedulers.NewONES(6, cfg.ArrivalRate())
		o.PopulationSize = 16
		scfg := simulator.DefaultConfig(tr)
		scfg.Topo = cluster.Uniform(8, 4)
		res, err := simulator.Run(scfg, o)
		if err != nil {
			b.Fatal(err)
		}
		jct = res.MeanJCT()
	}
	b.ReportMetric(jct, "ones-jct-s")
}

// --- Ablations of ONES's design choices ---

func ablationTrace(b *testing.B) (*workload.Trace, workload.Config) {
	cfg := workload.Config{Seed: 9, NumJobs: 30, MeanInterarrival: 12, MaxReqGPUs: 8}
	tr, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tr, cfg
}

func runAblation(b *testing.B, mutate func(*schedulers.ONES)) float64 {
	tr, wcfg := ablationTrace(b)
	o := schedulers.NewONES(9, wcfg.ArrivalRate())
	o.PopulationSize = 10
	if mutate != nil {
		mutate(o)
	}
	cfg := simulator.DefaultConfig(tr)
	cfg.Topo = cluster.Uniform(8, 4)
	res, err := simulator.Run(cfg, o)
	if err != nil {
		b.Fatal(err)
	}
	return res.MeanJCT()
}

func BenchmarkAblationGreedyVsEvolution(b *testing.B) {
	// Degenerate the evolution to a single greedily-refreshed schedule
	// (population 1, no mutation) and compare with the full search.
	var full, greedy float64
	for i := 0; i < b.N; i++ {
		full = runAblation(b, nil)
		greedy = runAblation(b, func(o *schedulers.ONES) {
			o.PopulationSize = 1
			o.MutationRate = 0
		})
	}
	b.ReportMetric(full, "evolution-jct-s")
	b.ReportMetric(greedy, "greedy-jct-s")
}

func BenchmarkAblationSamplingVsMean(b *testing.B) {
	var sampled, mean float64
	for i := 0; i < b.N; i++ {
		sampled = runAblation(b, nil)
		mean = runAblation(b, func(o *schedulers.ONES) { o.DisableSampling = true })
	}
	b.ReportMetric(sampled, "sampled-jct-s")
	b.ReportMetric(mean, "mean-scored-jct-s")
}

func BenchmarkAblationReorder(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = runAblation(b, nil)
		without = runAblation(b, func(o *schedulers.ONES) { o.DisableReorder = true })
	}
	b.ReportMetric(with, "reorder-jct-s")
	b.ReportMetric(without, "no-reorder-jct-s")
}

func BenchmarkAblationConvoyPenalty(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = runAblation(b, nil)
		without = runAblation(b, func(o *schedulers.ONES) { o.DisableScaleDown = true })
	}
	b.ReportMetric(with, "convoy-penalty-jct-s")
	b.ReportMetric(without, "no-penalty-jct-s")
}

func BenchmarkAblationPopulationSize(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = runAblation(b, func(o *schedulers.ONES) { o.PopulationSize = 4 })
		large = runAblation(b, func(o *schedulers.ONES) { o.PopulationSize = 20 })
	}
	b.ReportMetric(small, "pop4-jct-s")
	b.ReportMetric(large, "pop20-jct-s")
}
