// Package repro is a from-scratch Go reproduction of "Online Evolutionary
// Batch Size Orchestration for Scheduling Deep Learning Workloads in GPU
// Clusters" (ONES, SC '21).
//
// The paper's scheduler — an online evolutionary search over per-GPU
// batch-size genomes, steered by a Beta-regression progress predictor and
// executed through checkpoint-free elastic batch scaling — lives under
// internal/, together with every substrate it needs: a schedule-genome
// cluster model, an analytic DL performance model, a Table 2 workload
// generator, a discrete-event cluster simulator, the DRL/Tiresias/Optimus
// baselines, a live goroutine mini-cluster with a real ring all-reduce,
// and the statistics of the paper's evaluation. The evaluation itself
// runs through internal/engine — a parallel experiment engine whose
// registry names every figure/table and whose sharded runner fans
// independent simulation cells across a cached worker pool.
//
// Other programs embed the system through pkg/ones, the public SDK:
// context-aware sessions built from functional options, streaming
// progress observers, typed sentinel errors and a stable Result view.
// Every command and example below drives pkg/ones only.
//
// Entry points:
//
//	pkg/ones         — the public SDK (start here)
//	cmd/onesim       — run one simulation (-json for scripting)
//	cmd/tracegen     — generate workload traces
//	cmd/experiments  — regenerate every table and figure
//	examples/        — runnable SDK walkthroughs
//
// The benchmarks in bench_test.go regenerate each experiment through the
// testing harness; see DESIGN.md for the experiment-to-module index and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
