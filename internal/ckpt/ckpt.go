// Package ckpt implements checkpoint-based job state persistence — the
// conventional mechanism ONES's elastic scaling replaces. A checkpoint
// captures the full training state (parameters, optimizer momentum, step
// counter, batch size) with gob; restoring rebuilds it from scratch. The
// Figure 16 overhead comparison pits this save/stop/restart/reload path
// against the checkpoint-free protocol in internal/runtime.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// State is the serializable training state of one job.
type State struct {
	Name     string
	Step     int64
	Batch    int
	Params   []float32
	Momentum []float32
}

// Validate reports structural problems.
func (s *State) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("ckpt: empty parameter tensor")
	}
	if len(s.Momentum) != 0 && len(s.Momentum) != len(s.Params) {
		return fmt.Errorf("ckpt: momentum length %d != params %d", len(s.Momentum), len(s.Params))
	}
	if s.Batch < 0 || s.Step < 0 {
		return fmt.Errorf("ckpt: negative step/batch")
	}
	return nil
}

// Write serializes the state to w.
func Write(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("ckpt: encoding: %w", err)
	}
	return nil
}

// Read deserializes a state from r.
func Read(r io.Reader) (*State, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ckpt: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode serializes to a fresh byte buffer.
func Encode(s *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes from bytes.
func Decode(data []byte) (*State, error) { return Read(bytes.NewReader(data)) }
