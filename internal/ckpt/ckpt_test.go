package ckpt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *State {
	return &State{
		Name:     "resnet50",
		Step:     1234,
		Batch:    512,
		Params:   []float32{1, 2, 3, 4},
		Momentum: []float32{0.1, 0.2, 0.3, 0.4},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Step != s.Step || back.Batch != s.Batch {
		t.Errorf("metadata changed: %+v", back)
	}
	for i := range s.Params {
		if back.Params[i] != s.Params[i] || back.Momentum[i] != s.Momentum[i] {
			t.Fatalf("tensor %d changed", i)
		}
	}
}

func TestWriteReadStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadStates(t *testing.T) {
	cases := []*State{
		{Name: "x", Params: nil},
		{Name: "x", Params: []float32{1}, Momentum: []float32{1, 2}},
		{Name: "x", Params: []float32{1}, Step: -1},
		{Name: "x", Params: []float32{1}, Batch: -2},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
		if _, err := Encode(s); err == nil {
			t.Errorf("case %d encoded", i)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a gob")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty blob decoded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(step int64, batch uint16, params []float32) bool {
		if len(params) == 0 {
			return true
		}
		if step < 0 {
			step = -step
		}
		s := &State{Name: "p", Step: step, Batch: int(batch), Params: params}
		blob, err := Encode(s)
		if err != nil {
			return false
		}
		back, err := Decode(blob)
		if err != nil {
			return false
		}
		if back.Step != s.Step || back.Batch != s.Batch || len(back.Params) != len(params) {
			return false
		}
		for i := range params {
			// NaN never round-trips as equal; normalize the comparison.
			if back.Params[i] != params[i] && !(params[i] != params[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
