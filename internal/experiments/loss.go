package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/perfmodel"
)

// fig13 regenerates Figure 13: abrupt 256→4096 rescale at epoch 30.
var fig13 = engine.Experiment{
	Name:  "fig13",
	Title: "loss under an abrupt 256→4096 batch rescale",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		return lossCurve("Figure 13 — loss under abrupt rescale 256→4096 at epoch 30",
			map[int]int{30: 4096})
	},
}

// fig14 regenerates Figure 14: gradual 256→1024→4096 rescale.
var fig14 = engine.Experiment{
	Name:  "fig14",
	Title: "loss under a gradual 256→1024→4096 batch rescale",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		return lossCurve("Figure 14 — loss under gradual rescale 256→1024→4096",
			map[int]int{30: 1024, 60: 4096})
	},
}

// lossCurve trains ResNet50/CIFAR10 for 90 epochs applying the given
// epoch→batch rescales, against a fixed-batch control run.
func lossCurve(title string, rescale map[int]int) (string, error) {
	p := perfmodel.CIFARResNet50()
	scaled, err := perfmodel.NewTrainer(p, 40000, 256, true)
	if err != nil {
		return "", err
	}
	fixed, err := perfmodel.NewTrainer(p, 40000, 256, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "epoch", "scaled batch", "fixed batch")
	for e := 1; e <= 90; e++ {
		if nb, ok := rescale[e]; ok {
			scaled.SetBatch(nb)
		}
		scaled.AdvanceEpoch()
		fixed.AdvanceEpoch()
		if e%3 == 0 || e == 1 {
			fmt.Fprintf(&b, "%8d %14.4f %14.4f\n", e, scaled.Loss(), fixed.Loss())
		}
	}
	return b.String(), nil
}
