package experiments

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
)

func quickRunner() *engine.Runner { return engine.NewRunner(engine.QuickParams()) }

func runExp(t *testing.T, r *engine.Runner, name string) string {
	t.Helper()
	e, ok := engine.LookupExperiment(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	out, err := e.Run(context.Background(), r)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

// TestByteIdenticalOutputAcrossWorkerCounts is the engine's determinism
// contract: the same master seed renders byte-identical experiment text
// at worker counts 1, 4 and GOMAXPROCS.
func TestByteIdenticalOutputAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the evolutionary comparison three times")
	}
	render := func(workers int) string {
		p := engine.QuickParams()
		p.Jobs = 12
		p.Population = 6
		p.Capacities = []int{16, 32}
		p.Workers = workers
		r := engine.NewRunner(p)
		var b strings.Builder
		for _, name := range []string{"fig15", "table4", "fig17", "fig18"} {
			b.WriteString(runExp(t, r, name))
		}
		return b.String()
	}
	baseline := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != baseline {
			t.Errorf("workers=%d: output differs from workers=1\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, baseline, workers, got)
		}
	}
}

func TestRegistryHasEveryPaperExperiment(t *testing.T) {
	want := []string{"fig2", "fig3", "fig6", "table2", "table3", "fig13", "fig14",
		"fig15", "table4", "fig16", "fig17", "fig18", "scenario", "hetero", "reactive"}
	got := engine.ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments %v, want %d", len(got), got, len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("registration order[%d] = %q, want %q", i, got[i], name)
		}
		e, ok := engine.LookupExperiment(name)
		if !ok || e.Title == "" {
			t.Errorf("%s: missing or untitled", name)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	out := runExp(t, quickRunner(), "fig2")
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "elastic") {
		t.Errorf("Fig2 output malformed:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 9 {
		t.Errorf("Fig2 has %d lines, want 8 worker rows", got)
	}
}

func TestFig3Shape(t *testing.T) {
	out := runExp(t, quickRunner(), "fig3")
	if !strings.Contains(out, "8 GPUs") {
		t.Errorf("Fig3 output malformed:\n%s", out)
	}
}

func TestFig6Runs(t *testing.T) {
	out := runExp(t, quickRunner(), "fig6")
	if !strings.Contains(out, "ci90-lo") {
		t.Errorf("Fig6 missing CI columns:\n%s", out)
	}
	if strings.Count(out, "\n") < 8 {
		t.Errorf("Fig6 too few prediction rows:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	r := quickRunner()
	t2 := runExp(t, r, "table2")
	if strings.Count(t2, "\n") < 52 { // header + 50 rows
		t.Errorf("Table2 should list 50 tasks:\n%s", t2)
	}
	t3 := runExp(t, r, "table3")
	for _, name := range []string{"ONES", "DRL", "Tiresias", "Optimus"} {
		if !strings.Contains(t3, name) {
			t.Errorf("Table3 missing %s", name)
		}
	}
}

func TestFig13And14(t *testing.T) {
	r := quickRunner()
	f13 := runExp(t, r, "fig13")
	f14 := runExp(t, r, "fig14")
	if !strings.Contains(f13, "abrupt") || !strings.Contains(f14, "gradual") {
		t.Error("loss-curve titles wrong")
	}
}

func TestFig16QuickScale(t *testing.T) {
	rows, err := Fig16Rows(engine.QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Fig16 rows = %d, want 7 models", len(rows))
	}
	for _, r := range rows {
		if r.ElasticMeasured <= 0 || r.CheckpointMeasured <= 0 {
			t.Errorf("%s: nonpositive measured overheads %+v", r.Model, r)
		}
		if r.CheckpointPaper < 5*r.ElasticPaper {
			t.Errorf("%s: calibrated checkpoint should dwarf elastic: %+v", r.Model, r)
		}
	}
	out := runExp(t, quickRunner(), "fig16")
	if !strings.Contains(out, "vgg16") {
		t.Errorf("Fig16 render missing models:\n%s", out)
	}
}

func TestScenarioSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the evolutionary scheduler across five scenarios")
	}
	p := engine.QuickParams()
	p.Jobs = 12
	p.Population = 6
	r := engine.NewRunner(p)
	out := runExp(t, r, "scenario")
	for _, want := range []string{"Scenario sweep", "steady", "diurnal", "burst",
		"spot", "node-failure", "evictions", "makespan", "ONES", "Tiresias"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario sweep output missing %q:\n%s", want, out)
		}
	}
	// The pure-capacity scenarios must share the steady trace: 5
	// scenarios but only 3 distinct arrival processes.
	if got := r.CachedTraces(); got != 3 {
		t.Errorf("CachedTraces = %d, want 3 (steady/spot/node-failure share one)", got)
	}
}

func TestFullPipelineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick evolutionary comparison")
	}
	r := quickRunner()
	// Prewarm the declared cells exactly as cmd/experiments does, then
	// render: every simulation below must be a cache hit.
	var exps []engine.Experiment
	for _, name := range []string{"fig15", "table4", "fig17", "fig18"} {
		e, ok := engine.LookupExperiment(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		exps = append(exps, e)
	}
	cells := engine.DeclaredCells(exps, r.Params())
	if _, err := r.Results(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	warmed := r.CachedCells()
	// 4 schedulers × capacities {16, 64}; the fig15 cells coincide with
	// the 64-GPU sweep column.
	if want := 4 * len(r.Params().Capacities); warmed != want {
		t.Errorf("prewarm ran %d cells, want %d (fig15/fig17 should share the 64-GPU runs)", warmed, want)
	}

	f15 := runExp(t, r, "fig15")
	for _, want := range []string{"Figure 15a", "cumulative frequency", "within 200 s"} {
		if !strings.Contains(f15, want) {
			t.Errorf("Fig15 output missing %q", want)
		}
	}
	t4 := runExp(t, r, "table4")
	if !strings.Contains(t4, "vs. ") {
		t.Errorf("Table4 malformed:\n%s", t4)
	}
	f17 := runExp(t, r, "fig17")
	f18 := runExp(t, r, "fig18")
	if !strings.Contains(f17, "GPUs") || !strings.Contains(f18, "1.00") {
		t.Errorf("scalability outputs malformed:\n%s\n%s", f17, f18)
	}
	if r.CachedCells() != warmed {
		t.Errorf("rendering ran %d extra cells past the prewarm", r.CachedCells()-warmed)
	}
}

// TestReactiveShape: the reactive sweep renders both scenarios, all four
// policy rows, and at least one cell where the closed loop actually
// scaled the fleet.
func TestReactiveShape(t *testing.T) {
	out := runExp(t, quickRunner(), "reactive")
	for _, want := range []string{"scenario diurnal", "scenario burst",
		"fixed-fleet", "conservative", "aggressive", "emergency", "scale up/dn"} {
		if !strings.Contains(out, want) {
			t.Errorf("reactive output missing %q:\n%s", want, out)
		}
	}
	// Every fixed-fleet row is 0/0; some reactive cell must not be.
	if got := strings.Count(out, " 0/0"); got >= 8*len(engine.PaperSchedulers()) {
		t.Errorf("no cell reports scale activity:\n%s", out)
	}
}
