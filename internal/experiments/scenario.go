package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/simulator"
)

// sweepScenarios are the rows of the scenario-sweep table: the paper's
// steady testbed plus the world changes a production cluster actually
// sees — shifting load, spot reclaims and node failures.
func sweepScenarios() []string {
	return []string{
		scenario.Steady,
		scenario.Diurnal,
		scenario.Burst,
		scenario.Spot,
		scenario.NodeFailure,
	}
}

func scenarioCells(p engine.Params) []engine.Cell {
	return engine.ScenarioCells(engine.PaperSchedulers(), sweepScenarios(), 0)
}

// scenarioSweep extends the evaluation past the paper's fixed 64-GPU
// world: every scheduler replays the trace while the scenario perturbs
// arrivals and capacity. The steady row doubles as the Figure 15 runs
// (same cells, shared cache), so the table reads as "and here is what
// happens to those numbers when the world misbehaves".
var scenarioSweep = engine.Experiment{
	Name:  "scenario",
	Title: "scheduler robustness under elastic capacity, failures and shifting load",
	Cells: scenarioCells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		scheds := engine.PaperSchedulers()
		scenarios := sweepScenarios()
		// Same helper as the Cells declaration: the scenario-major layout
		// below must match the cells the driver prewarmed.
		flat, err := r.Results(ctx, scenarioCells(r.Params()))
		if err != nil {
			return "", err
		}
		byScenario := make(map[string][]*simulator.Result, len(scenarios))
		for i, name := range scenarios {
			byScenario[name] = flat[i*len(scheds) : (i+1)*len(scheds)]
		}

		var b strings.Builder
		b.WriteString("Scenario sweep — schedulers under changing worlds (64 GPUs initially)\n")
		header := func(metric string) {
			fmt.Fprintf(&b, "\n%s\n%-14s", metric, "scenario")
			for _, res := range byScenario[scenarios[0]] {
				fmt.Fprintf(&b, " %12s", res.Scheduler)
			}
			b.WriteByte('\n')
		}
		row := func(name string, f func(res *simulator.Result) string) {
			fmt.Fprintf(&b, "%-14s", name)
			for _, res := range byScenario[name] {
				fmt.Fprintf(&b, " %12s", f(res))
			}
			b.WriteByte('\n')
		}
		header("average JCT (s; * = truncated run, unfinished jobs excluded)")
		for _, name := range scenarios {
			row(name, func(res *simulator.Result) string {
				mark := ""
				if res.Truncated {
					mark = "*"
				}
				return fmt.Sprintf("%.1f%s", res.MeanJCT(), mark)
			})
		}
		header("makespan (s)")
		for _, name := range scenarios {
			row(name, func(res *simulator.Result) string {
				return fmt.Sprintf("%.0f", res.Makespan)
			})
		}
		header("evictions (jobs forced off GPUs by server losses)")
		for _, name := range scenarios {
			row(name, func(res *simulator.Result) string {
				return fmt.Sprintf("%d", res.Evictions)
			})
		}
		header("utilization (busy / available GPU-seconds)")
		for _, name := range scenarios {
			row(name, func(res *simulator.Result) string {
				return fmt.Sprintf("%.2f", res.Utilization())
			})
		}
		b.WriteString("\n(scenarios sharing an arrival process replay the identical trace;\n")
		b.WriteString(" capacity timelines are seeded per scenario, identical across schedulers)\n")
		return b.String(), nil
	},
}
