package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/scaling"
)

// Fig16Row is one model's measured and calibrated scaling overheads.
type Fig16Row struct {
	Model              string
	ElasticMeasured    float64 // seconds, live mini-cluster
	CheckpointMeasured float64 // seconds, live mini-cluster
	ElasticPaper       float64 // seconds, calibrated cost model
	CheckpointPaper    float64 // seconds, calibrated cost model
}

// fig16 measures the scaling overheads on the live runtime for each model
// in the paper's Figure 16, alongside the cost model calibrated to the
// paper's testbed magnitudes. Note: the "live" columns are wall-clock
// measurements of the goroutine mini-cluster, so — unlike every other
// experiment — their digits vary run to run.
var fig16 = engine.Experiment{
	Name:  "fig16",
	Title: "live scaling overhead: elastic vs checkpoint-based (measured)",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		rows, err := Fig16Rows(r.Params())
		if err != nil {
			return "", err
		}
		scale := paramScale(r.Params())
		var b strings.Builder
		b.WriteString("Figure 16 — batch-size scaling overhead: elastic vs checkpoint-based (s)\n")
		fmt.Fprintf(&b, "%-12s %16s %16s %14s %14s\n",
			"model", "elastic (live)", "ckpt (live)", "elastic (cal)", "ckpt (cal)")
		for _, row := range rows {
			fmt.Fprintf(&b, "%-12s %16.4f %16.4f %14.2f %14.2f\n",
				row.Model, row.ElasticMeasured, row.CheckpointMeasured, row.ElasticPaper, row.CheckpointPaper)
		}
		b.WriteString("(live columns: measured on the goroutine mini-cluster with models scaled down\n")
		fmt.Fprintf(&b, " by %dx; calibrated columns: cost model matching the paper's V100 testbed)\n", scale)
		return b.String(), nil
	},
}

func paramScale(p engine.Params) int {
	if p.ParamScale <= 0 {
		return 50
	}
	return p.ParamScale
}

// Fig16Rows measures one 2→4 rescale per model, elastic and
// checkpoint-based, on the live goroutine runtime.
func Fig16Rows(p engine.Params) ([]Fig16Row, error) {
	models := []string{"alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "lstm"}
	cm := scaling.DefaultCostModel()
	scale := paramScale(p)
	rows := make([]Fig16Row, 0, len(models))
	for _, name := range models {
		prof, err := perfmodel.ByName(name)
		if err != nil {
			return nil, err
		}
		params := int(prof.GradBytes/4) / scale
		if params < 1024 {
			params = 1024
		}
		spec := runtime.Spec{
			Name:        name,
			ParamCount:  params,
			GlobalBatch: 256,
			LR:          0.05,
			Momentum:    0.9,
			DatasetSize: 1 << 18,
		}
		elastic, err := measureRescale(spec, false)
		if err != nil {
			return nil, err
		}
		checkpoint, err := measureRescale(spec, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig16Row{
			Model:              name,
			ElasticMeasured:    elastic,
			CheckpointMeasured: checkpoint,
			ElasticPaper:       cm.Elastic(prof, 2, 4),
			CheckpointPaper:    cm.Checkpoint(prof),
		})
	}
	return rows, nil
}

// measureRescale times one 2→4 worker rescale on the live runtime.
func measureRescale(spec runtime.Spec, viaCheckpoint bool) (float64, error) {
	j, err := runtime.Start(spec, 2)
	if err != nil {
		return 0, err
	}
	defer j.Stop()
	if viaCheckpoint {
		d, err := j.RescaleCheckpoint(4, 2*spec.GlobalBatch)
		return d.Seconds(), err
	}
	d, err := j.RescaleElastic(4, 2*spec.GlobalBatch)
	return d.Seconds(), err
}
