package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/simulator"
)

// reactiveAutoscalers are the controller rows of the reactive sweep: the
// controller-free baseline and the three built-in policies in rising
// order of aggressiveness.
func reactiveAutoscalers() []string {
	return []string{"", "reactive-conservative", "reactive-aggressive", "reactive-emergency"}
}

// reactiveScenarios drives the closed loop with the two arrival shapes
// that reward elasticity: a slow diurnal wave and a sharp burst.
func reactiveScenarios() []string {
	return []string{"diurnal", "burst"}
}

// reactiveCapacity deliberately undersizes the cluster (16 GPUs against
// the paper's 64) so arrival peaks overload it: a fixed fleet queues,
// a reactive controller grows through the peak and shrinks after it.
const reactiveCapacity = 16

func reactiveCells(p engine.Params) []engine.Cell {
	return engine.AutoscalerCells(engine.PaperSchedulers(), reactiveAutoscalers(), reactiveScenarios(), reactiveCapacity)
}

// reactive sweeps autoscaler aggressiveness against the scheduler
// lineup: every cell replays the identical trace on the identical tight
// cluster, with capacity driven only by the closed analyzer → decision →
// scaler loop. It answers what the paper's fixed testbed cannot: how
// much of the queueing pain is fleet size rather than scheduling, and
// whether the scheduler ranking survives an elastic fleet.
var reactive = engine.Experiment{
	Name:  "reactive",
	Title: "closed-loop reactive autoscaling: policy aggressiveness × scheduler",
	Cells: reactiveCells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		scheds := engine.PaperSchedulers()
		autoscalers := reactiveAutoscalers()
		scenarios := reactiveScenarios()
		flat, err := r.Results(ctx, reactiveCells(r.Params()))
		if err != nil {
			return "", err
		}
		// flat is scenario-major, then autoscaler, then scheduler.
		resultAt := func(scn, as, sched int) *simulator.Result {
			return flat[scn*len(autoscalers)*len(scheds)+as*len(scheds)+sched]
		}
		label := func(as string) string {
			if as == "" {
				return "fixed-fleet"
			}
			return strings.TrimPrefix(as, "reactive-")
		}

		var b strings.Builder
		fmt.Fprintf(&b, "Reactive autoscaling sweep — %d-GPU cluster, capacity driven by the closed loop\n", reactiveCapacity)
		for ci, scn := range scenarios {
			fmt.Fprintf(&b, "\nscenario %s\n", scn)
			fmt.Fprintf(&b, "%-14s %-12s", "autoscaler", "metric")
			for _, res := range flat[:len(scheds)] {
				fmt.Fprintf(&b, " %12s", res.Scheduler)
			}
			b.WriteByte('\n')
			for ai, as := range autoscalers {
				row := func(metric string, f func(res *simulator.Result) string) {
					fmt.Fprintf(&b, "%-14s %-12s", label(as), metric)
					for k := range scheds {
						fmt.Fprintf(&b, " %12s", f(resultAt(ci, ai, k)))
					}
					b.WriteByte('\n')
				}
				row("avg JCT (s)", func(res *simulator.Result) string {
					mark := ""
					if res.Truncated {
						mark = "*"
					}
					return fmt.Sprintf("%.1f%s", res.MeanJCT(), mark)
				})
				row("scale up/dn", func(res *simulator.Result) string {
					return fmt.Sprintf("%d/%d", res.ScaleUps, res.ScaleDowns)
				})
				row("util", func(res *simulator.Result) string {
					return fmt.Sprintf("%.2f", res.Utilization())
				})
			}
		}
		b.WriteString("\n(* = truncated run, unfinished jobs excluded. All cells replay the\n")
		b.WriteString(" identical trace; \"fixed-fleet\" is the controller-free baseline.\n")
		b.WriteString(" scale up/dn counts the controller's applied grow/shrink events.)\n")
		return b.String(), nil
	},
}
