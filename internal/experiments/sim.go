package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// fig15Cells are the headline-comparison runs: every paper scheduler on
// the default 64-GPU trace (capacity 0 ⇒ the Longhorn testbed).
func fig15Cells(p engine.Params) []engine.Cell {
	return engine.ComparisonCells(engine.PaperSchedulers(), 0)
}

// sweepCells are the capacity-sweep runs of Figures 17/18. The 64-GPU
// column is the same cell set as Figure 15, so the cache runs it once.
func sweepCells(p engine.Params) []engine.Cell {
	return engine.SweepCells(engine.PaperSchedulers(), p.Capacities)
}

// fig15 renders all nine panels of Figure 15 as text.
var fig15 = engine.Experiment{
	Name:  "fig15",
	Title: "head-to-head scheduler comparison on the 64-GPU trace",
	Cells: fig15Cells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		results, err := r.Compare(ctx, 0, engine.PaperSchedulers())
		if err != nil {
			return "", err
		}
		sums := make([]metrics.Summary, len(results))
		for i, res := range results {
			sums[i] = metrics.Summarize(res)
		}
		metrics.SortSummaries(sums)
		var b strings.Builder
		b.WriteString("Figure 15a–c — average completion / execution / queuing time\n")
		b.WriteString(metrics.ComparisonTable(sums))
		b.WriteByte('\n')
		for _, m := range []metrics.Metric{metrics.JCT, metrics.Exec, metrics.Queue} {
			b.WriteString("Figure 15d–f — ")
			b.WriteString(metrics.BoxTable(results, m))
			b.WriteByte('\n')
		}
		for _, m := range []metrics.Metric{metrics.JCT, metrics.Exec, metrics.Queue} {
			fmt.Fprintf(&b, "Figure 15g–i — cumulative frequency of %s\n", m)
			b.WriteString(metrics.RenderCF(metrics.CFCurves(results, m, r.Params().CFPoints)))
			b.WriteByte('\n')
		}
		// The paper's headline observation on the JCT distribution.
		for _, res := range results {
			fmt.Fprintf(&b, "fraction of jobs completed within 200 s (%s): %.0f%%\n",
				res.Scheduler, 100*metrics.FractionWithin(res, metrics.JCT, 200))
		}
		return b.String(), nil
	},
}

// table4 runs the Wilcoxon significance tests of ONES against each
// baseline on the paired per-job JCTs from the Figure 15 runs.
var table4 = engine.Experiment{
	Name:  "table4",
	Title: "Wilcoxon significance tests on the paired Figure 15 JCTs",
	Cells: fig15Cells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		results, err := r.Compare(ctx, 0, engine.PaperSchedulers())
		if err != nil {
			return "", err
		}
		var ones *simulator.Result
		for _, res := range results {
			if res.Scheduler == "ONES" {
				ones = res
			}
		}
		if ones == nil {
			return "", fmt.Errorf("experiments: Figure 15 runs missing ONES")
		}
		var b strings.Builder
		b.WriteString("Table 4 — Wilcoxon significance tests on per-job JCT\n")
		fmt.Fprintf(&b, "%-14s %18s %26s\n", "comparison", "p (two-sided)", "p (one-sided negative)")
		for _, res := range results {
			if res.Scheduler == "ONES" {
				continue
			}
			two, err := stats.Wilcoxon(ones.JCTs(), res.JCTs(), stats.TwoSided)
			if err != nil {
				return "", err
			}
			neg, err := stats.Wilcoxon(ones.JCTs(), res.JCTs(), stats.Greater)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "vs. %-10s %18.3g %26.5f\n", res.Scheduler, two.P, neg.P)
		}
		b.WriteString("(small two-sided p rejects equivalence; one-sided p near 1 accepts \"ONES smaller\")\n")
		return b.String(), nil
	},
}

// sweepResults gathers the capacity sweep, one paired comparison per
// capacity, in Params.Capacities order. Every cell of the sweep is
// issued in a single batch — no barrier between capacities — so a
// non-prewarmed caller still overlaps all independent runs.
func sweepResults(ctx context.Context, r *engine.Runner) (map[int][]*simulator.Result, error) {
	caps := r.Params().Capacities
	scheds := engine.PaperSchedulers()
	var cells []engine.Cell
	for _, capGPUs := range caps {
		cells = append(cells, engine.ComparisonCells(scheds, capGPUs)...)
	}
	flat, err := r.Results(ctx, cells)
	if err != nil {
		return nil, err
	}
	byCap := make(map[int][]*simulator.Result, len(caps))
	for i, capGPUs := range caps {
		byCap[capGPUs] = flat[i*len(scheds) : (i+1)*len(scheds)]
	}
	return byCap, nil
}

// fig17 renders average JCT vs cluster capacity.
var fig17 = engine.Experiment{
	Name:  "fig17",
	Title: "average JCT vs cluster capacity",
	Cells: sweepCells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		byCap, err := sweepResults(ctx, r)
		if err != nil {
			return "", err
		}
		caps := r.Params().Capacities
		var b strings.Builder
		b.WriteString("Figure 17 — average JCT (s) vs cluster capacity\n")
		fmt.Fprintf(&b, "%8s", "GPUs")
		for _, res := range byCap[caps[0]] {
			fmt.Fprintf(&b, " %10s", res.Scheduler)
		}
		b.WriteByte('\n')
		for _, capGPUs := range caps {
			fmt.Fprintf(&b, "%8d", capGPUs)
			for _, res := range byCap[capGPUs] {
				fmt.Fprintf(&b, " %10.1f", res.MeanJCT())
			}
			b.WriteByte('\n')
		}
		return b.String(), nil
	},
}

// fig18 renders the relative JCT (baseline / ONES) per capacity.
var fig18 = engine.Experiment{
	Name:  "fig18",
	Title: "JCT relative to ONES per capacity",
	Cells: sweepCells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		byCap, err := sweepResults(ctx, r)
		if err != nil {
			return "", err
		}
		caps := r.Params().Capacities
		var b strings.Builder
		b.WriteString("Figure 18 — JCT relative to ONES (lower is better; ONES = 1.00)\n")
		fmt.Fprintf(&b, "%8s", "GPUs")
		for _, res := range byCap[caps[0]] {
			fmt.Fprintf(&b, " %10s", res.Scheduler)
		}
		b.WriteByte('\n')
		for _, capGPUs := range caps {
			results := byCap[capGPUs]
			var ones float64
			for _, res := range results {
				if res.Scheduler == "ONES" {
					ones = res.MeanJCT()
				}
			}
			fmt.Fprintf(&b, "%8d", capGPUs)
			for _, res := range results {
				rel := math.NaN()
				if ones > 0 {
					rel = res.MeanJCT() / ones
				}
				fmt.Fprintf(&b, " %10.2f", rel)
			}
			b.WriteByte('\n')
		}
		return b.String(), nil
	},
}
