// Package experiments defines every figure and table of the paper's
// evaluation as a named engine.Experiment. Importing the package (usually
// for side effects) populates the engine registry; drivers then select
// experiments by name, prewarm their declared simulation cells through a
// parallel engine.Runner, and render them in paper order.
package experiments

import "repro/internal/engine"

// init registers the experiments in paper order — the order `-exp all`
// renders in — followed by the beyond-the-paper extensions.
func init() {
	engine.RegisterExperiment(fig2)
	engine.RegisterExperiment(fig3)
	engine.RegisterExperiment(fig6)
	engine.RegisterExperiment(table2)
	engine.RegisterExperiment(table3)
	engine.RegisterExperiment(fig13)
	engine.RegisterExperiment(fig14)
	engine.RegisterExperiment(fig15)
	engine.RegisterExperiment(table4)
	engine.RegisterExperiment(fig16)
	engine.RegisterExperiment(fig17)
	engine.RegisterExperiment(fig18)
	engine.RegisterExperiment(scenarioSweep)
	engine.RegisterExperiment(hetero)
	engine.RegisterExperiment(reactive)
}
