package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/simulator"
)

// heteroShapes are the cluster rows of the hetero sweep, all replaying
// the identical trace:
//
//   - "16x4": the paper's homogeneous Longhorn testbed — one rack, so a
//     rack drain has nothing separate to take down (control row).
//   - "8x4,8x4": the same 64 GPUs split across two failure domains; a
//     rack drain halves the cluster.
//   - "4x8,2x4": a genuinely mixed fleet — four dense 8-GPU boxes in
//     rack 0 and two small 4-GPU boxes in rack 1 (40 GPUs total).
func heteroShapes() []string {
	return []string{"16x4", "8x4,8x4", "4x8,2x4"}
}

// heteroScenarios pairs the steady world against the rack-drain chaos
// case (rack 1 drains whole at 600 s, powers back at 1800 s).
func heteroScenarios() []string {
	return []string{scenario.Steady, scenario.RackDrain}
}

func heteroCells(p engine.Params) []engine.Cell {
	var cells []engine.Cell
	for _, scn := range heteroScenarios() {
		cells = append(cells, engine.ShapeCells(engine.PaperSchedulers(), heteroShapes(), scn)...)
	}
	return cells
}

// hetero extends the evaluation to heterogeneous fleets: the same trace
// replayed on clusters with per-server GPU shapes and rack-level failure
// domains, with and without a rack drain. It answers two questions the
// paper's homogeneous testbed cannot: does the scheduler ranking survive
// a mixed fleet, and what does losing a whole failure domain cost?
var hetero = engine.Experiment{
	Name:  "hetero",
	Title: "heterogeneous fleets: per-server shapes and rack-drain failure domains",
	Cells: heteroCells,
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		scheds := engine.PaperSchedulers()
		shapes := heteroShapes()
		scenarios := heteroScenarios()
		flat, err := r.Results(ctx, heteroCells(r.Params()))
		if err != nil {
			return "", err
		}
		// flat is scenario-major, then shape-major, then scheduler.
		resultAt := func(scn, shape, sched int) *simulator.Result {
			return flat[scn*len(shapes)*len(scheds)+shape*len(scheds)+sched]
		}

		var b strings.Builder
		b.WriteString("Heterogeneous cluster sweep — per-server shapes and rack failure domains\n")
		for si, shape := range shapes {
			topo, err := cluster.ParseShape(shape)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "\ncluster %s (%d GPUs;", shape, topo.TotalGPUs())
			for _, rc := range topo.RackSummary() {
				fmt.Fprintf(&b, " rack %d: %d srv/%d GPUs", rc.Rack, rc.Servers, rc.GPUs)
			}
			b.WriteString(")\n")
			fmt.Fprintf(&b, "%-12s %-12s", "scenario", "metric")
			for _, res := range flat[:len(scheds)] {
				fmt.Fprintf(&b, " %12s", res.Scheduler)
			}
			b.WriteByte('\n')
			for ci, scn := range scenarios {
				row := func(metric string, f func(res *simulator.Result) string) {
					fmt.Fprintf(&b, "%-12s %-12s", scn, metric)
					for k := range scheds {
						fmt.Fprintf(&b, " %12s", f(resultAt(ci, si, k)))
					}
					b.WriteByte('\n')
				}
				row("avg JCT (s)", func(res *simulator.Result) string {
					mark := ""
					if res.Truncated {
						mark = "*"
					}
					return fmt.Sprintf("%.1f%s", res.MeanJCT(), mark)
				})
				row("evictions", func(res *simulator.Result) string {
					if res.RackDrainEvictions > 0 {
						return fmt.Sprintf("%d (%drk)", res.Evictions, res.RackDrainEvictions)
					}
					return fmt.Sprintf("%d", res.Evictions)
				})
				row("util", func(res *simulator.Result) string {
					return fmt.Sprintf("%.2f", res.Utilization())
				})
			}
		}
		b.WriteString("\n(* = truncated run, unfinished jobs excluded; (Nrk) = N of the\n")
		b.WriteString(" evictions came from rack drains. All cells replay the identical\n")
		b.WriteString(" trace; a single-rack cluster sails through rack-drain unharmed.)\n")
		return b.String(), nil
	},
}
