package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// fig2 regenerates Figure 2: ResNet50/CIFAR10 throughput vs worker count,
// elastic (256 per worker) against a fixed global batch of 256.
var fig2 = engine.Experiment{
	Name:  "fig2",
	Title: "training speed of ResNet50 on CIFAR10, elastic vs fixed batch",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		p := perfmodel.CIFARResNet50()
		net := perfmodel.DefaultNetwork()
		var b strings.Builder
		b.WriteString("Figure 2 — training speed of ResNet50 on CIFAR10 (images/s)\n")
		fmt.Fprintf(&b, "%8s %16s %16s\n", "workers", "elastic batch", "fixed batch=256")
		for c := 1; c <= 8; c++ {
			fmt.Fprintf(&b, "%8d %16.0f %16.0f\n", c,
				perfmodel.PackedThroughput(p, net, 256*c, c, 4),
				perfmodel.PackedThroughput(p, net, 256, c, 4))
		}
		return b.String(), nil
	},
}

// fig3 regenerates Figure 3: accuracy vs epochs with a fixed local batch
// of 256 on 1/2/4/8 GPUs (global batch grows, learning rate does not).
var fig3 = engine.Experiment{
	Name:  "fig3",
	Title: "accuracy with fixed local batch 256 and no LR scaling",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		p := perfmodel.CIFARResNet50()
		var b strings.Builder
		b.WriteString("Figure 3 — accuracy with fixed local batch 256 (no LR scaling)\n")
		fmt.Fprintf(&b, "%8s %8s %8s %8s %8s\n", "epochs", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs")
		for _, e := range []float64{10, 25, 50, 100, 150, 200} {
			fmt.Fprintf(&b, "%8.0f", e)
			for _, c := range []int{1, 2, 4, 8} {
				B := 256 * c
				eff := e / perfmodel.EpochPenalty(p, B, false)
				fmt.Fprintf(&b, " %8.3f", perfmodel.AccuracyAt(p, eff, B, false))
			}
			b.WriteByte('\n')
		}
		return b.String(), nil
	},
}

// table2 renders the workload catalog composition.
var table2 = engine.Experiment{
	Name:  "table2",
	Title: "workload catalog composition (50 task types)",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		catalog := workload.Catalog()
		var b strings.Builder
		b.WriteString("Table 2 — workload catalog (50 task types)\n")
		fmt.Fprintf(&b, "%-28s %-12s %-10s %10s %8s\n", "task", "class", "model", "‖D‖", "classes")
		for _, t := range catalog {
			fmt.Fprintf(&b, "%-28s %-12s %-10s %10d %8d\n", t.Name, t.Class, t.Model, t.DatasetSize, t.Classes)
		}
		return b.String(), nil
	},
}

// table3 renders the scheduler capability matrix.
var table3 = engine.Experiment{
	Name:  "table3",
	Title: "scheduler capability matrix",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		var b strings.Builder
		b.WriteString("Table 3 — scheduler capabilities\n")
		fmt.Fprintf(&b, "%-10s %-18s %-12s %-14s %-14s\n",
			"scheduler", "strategy", "preemption", "elastic size", "elastic batch")
		rows := [][5]string{
			{"ONES", "dynamic (EA)", "yes", "yes", "yes"},
			{"DRL", "dynamic (RL)", "no", "yes", "no"},
			{"Tiresias", "greedy (LAS)", "yes", "no", "no"},
			{"Optimus", "greedy (periodic)", "yes", "yes", "no"},
		}
		for _, row := range rows {
			fmt.Fprintf(&b, "%-10s %-18s %-12s %-14s %-14s\n", row[0], row[1], row[2], row[3], row[4])
		}
		return b.String(), nil
	},
}
