package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/perfmodel"
	"repro/internal/predictor"
	"repro/internal/workload"
)

// fig6 regenerates Figure 6: the online predictor's progress estimate
// with a 90% confidence interval against the observed progress of a
// held-out job.
var fig6 = engine.Experiment{
	Name:  "fig6",
	Title: "online prediction of training progress on a held-out job",
	Run: func(ctx context.Context, r *engine.Runner) (string, error) {
		pred := predictor.New(r.Params().Seed, predictor.DefaultConfig())
		catalog := workload.Catalog()
		// Train the model on completed jobs spanning the catalog.
		for i, task := range catalog {
			if i%2 == 1 {
				continue // hold out half
			}
			logs, err := trainingLogs(task, task.Profile.RefBatch)
			if err != nil {
				return "", err
			}
			if err := pred.AddCompletedJob(logs); err != nil {
				return "", err
			}
		}
		// Held-out job: mid-sized ResNet50.
		var held workload.Task
		for _, task := range catalog {
			if task.Name == "resnet50-imagenet-14k" {
				held = task
			}
		}
		tr, err := perfmodel.NewTrainer(held.Profile, held.DatasetSize, held.Profile.RefBatch, true)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString("Figure 6 — online prediction of training progress (held-out job)\n")
		fmt.Fprintf(&b, "%12s %10s %10s %10s %10s\n", "# samples", "observed", "predicted", "ci90-lo", "ci90-hi")
		for !tr.Converged() {
			tr.AdvanceEpoch()
			d := pred.Predict(predictor.Features{
				DatasetSize: float64(tr.DatasetSize()),
				InitLoss:    held.Profile.InitLoss,
				Processed:   float64(tr.Processed()),
				LossRatio:   tr.LossRatio(),
				Accuracy:    tr.Accuracy(),
			})
			lo, hi := d.CI(0.9)
			fmt.Fprintf(&b, "%12d %10.3f %10.3f %10.3f %10.3f\n",
				tr.Processed(), tr.TrueProgress(), d.Mean(), lo, hi)
		}
		return b.String(), nil
	},
}

// trainingLogs simulates one job to convergence at a fixed batch and
// returns its labeled per-epoch predictor samples.
func trainingLogs(task workload.Task, batch int) ([]predictor.Sample, error) {
	tr, err := perfmodel.NewTrainer(task.Profile, task.DatasetSize, batch, true)
	if err != nil {
		return nil, err
	}
	var raw []predictor.Sample
	var processed []int64
	for !tr.Converged() {
		tr.AdvanceEpoch()
		raw = append(raw, predictor.Sample{X: predictor.Features{
			DatasetSize: float64(task.DatasetSize),
			InitLoss:    task.Profile.InitLoss,
			Processed:   float64(tr.Processed()),
			LossRatio:   tr.LossRatio(),
			Accuracy:    tr.Accuracy(),
		}})
		processed = append(processed, tr.Processed())
	}
	total := float64(tr.Processed())
	logs := raw[:0]
	for i := range raw {
		p := float64(processed[i]) / total
		if p <= 0 || p >= 1 {
			continue
		}
		raw[i].Progress = p
		logs = append(logs, raw[i])
	}
	return logs, nil
}
