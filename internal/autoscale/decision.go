package autoscale

import (
	"math"

	"repro/internal/scenario"
)

// DecisionConfig parameterizes the decision stage: when a signal becomes
// an action, and how big the action may be.
type DecisionConfig struct {
	// HighDuration is how long the smoothed pressure must stay at or
	// above the analyzer's HighWater before a scale-up triggers.
	HighDuration float64
	// LowDuration is the sustained-idle requirement for a scale-down;
	// keep it well above HighDuration — adding capacity late costs queue
	// time, removing it early costs evictions.
	LowDuration float64
	// CooldownUp is the minimum time between scale-ups; CooldownDown
	// gates scale-downs (measured from the last action in either
	// direction, so the controller never removes servers it just added).
	CooldownUp   float64
	CooldownDown float64
	// MaxScaleStep clamps how many servers one decision may add or
	// remove (0 ⇒ 1).
	MaxScaleStep int
	// TargetPressure is the pressure the controller sizes the cluster
	// for: desired servers ≈ demand / (TargetPressure × GPUs per server).
	TargetPressure float64
	// EmergencyPressure, when positive, is an instantaneous-pressure
	// threshold that bypasses the sustained-duration and cooldown gates —
	// the "queue exploded, act now" escape hatch. MaxScaleStep still
	// clamps the step.
	EmergencyPressure float64
	// MinServers floors scale-downs; the ceiling is MaxFactor × the
	// cluster's initial server count (0 ⇒ uncapped).
	MinServers int
	MaxFactor  float64
}

// Reasons a decision fires or is held back, for observability.
const (
	ReasonSustainedHigh = "sustained-high"
	ReasonSustainedLow  = "sustained-low"
	ReasonEmergency     = "emergency"
)

// Action is the decision stage's output for one evaluation.
type Action struct {
	// Delta is the server-count change to apply: positive adds servers,
	// negative removes, zero holds.
	Delta int
	// Emergency marks a scale-up that bypassed the sustained and
	// cooldown gates.
	Emergency bool
	// Reason names the rule that produced a nonzero Delta (or the one a
	// suppressed action would have fired under).
	Reason string
	// Clamped reports that MaxScaleStep or the size bounds cut the step
	// short of the computed target.
	Clamped bool
	// Suppressed reports a trigger that fired inside its cooldown window
	// and was held (Delta is zero).
	Suppressed bool
}

// Decider turns signals into clamped scaling actions. The zero value is
// not ready — use newDecider (or Controller, which owns one).
type Decider struct {
	cfg      DecisionConfig
	initial  int // server count first observed, anchoring MaxFactor
	lastUp   float64
	lastDown float64
}

func newDecider(cfg DecisionConfig) *Decider {
	return &Decider{cfg: cfg, lastUp: math.Inf(-1), lastDown: math.Inf(-1)}
}

// desired returns the server count that would put the cluster at the
// target pressure under current demand.
func (d *Decider) desired(view scenario.ClusterView) int {
	if view.Servers <= 0 || view.TotalGPUs <= 0 {
		return view.Servers
	}
	target := d.cfg.TargetPressure
	if target <= 0 {
		target = 1
	}
	perServer := float64(view.TotalGPUs) / float64(view.Servers)
	demand := float64(view.BusyGPUs + view.PendingGPUs)
	return int(math.Ceil(demand / (target * perServer)))
}

// clampDelta bounds a raw server delta by MaxScaleStep and the
// [MinServers, MaxFactor×initial] size envelope, reporting whether
// anything was cut.
func (d *Decider) clampDelta(delta int, view scenario.ClusterView) (int, bool) {
	clamped := false
	step := d.cfg.MaxScaleStep
	if step <= 0 {
		step = 1
	}
	if delta > step {
		delta, clamped = step, true
	}
	if delta < -step {
		delta, clamped = -step, true
	}
	if d.cfg.MaxFactor > 0 {
		max := int(math.Ceil(d.cfg.MaxFactor * float64(d.initial)))
		if view.Servers+delta > max {
			delta, clamped = max-view.Servers, true
		}
	}
	min := d.cfg.MinServers
	if min < 1 {
		min = 1
	}
	if view.Servers+delta < min {
		delta, clamped = min-view.Servers, true
	}
	return delta, clamped
}

// Decide evaluates one observation. It mutates cooldown state only when
// an action actually fires, so a suppressed trigger does not reset its
// own clock.
func (d *Decider) Decide(now float64, view scenario.ClusterView, sig Signals) Action {
	if d.initial == 0 {
		d.initial = view.Servers
	}
	// Emergency scale-up: instantaneous pressure past the panic line
	// bypasses both the sustained requirement and the cooldown.
	if d.cfg.EmergencyPressure > 0 && sig.Pressure >= d.cfg.EmergencyPressure {
		delta := d.desired(view) - view.Servers
		if delta < 1 {
			delta = 1
		}
		delta, clamped := d.clampDelta(delta, view)
		if delta > 0 {
			d.lastUp = now
			return Action{Delta: delta, Emergency: true, Reason: ReasonEmergency, Clamped: clamped}
		}
	}
	if d.cfg.HighDuration > 0 && sig.HighFor >= d.cfg.HighDuration {
		if now-d.lastUp < d.cfg.CooldownUp {
			return Action{Reason: ReasonSustainedHigh, Suppressed: true}
		}
		delta := d.desired(view) - view.Servers
		if delta < 1 {
			// Pressure has been high for the whole duration: demand
			// exceeds comfort even if the sizing formula rounds to "keep".
			delta = 1
		}
		delta, clamped := d.clampDelta(delta, view)
		if delta > 0 {
			d.lastUp = now
			return Action{Delta: delta, Reason: ReasonSustainedHigh, Clamped: clamped}
		}
		return Action{Reason: ReasonSustainedHigh, Clamped: clamped}
	}
	if d.cfg.LowDuration > 0 && sig.LowFor >= d.cfg.LowDuration {
		since := math.Max(d.lastUp, d.lastDown)
		if now-since < d.cfg.CooldownDown {
			return Action{Reason: ReasonSustainedLow, Suppressed: true}
		}
		delta := d.desired(view) - view.Servers
		if delta > -1 {
			delta = -1
		}
		delta, clamped := d.clampDelta(delta, view)
		if delta < 0 {
			d.lastDown = now
			return Action{Delta: delta, Reason: ReasonSustainedLow, Clamped: clamped}
		}
		return Action{Reason: ReasonSustainedLow, Clamped: clamped}
	}
	return Action{}
}
