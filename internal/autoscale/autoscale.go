package autoscale

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// ErrUnknown is wrapped by Get for names absent from the policy
// registry; match it with errors.Is.
var ErrUnknown = errors.New("autoscale: unknown autoscaler")

// Policy is a named, fully parameterized controller configuration.
type Policy struct {
	// Name is the flag-facing registry identifier
	// ("reactive-conservative", …).
	Name string
	// Title is a one-line description for listings.
	Title string
	// Interval is the evaluation period in seconds: the controller wakes,
	// observes and (possibly) acts every Interval (0 ⇒ 30).
	Interval float64
	// Analyzer and Decision parameterize the pipeline stages.
	Analyzer AnalyzerConfig
	Decision DecisionConfig
	// DrainWholeRacks lets scale-downs retire whole racks (see Scaler).
	DrainWholeRacks bool
}

// Built-in policy names.
const (
	// ReactiveConservative scales late and in single-server steps: long
	// windows, long cooldowns, no emergency path. The "do no harm"
	// baseline.
	ReactiveConservative = "reactive-conservative"
	// ReactiveAggressive chases demand: short windows, big steps, an
	// emergency bypass, and a 2× growth ceiling.
	ReactiveAggressive = "reactive-aggressive"
	// ReactiveEmergency is the conservative policy plus an emergency
	// scale-up bypass — steady hands until the queue explodes.
	ReactiveEmergency = "reactive-emergency"
)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Policy)
)

// Register adds a named policy. Re-registering a name panics: two
// controllers silently shadowing each other would corrupt experiments.
func Register(p Policy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if p.Name == "" {
		panic("autoscale: Register with empty name")
	}
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("autoscale: duplicate registration of %q — two controller tunings would silently shadow each other; pick a distinct name", p.Name))
	}
	registry[p.Name] = p
}

// Lookup returns the named policy.
func Lookup(name string) (Policy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Get returns the named policy or an error listing the known names.
func Get(name string) (Policy, error) {
	if p, ok := Lookup(name); ok {
		return p, nil
	}
	return Policy{}, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
}

// Names returns the registered policy names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Policies returns every registered policy sorted by name.
func Policies() []Policy {
	out := make([]Policy, 0)
	for _, n := range Names() {
		p, _ := Lookup(n)
		out = append(out, p)
	}
	return out
}

// ctlObs bundles a controller's instrument handles. An uninstrumented
// controller holds a nil *ctlObs and pays exactly one nil check per
// record — the same contract the internal/obs handles pin.
//
//ones:nilsafe
type ctlObs struct {
	decisions  *obs.CounterVec // by action: scale-up / scale-down / hold
	steps      *obs.CounterVec // servers added/removed, by direction
	clamps     *obs.Counter
	suppressed *obs.Counter
	emergency  *obs.Counter
}

// Controller is the assembled analyzer → decision → scaler pipeline,
// implementing scenario.CapacitySource: the simulator wakes it every
// policy Interval, hands it a ClusterView, and applies whatever events
// it emits. All telemetry is out-of-band — results are byte-identical
// with or without a registry.
type Controller struct {
	policy   Policy
	analyzer *Analyzer
	decider  *Decider
	scaler   *Scaler
	nextEval float64
	oh       *ctlObs
}

// NewController assembles a controller from the policy, seeding the
// scaler's removal picks. reg may be nil for an uninstrumented
// controller; metric registration is idempotent, so controllers for many
// cells share one registry's series.
func NewController(p Policy, seed int64, reg *obs.Registry) *Controller {
	if p.Interval <= 0 {
		p.Interval = 30
	}
	c := &Controller{
		policy:   p,
		analyzer: newAnalyzer(p.Analyzer),
		decider:  newDecider(p.Decision),
		scaler:   newScaler(seed, p.DrainWholeRacks),
		nextEval: p.Interval,
	}
	if reg != nil {
		c.oh = &ctlObs{
			decisions:  reg.CounterVec("autoscale_decisions_total", "Controller evaluations by outcome.", "action"),
			steps:      reg.CounterVec("autoscale_scale_steps_total", "Servers the controller added or removed, by direction.", "dir"),
			clamps:     reg.Counter("autoscale_clamps_total", "Scaling steps cut short by MaxScaleStep or the size envelope."),
			suppressed: reg.Counter("autoscale_cooldown_suppressed_total", "Triggers held back by a cooldown window."),
			emergency:  reg.Counter("autoscale_emergency_total", "Scale-ups that took the emergency bypass."),
		}
	}
	return c
}

// Policy returns the controller's configuration.
func (c *Controller) Policy() Policy { return c.policy }

// NextWake implements scenario.CapacitySource: the next evaluation
// boundary (the first falls one Interval into the run).
func (c *Controller) NextWake(now float64) float64 { return c.nextEval }

// Next implements scenario.CapacitySource: at an evaluation boundary it
// runs the pipeline on the snapshot and returns the shaped events; when
// polled early (a sibling source's wake in a composed run) it returns
// nil without consuming the boundary.
func (c *Controller) Next(now float64, view scenario.ClusterView) []scenario.CapacityEvent {
	if now < c.nextEval {
		return nil
	}
	for c.nextEval <= now {
		c.nextEval += c.policy.Interval
	}
	sig := c.analyzer.Observe(now, view)
	act := c.decider.Decide(now, view, sig)
	c.oh.record(act)
	return c.scaler.Shape(act, view)
}

// record emits the action's telemetry. Safe on a nil receiver (an
// uninstrumented controller).
func (o *ctlObs) record(act Action) {
	if o == nil {
		return
	}
	switch {
	case act.Delta > 0:
		o.decisions.With("scale-up").Inc()
		o.steps.With("up").Add(uint64(act.Delta))
	case act.Delta < 0:
		o.decisions.With("scale-down").Inc()
		o.steps.With("down").Add(uint64(-act.Delta))
	default:
		o.decisions.With("hold").Inc()
	}
	if act.Clamped {
		o.clamps.Inc()
	}
	if act.Suppressed {
		o.suppressed.Inc()
	}
	if act.Emergency {
		o.emergency.Inc()
	}
}

// init registers the built-in policies. Tunings are calibrated to the
// evaluation workload (interarrival ~12 s, pressure swinging on a
// minutes scale under diurnal/burst arrivals): conservative reacts on
// the order of minutes, aggressive within tens of seconds.
func init() {
	Register(Policy{
		Name:     ReactiveConservative,
		Title:    "slow single-server steps, long cooldowns, no emergency path",
		Interval: 30,
		Analyzer: AnalyzerConfig{Window: 120, HighWater: 0.85, LowWater: 0.5},
		Decision: DecisionConfig{
			HighDuration:   120,
			LowDuration:    300,
			CooldownUp:     180,
			CooldownDown:   600,
			MaxScaleStep:   1,
			TargetPressure: 0.7,
			MinServers:     2,
			MaxFactor:      1.5,
		},
	})
	Register(Policy{
		Name:     ReactiveAggressive,
		Title:    "fast multi-server steps with an emergency bypass, 2× growth ceiling",
		Interval: 15,
		Analyzer: AnalyzerConfig{Window: 60, HighWater: 0.75, LowWater: 0.6},
		Decision: DecisionConfig{
			HighDuration:      30,
			LowDuration:       120,
			CooldownUp:        60,
			CooldownDown:      180,
			MaxScaleStep:      4,
			TargetPressure:    0.65,
			EmergencyPressure: 2.0,
			MinServers:        2,
			MaxFactor:         2,
		},
	})
	Register(Policy{
		Name:     ReactiveEmergency,
		Title:    "conservative tuning plus an emergency scale-up bypass",
		Interval: 30,
		Analyzer: AnalyzerConfig{Window: 120, HighWater: 0.85, LowWater: 0.5},
		Decision: DecisionConfig{
			HighDuration:      120,
			LowDuration:       300,
			CooldownUp:        180,
			CooldownDown:      600,
			MaxScaleStep:      2,
			TargetPressure:    0.7,
			EmergencyPressure: 1.2,
			MinServers:        2,
			MaxFactor:         1.5,
		},
	})
}
