package autoscale

import (
	"math/rand"

	"repro/internal/scenario"
)

// Scaler shapes a decision into concrete capacity events. It owns the
// controller's only randomness — which server (or rack) a scale-down
// hits — drawn from a seeded generator, so the whole pipeline stays
// deterministic.
type Scaler struct {
	rng *rand.Rand
	// drainWholeRacks lets a scale-down large enough to cover a full
	// rack drain one rack (scenario.CapacityRackDrain) instead of
	// removing scattered servers — the shape a maintenance-oriented
	// operator would choose. Off in the built-in policies.
	drainWholeRacks bool
}

func newScaler(seed int64, drainWholeRacks bool) *Scaler {
	return &Scaler{rng: rand.New(rand.NewSource(seed)), drainWholeRacks: drainWholeRacks}
}

// Shape renders the action as capacity events, all stamped with
// scenario.OriginAutoscaler. A zero-delta action shapes to nothing.
func (s *Scaler) Shape(a Action, view scenario.ClusterView) []scenario.CapacityEvent {
	switch {
	case a.Delta > 0:
		// Join at the cluster's prevailing shape (GPUs 0 ⇒ match the
		// first server) — an autoscaler provisions more of what it has.
		return []scenario.CapacityEvent{{
			Time:    view.Now,
			Kind:    scenario.CapacityJoin,
			Servers: a.Delta,
			Origin:  scenario.OriginAutoscaler,
		}}
	case a.Delta < 0:
		n := -a.Delta
		if s.drainWholeRacks && len(view.LiveRacks) > 1 && view.Servers > 0 {
			// Whole-rack shaping: if the step covers at least an average
			// rack's worth of servers, retire one random live rack.
			if perRack := view.Servers / len(view.LiveRacks); perRack > 0 && n >= perRack {
				i := int(s.rng.Float64() * float64(len(view.LiveRacks)))
				if i >= len(view.LiveRacks) {
					i = len(view.LiveRacks) - 1
				}
				return []scenario.CapacityEvent{{
					Time:   view.Now,
					Kind:   scenario.CapacityRackDrain,
					Rack:   view.LiveRacks[i],
					Origin: scenario.OriginAutoscaler,
				}}
			}
		}
		return []scenario.CapacityEvent{{
			Time:    view.Now,
			Kind:    scenario.CapacityLeave,
			Servers: n,
			Pick:    s.rng.Float64(),
			Origin:  scenario.OriginAutoscaler,
		}}
	default:
		return nil
	}
}
