package autoscale

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// fifoSched is a minimal FIFO gang scheduler local to this package so
// the closed loop can be exercised without importing internal/schedulers.
type fifoSched struct{}

func (fifoSched) Name() string                 { return "fifo-test" }
func (fifoSched) TickInterval() float64        { return 0 }
func (fifoSched) CostKind() simulator.CostKind { return simulator.CostElastic }
func (fifoSched) ManagesLR() bool              { return true }
func (fifoSched) Decide(tr simulator.Trigger, v *simulator.View) *cluster.Schedule {
	s := v.Current.Clone()
	changed := false
	for _, j := range v.Jobs {
		if j.Running {
			continue
		}
		idle := s.IdleGPUs()
		if len(idle) < j.ReqGPUs {
			break
		}
		per := j.ReqBatch / j.ReqGPUs
		if per > j.Task.Profile.MaxPerGPU {
			per = j.Task.Profile.MaxPerGPU
		}
		if per < 1 {
			per = 1
		}
		for i := 0; i < j.ReqGPUs; i++ {
			s.SetSlot(idle[i], j.ID, per)
		}
		changed = true
	}
	if !changed {
		return nil
	}
	return s
}

func reactiveRun(t *testing.T, policy string) *simulator.Result {
	t.Helper()
	trace, err := workload.Generate(workload.Config{Seed: 3, NumJobs: 24, MeanInterarrival: 8, MaxReqGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulator.DefaultConfig(trace)
	cfg.Topo = cluster.Uniform(4, 4) // small on purpose: the arrival burst must overload it
	cfg.MinServers = 2
	cfg.Source = NewController(mustGet(t, policy), 42, nil)
	res, err := simulator.Run(cfg, fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The closed loop, end to end: a tight cluster overloads, the
// controller grows it, the queue drains, the controller shrinks it —
// with no pre-planned timeline anywhere.
func TestControllerClosesTheLoop(t *testing.T) {
	res := reactiveRun(t, ReactiveAggressive)
	if res.ScaleUps == 0 {
		t.Errorf("overloaded run produced no scale-ups: %+v", summary(res))
	}
	if res.ScaleDowns == 0 {
		t.Errorf("drained run produced no scale-downs: %+v", summary(res))
	}
	if res.AutoscaleEvents != res.ScaleUps+res.ScaleDowns {
		t.Errorf("AutoscaleEvents %d != ups %d + downs %d", res.AutoscaleEvents, res.ScaleUps, res.ScaleDowns)
	}
	if res.CapacityEvents < res.AutoscaleEvents {
		t.Errorf("CapacityEvents %d < AutoscaleEvents %d", res.CapacityEvents, res.AutoscaleEvents)
	}
	if res.Truncated {
		t.Errorf("reactive run truncated with %d unfinished", res.Unfinished)
	}
}

// A reactive run must be byte-identical on rerun: the controller's only
// state is seeded or derived from the (deterministic) observation
// sequence.
func TestReactiveRunDeterministic(t *testing.T) {
	for _, policy := range []string{ReactiveConservative, ReactiveAggressive, ReactiveEmergency} {
		a, b := reactiveRun(t, policy), reactiveRun(t, policy)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: reruns differ:\n%+v\nvs\n%+v", policy, summary(a), summary(b))
		}
	}
}

func summary(r *simulator.Result) map[string]any {
	return map[string]any{
		"ups": r.ScaleUps, "downs": r.ScaleDowns, "events": r.CapacityEvents,
		"makespan": r.Makespan, "meanJCT": r.MeanJCT(),
	}
}
