package autoscale

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// viewAt builds a snapshot with the given pressure on a 4-server,
// 16-GPU cluster: pressure = (busy+pending)/16.
func viewAt(now, pressure float64) scenario.ClusterView {
	load := int(pressure * 16)
	busy := load
	pending := 0
	if busy > 16 {
		busy, pending = 16, load-16
	}
	return scenario.ClusterView{
		Now: now, Servers: 4, TotalGPUs: 16,
		BusyGPUs: busy, PendingGPUs: pending,
		LiveRacks: []int{0, 1},
	}
}

func TestAnalyzerSustainedHighTrigger(t *testing.T) {
	a := newAnalyzer(AnalyzerConfig{Window: 60, HighWater: 0.8, LowWater: 0.3})
	// First observation adopts the instantaneous pressure outright.
	sig := a.Observe(0, viewAt(0, 1.0))
	if sig.Smoothed != 1.0 {
		t.Fatalf("first smoothed = %v, want 1.0", sig.Smoothed)
	}
	if sig.HighFor != 0 {
		t.Fatalf("HighFor starts at %v, want 0 (stretch just began)", sig.HighFor)
	}
	// Sustained pressure accumulates HighFor at observation cadence.
	for now := 30.0; now <= 150; now += 30 {
		sig = a.Observe(now, viewAt(now, 1.0))
	}
	if sig.HighFor != 150 {
		t.Errorf("HighFor after 150 s high = %v", sig.HighFor)
	}
	if sig.LowFor != 0 {
		t.Errorf("LowFor = %v during a high stretch", sig.LowFor)
	}
	// One low observation does not instantly reset the smoothed signal
	// below the threshold (windowing), but sustained idle does, and the
	// high stretch ends the moment smoothing crosses down.
	sig = a.Observe(180, viewAt(180, 0.0))
	if sig.Smoothed >= 0.8 {
		t.Fatalf("smoothed = %v after a zero observation over a half-window gap", sig.Smoothed)
	}
	if sig.HighFor != 0 {
		t.Errorf("HighFor = %v after dropping below HighWater", sig.HighFor)
	}
	for now := 210.0; now <= 400; now += 30 {
		sig = a.Observe(now, viewAt(now, 0.0))
	}
	if sig.LowFor == 0 {
		t.Error("sustained idle never accumulated LowFor")
	}
}

func TestAnalyzerSpikeRejection(t *testing.T) {
	a := newAnalyzer(AnalyzerConfig{Window: 300, HighWater: 0.8, LowWater: 0.3})
	a.Observe(0, viewAt(0, 0.5))
	// A single 10-second spike to 2.0 moves the smoothed signal only
	// 10/300 of the way — nowhere near the high water mark.
	sig := a.Observe(10, viewAt(10, 2.0))
	if sig.Smoothed >= 0.8 {
		t.Errorf("smoothed = %v, a short spike should not trip a 300 s window", sig.Smoothed)
	}
	if sig.HighFor != 0 {
		t.Errorf("HighFor = %v on a rejected spike", sig.HighFor)
	}
}

func TestDeciderSustainedAndCooldown(t *testing.T) {
	d := newDecider(DecisionConfig{
		HighDuration: 60, LowDuration: 120,
		CooldownUp: 200, CooldownDown: 400,
		MaxScaleStep: 2, TargetPressure: 0.7, MinServers: 2, MaxFactor: 2,
	})
	high := Signals{Pressure: 1.5, Smoothed: 1.5, HighFor: 90}
	// Sustained high fires; the 1.5-pressure target wants well over
	// +2 servers, so the step clamps at MaxScaleStep.
	act := d.Decide(100, viewAt(100, 1.5), high)
	if act.Delta != 2 || !act.Clamped || act.Reason != ReasonSustainedHigh {
		t.Fatalf("sustained high: %+v, want clamped +2", act)
	}
	// Inside the cooldown the same trigger is suppressed, and the
	// suppression must not reset the cooldown clock.
	act = d.Decide(160, viewAt(160, 1.5), high)
	if act.Delta != 0 || !act.Suppressed {
		t.Fatalf("inside cooldown: %+v, want suppressed hold", act)
	}
	act = d.Decide(301, viewAt(301, 1.5), high)
	if act.Delta != 2 {
		t.Fatalf("after cooldown: %+v, want +2", act)
	}
	// Sustained low immediately after a scale-up is gated by
	// CooldownDown measured from the *last action in either direction*.
	low := Signals{Pressure: 0.1, Smoothed: 0.1, LowFor: 200}
	act = d.Decide(400, viewAt(400, 0.1), low)
	if act.Delta != 0 || !act.Suppressed || act.Reason != ReasonSustainedLow {
		t.Fatalf("scale-down inside post-up cooldown: %+v", act)
	}
	act = d.Decide(800, viewAt(800, 0.1), low)
	if act.Delta >= 0 || act.Reason != ReasonSustainedLow {
		t.Fatalf("after cooldown: %+v, want a removal", act)
	}
}

func TestDeciderSizeEnvelope(t *testing.T) {
	d := newDecider(DecisionConfig{
		HighDuration: 1, LowDuration: 1,
		MaxScaleStep: 100, TargetPressure: 0.7, MinServers: 3, MaxFactor: 1.25,
	})
	// MaxFactor 1.25 over 4 initial servers caps the fleet at 5: a
	// demand worth 10 servers still only adds 1.
	act := d.Decide(10, viewAt(10, 3.0), Signals{Pressure: 3, Smoothed: 3, HighFor: 5})
	if act.Delta != 1 || !act.Clamped {
		t.Fatalf("ceiling: %+v, want clamped +1", act)
	}
	// MinServers 3 floors removals from 4 servers at -1.
	act = d.Decide(500, viewAt(500, 0.0), Signals{LowFor: 5})
	if act.Delta != -1 || !act.Clamped {
		t.Fatalf("floor: %+v, want clamped -1", act)
	}
}

func TestDeciderEmergencyBypass(t *testing.T) {
	d := newDecider(DecisionConfig{
		HighDuration: 600, CooldownUp: 600,
		MaxScaleStep: 4, TargetPressure: 0.7, EmergencyPressure: 1.5, MaxFactor: 4,
	})
	// No sustained history, and a fresh scale-up at t=10 — the
	// emergency still fires at t=20 through both gates.
	act := d.Decide(10, viewAt(10, 2.0), Signals{Pressure: 2.0, HighFor: 0})
	if act.Delta <= 0 || !act.Emergency || act.Reason != ReasonEmergency {
		t.Fatalf("emergency: %+v", act)
	}
	act = d.Decide(20, viewAt(20, 2.0), Signals{Pressure: 2.0, HighFor: 0})
	if act.Delta <= 0 || !act.Emergency {
		t.Fatalf("emergency inside cooldown: %+v, want bypass", act)
	}
	// Below the panic line nothing fires without sustained history.
	act = d.Decide(30, viewAt(30, 1.2), Signals{Pressure: 1.2, HighFor: 0})
	if act.Delta != 0 {
		t.Fatalf("sub-emergency pressure: %+v", act)
	}
}

func TestScalerShapesEvents(t *testing.T) {
	s := newScaler(1, false)
	up := s.Shape(Action{Delta: 3}, viewAt(0, 1))
	if len(up) != 1 || up[0].Kind != scenario.CapacityJoin || up[0].Servers != 3 || up[0].Origin != scenario.OriginAutoscaler {
		t.Fatalf("scale-up shaped as %+v", up)
	}
	down := s.Shape(Action{Delta: -2}, viewAt(0, 0))
	if len(down) != 1 || down[0].Kind != scenario.CapacityLeave || down[0].Servers != 2 || down[0].Origin != scenario.OriginAutoscaler {
		t.Fatalf("scale-down shaped as %+v", down)
	}
	if down[0].Pick < 0 || down[0].Pick >= 1 {
		t.Errorf("Pick = %v outside [0,1)", down[0].Pick)
	}
	if hold := s.Shape(Action{}, viewAt(0, 0.5)); hold != nil {
		t.Errorf("hold shaped events: %+v", hold)
	}
	// Identical seeds draw identical picks.
	a, b := newScaler(7, false), newScaler(7, false)
	pa := a.Shape(Action{Delta: -1}, viewAt(0, 0))[0].Pick
	pb := b.Shape(Action{Delta: -1}, viewAt(0, 0))[0].Pick
	if pa != pb {
		t.Errorf("same-seed picks differ: %v vs %v", pa, pb)
	}
}

func TestScalerWholeRackDrain(t *testing.T) {
	s := newScaler(1, true)
	// 4 servers over 2 racks → 2 per rack; a -2 step covers a rack.
	evs := s.Shape(Action{Delta: -2}, viewAt(0, 0))
	if len(evs) != 1 || evs[0].Kind != scenario.CapacityRackDrain {
		t.Fatalf("rack-capable scale-down shaped as %+v", evs)
	}
	if evs[0].Rack != 0 && evs[0].Rack != 1 {
		t.Errorf("drained rack %d not in the live set", evs[0].Rack)
	}
	// A -1 step does not cover a rack and falls back to a server leave.
	if evs := s.Shape(Action{Delta: -1}, viewAt(0, 0)); evs[0].Kind != scenario.CapacityLeave {
		t.Errorf("sub-rack scale-down shaped as %+v", evs)
	}
}

func TestRegistryBuiltinsAndErrors(t *testing.T) {
	for _, name := range []string{ReactiveConservative, ReactiveAggressive, ReactiveEmergency} {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("built-in %q missing: %v", name, err)
		}
		if p.Interval <= 0 || p.Decision.TargetPressure <= 0 {
			t.Errorf("built-in %q under-specified: %+v", name, p)
		}
	}
	if _, err := Get("bogus"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Get(bogus) = %v, want ErrUnknown", err)
	}
	names := Names()
	if len(names) < 3 {
		t.Errorf("Names() = %v", names)
	}
	if got := Policies(); len(got) != len(names) {
		t.Errorf("Policies() returned %d entries for %d names", len(got), len(names))
	}
}

func TestControllerIsACapacitySource(t *testing.T) {
	var _ scenario.CapacitySource = (*Controller)(nil)
	reg := obs.NewRegistry()
	c := NewController(mustGet(t, ReactiveAggressive), 42, reg)
	if w := c.NextWake(-1); w != 15 {
		t.Fatalf("first wake = %v, want the 15 s interval", w)
	}
	// Polled before its boundary (a sibling source's wake), the
	// controller holds and does not consume the evaluation.
	if evs := c.Next(10, viewAt(10, 3.0)); evs != nil {
		t.Fatalf("early poll emitted %+v", evs)
	}
	if w := c.NextWake(10); w != 15 {
		t.Fatalf("wake after early poll = %v", w)
	}
	// At the boundary, pressure 3.0 ≥ the 2.0 emergency line scales up
	// immediately.
	evs := c.Next(15, viewAt(15, 3.0))
	if len(evs) != 1 || evs[0].Kind != scenario.CapacityJoin || evs[0].Origin != scenario.OriginAutoscaler {
		t.Fatalf("emergency boundary emitted %+v", evs)
	}
	if w := c.NextWake(15); w != 30 {
		t.Fatalf("wake advanced to %v, want 30", w)
	}
	if reg.CounterValue("autoscale_decisions_total", "scale-up") != 1 {
		t.Error("scale-up decision not counted")
	}
	if reg.CounterValue("autoscale_emergency_total") != 1 {
		t.Error("emergency bypass not counted")
	}
	// Uninstrumented controllers (nil registry) must be no-op safe.
	bare := NewController(mustGet(t, ReactiveConservative), 1, nil)
	bare.Next(30, viewAt(30, 1.0))
}

func mustGet(t *testing.T, name string) Policy {
	t.Helper()
	p, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
