// Package autoscale is the closed-loop capacity controller: a reactive
// autoscaler that watches the simulated cluster through the
// scenario.ClusterView the simulator exposes at decision boundaries and
// emits capacity events in response — servers joining under sustained
// pressure, leaving when the cluster idles. It is the endogenous
// counterpart of scenario's pre-planned timelines and seeded chaos
// processes, and plugs into the same scenario.CapacitySource interface,
// so the simulator cannot tell a feedback controller from a schedule
// written in advance.
//
// The controller is three composable stages, mirroring production
// autoscaler architecture:
//
//	analyzer → decision → scaler
//
// The Analyzer turns raw snapshots into windowed signals (smoothed
// pressure, sustained high/low durations); the Decider turns signals
// into a clamped, cooldown-gated scaling action; the Scaler shapes the
// action into concrete capacity events. Every stage is deterministic
// given (policy, seed, observation sequence), so reactive runs are
// byte-identical at any engine worker count or evolution parallelism.
package autoscale

import "repro/internal/scenario"

// AnalyzerConfig parameterizes signal extraction.
type AnalyzerConfig struct {
	// Window is the smoothing horizon in seconds: an observation dt
	// seconds after the last moves the smoothed pressure dt/Window of the
	// way to the instantaneous value (capped at 1 — a gap longer than the
	// window adopts the new value outright). Larger windows ignore
	// shorter spikes.
	Window float64
	// HighWater is the smoothed-pressure threshold above which the
	// cluster counts as overloaded; time spent above it accumulates in
	// Signals.HighFor.
	HighWater float64
	// LowWater is the idle threshold; smoothed pressure below it
	// accumulates Signals.LowFor. Keep LowWater well under HighWater or
	// the controller will flap.
	LowWater float64
}

// Signals is the analyzer's digest of the cluster state at one
// observation.
type Signals struct {
	// Pressure is the instantaneous (busy + pending demand) / capacity
	// ratio from the snapshot (see scenario.ClusterView.Pressure).
	Pressure float64
	// Smoothed is the windowed pressure the thresholds compare against.
	Smoothed float64
	// QueuedGPUs is the pending GPU demand of jobs waiting in the queue.
	QueuedGPUs int
	// HighFor is how long, in seconds, the smoothed pressure has been
	// continuously at or above HighWater (0 when below).
	HighFor float64
	// LowFor is how long the smoothed pressure has been continuously at
	// or below LowWater (0 when above).
	LowFor float64
}

// Analyzer accumulates windowed signals over a sequence of cluster
// snapshots. Observations must arrive in nondecreasing time order; the
// zero value is not ready — use newAnalyzer (or Controller, which owns
// one).
type Analyzer struct {
	cfg       AnalyzerConfig
	last      float64 // time of the previous observation
	seen      bool
	smoothed  float64
	highSince float64 // when the current ≥HighWater stretch began (-1 ⇒ not in one)
	lowSince  float64
}

func newAnalyzer(cfg AnalyzerConfig) *Analyzer {
	return &Analyzer{cfg: cfg, highSince: -1, lowSince: -1}
}

// Observe folds one snapshot into the analyzer and returns the updated
// signals.
func (a *Analyzer) Observe(now float64, view scenario.ClusterView) Signals {
	p := view.Pressure()
	if !a.seen {
		a.seen = true
		a.smoothed = p
	} else {
		frac := 1.0
		if dt := now - a.last; a.cfg.Window > 0 && dt < a.cfg.Window {
			frac = dt / a.cfg.Window
		}
		a.smoothed += (p - a.smoothed) * frac
	}
	a.last = now
	if a.smoothed >= a.cfg.HighWater {
		if a.highSince < 0 {
			a.highSince = now
		}
	} else {
		a.highSince = -1
	}
	if a.smoothed <= a.cfg.LowWater {
		if a.lowSince < 0 {
			a.lowSince = now
		}
	} else {
		a.lowSince = -1
	}
	sig := Signals{
		Pressure:   p,
		Smoothed:   a.smoothed,
		QueuedGPUs: view.PendingGPUs,
	}
	if a.highSince >= 0 {
		sig.HighFor = now - a.highSince
	}
	if a.lowSince >= 0 {
		sig.LowFor = now - a.lowSince
	}
	return sig
}
