package engine

import (
	"context"
	"errors"
	"reflect"
	"repro/internal/simulator"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cancelCells is a grid big enough that cancellation after the first
// completed cell always leaves work unstarted.
func cancelCells() []Cell {
	return SweepCells([]string{"fifo", "sjf", "tiresias", "optimus"}, []int{16, 32})
}

// TestResultsCancelMidRun is the cancellation contract at every worker
// count the determinism tests pin: cancelling after the first completed
// cell (a) surfaces context.Canceled, (b) stops new cells from starting
// — only work already holding a pool slot finishes, so the call returns
// within one cell boundary — and (c) leaves the cache unpoisoned: an
// uncancelled rerun on the same runner matches a fresh runner's results
// exactly.
func TestResultsCancelMidRun(t *testing.T) {
	cells := cancelCells()
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r := NewRunner(testParams(workers))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var (
			mu      sync.Mutex
			started int
			ran     int
			first   sync.Once
		)
		r.OnCellStart = func(Cell) {
			mu.Lock()
			started++
			mu.Unlock()
		}
		r.OnCell = func(Cell, *simulator.Result, time.Duration) {
			mu.Lock()
			ran++
			mu.Unlock()
			first.Do(cancel)
		}
		_, err := r.Results(ctx, cells)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Results after cancel = %v, want context.Canceled", workers, err)
		}
		mu.Lock()
		ranAtReturn, startedAtReturn := ran, started
		mu.Unlock()
		// At cancel time one cell had finished and at most workers-1
		// more held pool slots; nothing else may start.
		if maxRan := workers + 1; ranAtReturn > maxRan {
			t.Errorf("workers=%d: %d cells ran after mid-run cancel, want ≤ %d (one cell boundary)",
				workers, ranAtReturn, maxRan)
		}
		// The batch drained: no cell starts after Results returned.
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		if started != startedAtReturn || ran != ranAtReturn {
			t.Errorf("workers=%d: cells still executing after Results returned (started %d→%d, ran %d→%d)",
				workers, startedAtReturn, started, ranAtReturn, ran)
		}
		mu.Unlock()

		// Uncancelled rerun on the SAME runner: every cell must now
		// simulate (nothing cached a cancellation error) and the results
		// must be byte-identical to a fresh runner's.
		rerun, err := r.Results(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: rerun after cancel: %v", workers, err)
		}
		fresh, err := NewRunner(testParams(workers)).Results(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: fresh run: %v", workers, err)
		}
		for i := range cells {
			if !reflect.DeepEqual(rerun[i].Jobs, fresh[i].Jobs) || rerun[i].Reconfigs != fresh[i].Reconfigs {
				t.Errorf("workers=%d: cell %s: rerun after cancel differs from an untouched runner",
					workers, cells[i])
			}
		}
	}
}

// TestResultsCancelledBeforeStart: a dead context runs nothing at all.
func TestResultsCancelledBeforeStart(t *testing.T) {
	r := NewRunner(testParams(2))
	ran := 0
	r.OnCell = func(Cell, *simulator.Result, time.Duration) { ran++ }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Results(ctx, cancelCells()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d cells simulated under a context cancelled before the call", ran)
	}
	if got := r.CachedCells(); got != 0 {
		t.Errorf("CachedCells = %d after a fully cancelled batch, want 0", got)
	}
}

// TestResultsCancelNoGoroutineLeak: the worker goroutines of a cancelled
// batch all exit.
func TestResultsCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRunner(testParams(2))
	ctx, cancel := context.WithCancel(context.Background())
	var first sync.Once
	r.OnCell = func(Cell, *simulator.Result, time.Duration) { first.Do(cancel) }
	if _, err := r.Results(ctx, cancelCells()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pool drains before Results returns; give the runtime a moment
	// to retire exiting goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by cancelled batch: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResultErrorNotRetriedForever: a deterministic failure (unknown
// scheduler) is cached, not deleted like a cancellation, so waiters do
// not recompute it in a loop.
func TestResultErrorStaysCached(t *testing.T) {
	r := NewRunner(testParams(1))
	for i := 0; i < 2; i++ {
		if _, err := r.Result(context.Background(), Cell{Scheduler: "bogus", Capacity: 16}); err == nil {
			t.Fatal("unknown scheduler accepted")
		}
	}
	if got := r.CachedCells(); got != 1 {
		t.Errorf("CachedCells = %d, want the failed cell cached once", got)
	}
}
