package engine

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestEvolutionParallelismGoldenResults is the golden byte-identity test
// for intra-cell evolution parallelism: the marshaled Result of an ONES
// cell must be identical at parallelism 1, 4, GOMAXPROCS and 0 (auto,
// derived from free worker slots). Each setting uses a fresh Runner so
// every run truly simulates — EvolutionParallelism is excluded from
// CellKey, so a shared cache would short-circuit the comparison.
func TestEvolutionParallelismGoldenResults(t *testing.T) {
	cell := Cell{Scheduler: "ones", Capacity: 16}
	var golden []byte
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
		p := testParams(2)
		p.EvolutionParallelism = par
		res, err := NewRunner(p).Result(context.Background(), cell)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("parallelism %d: marshal: %v", par, err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if string(raw) != string(golden) {
			t.Errorf("evolution parallelism %d changed the Result bytes:\nwant %s\ngot  %s", par, golden, raw)
		}
	}
}

// TestCellKeyIgnoresEvolutionParallelism pins the cache-compatibility
// contract: the knob is pure throughput, so cached cells must be shared
// across settings.
func TestCellKeyIgnoresEvolutionParallelism(t *testing.T) {
	a, b := testParams(2), testParams(2)
	b.EvolutionParallelism = 8
	cell := Cell{Scheduler: "ones", Capacity: 16}
	if CellKey(a, cell) != CellKey(b, cell) {
		t.Errorf("CellKey depends on EvolutionParallelism: %q vs %q", CellKey(a, cell), CellKey(b, cell))
	}
}
