package engine

import (
	"context"
	"encoding/json"
	"testing"
)

// TestCellKeyGoldenHomogeneous pins the exact persistent-cache key of a
// defaulted homogeneous cell. This string is the on-disk contract: caches
// written before heterogeneous shapes existed are keyed by it, so any
// drift here silently invalidates every existing cache. Do not update
// the literal without bumping servecache.Version instead.
func TestCellKeyGoldenHomogeneous(t *testing.T) {
	p := DefaultParams()
	got := CellKey(p, Cell{Scheduler: "ones"})
	want := "cell|seed=1|jobs=120|ia=12|maxgpus=8|pop=32|theta=0|events=false|sched=ones|cap=64|per=4|trace=1|scn=steady"
	if got != want {
		t.Fatalf("homogeneous CellKey drifted:\n got  %s\n want %s", got, want)
	}
}

func TestCellKeyShapeIsOrderDistinct(t *testing.T) {
	p := DefaultParams()
	a := CellKey(p, Cell{Scheduler: "ones", Shape: "4x8,2x4"})
	b := CellKey(p, Cell{Scheduler: "ones", Shape: "2x4,4x8"})
	if a == b {
		t.Fatalf("shape orderings share a cache key: %s", a)
	}
	// Both orderings total 40 GPUs; neither may collide with the
	// homogeneous 40-GPU cell either.
	c := CellKey(p, Cell{Scheduler: "ones", Capacity: 40})
	if a == c || b == c {
		t.Fatalf("shaped key collides with homogeneous key %s", c)
	}
}

// TestCellKeySpellingVariantsShareAKey pins shape canonicalization:
// whitespace-padded spellings of one topology normalize to the same
// cell, key and seed, while group order stays distinct (semantic).
func TestCellKeySpellingVariantsShareAKey(t *testing.T) {
	p := DefaultParams()
	canon := CellKey(p, Cell{Scheduler: "ones", Shape: "4x8,2x4"})
	padded := CellKey(p, Cell{Scheduler: "ones", Shape: "4x8, 2x4"})
	if canon != padded {
		t.Fatalf("spelling variants keyed apart:\n %s\n %s", canon, padded)
	}
	a := Cell{Scheduler: "ones", Shape: "4x8,2x4"}.normalize(p)
	b := Cell{Scheduler: "ones", Shape: " 4x8 , 2x4 "}.normalize(p)
	if a != b {
		t.Fatalf("normalized cells differ: %+v vs %+v", a, b)
	}
	if a.schedulerSeed(1) != b.schedulerSeed(1) {
		t.Fatal("spelling variants derive different seeds")
	}
}

func TestCellKeyShapeAppendsDimension(t *testing.T) {
	p := DefaultParams()
	got := CellKey(p, Cell{Scheduler: "ones", Shape: "4x8,2x4"})
	want := "cell|seed=1|jobs=120|ia=12|maxgpus=8|pop=32|theta=0|events=false|sched=ones|cap=40|per=0|trace=1|scn=steady|shape=4x8,2x4"
	if got != want {
		t.Fatalf("shaped CellKey:\n got  %s\n want %s", got, want)
	}
}

func TestShapedCellSeedsDifferByOrdering(t *testing.T) {
	a := Cell{Scheduler: "ones", Shape: "4x8,2x4"}.schedulerSeed(1)
	b := Cell{Scheduler: "ones", Shape: "2x4,4x8"}.schedulerSeed(1)
	if a == b {
		t.Fatalf("shape orderings share a scheduler seed %d", a)
	}
}

func TestCellTopologyFromShape(t *testing.T) {
	topo, err := Cell{Scheduler: "ones", Shape: "4x8,2x4"}.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.TotalGPUs() != 40 || topo.NumServers() != 6 {
		t.Fatalf("shape topology = %v", topo)
	}
	if _, err := (Cell{Scheduler: "ones", Shape: "bogus"}).Topology(); err == nil {
		t.Fatal("invalid shape parsed")
	}
}

func TestRunnerRejectsInvalidShape(t *testing.T) {
	r := NewRunner(QuickParams())
	if _, err := r.Result(context.Background(), Cell{Scheduler: "fifo", Shape: "not-a-shape"}); err == nil {
		t.Fatal("invalid shape ran")
	}
}

// TestShapedCellsDeterministicAcrossWorkers pins that mixed-topology
// cells — including a rack drain — are byte-identical at any worker
// count, the same contract the homogeneous suite has.
func TestShapedCellsDeterministicAcrossWorkers(t *testing.T) {
	cells := []Cell{
		{Scheduler: "fifo", Shape: "2x4,1x8", Scenario: "rack-drain"},
		{Scheduler: "tiresias", Shape: "2x4,1x8", Scenario: "rack-drain"},
		{Scheduler: "fifo", Shape: "1x8,2x4", Scenario: "rack-drain"},
	}
	render := func(workers int) string {
		p := QuickParams()
		p.Workers = workers
		results, err := NewRunner(p).Results(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	base := render(1)
	if got := render(4); got != base {
		t.Fatalf("shaped cells differ between workers=1 and workers=4")
	}
	// The two shape orderings must actually disagree: they place the
	// 8-GPU box at opposite ends of the GPU axis and drain different
	// rack contents.
	var results []map[string]any
	if err := json.Unmarshal([]byte(base), &results); err != nil {
		t.Fatal(err)
	}
	if results[0]["Makespan"] == results[2]["Makespan"] &&
		results[0]["RackDrainEvictions"] == results[2]["RackDrainEvictions"] {
		t.Logf("note: shape orderings produced coincidentally equal headline metrics")
	}
}
