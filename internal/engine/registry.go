package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrUnknownExperiment is wrapped by GetExperiment for names absent from
// the registry; match it with errors.Is.
var ErrUnknownExperiment = errors.New("engine: unknown experiment")

// Experiment is one named, self-describing figure or table of the paper's
// evaluation.
type Experiment struct {
	// Name is the flag-facing identifier ("fig15", "table4", …).
	Name string
	// Title is a one-line description shown by -list.
	Title string
	// Cells declares the simulation runs the experiment consumes, so a
	// driver can prewarm the shared cache at full parallelism before
	// rendering anything. Nil when the experiment needs no simulation.
	Cells func(p Params) []Cell
	// Run renders the experiment (reading simulations through r's cache).
	// The context cancels pending simulation work at cell boundaries.
	Run func(ctx context.Context, r *Runner) (string, error)
}

var (
	expMu    sync.RWMutex
	expOrder []string
	expByKey = make(map[string]Experiment)
)

// RegisterExperiment adds an experiment to the global registry. The
// registration order is the order -exp all renders in, so register in
// paper order. Duplicate names panic.
func RegisterExperiment(e Experiment) {
	expMu.Lock()
	defer expMu.Unlock()
	if e.Name == "" || e.Run == nil {
		panic("engine: RegisterExperiment with empty name or nil Run")
	}
	if _, dup := expByKey[e.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of experiment %q — two experiments would silently shadow each other; pick a distinct name", e.Name))
	}
	expByKey[e.Name] = e
	expOrder = append(expOrder, e.Name)
}

// LookupExperiment returns the named experiment.
func LookupExperiment(name string) (Experiment, bool) {
	expMu.RLock()
	defer expMu.RUnlock()
	e, ok := expByKey[name]
	return e, ok
}

// GetExperiment returns the named experiment or an ErrUnknownExperiment
// error listing the registered names.
func GetExperiment(name string) (Experiment, error) {
	if e, ok := LookupExperiment(name); ok {
		return e, nil
	}
	return Experiment{}, fmt.Errorf("%w %q (known: %s)", ErrUnknownExperiment, name, strings.Join(ExperimentNames(), ", "))
}

// Experiments returns every registered experiment in registration order.
func Experiments() []Experiment {
	expMu.RLock()
	defer expMu.RUnlock()
	out := make([]Experiment, 0, len(expOrder))
	for _, name := range expOrder {
		out = append(out, expByKey[name])
	}
	return out
}

// ExperimentNames returns the registered names in registration order.
func ExperimentNames() []string {
	expMu.RLock()
	defer expMu.RUnlock()
	return append([]string(nil), expOrder...)
}

// DeclaredCells gathers the declared simulation dependencies of the given
// experiments, deduplicated, in first-declaration order and normalized
// against p — the prewarm set a driver hands to Runner.Results.
func DeclaredCells(exps []Experiment, p Params) []Cell {
	seen := make(map[Cell]bool)
	var cells []Cell
	for _, e := range exps {
		if e.Cells == nil {
			continue
		}
		for _, c := range e.Cells(p) {
			c = c.normalize(p)
			if seen[c] {
				continue
			}
			seen[c] = true
			cells = append(cells, c)
		}
	}
	return cells
}
