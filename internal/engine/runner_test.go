package engine

import (
	"context"
	"errors"
	"reflect"
	"repro/internal/simulator"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testParams are small enough that the full scheduler × capacity grid
// runs in well under a second per worker configuration.
func testParams(workers int) Params {
	return Params{
		Seed:         7,
		Jobs:         10,
		Interarrival: 25,
		Population:   6,
		Capacities:   []int{16, 32},
		ParamScale:   400,
		CFPoints:     8,
		Workers:      workers,
	}
}

func testCells() []Cell {
	cells := SweepCells([]string{"ones", "fifo", "sjf", "tiresias"}, []int{16, 32})
	// Scenario cells: non-stationary arrivals and capacity churn must be
	// just as deterministic as the fixed-world grid.
	cells = append(cells, ScenarioCells(
		[]string{"ones", "tiresias"},
		[]string{"diurnal", "node-failure", "spot"}, 32)...)
	return cells
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := testCells()
	var baseline []any
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r := NewRunner(testParams(workers))
		results, err := r.Results(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var snapshot []any
		for _, res := range results {
			snapshot = append(snapshot, res.Scheduler, res.Jobs, res.Makespan, res.Reconfigs)
		}
		if baseline == nil {
			baseline = snapshot
			continue
		}
		if !reflect.DeepEqual(baseline, snapshot) {
			t.Errorf("workers=%d: results differ from workers=1", workers)
		}
	}
}

func TestRunnerSeedChangesResults(t *testing.T) {
	cell := Cell{Scheduler: "ones", Capacity: 16}
	p1 := testParams(1)
	p2 := testParams(1)
	p2.Seed = 8
	r1, err := NewRunner(p1).Result(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(p2).Result(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Jobs, r2.Jobs) {
		t.Error("different master seeds produced identical per-job metrics")
	}
}

func TestRunnerCacheDedupes(t *testing.T) {
	r := NewRunner(testParams(4))
	var mu sync.Mutex
	ran := 0
	r.OnCell = func(Cell, *simulator.Result, time.Duration) {
		mu.Lock()
		ran++
		mu.Unlock()
	}
	cells := testCells()
	// Ask for everything twice in one batch, plus the normalized-alias
	// forms (Capacity 0 ⇒ 64, TraceSeed 0 ⇒ master) of a fresh cell.
	batch := append(append([]Cell{}, cells...), cells...)
	batch = append(batch, Cell{Scheduler: "fifo"}, Cell{Scheduler: "fifo", Capacity: 64, TraceSeed: 7})
	if _, err := r.Results(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Results(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	want := len(cells) + 1 // the grid plus the deduped 64-GPU FIFO cell
	if ran != want {
		t.Errorf("ran %d simulations, want %d (cache failed to dedupe)", ran, want)
	}
	if got := r.CachedCells(); got != want {
		t.Errorf("CachedCells = %d, want %d", got, want)
	}
}

func TestRunnerPairsTraces(t *testing.T) {
	r := NewRunner(testParams(2))
	results, err := r.Compare(context.Background(), 16, []string{"fifo", "sjf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Jobs) != len(results[1].Jobs) {
		t.Fatalf("paired comparison saw different job sets: %+v", results)
	}
}

func TestRunnerDefaultsEmptyCapacities(t *testing.T) {
	p := testParams(1)
	p.Capacities = nil
	r := NewRunner(p)
	if len(r.Params().Capacities) == 0 {
		t.Error("empty Capacities not defaulted; sweep experiments would panic")
	}
}

func TestRunnerUnknownScheduler(t *testing.T) {
	r := NewRunner(testParams(1))
	if _, err := r.Result(context.Background(), Cell{Scheduler: "bogus", Capacity: 16}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunnerComposedScenarioCell(t *testing.T) {
	r := NewRunner(testParams(2))
	res, err := r.Result(context.Background(), Cell{Scheduler: "fifo", Capacity: 32, Scenario: "diurnal+spot"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents == 0 {
		t.Error("composed scenario applied no spot capacity events")
	}
	// The composed cell's trace shares the plain-diurnal arrival spec:
	// one more cell under "diurnal" must reuse the generated trace.
	if _, err := r.Result(context.Background(), Cell{Scheduler: "fifo", Capacity: 32, Scenario: "diurnal"}); err != nil {
		t.Fatal(err)
	}
	if got := r.CachedTraces(); got != 1 {
		t.Errorf("CachedTraces = %d, want composed and plain diurnal to share one trace", got)
	}
}

func TestGetExperimentSentinel(t *testing.T) {
	if _, err := GetExperiment("fig999"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("GetExperiment error does not wrap sentinel: %v", err)
	}
}

func TestRunnerUnknownScenario(t *testing.T) {
	r := NewRunner(testParams(1))
	_, err := r.Result(context.Background(), Cell{Scheduler: "fifo", Capacity: 16, Scenario: "bogus"})
	if err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunnerSharesTracesAcrossScenarios(t *testing.T) {
	r := NewRunner(testParams(2))
	// steady and node-failure share the Poisson arrival spec ⇒ one
	// trace; diurnal adds a second.
	cells := []Cell{
		{Scheduler: "fifo", Capacity: 16},
		{Scheduler: "fifo", Capacity: 16, Scenario: "node-failure"},
		{Scheduler: "fifo", Capacity: 16, Scenario: "diurnal"},
	}
	if _, err := r.Results(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if got := r.CachedTraces(); got != 2 {
		t.Errorf("CachedTraces = %d, want 2 (steady+node-failure share, diurnal differs)", got)
	}
}

func TestRunnerNodeFailureEvictsButCompletes(t *testing.T) {
	r := NewRunner(testParams(2))
	res, err := r.Result(context.Background(), Cell{Scheduler: "tiresias", Capacity: 32, Scenario: "node-failure"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents == 0 {
		t.Error("node-failure scenario applied no capacity events")
	}
	if res.Evictions == 0 {
		t.Error("node-failure scenario evicted no jobs")
	}
	if res.Truncated {
		t.Errorf("%d jobs never finished under node failures", res.Unfinished)
	}
}

func TestScenarioSeedPairsAcrossSchedulers(t *testing.T) {
	a := Cell{Scheduler: "ones", Capacity: 64, TraceSeed: 1, Scenario: "node-failure"}
	b := Cell{Scheduler: "tiresias", Capacity: 64, TraceSeed: 1, Scenario: "node-failure"}
	if a.scenarioSeed(1) != b.scenarioSeed(1) {
		t.Error("schedulers facing the same scenario cell must draw the same capacity timeline")
	}
	c := Cell{Scheduler: "ones", Capacity: 64, TraceSeed: 1, Scenario: "spot"}
	if a.scenarioSeed(1) == c.scenarioSeed(1) {
		t.Error("different scenarios share a capacity-timeline seed")
	}
	if a.scenarioSeed(1) == a.scenarioSeed(2) {
		t.Error("scenario seed ignores the master seed")
	}
}

func TestCellSchedulerSeedStableAndDistinct(t *testing.T) {
	a := Cell{Scheduler: "ones", Capacity: 16, TraceSeed: 1}
	if a.schedulerSeed(1) != a.schedulerSeed(1) {
		t.Error("seed derivation is not a pure function of the key")
	}
	seen := map[int64]Cell{}
	for _, c := range []Cell{
		a,
		{Scheduler: "drl", Capacity: 16, TraceSeed: 1},
		{Scheduler: "ones", Capacity: 32, TraceSeed: 1},
		{Scheduler: "ones", Capacity: 16, TraceSeed: 2},
		{Scheduler: "ones", Capacity: 16, TraceSeed: 1, Scenario: "node-failure"},
	} {
		for _, master := range []int64{1, 2} {
			s := c.schedulerSeed(master)
			if s <= 0 {
				t.Errorf("cell %v master %d: non-positive seed %d", c, master, s)
			}
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision between %v and %v", prev, c)
			}
			seen[s] = c
		}
	}
}

func TestDeclaredCellsDedupes(t *testing.T) {
	exps := []Experiment{
		{Name: "a", Run: nopRun, Cells: func(p Params) []Cell {
			return []Cell{{Scheduler: "ones"}, {Scheduler: "fifo", Capacity: 16}}
		}},
		{Name: "b", Run: nopRun}, // no cells
		{Name: "c", Run: nopRun, Cells: func(p Params) []Cell {
			return []Cell{{Scheduler: "ones", Capacity: 64, TraceSeed: 7}} // alias of a's first
		}},
	}
	cells := DeclaredCells(exps, testParams(1))
	if len(cells) != 2 {
		t.Fatalf("DeclaredCells = %v, want 2 deduped cells", cells)
	}
	if cells[0].Capacity != 64 || cells[0].TraceSeed != 7 {
		t.Errorf("cells not normalized: %+v", cells[0])
	}
}

func nopRun(ctx context.Context, r *Runner) (string, error) { return "", nil }
