package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/servecache"
	"repro/internal/simulator"
)

func persistCells() []Cell {
	// Mix of plain, elastic-scenario and mixed-shape cells so the round
	// trip covers Evictions/CapacityEvents/RackDrainEvictions, not just
	// the steady-state fields.
	return []Cell{
		{Scheduler: "ones", Capacity: 16},
		{Scheduler: "fifo", Capacity: 16},
		{Scheduler: "tiresias", Capacity: 32, Scenario: "node-failure"},
		{Scheduler: "fifo", Shape: "2x4,1x8", Scenario: "rack-drain"},
	}
}

// TestRunnerPersistWarmRestart is the tentpole's persistence contract:
// a second runner over the same cache directory — a restarted daemon, a
// re-invoked CLI — serves every cell without executing a single
// simulation, and each served result is byte-identical to the cold one.
func TestRunnerPersistWarmRestart(t *testing.T) {
	dir := t.TempDir()
	p := testParams(2)
	p.RecordEvents = true
	cells := persistCells()

	newPersistRunner := func() *Runner {
		c, err := servecache.New(dir, func(string, ...any) {})
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(p)
		r.Persist = c
		return r
	}

	r1 := newPersistRunner()
	cold, err := r1.Results(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}

	r2 := newPersistRunner()
	var mu sync.Mutex
	ran := 0
	r2.OnCell = func(Cell, *simulator.Result, time.Duration) {
		mu.Lock()
		ran++
		mu.Unlock()
	}
	warm, err := r2.Results(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("%d cells simulated on a warm restart, want 0", ran)
	}
	for i := range cells {
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Errorf("cell %s: warm result differs structurally from cold", cells[i])
			continue
		}
		cb, err := json.Marshal(cold[i])
		if err != nil {
			t.Fatal(err)
		}
		wb, err := json.Marshal(warm[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(cb) != string(wb) {
			t.Errorf("cell %s: warm result not byte-identical to cold", cells[i])
		}
	}
	// The scenario cell must actually have exercised the elastic fields.
	if idx := 2; cold[idx].CapacityEvents == 0 {
		t.Error("node-failure cell saw no capacity events; round trip untested on elastic fields")
	}
}

// TestRunnerPersistMatchesUnpersisted: plugging a cache in changes
// performance, never results.
func TestRunnerPersistMatchesUnpersisted(t *testing.T) {
	p := testParams(2)
	cells := persistCells()
	plain, err := NewRunner(p).Results(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	c, err := servecache.New(t.TempDir(), func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	r.Persist = c
	cached, err := r.Results(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(plain[i], cached[i]) {
			t.Errorf("cell %s: persisted runner's result differs from a plain runner's", cells[i])
		}
	}
}

// TestRunnerPersistSharedAcrossRunners: two live runners over one cache
// compute each cell once between them (the daemon's cross-session
// sharing), even with no disk involved.
func TestRunnerPersistSharedAcrossRunners(t *testing.T) {
	c, err := servecache.New("", func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(2)
	cells := persistCells()
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 2; i++ {
		r := NewRunner(p)
		r.Persist = c
		r.OnCell = func(Cell, *simulator.Result, time.Duration) {
			mu.Lock()
			ran++
			mu.Unlock()
		}
		if _, err := r.Results(context.Background(), cells); err != nil {
			t.Fatal(err)
		}
	}
	if ran != len(cells) {
		t.Errorf("two runners sharing a cache simulated %d cells, want %d", ran, len(cells))
	}
	if st := c.Stats(); st.Computes != len(cells) || st.MemoryHits != len(cells) {
		t.Errorf("cache stats = %+v, want %d computes and %d memory hits", st, len(cells), len(cells))
	}
}

// TestCellKeyNormalizesAndSeparates: default and explicit spellings of a
// cell share one key; any result-shaping difference separates keys.
func TestCellKeyNormalizes(t *testing.T) {
	p := NewRunner(testParams(1)).Params()
	alias := CellKey(p, Cell{Scheduler: "fifo"})
	explicit := CellKey(p, Cell{Scheduler: "fifo", Capacity: 64, TraceSeed: p.Seed, Scenario: "steady", GPUsPer: 4})
	if alias != explicit {
		t.Errorf("normalized spellings differ:\n  %s\n  %s", alias, explicit)
	}
	seen := map[string]string{}
	add := func(name, key string) {
		if prev, dup := seen[key]; dup {
			t.Errorf("key collision between %s and %s", prev, name)
		}
		seen[key] = name
	}
	add("base", alias)
	add("sched", CellKey(p, Cell{Scheduler: "sjf"}))
	add("cap", CellKey(p, Cell{Scheduler: "fifo", Capacity: 32}))
	add("gpusper", CellKey(p, Cell{Scheduler: "fifo", GPUsPer: 8}))
	add("trace", CellKey(p, Cell{Scheduler: "fifo", TraceSeed: 99}))
	add("scenario", CellKey(p, Cell{Scheduler: "fifo", Scenario: "diurnal"}))
	p2 := p
	p2.Seed = 42
	add("seed", CellKey(p2, Cell{Scheduler: "fifo", TraceSeed: p.Seed}))
	p3 := p
	p3.Population = 99
	add("population", CellKey(p3, Cell{Scheduler: "fifo"}))
	p4 := p
	p4.RecordEvents = true
	add("events", CellKey(p4, Cell{Scheduler: "fifo"}))
}
