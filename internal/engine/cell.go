package engine

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

// Cell is the unit of simulation work and the shared-cache key: one
// scheduler replaying one trace on one cluster topology under one
// scenario (how the world changes during the run).
type Cell struct {
	Scheduler string // schedulers registry name ("ones", "drl", …)
	Capacity  int    // initial total GPUs (0 ⇒ the paper's 64-GPU Longhorn testbed)
	TraceSeed int64  // workload trace seed (0 ⇒ the master seed)
	Scenario  string // scenario registry name ("" ⇒ "steady")
	// GPUsPer is the per-server GPU count shaping a homogeneous topology
	// (0 ⇒ 4, the paper's Longhorn servers). Capacity is rounded up to
	// whole servers. Ignored when Shape is set.
	GPUsPer int
	// Shape, when non-empty, is a heterogeneous cluster shape in
	// cluster.ParseShape syntax ("4x8,2x4": per-server GPU counts, one
	// rack per comma group). It overrides Capacity/GPUsPer; the shape
	// string is taken verbatim as a cache-key dimension, so "4x8,2x4"
	// and "2x4,4x8" are distinct cells — deliberately, since group order
	// fixes the GPU axis and the rack ids and therefore the results.
	Shape string
	// Autoscaler, when non-empty, names an autoscale registry policy
	// ("reactive-conservative", …) whose controller runs against the cell
	// as a closed loop, growing and shrinking the cluster in reaction to
	// observed pressure. Empty ⇒ no controller (capacity follows the
	// scenario alone).
	Autoscaler string
}

// String renders the cell for progress and error reporting.
func (c Cell) String() string {
	s := ""
	switch {
	case c.Shape != "":
		s = fmt.Sprintf("%s/%s/trace%d/%s", c.Scheduler, c.Shape, c.TraceSeed, c.Scenario)
	case c.GPUsPer != 0 && c.GPUsPer != 4:
		s = fmt.Sprintf("%s/%dgpu(%dper)/trace%d/%s", c.Scheduler, c.Capacity, c.GPUsPer, c.TraceSeed, c.Scenario)
	default:
		s = fmt.Sprintf("%s/%dgpu/trace%d/%s", c.Scheduler, c.Capacity, c.TraceSeed, c.Scenario)
	}
	if c.Autoscaler != "" {
		s += "/" + c.Autoscaler
	}
	return s
}

// normalize resolves the cell's zero-value defaults against the params.
func (c Cell) normalize(p Params) Cell {
	if c.Shape != "" {
		// A shaped cell carries its size in the shape itself; Capacity is
		// derived for reporting and GPUsPer stays out of the key space.
		// The shape string is re-rendered canonically ("4x8, 2x4" ⇒
		// "4x8,2x4") so spelling variants of one topology share a cell,
		// a cache key and a seed; group ORDER is preserved — orderings
		// are distinct topologies, deliberately keyed apart.
		if topo, err := cluster.ParseShape(c.Shape); err == nil {
			c.Capacity = topo.TotalGPUs()
			c.Shape = topo.Shape()
		}
		c.GPUsPer = 0
	} else {
		if c.Capacity <= 0 {
			c.Capacity = cluster.Longhorn().TotalGPUs()
		}
		if c.GPUsPer <= 0 {
			c.GPUsPer = 4
		}
	}
	if c.TraceSeed == 0 {
		c.TraceSeed = p.Seed
	}
	if c.Scenario == "" {
		c.Scenario = scenario.Steady
	}
	return c
}

// Topology maps the cell to its cluster shape. With Shape set, the shape
// string is parsed (an invalid shape errors here, surfacing on the first
// run of the cell); otherwise Capacity is cut into homogeneous GPUsPer-GPU
// servers (default 4, as on the paper's Longhorn testbed — capacity 64 ⇒
// exactly cluster.Longhorn()).
func (c Cell) Topology() (cluster.Topology, error) {
	if c.Shape != "" {
		return cluster.ParseShape(c.Shape)
	}
	per := c.GPUsPer
	if per <= 0 {
		per = 4
	}
	return cluster.Uniform((c.Capacity+per-1)/per, per), nil
}

// deriveSeed turns a salted cell key into an RNG seed. The derivation
// depends only on the key — never on execution order — so results are
// identical at any worker count. FNV-1a mixes the key; a splitmix64
// finalizer scatters related master seeds.
func deriveSeed(master int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := uint64(master)*0x9E3779B97F4A7C15 ^ h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z &^ (1 << 63)) // math/rand seeds must be non-negative-friendly
	if s == 0 {
		s = 1
	}
	return s
}

// topoKey renders the topology part of a seed-derivation key. The 4-GPU
// default deliberately contributes only the capacity, so seeds derived
// before the GPUsPer dimension existed are unchanged; a heterogeneous
// shape contributes its verbatim shape string, a namespace no
// homogeneous cell can collide with.
func (c Cell) topoKey() string {
	if c.Shape != "" {
		return c.Shape
	}
	if c.GPUsPer != 0 && c.GPUsPer != 4 {
		return fmt.Sprintf("%d/%d", c.Capacity, c.GPUsPer)
	}
	return fmt.Sprintf("%d", c.Capacity)
}

// schedulerSeed derives the cell's scheduler RNG seed from the master
// seed and the full cell key.
func (c Cell) schedulerSeed(master int64) int64 {
	return deriveSeed(master, fmt.Sprintf("%s|%s|%d|%s", c.Scheduler, c.topoKey(), c.TraceSeed, c.Scenario))
}

// scenarioSeed derives the capacity-timeline seed. It deliberately
// excludes the scheduler: every scheduler facing this scenario cell sees
// the identical sequence of failures and preemptions, preserving the
// paired comparisons the Wilcoxon analysis relies on.
func (c Cell) scenarioSeed(master int64) int64 {
	return deriveSeed(master, fmt.Sprintf("scenario|%s|%d|%s", c.topoKey(), c.TraceSeed, c.Scenario))
}

// drainSeed derives the stochastic rack-drain process seed. Like
// scenarioSeed it excludes the scheduler (paired comparisons) but uses
// its own namespace so the drain draws are independent of the
// fail/preempt timeline draws.
func (c Cell) drainSeed(master int64) int64 {
	return deriveSeed(master, fmt.Sprintf("drain|%s|%d|%s", c.topoKey(), c.TraceSeed, c.Scenario))
}

// autoscalerSeed derives the reactive controller's seed (scale-down
// server picks). It excludes the scheduler so paired comparisons face a
// controller with the identical random tape — though, the loop being
// closed, different schedulers may still drive it to different actions.
func (c Cell) autoscalerSeed(master int64) int64 {
	return deriveSeed(master, fmt.Sprintf("autoscale|%s|%d|%s|%s", c.topoKey(), c.TraceSeed, c.Scenario, c.Autoscaler))
}

// CellKey renders the canonical persistent-cache key for a cell under
// the given params: every parameter that shapes the cell's result, in a
// fixed order, after resolving the cell's zero-value defaults — so a
// defaulted and an explicit spelling of the same cell share one entry.
// Parameters that only affect throughput (Workers) or experiment
// rendering (Capacities, ParamScale, CFPoints) are deliberately absent.
// A heterogeneous shape appends a |shape= dimension and a reactive
// autoscaler an |as= dimension; cells using neither keep the exact key
// they had before those dimensions existed, so a cache populated by an
// earlier build keeps serving them. The result-format version lives in
// the cache layer (servecache), not here, so a format bump invalidates
// files without renaming keys.
func CellKey(p Params, c Cell) string {
	c = c.normalize(p)
	key := fmt.Sprintf("cell|seed=%d|jobs=%d|ia=%g|maxgpus=%d|pop=%d|theta=%g|events=%t|sched=%s|cap=%d|per=%d|trace=%d|scn=%s",
		p.Seed, p.Jobs, p.Interarrival, p.MaxGPUs, p.Population, p.MutationRate, p.RecordEvents,
		c.Scheduler, c.Capacity, c.GPUsPer, c.TraceSeed, c.Scenario)
	if c.Shape != "" {
		key += "|shape=" + c.Shape
	}
	if c.Autoscaler != "" {
		key += "|as=" + c.Autoscaler
	}
	return key
}

// ComparisonCells returns one cell per scheduler at the given capacity,
// all sharing the master trace seed.
func ComparisonCells(scheds []string, capacity int) []Cell {
	cells := make([]Cell, len(scheds))
	for i, s := range scheds {
		cells[i] = Cell{Scheduler: s, Capacity: capacity}
	}
	return cells
}

// SweepCells returns the scheduler × capacity cross product, scheduler-
// major (all capacities of the first scheduler first).
func SweepCells(scheds []string, capacities []int) []Cell {
	cells := make([]Cell, 0, len(scheds)*len(capacities))
	for _, s := range scheds {
		for _, cap := range capacities {
			cells = append(cells, Cell{Scheduler: s, Capacity: cap})
		}
	}
	return cells
}

// ShapeCells returns the shape × scheduler cross product under the given
// scenario, shape-major (all schedulers on the first shape first — the
// row order of the hetero sweep). An empty shape string means the
// default homogeneous 64-GPU Longhorn cluster. All cells share the
// master trace seed, so every (shape, scheduler) pair replays the
// identical job stream.
func ShapeCells(scheds, shapes []string, scenarioName string) []Cell {
	cells := make([]Cell, 0, len(scheds)*len(shapes))
	for _, shape := range shapes {
		for _, s := range scheds {
			cells = append(cells, Cell{Scheduler: s, Shape: shape, Scenario: scenarioName})
		}
	}
	return cells
}

// AutoscalerCells returns the scenario × autoscaler × scheduler cross
// product at the given capacity: scenario-major, then autoscaler (an
// empty autoscaler name is the controller-free baseline), then
// scheduler — the row blocks of the reactive-sweep table. All cells
// share the master trace seed, so every (scenario, autoscaler) pair of
// one scheduler replays the identical job stream.
func AutoscalerCells(scheds, autoscalers, scenarios []string, capacity int) []Cell {
	cells := make([]Cell, 0, len(scheds)*len(autoscalers)*len(scenarios))
	for _, scn := range scenarios {
		for _, as := range autoscalers {
			for _, s := range scheds {
				cells = append(cells, Cell{Scheduler: s, Capacity: capacity, Scenario: scn, Autoscaler: as})
			}
		}
	}
	return cells
}

// ScenarioCells returns the scenario × scheduler cross product at the
// given capacity, scenario-major (all schedulers under the first
// scenario first — the row order of the scenario-sweep table). All cells
// share the master trace seed; scenarios with identical arrival specs
// replay the identical trace.
func ScenarioCells(scheds, scenarios []string, capacity int) []Cell {
	cells := make([]Cell, 0, len(scheds)*len(scenarios))
	for _, scn := range scenarios {
		for _, s := range scheds {
			cells = append(cells, Cell{Scheduler: s, Capacity: capacity, Scenario: scn})
		}
	}
	return cells
}
