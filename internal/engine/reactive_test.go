package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// Pre-reactive cells must keep the exact cache keys of earlier builds:
// the autoscaler dimension appends only when set.
func TestCellKeyAutoscalerAppendsDimension(t *testing.T) {
	p := DefaultParams()
	plain := CellKey(p, Cell{Scheduler: "ones"})
	if strings.Contains(plain, "|as=") {
		t.Errorf("controller-free key grew an autoscaler dimension: %q", plain)
	}
	reactive := CellKey(p, Cell{Scheduler: "ones", Autoscaler: "reactive-aggressive"})
	if reactive != plain+"|as=reactive-aggressive" {
		t.Errorf("reactive key = %q, want %q + |as=reactive-aggressive", reactive, plain)
	}
	shaped := CellKey(p, Cell{Scheduler: "ones", Shape: "2x4,2x4", Autoscaler: "reactive-conservative"})
	if !strings.HasSuffix(shaped, "|shape=2x4,2x4|as=reactive-conservative") {
		t.Errorf("shape and autoscaler dimensions out of order: %q", shaped)
	}
}

// reactiveCells is the determinism workload: controller-free baselines,
// all three built-in policies, and the stochastic drain scenario, over
// reactive-friendly arrivals on a deliberately tight cluster.
func reactiveCells() []Cell {
	cells := AutoscalerCells(
		[]string{"ones", "tiresias"},
		[]string{"", "reactive-conservative", "reactive-aggressive", "reactive-emergency"},
		[]string{"diurnal", "burst"}, 16)
	// Stochastic rack drains need more than one rack to be interesting.
	cells = append(cells,
		Cell{Scheduler: "ones", Shape: "2x4,2x4", Scenario: "mtbf-drain"},
		Cell{Scheduler: "tiresias", Shape: "2x4,2x4", Scenario: "mtbf-drain", Autoscaler: "reactive-aggressive"},
	)
	return cells
}

// Reactive and drain cells must be byte-identical at any worker count —
// the controller runs inside the single-threaded simulation loop, so
// engine parallelism cannot leak into its observations.
func TestReactiveCellsDeterministicAcrossWorkers(t *testing.T) {
	cells := reactiveCells()
	var golden []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		r := NewRunner(testParams(workers))
		results, err := r.Results(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if string(raw) != string(golden) {
			t.Errorf("workers=%d changed reactive Result bytes", workers)
		}
	}
}

// Evolution parallelism is pure throughput for reactive cells too: the
// ONES search fans out inside one Decide call, strictly between two
// controller observations.
func TestReactiveEvolutionParallelismByteIdentical(t *testing.T) {
	cell := Cell{Scheduler: "ones", Capacity: 16, Scenario: "burst", Autoscaler: "reactive-aggressive"}
	var golden []byte
	for _, par := range []int{1, 0} {
		p := testParams(2)
		p.EvolutionParallelism = par
		res, err := NewRunner(p).Result(context.Background(), cell)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = raw
			continue
		}
		if string(raw) != string(golden) {
			t.Errorf("evolution parallelism %d changed the reactive Result bytes", par)
		}
	}
}

// The acceptance loop: a reactive cell — no pre-planned timeline
// anywhere — must show controller-driven growth AND shrinkage, and the
// controller-free twin none.
func TestReactiveCellProducesScaleActivity(t *testing.T) {
	p := testParams(2)
	p.Interarrival = 8 // overload the 2-server cluster so pressure sustains
	r := NewRunner(p)
	reactive, err := r.Result(context.Background(),
		Cell{Scheduler: "tiresias", Capacity: 8, Scenario: "burst", Autoscaler: "reactive-aggressive"})
	if err != nil {
		t.Fatal(err)
	}
	if reactive.ScaleUps == 0 || reactive.ScaleDowns == 0 {
		t.Errorf("reactive run: ScaleUps=%d ScaleDowns=%d, want both nonzero (makespan %.0f, events %d)",
			reactive.ScaleUps, reactive.ScaleDowns, reactive.Makespan, reactive.CapacityEvents)
	}
	if reactive.AutoscaleEvents != reactive.ScaleUps+reactive.ScaleDowns {
		t.Errorf("AutoscaleEvents %d != %d + %d", reactive.AutoscaleEvents, reactive.ScaleUps, reactive.ScaleDowns)
	}
	baseline, err := r.Result(context.Background(),
		Cell{Scheduler: "tiresias", Capacity: 8, Scenario: "burst"})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.AutoscaleEvents != 0 || baseline.ScaleUps != 0 || baseline.ScaleDowns != 0 {
		t.Errorf("controller-free baseline reports autoscaler activity: %+v", baseline)
	}
	if reflect.DeepEqual(baseline.Jobs, reactive.Jobs) {
		t.Error("controller had no effect on per-job outcomes")
	}
}

// mtbf-drain through the engine: the stochastic rack-failure process
// actually drains racks, deterministically, and pairs across schedulers
// (same drainSeed ⇒ same drain times).
func TestMTBFDrainCellThroughEngine(t *testing.T) {
	p := testParams(2)
	// Stretch the run well past the scenario's ~1200 s mean time between
	// drains, so the process actually fires inside the makespan.
	p.Jobs = 40
	r := NewRunner(p)
	res, err := r.Result(context.Background(), Cell{Scheduler: "tiresias", Shape: "2x4,2x4", Scenario: "mtbf-drain"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents == 0 {
		t.Error("mtbf-drain produced no topology changes")
	}
	if res.ScaleUps != 0 || res.ScaleDowns != 0 {
		t.Errorf("chaos drains counted as autoscaler activity: %+v", res)
	}
	again, err := NewRunner(p).Result(context.Background(), Cell{Scheduler: "tiresias", Shape: "2x4,2x4", Scenario: "mtbf-drain"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("mtbf-drain cell is not deterministic across fresh runners")
	}
}

// An unknown autoscaler surfaces as autoscale.ErrUnknown from the cell
// run, like unknown schedulers and scenarios do.
func TestRunnerUnknownAutoscaler(t *testing.T) {
	r := NewRunner(testParams(1))
	_, err := r.Result(context.Background(), Cell{Scheduler: "ones", Capacity: 16, Autoscaler: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown autoscaler") {
		t.Fatalf("err = %v, want unknown-autoscaler", err)
	}
}
