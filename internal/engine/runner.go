package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// Runner executes simulation cells across a bounded worker pool and
// memoizes every result. It is safe for concurrent use; each distinct
// cell runs exactly once per Runner even when several experiments request
// it at the same time.
//
// Every entry point takes a context.Context. Cancellation takes effect
// both between cells and inside them: cells that have not yet claimed a
// worker slot never start, cells mid-simulation abort within ~1k
// simulation events (the simulator polls the context; see
// simulator.RunContext), and batch calls drain their in-flight work
// before returning, so no worker goroutine outlives the call. A cell
// aborted by cancellation is NOT cached — rerunning with a live context
// produces exactly the results an uncancelled run would have.
type Runner struct {
	params  Params
	workers int
	sem     chan struct{}

	// Persist, when set before the first use, backs the in-memory cell
	// cache with a shared result cache (see internal/servecache): results
	// are recalled from and written through to it, so they survive this
	// Runner — and, with a disk-backed cache, this process. The Runner
	// keys it by CellKey, which folds in every result-shaping parameter.
	Persist Cache

	// Obs, when set before the first use, receives out-of-band runtime
	// telemetry: cells started/completed/cancelled/failed, worker-pool
	// occupancy, queue depth and a per-cell wall-time histogram (see
	// internal/obs and DESIGN.md "Observability"). Metrics never touch
	// the simulation — results are byte-identical with Obs set or nil —
	// and a nil Obs costs a single nil check per cell.
	Obs *obs.Registry

	// OnCellStart, when set before the first Results call, is invoked
	// just before a cell begins simulating (cache hits do not fire it).
	// Calls may come from multiple goroutines.
	OnCellStart func(cell Cell)
	// OnCell, when set before the first Results call, is invoked after
	// each cell actually simulates (cache hits do not fire it), with the
	// cell's result. Calls may come from multiple goroutines; the result
	// is shared and must not be mutated.
	OnCell func(cell Cell, res *simulator.Result, elapsed time.Duration)

	mu     sync.Mutex
	cells  map[Cell]*cellEntry
	traces map[traceKey]*traceEntry

	obsOnce sync.Once
	oh      *runnerObs
}

// runnerObs holds the Runner's instrument handles. The zero value —
// every handle nil — is a valid no-op set: a Runner without a Registry
// records against noRunnerObs and every site is a single-branch no-op.
type runnerObs struct {
	started   *obs.Counter
	completed *obs.Counter
	cancelled *obs.Counter
	failed    *obs.Counter
	busy      *obs.Gauge
	queued    *obs.Gauge
	cellTime  *obs.Histogram
}

// noRunnerObs is the shared no-op handle set for uninstrumented Runners.
var noRunnerObs runnerObs

// obsHandles lazily registers the engine instruments against r.Obs on
// first use (a shared all-nil set when no registry is set, so call sites
// never branch).
func (r *Runner) obsHandles() *runnerObs {
	r.obsOnce.Do(func() {
		reg := r.Obs
		if reg == nil {
			r.oh = &noRunnerObs
			return
		}
		r.oh = &runnerObs{
			started:   reg.Counter("engine_cells_started_total", "Simulation cells that began executing (cache hits excluded)."),
			completed: reg.Counter("engine_cells_completed_total", "Simulation cells that finished successfully."),
			cancelled: reg.Counter("engine_cells_cancelled_total", "Simulation cells aborted by context cancellation."),
			failed:    reg.Counter("engine_cells_failed_total", "Simulation cells that failed with a non-cancellation error."),
			busy:      reg.Gauge("engine_workers_busy", "Worker-pool slots currently executing a cell."),
			queued:    reg.Gauge("engine_queue_depth", "Cells waiting for a free worker-pool slot."),
			cellTime:  reg.Histogram("engine_cell_seconds", "Wall time to simulate one cell.", nil),
		}
		reg.Gauge("engine_workers", "Configured worker-pool size.").Set(float64(r.workers))
	})
	return r.oh
}

// traceKey identifies a memoized trace: the seed plus the arrival
// process that shaped it. Scenarios sharing an arrival spec (steady and
// every pure-capacity scenario) share one trace, so cross-scenario
// comparisons of capacity effects stay paired on identical job streams.
type traceKey struct {
	seed    int64
	arrival scenario.ArrivalSpec
}

// cellEntry is a cancellation-aware singleflight slot: the goroutine
// that inserts the entry computes it and closes done; everyone else
// waits on done or their own context, whichever ends first.
type cellEntry struct {
	done chan struct{}
	res  *simulator.Result
	err  error
}

type traceEntry struct {
	once  sync.Once
	trace *workload.Trace
	err   error
}

// NewRunner returns a Runner over the given params. Unset fields default
// individually (to DefaultParams values), so a caller may set only the
// fields it cares about.
func NewRunner(p Params) *Runner {
	def := DefaultParams()
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.Jobs <= 0 {
		p.Jobs = def.Jobs
	}
	if p.Interarrival <= 0 {
		p.Interarrival = def.Interarrival
	}
	if p.MaxGPUs <= 0 {
		p.MaxGPUs = def.MaxGPUs
	}
	if p.Population <= 0 {
		p.Population = def.Population
	}
	if len(p.Capacities) == 0 {
		p.Capacities = def.Capacities
	}
	if p.ParamScale <= 0 {
		p.ParamScale = def.ParamScale
	}
	if p.CFPoints <= 0 {
		p.CFPoints = def.CFPoints
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		params:  p,
		workers: workers,
		sem:     make(chan struct{}, workers),
		cells:   make(map[Cell]*cellEntry),
		traces:  make(map[traceKey]*traceEntry),
	}
}

// Params returns the runner's experiment parameters.
func (r *Runner) Params() Params { return r.params }

// Workers returns the effective worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// CachedCells reports how many distinct cells have been simulated (or
// are currently simulating).
func (r *Runner) CachedCells() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// CachedOf reports how many of the given cells are already successfully
// simulated in the cache — the cells a new batch will satisfy without
// executing anything. In-flight and failed cells do not count.
func (r *Runner) CachedOf(cells []Cell) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range cells {
		e, ok := r.cells[c.normalize(r.params)]
		if !ok {
			continue
		}
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// CachedTraces reports how many distinct traces have been generated —
// one per (seed, arrival-process) pair, however many scenarios share it.
func (r *Runner) CachedTraces() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// isCtxErr reports whether err is the computing goroutine's context
// giving up, as opposed to the simulation itself failing.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Result runs (or recalls) a single cell. The worker-pool slot is
// acquired inside the flight, so cache hits return immediately and
// goroutines waiting on another's in-flight computation of the same cell
// do not hold slots the pool could be simulating with. A caller whose
// context ends stops waiting at once. The claim/wait/evict-on-cancel
// protocol is mirrored by servecache.Cache.Do (the shared cache behind
// Persist); a change to either's cancellation semantics must be made in
// both.
func (r *Runner) Result(ctx context.Context, cell Cell) (*simulator.Result, error) {
	cell = cell.normalize(r.params)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.mu.Lock()
		e, ok := r.cells[cell]
		if !ok {
			e = &cellEntry{done: make(chan struct{})}
			r.cells[cell] = e
			r.mu.Unlock()
			e.res, e.err = r.runCell(ctx, cell)
			if e.err != nil && isCtxErr(e.err) {
				// Do not poison the cache with a cancellation: forget the
				// entry so a later call with a live context recomputes and
				// an uncancelled rerun stays byte-identical.
				r.mu.Lock()
				delete(r.cells, cell)
				r.mu.Unlock()
			}
			close(e.done)
		} else {
			r.mu.Unlock()
		}
		select {
		case <-e.done:
			if e.err != nil {
				if isCtxErr(e.err) && ctx.Err() == nil {
					// The computing goroutine was cancelled but we are
					// alive: the entry is gone, claim a fresh one.
					continue
				}
				return nil, fmt.Errorf("engine: cell %s: %w", cell, e.err)
			}
			return e.res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Results fans the cells across the worker pool and returns their results
// in input order. Cells already cached return instantly; the rest run at
// most Workers at a time. The batch drains before returning — on
// cancellation, cells not yet started are skipped, cells mid-simulation
// finish, and only then does the call return (with ctx.Err unless a
// simulation failed first) — so no worker goroutine outlives the call.
func (r *Runner) Results(ctx context.Context, cells []Cell) ([]*simulator.Result, error) {
	out := make([]*simulator.Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			out[i], errs[i] = r.Result(ctx, c)
		}(i, c)
	}
	wg.Wait()
	// A real simulation failure beats the ambient cancellation error.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Compare runs every scheduler at the given capacity against the shared
// master-seed trace — the paired comparison of Figures 15/17/18.
func (r *Runner) Compare(ctx context.Context, capacity int, scheds []string) ([]*simulator.Result, error) {
	return r.Results(ctx, ComparisonCells(scheds, capacity))
}

// trace returns the memoized workload trace for a (seed, arrival) pair.
func (r *Runner) trace(seed int64, arrival scenario.ArrivalSpec) (*workload.Trace, error) {
	key := traceKey{seed: seed, arrival: arrival}
	r.mu.Lock()
	e, ok := r.traces[key]
	if !ok {
		e = &traceEntry{}
		r.traces[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		cfg := r.params.TraceConfig(seed)
		cfg.Arrival = arrival
		e.trace, e.err = workload.Generate(cfg)
	})
	return e.trace, e.err
}

// Cache is a pluggable cross-runner result cache (implemented by
// internal/servecache). Do returns the cached result for key or computes,
// stores and returns a fresh one; concurrent calls with the same key are
// deduplicated (singleflight) across every Runner sharing the cache. A
// compute aborted by ctx cancellation must not be stored.
type Cache interface {
	Do(ctx context.Context, key string, compute func() (*simulator.Result, error)) (*simulator.Result, error)
}

// runCell produces one cell's result: through the shared persistent
// cache when one is plugged in (a cache hit consumes no worker slot),
// directly otherwise.
func (r *Runner) runCell(ctx context.Context, c Cell) (*simulator.Result, error) {
	if r.Persist == nil {
		return r.simulate(ctx, c)
	}
	return r.Persist.Do(ctx, CellKey(r.params, c), func() (*simulator.Result, error) {
		return r.simulate(ctx, c)
	})
}

// simulate executes one simulation: wait for a worker slot (or the
// context), resolve the scenario, generate (or recall) the trace its
// arrival process shapes, build the scheduler from the registry with the
// cell-derived seed, expand the capacity timeline, simulate. Out of
// band, it records the cell lifecycle — queued → trace-gen → simulate →
// done — as engine metrics and, when the context carries a trace (see
// obs.StartSpan), as a span tree.
func (r *Runner) simulate(ctx context.Context, c Cell) (res *simulator.Result, err error) {
	oh := r.obsHandles()
	ctx, cellSpan := obs.StartSpan(ctx, "cell "+c.String())
	defer func() {
		if err != nil {
			if isCtxErr(err) {
				cellSpan.Annotate("cancelled", "true")
			} else {
				cellSpan.Annotate("error", err.Error())
			}
		}
		cellSpan.End()
	}()
	queueSpan := cellSpan.StartChild("queued")
	oh.queued.Inc()
	select {
	case r.sem <- struct{}{}:
		oh.queued.Dec()
	case <-ctx.Done():
		oh.queued.Dec()
		queueSpan.End()
		return nil, ctx.Err()
	}
	queueSpan.End()
	oh.busy.Inc()
	defer func() {
		oh.busy.Dec()
		<-r.sem
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//ones:allow detrand obs-only wall-time: elapsed feeds the cell-seconds histogram and OnCell progress callbacks, never the Result
	start := time.Now()
	genSpan := cellSpan.StartChild("trace-gen")
	scn, err := scenario.Get(c.Scenario)
	if err != nil {
		genSpan.End()
		return nil, err
	}
	trace, err := r.trace(c.TraceSeed, scn.Arrival)
	genSpan.End()
	if err != nil {
		return nil, err
	}
	tcfg := r.params.TraceConfig(c.TraceSeed)
	oh.started.Inc()
	if r.OnCellStart != nil {
		r.OnCellStart(c)
	}
	// Workers is the total CPU budget and cells are the primary unit of
	// parallelism, but a batch with fewer cells than workers would leave
	// the surplus idle — so the slots still free when this cell starts
	// flow into the cell as intra-cell parallelism for ONES's evolution
	// loop (its candidate generation fans out over goroutines). This is
	// safe because evolution results are identical at any parallelism:
	// candidate randomness is pre-seeded serially from the master RNG
	// before the fan-out and selection ties break by candidate index, so
	// the champion — and every Result byte — matches the serial run. The
	// snapshot of free slots is taken once per cell; a busy pool yields
	// 1 (serial, never oversubscribing), a lone cell gets every core.
	evoPar := r.params.EvolutionParallelism
	if evoPar <= 0 {
		// One slot is ours (already acquired); the rest of the budget is
		// whatever no other cell has claimed.
		evoPar = r.workers - len(r.sem) + 1
		if evoPar < 1 {
			evoPar = 1
		}
	}
	simSpan := cellSpan.StartChild("simulate")
	simSpan.Annotate("scheduler", c.Scheduler)
	sched, err := schedulers.New(c.Scheduler, schedulers.Config{
		Seed:         c.schedulerSeed(r.params.Seed),
		ArrivalRate:  tcfg.ArrivalRate(),
		Population:   r.params.Population,
		MutationRate: r.params.MutationRate,
		Parallelism:  evoPar,
		Obs:          r.Obs,
		Span:         simSpan,
	})
	if err != nil {
		simSpan.End()
		return nil, err
	}
	topo, err := c.Topology()
	if err != nil {
		simSpan.End()
		return nil, err
	}
	simCfg := simulator.DefaultConfig(trace)
	simCfg.Topo = topo
	simCfg.RecordEvents = r.params.RecordEvents
	// The capacity timeline is seeded from the cell key minus the
	// scheduler, so paired comparisons face the identical world.
	timeline := scn.Capacity.Timeline(c.scenarioSeed(r.params.Seed), simCfg.MaxTime)
	simCfg.MinServers = scn.Capacity.MinServers
	if c.Autoscaler == "" && scn.Capacity.DrainMTBF <= 0 {
		// No state-dependent producers: the precomputed timeline replays
		// on the exact pre-source path, byte-for-byte.
		simCfg.Capacity = timeline
	} else {
		var srcs []scenario.CapacitySource
		if len(timeline) > 0 {
			srcs = append(srcs, scenario.NewTimelineSource(timeline))
		}
		if scn.Capacity.DrainMTBF > 0 {
			srcs = append(srcs, scenario.NewDrainMTBFSource(scn.Capacity, c.drainSeed(r.params.Seed), simCfg.MaxTime))
		}
		if c.Autoscaler != "" {
			policy, perr := autoscale.Get(c.Autoscaler)
			if perr != nil {
				simSpan.End()
				return nil, perr
			}
			srcs = append(srcs, autoscale.NewController(policy, c.autoscalerSeed(r.params.Seed), r.Obs))
		}
		simCfg.Source = scenario.Sources(srcs...)
	}
	res, err = simulator.RunContext(ctx, simCfg, sched)
	simSpan.End()
	elapsed := time.Since(start) //ones:allow detrand obs-only wall-time measurement paired with the start read above
	if err != nil {
		if isCtxErr(err) {
			oh.cancelled.Inc()
		} else {
			oh.failed.Inc()
		}
		return nil, err
	}
	oh.completed.Inc()
	oh.cellTime.Observe(elapsed.Seconds())
	if r.OnCell != nil {
		r.OnCell(c, res, elapsed)
	}
	return res, nil
}
