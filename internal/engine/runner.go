package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// Runner executes simulation cells across a bounded worker pool and
// memoizes every result. It is safe for concurrent use; each distinct
// cell runs exactly once per Runner even when several experiments request
// it at the same time.
type Runner struct {
	params  Params
	workers int
	sem     chan struct{}

	// OnCell, when set before the first Results call, is invoked after
	// each cell actually simulates (cache hits do not fire it). Calls may
	// come from multiple goroutines.
	OnCell func(cell Cell, elapsed time.Duration)

	mu     sync.Mutex
	cells  map[Cell]*cellEntry
	traces map[traceKey]*traceEntry
}

// traceKey identifies a memoized trace: the seed plus the arrival
// process that shaped it. Scenarios sharing an arrival spec (steady and
// every pure-capacity scenario) share one trace, so cross-scenario
// comparisons of capacity effects stay paired on identical job streams.
type traceKey struct {
	seed    int64
	arrival scenario.ArrivalSpec
}

type cellEntry struct {
	once sync.Once
	res  *simulator.Result
	err  error
}

type traceEntry struct {
	once  sync.Once
	trace *workload.Trace
	err   error
}

// NewRunner returns a Runner over the given params. Unset fields default
// individually (to DefaultParams values), so a caller may set only the
// fields it cares about.
func NewRunner(p Params) *Runner {
	def := DefaultParams()
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	if p.Jobs <= 0 {
		p.Jobs = def.Jobs
	}
	if p.Interarrival <= 0 {
		p.Interarrival = def.Interarrival
	}
	if p.Population <= 0 {
		p.Population = def.Population
	}
	if len(p.Capacities) == 0 {
		p.Capacities = def.Capacities
	}
	if p.ParamScale <= 0 {
		p.ParamScale = def.ParamScale
	}
	if p.CFPoints <= 0 {
		p.CFPoints = def.CFPoints
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		params:  p,
		workers: workers,
		sem:     make(chan struct{}, workers),
		cells:   make(map[Cell]*cellEntry),
		traces:  make(map[traceKey]*traceEntry),
	}
}

// Params returns the runner's experiment parameters.
func (r *Runner) Params() Params { return r.params }

// Workers returns the effective worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// CachedCells reports how many distinct cells have been simulated.
func (r *Runner) CachedCells() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// CachedTraces reports how many distinct traces have been generated —
// one per (seed, arrival-process) pair, however many scenarios share it.
func (r *Runner) CachedTraces() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// entry returns the (possibly new) singleflight entry for a cell.
func (r *Runner) entry(c Cell) *cellEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cells[c]
	if !ok {
		e = &cellEntry{}
		r.cells[c] = e
	}
	return e
}

// Result runs (or recalls) a single cell. The worker-pool slot is
// acquired inside the once, so cache hits return immediately and
// goroutines waiting on another's in-flight computation of the same cell
// do not hold slots the pool could be simulating with.
func (r *Runner) Result(cell Cell) (*simulator.Result, error) {
	cell = cell.normalize(r.params)
	e := r.entry(cell)
	e.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		e.res, e.err = r.runCell(cell)
	})
	if e.err != nil {
		return nil, fmt.Errorf("engine: cell %s: %w", cell, e.err)
	}
	return e.res, nil
}

// Results fans the cells across the worker pool and returns their results
// in input order. Cells already cached return instantly; the rest run at
// most Workers at a time. Errors surface once the batch drains (work
// already in flight is not cancelled); the first failing cell's error is
// returned.
func (r *Runner) Results(cells []Cell) ([]*simulator.Result, error) {
	out := make([]*simulator.Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			out[i], errs[i] = r.Result(c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Compare runs every scheduler at the given capacity against the shared
// master-seed trace — the paired comparison of Figures 15/17/18.
func (r *Runner) Compare(capacity int, scheds []string) ([]*simulator.Result, error) {
	return r.Results(ComparisonCells(scheds, capacity))
}

// trace returns the memoized workload trace for a (seed, arrival) pair.
func (r *Runner) trace(seed int64, arrival scenario.ArrivalSpec) (*workload.Trace, error) {
	key := traceKey{seed: seed, arrival: arrival}
	r.mu.Lock()
	e, ok := r.traces[key]
	if !ok {
		e = &traceEntry{}
		r.traces[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		cfg := r.params.TraceConfig(seed)
		cfg.Arrival = arrival
		e.trace, e.err = workload.Generate(cfg)
	})
	return e.trace, e.err
}

// runCell executes one simulation: resolve the scenario, generate (or
// recall) the trace its arrival process shapes, build the scheduler from
// the registry with the cell-derived seed, expand the capacity timeline,
// simulate.
func (r *Runner) runCell(c Cell) (*simulator.Result, error) {
	start := time.Now()
	scn, err := scenario.Get(c.Scenario)
	if err != nil {
		return nil, err
	}
	trace, err := r.trace(c.TraceSeed, scn.Arrival)
	if err != nil {
		return nil, err
	}
	tcfg := r.params.TraceConfig(c.TraceSeed)
	// The worker pool owns all concurrency: Workers is the total CPU
	// budget, cells are the unit of parallelism, and scheduler-internal
	// fan-out (ONES's evolution loop) is pinned to 1 so it neither
	// oversubscribes a busy pool nor silently un-serializes a Workers=1
	// timing baseline. Tradeoff: a run with fewer cells than cores
	// leaves the surplus idle — raise Workers past the cell count if
	// you want them busy elsewhere. ONES results are identical at any
	// Parallelism (its candidate randomness is pre-seeded serially), so
	// this is a pure perf knob.
	sched, err := schedulers.New(c.Scheduler, schedulers.Config{
		Seed:        c.schedulerSeed(r.params.Seed),
		ArrivalRate: tcfg.ArrivalRate(),
		Population:  r.params.Population,
		Parallelism: 1,
	})
	if err != nil {
		return nil, err
	}
	simCfg := simulator.DefaultConfig(trace)
	simCfg.Topo = c.Topology()
	// The capacity timeline is seeded from the cell key minus the
	// scheduler, so paired comparisons face the identical world.
	simCfg.Capacity = scn.Capacity.Timeline(c.scenarioSeed(r.params.Seed), simCfg.MaxTime)
	simCfg.MinServers = scn.Capacity.MinServers
	res, err := simulator.Run(simCfg, sched)
	if err != nil {
		return nil, err
	}
	if r.OnCell != nil {
		r.OnCell(c, time.Since(start))
	}
	return res, nil
}
