// Package engine is the parallel experiment engine behind cmd/experiments
// and the benchmarks: a registry of named, self-describing experiments
// (one per paper figure/table) executed over a sharded, cached pool of
// simulation runs.
//
// The unit of simulation work is a Cell — one (scheduler, capacity,
// trace-seed) combination. Experiments declare the cells they consume;
// the Runner fans independent cells across a worker pool, memoizes every
// result in a shared cache (so Fig 15, Fig 17, Fig 18 and Table 4 share
// rather than repeat the 64-GPU comparison runs), and derives each cell's
// scheduler seed deterministically from the master seed — identical
// master seeds produce byte-identical experiment output at any worker
// count.
package engine

import "repro/internal/workload"

// Params parameterize the experiment suite (formerly core.Options).
type Params struct {
	Seed         int64
	Jobs         int     // trace length for Fig 15/17/18
	Interarrival float64 // seconds between arrivals
	MaxGPUs      int     // largest user GPU request in generated traces (0 ⇒ 8)
	Population   int     // ONES population size K
	MutationRate float64 // ONES mutation rate θ override (0 ⇒ scheduler default)
	// Capacities selects WHICH cells an experiment renders, not what any
	// one cell computes — each cell already keys its own Capacity.
	//ones:nokey experiment-rendering parameter: per-cell capacity is keyed as cap=
	Capacities []int // GPU counts for the scalability sweep
	//ones:nokey live-runtime (Fig 16) knob: never reaches a simulated cell
	ParamScale int // live-runtime model-size divisor (Fig 16)
	//ones:nokey experiment-rendering parameter: curve sampling happens after the cells are computed
	CFPoints int // samples per cumulative-frequency curve
	// Workers bounds the number of concurrently executing simulation
	// cells (0 ⇒ GOMAXPROCS). Results are identical at any setting.
	//ones:nokey pure throughput knob: results are byte-identical at any worker count (pinned by the determinism tests)
	Workers int
	// EvolutionParallelism bounds the goroutines ONES's evolutionary
	// search uses inside one simulation cell (0 ⇒ derive from the worker
	// slots left free when the cell starts, so small batches use the
	// whole budget and full batches stay serial; >0 ⇒ that many exactly).
	// Like Workers this is a pure throughput knob: candidate randomness
	// is pre-seeded serially and the reduction is order-independent, so
	// results are identical at any setting. It is deliberately excluded
	// from CellKey — cached results are shared across settings.
	//ones:nokey pure throughput knob: parallelism-invariance is pinned by the evopar golden test
	EvolutionParallelism int
	// RecordEvents retains the per-job scheduling event log on every
	// simulated cell's Result (off by default: the log is bulky).
	RecordEvents bool
}

// DefaultParams reproduce the paper-scale experiments (minutes of wall
// time: the evolutionary search is the dominant cost).
func DefaultParams() Params {
	return Params{
		Seed:         1,
		Jobs:         120,
		Interarrival: 12,
		MaxGPUs:      8,
		Population:   32,
		Capacities:   []int{16, 32, 48, 64},
		ParamScale:   50,
		CFPoints:     12,
	}
}

// QuickParams shrink every experiment for smoke tests and benchmarks.
func QuickParams() Params {
	return Params{
		Seed:         1,
		Jobs:         30,
		Interarrival: 12,
		MaxGPUs:      8,
		Population:   10,
		Capacities:   []int{16, 64},
		ParamScale:   400,
		CFPoints:     8,
	}
}

// TraceConfig returns the workload configuration for the given trace
// seed. All cells sharing a trace seed replay the identical job stream —
// the pairing the Wilcoxon analysis of Table 4 requires.
func (p Params) TraceConfig(seed int64) workload.Config {
	maxGPUs := p.MaxGPUs
	if maxGPUs <= 0 {
		maxGPUs = 8
	}
	return workload.Config{
		Seed:             seed,
		NumJobs:          p.Jobs,
		MeanInterarrival: p.Interarrival,
		MaxReqGPUs:       maxGPUs,
	}
}

// PaperSchedulers are the registry names of the schedulers compared in
// Figure 15: ONES and the paper's three baselines.
func PaperSchedulers() []string {
	return []string{"ones", "drl", "tiresias", "optimus"}
}
