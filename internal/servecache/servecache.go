// Package servecache is the cross-session simulation-result cache
// behind cmd/onesd and ones.WithCache: one Cache is shared by every
// Session (each with its own engine.Runner) in a process, deduplicates
// concurrent computations of the same cell (singleflight), memoizes
// completed results in memory, and — when given a directory — writes
// each result through to disk so daemon restarts and repeated CLI
// invocations skip warm work.
//
// Disk layout: one file per cell, <dir>/<sha256(key)>.json, holding a
// versioned envelope {version, key, result}. A file that fails to read,
// parse, or match its expected version and key is discarded with a
// warning and recomputed — never trusted, never fatal. Writes go through
// a temp file + rename so a crash mid-write leaves no torn entry.
//
// Determinism contract: a Result loaded from disk is byte-identical
// (under encoding/json) to the freshly computed Result it was stored
// from. Go's float64 JSON round-trip is exact and the Result tree is
// plain exported structs and slices, so storing and loading is the
// identity; the round-trip tests in this package and internal/engine
// pin that.
package servecache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simulator"
)

// Version is the on-disk result-format version. Bump it whenever the
// simulator's result semantics change: old files are then discarded (and
// recomputed) instead of serving stale physics.
const Version = 1

// Stats counts cache outcomes since construction.
type Stats struct {
	// Computes is how many results were actually simulated.
	Computes int `json:"computes"`
	// MemoryHits served from the in-process memo.
	MemoryHits int `json:"memory_hits"`
	// DiskHits served by loading a persisted file.
	DiskHits int `json:"disk_hits"`
	// DedupWaits are calls that piggybacked on another caller's in-flight
	// computation of the same key instead of starting their own.
	DedupWaits int `json:"dedup_waits"`
	// Discards counts corrupt, unreadable or version-mismatched files
	// thrown away (each triggered a warning and a recompute).
	Discards int `json:"discards"`
	// MemoEvictions counts completed memo entries dropped by the bounded-
	// state sweeps (TTL expiry or LRU cap pressure — see Limits).
	MemoEvictions int `json:"memo_evictions"`
	// DiskEvictions counts persisted files removed to keep the cache
	// directory under its byte cap (oldest files first).
	DiskEvictions int `json:"disk_evictions"`
	// Entries is the current in-memory memo size.
	Entries int `json:"entries"`
}

// Limits bounds the cache's state so a long-lived daemon cannot grow
// without bound. Every field is optional; the zero value disables all
// eviction (the pre-hardening behavior). Eviction follows the Reset
// contract exactly: only completed entries are dropped — an in-flight
// singleflight computation and its waiters are never touched — and a
// dropped entry that was persisted reloads from disk on next use, so
// limits change performance, never results.
type Limits struct {
	// MaxEntries caps the in-memory memo: when exceeded, the least-
	// recently-used completed entries are evicted until the memo fits
	// (in-flight entries don't count as evictable and can push the memo
	// transiently over the cap). 0 ⇒ unbounded.
	MaxEntries int
	// TTL evicts completed memo entries idle (neither stored nor hit)
	// for at least this long. 0 ⇒ entries never expire.
	TTL time.Duration
	// MaxDiskBytes caps the persistence directory: after each write-
	// through the oldest files are removed until the total fits. 0 ⇒
	// unbounded. The in-memory memo still holds evicted cells until its
	// own limits drop them.
	MaxDiskBytes int64
}

// Cache implements engine.Cache: a singleflight, in-memory result memo
// with optional disk write-through. Safe for concurrent use by any
// number of runners.
type Cache struct {
	dir  string // "" ⇒ memory only
	warn func(format string, args ...any)

	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats
	limits  Limits
	now     func() time.Time // injectable for the eviction soak tests

	obsP atomic.Pointer[cacheObs]
}

// cacheObs holds the cache's instrument handles (see Instrument). The
// zero value — every counter nil — is a valid no-op set, which is what
// an uninstrumented cache records against.
type cacheObs struct {
	memoryHits *obs.Counter
	diskHits   *obs.Counter
	computes   *obs.Counter
	dedupWaits *obs.Counter
	diskWrites *obs.Counter
	discards   *obs.Counter
	// Bounded-state sweep outcomes (cache_evictions_total{store,reason}).
	memoTTLEvicts *obs.Counter
	memoCapEvicts *obs.Counter
	diskCapEvicts *obs.Counter
}

var noCacheObs cacheObs

// oh returns the instrument handles (a shared all-nil set when the cache
// is uninstrumented, so call sites never branch).
func (c *Cache) oh() *cacheObs {
	if o := c.obsP.Load(); o != nil {
		return o
	}
	return &noCacheObs
}

// Instrument registers the cache's out-of-band telemetry with reg and
// starts recording: hits by source, computes, singleflight dedupes, disk
// writes, corrupt-file discards, plus live gauges for the in-memory memo
// size and bytes persisted on disk. Telemetry never affects what Do
// returns. Safe on a nil Cache or registry; safe to call concurrently
// with Do (counters recorded before the call are simply not counted).
func (c *Cache) Instrument(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	hits := reg.CounterVec("servecache_hits_total", "Cache hits by source (memory: in-process memo; disk: persisted file).", "source")
	evictions := reg.CounterVec("cache_evictions_total", "Entries evicted from the daemon's bounded stores, by store and reason.", "store", "reason")
	c.obsP.Store(&cacheObs{
		memoryHits:    hits.With("memory"),
		diskHits:      hits.With("disk"),
		computes:      reg.Counter("servecache_computes_total", "Cache misses that ran a full simulation."),
		dedupWaits:    reg.Counter("servecache_dedup_waits_total", "Calls that piggybacked on another caller's in-flight computation."),
		diskWrites:    reg.Counter("servecache_disk_writes_total", "Results written through to the persistence directory."),
		discards:      reg.Counter("servecache_discards_total", "Corrupt, unreadable or version-mismatched cache files discarded."),
		memoTTLEvicts: evictions.With("memo", "ttl"),
		memoCapEvicts: evictions.With("memo", "cap"),
		diskCapEvicts: evictions.With("disk", "cap"),
	})
	reg.GaugeFunc("servecache_entries", "Entries in the in-memory result memo.", func() float64 {
		c.mu.Lock()
		n := len(c.entries)
		c.mu.Unlock()
		return float64(n)
	})
	reg.GaugeFunc("servecache_disk_bytes", "Total size of persisted result files, in bytes.", func() float64 {
		return float64(c.diskBytes())
	})
}

// diskBytes sums the sizes of the persisted result files (0 when
// memory-only or unreadable). Scanned at scrape time: writes rename into
// place atomically, so the walk never sees torn entries.
func (c *Cache) diskBytes() int64 {
	if c.dir == "" {
		return 0
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// entry is a singleflight slot: the goroutine that inserts it resolves
// it (from disk or by computing) and closes done; everyone else waits on
// done or their own context.
type entry struct {
	done chan struct{}
	res  *simulator.Result
	err  error

	// lastUse orders the memo for LRU eviction and TTL expiry; written
	// at insertion and on every memory hit, under Cache.mu.
	lastUse time.Time
}

// completed reports whether the entry's computation has finished — only
// completed entries are evictable (the singleflight contract: waiters
// hold the entry pointer and must see it resolve).
func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// New returns a Cache persisting to dir ("" ⇒ shared memory only, no
// persistence). The directory is created if missing. warn receives
// non-fatal cache problems (corrupt files, failed writes); nil ⇒
// log.Printf.
func New(dir string, warn func(format string, args ...any)) (*Cache, error) {
	if warn == nil {
		warn = log.Printf
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("servecache: create %s: %w", dir, err)
		}
	}
	return &Cache{dir: dir, warn: warn, entries: make(map[string]*entry), now: time.Now}, nil
}

// Dir returns the persistence directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// SetLimits installs (or replaces) the cache's state bounds and sweeps
// immediately, returning how many entries/files the sweep evicted. Safe
// to call concurrently with Do at any point in the cache's life.
func (c *Cache) SetLimits(l Limits) int {
	c.mu.Lock()
	c.limits = l
	c.mu.Unlock()
	return c.Sweep()
}

// Limits returns the currently configured bounds (zero value: unbounded).
func (c *Cache) Limits() Limits {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limits
}

// SetClock replaces the cache's time source — eviction tests inject a
// manual clock so TTL expiry is deterministic. nil restores time.Now.
func (c *Cache) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Sweep applies the configured Limits now — TTL expiry and LRU cap on
// the memo, byte cap on the disk directory — and returns how many
// entries/files were evicted. Do and store sweep automatically after
// inserting; call Sweep directly (onesd does, on a timer) so idle
// entries still expire with no traffic to trigger it.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	evicted := c.sweepMemoLocked()
	c.mu.Unlock()
	return evicted + c.sweepDisk()
}

// sweepMemoLocked drops completed memo entries past their TTL, then —
// when the memo exceeds MaxEntries — the least-recently-used completed
// entries until it fits. In-flight entries are never touched (Reset
// semantics), so the memo can transiently exceed the cap while every
// excess entry is still computing.
func (c *Cache) sweepMemoLocked() int {
	l := c.limits
	if l.TTL <= 0 && l.MaxEntries <= 0 {
		return 0
	}
	oh := c.oh()
	now := c.now()
	evicted := 0
	if l.TTL > 0 {
		for key, e := range c.entries {
			if e.completed() && now.Sub(e.lastUse) >= l.TTL {
				delete(c.entries, key)
				c.stats.MemoEvictions++
				oh.memoTTLEvicts.Inc()
				evicted++
			}
		}
	}
	if l.MaxEntries > 0 && len(c.entries) > l.MaxEntries {
		type victim struct {
			key     string
			lastUse time.Time
		}
		var victims []victim
		for key, e := range c.entries {
			if e.completed() {
				victims = append(victims, victim{key, e.lastUse})
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if !victims[i].lastUse.Equal(victims[j].lastUse) {
				return victims[i].lastUse.Before(victims[j].lastUse)
			}
			return victims[i].key < victims[j].key // tie-break: deterministic sweeps
		})
		for _, v := range victims {
			if len(c.entries) <= l.MaxEntries {
				break
			}
			delete(c.entries, v.key)
			c.stats.MemoEvictions++
			oh.memoCapEvicts.Inc()
			evicted++
		}
	}
	return evicted
}

// sweepDisk removes the oldest persisted files until the directory fits
// MaxDiskBytes. Writes rename into place atomically, so the scan never
// sees torn entries; a file that disappears mid-sweep is simply skipped.
func (c *Cache) sweepDisk() int {
	c.mu.Lock()
	capBytes := c.limits.MaxDiskBytes
	c.mu.Unlock()
	if c.dir == "" || capBytes <= 0 {
		return 0
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	type file struct {
		name string
		size int64
		mod  time.Time
	}
	var files []file
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, file{de.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= capBytes {
		return 0
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod) // oldest (least recently touched) first
		}
		return files[i].name < files[j].name
	})
	oh := c.oh()
	evicted := 0
	for _, f := range files {
		if total <= capBytes {
			break
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil {
			if !os.IsNotExist(err) {
				c.warn("servecache: evict %s: %v", f.name, err)
				continue
			}
		}
		total -= f.size
		c.count(func(s *Stats) { s.DiskEvictions++ })
		oh.diskCapEvicts.Inc()
		evicted++
	}
	return evicted
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Reset drops every completed entry from the in-memory memo and returns
// how many were dropped — the admin pressure valve for long-lived
// daemons whose memo would otherwise grow without bound. In-flight
// computations are left in place: their waiters hold the entry pointer
// and the singleflight contract must not be broken mid-compute (they
// re-enter the memo when they finish, and a later Reset can drop them).
// Persisted disk files are untouched; dropped entries that were written
// through reload from disk on next use instead of recomputing.
func (c *Cache) Reset() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, e := range c.entries {
		select {
		case <-e.done:
			delete(c.entries, key)
			dropped++
		default:
		}
	}
	return dropped
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Do returns the result for key — from the in-memory memo, from disk, or
// by calling compute — deduplicating concurrent callers of the same key.
// A caller whose ctx ends stops waiting immediately. A compute that
// returns a context error is not cached (in memory or on disk): the next
// caller with a live context recomputes, so cancelled runs can never
// poison the cache.
//
// The claim/wait/evict-on-cancel protocol deliberately mirrors
// engine.Runner.Result (the per-runner memo in front of this cache);
// a change to either's cancellation semantics must be made in both.
func (c *Cache) Do(ctx context.Context, key string, compute func() (*simulator.Result, error)) (*simulator.Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &entry{done: make(chan struct{}), lastUse: c.now()}
			c.entries[key] = e
			c.mu.Unlock()
			c.resolve(e, key, compute)
			if e.err != nil && isCtxErr(e.err) {
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
			close(e.done)
			// The memo and the disk dir only grow on inserts, so this is
			// the spot that keeps them bounded (plus periodic Sweeps for
			// TTL expiry under no traffic).
			c.mu.Lock()
			c.sweepMemoLocked()
			c.mu.Unlock()
			c.sweepDisk()
		} else {
			oh := c.oh()
			select {
			case <-e.done:
				c.stats.MemoryHits++
				oh.memoryHits.Inc()
				e.lastUse = c.now()
			default:
				c.stats.DedupWaits++
				oh.dedupWaits.Inc()
			}
			c.mu.Unlock()
		}
		select {
		case <-e.done:
			if e.err != nil {
				if isCtxErr(e.err) && ctx.Err() == nil {
					// The computing goroutine was cancelled but we are
					// alive: its entry is gone, claim a fresh one.
					continue
				}
				return nil, e.err
			}
			return e.res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// resolve fills the entry: disk first, compute on miss, write-through on
// success.
func (c *Cache) resolve(e *entry, key string, compute func() (*simulator.Result, error)) {
	if res, ok := c.load(key); ok {
		e.res = res
		c.count(func(s *Stats) { s.DiskHits++ })
		c.oh().diskHits.Inc()
		return
	}
	e.res, e.err = compute()
	if e.err != nil {
		return
	}
	c.count(func(s *Stats) { s.Computes++ })
	c.oh().computes.Inc()
	c.store(key, e.res)
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// envelope is the on-disk file format. Key is stored in full (filenames
// only carry its hash) both for auditability and to detect the
// astronomically unlikely — or adversarially constructed — hash
// collision as a mismatch instead of serving the wrong cell.
type envelope struct {
	Version int               `json:"version"`
	Key     string            `json:"key"`
	Result  *simulator.Result `json:"result"`
}

// path maps a key to its cache file.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// load reads a persisted result, discarding (with a warning) anything
// unreadable, corrupt, version-mismatched or keyed differently.
func (c *Cache) load(key string) (*simulator.Result, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.discard(path, fmt.Sprintf("unreadable: %v", err))
		}
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.discard(path, fmt.Sprintf("corrupt JSON: %v", err))
		return nil, false
	}
	if env.Version != Version {
		c.discard(path, fmt.Sprintf("format version %d, want %d", env.Version, Version))
		return nil, false
	}
	if env.Key != key {
		c.discard(path, fmt.Sprintf("key mismatch (%.60q...)", env.Key))
		return nil, false
	}
	if env.Result == nil {
		c.discard(path, "missing result")
		return nil, false
	}
	// Touch the file so the disk byte-cap sweep (oldest mtime first)
	// approximates LRU instead of FIFO. Best effort: a failed touch only
	// degrades eviction order.
	t := c.clock()()
	_ = os.Chtimes(path, t, t)
	return env.Result, true
}

// clock snapshots the cache's time source under the lock (SetClock may
// replace it concurrently).
func (c *Cache) clock() func() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// discard warns about and removes a bad cache file; the caller recomputes.
func (c *Cache) discard(path, reason string) {
	c.count(func(s *Stats) { s.Discards++ })
	c.oh().discards.Inc()
	c.warn("servecache: discarding %s: %s", filepath.Base(path), reason)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		c.warn("servecache: remove %s: %v", filepath.Base(path), err)
	}
}

// store writes a result through to disk (temp file + rename, so readers
// and crashes never see a torn entry). Failures warn and continue: the
// in-memory memo still has the result.
func (c *Cache) store(key string, res *simulator.Result) {
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(envelope{Version: Version, Key: key, Result: res})
	if err != nil {
		c.warn("servecache: encode %.60q...: %v", key, err)
		return
	}
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		c.warn("servecache: temp file: %v", err)
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.warn("servecache: write %s: %v", filepath.Base(path), err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.warn("servecache: close %s: %v", filepath.Base(path), err)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.warn("servecache: rename %s: %v", filepath.Base(path), err)
		return
	}
	c.oh().diskWrites.Inc()
}
