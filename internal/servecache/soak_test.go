package servecache

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/simulator"
)

// soakClock is a manually advanced time source injected via SetClock so
// TTL expiry and mtime-ordered disk eviction are deterministic.
type soakClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *soakClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *soakClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// dirBytes sums the persisted .json files under dir.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, de := range des {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestEvictionSoak drives a bounded cache through a seeded-random
// interleaving of inserts, hits, idle periods (clock jumps) and explicit
// sweeps, holding two invariants after every operation:
//
//   - the in-memory memo never exceeds MaxEntries (every entry here is
//     completed, so the cap is exact);
//   - the disk directory never exceeds MaxDiskBytes (Do sweeps after
//     each insert, Sweep covers the idle jumps).
//
// Afterwards it pins the determinism contract across the churn: a key
// that survived on disk reloads byte-identical in a fresh cache with the
// compute forbidden, and an in-flight entry is never evicted no matter
// how far the clock jumps.
func TestEvictionSoak(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, dir)
	clk := &soakClock{t: time.Unix(1_700_000_000, 0)}
	c.SetClock(clk.now)

	res := simulate(t, "fifo", false)
	// Size one envelope so the byte cap is a meaningful ~5 files.
	blob, err := json.Marshal(envelope{Version: Version, Key: "probe", Result: res})
	if err != nil {
		t.Fatal(err)
	}
	fileSize := int64(len(blob))

	limits := Limits{
		MaxEntries:   8,
		TTL:          10 * time.Minute,
		MaxDiskBytes: 5*fileSize + fileSize/2,
	}
	c.SetLimits(limits)

	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	keys := func(i int) string { return fmt.Sprintf("soak-key-%03d", i) }
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0, 1: // insert or hit a key from a rotating working set
			key := keys(rng.Intn(40))
			if _, err := c.Do(ctx, key, func() (*simulator.Result, error) { return res, nil }); err != nil {
				t.Fatalf("step %d: Do(%s): %v", step, key, err)
			}
		case 2: // idle period: up to 15 minutes pass, maybe past the TTL
			clk.advance(time.Duration(rng.Intn(15)+1) * time.Minute)
		case 3: // the daemon's periodic sweep
			c.Sweep()
		}
		if n := c.Stats().Entries; n > limits.MaxEntries {
			t.Fatalf("step %d: memo holds %d entries, cap %d", step, n, limits.MaxEntries)
		}
		if b := dirBytes(t, dir); b > limits.MaxDiskBytes {
			t.Fatalf("step %d: disk holds %d bytes, cap %d", step, b, limits.MaxDiskBytes)
		}
	}
	st := c.Stats()
	if st.MemoEvictions == 0 || st.DiskEvictions == 0 {
		t.Fatalf("soak never exercised eviction: stats %+v", st)
	}

	// Determinism across the churn: any key still persisted reloads
	// byte-identical in a fresh cache without computing.
	survivor := ""
	for i := 0; i < 40; i++ {
		if _, err := os.Stat(c.path(keys(i))); err == nil {
			survivor = keys(i)
			break
		}
	}
	if survivor == "" {
		t.Fatal("no persisted key survived the soak (cap fits ~5 files)")
	}
	c2 := mustCache(t, dir)
	got, err := c2.Do(ctx, survivor, func() (*simulator.Result, error) {
		t.Fatalf("warm restart recomputed %s instead of loading it", survivor)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Error("warm-restart result not byte-identical to the computed one")
	}

	// In-flight entries are never evicted: park a compute mid-flight,
	// blow every TTL, sweep hard, and the waiter must still resolve from
	// THAT computation (a second caller dedups onto it, not a recompute).
	started := make(chan struct{})
	release := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "inflight", func() (*simulator.Result, error) {
			close(started)
			<-release
			return res, nil
		})
		first <- err
	}()
	<-started
	clk.advance(24 * time.Hour)
	for i := 0; i < 3; i++ {
		c.Sweep()
	}
	second := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "inflight", func() (*simulator.Result, error) {
			return nil, fmt.Errorf("in-flight entry was evicted: dedup lost")
		})
		second <- err
	}()
	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
}
