package servecache

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// simulate runs one small real simulation so round-trip tests face the
// genuine Result shape (floats, metrics, optional event log) rather than
// a hand-built fixture. With recordEvents the run also faces an elastic
// capacity timeline, so the optional Result fields (Evictions,
// CapacityEvents, Events) are exercised, not left at zero.
func simulate(t *testing.T, sched string, recordEvents bool) *simulator.Result {
	t.Helper()
	trace, err := workload.Generate(workload.Config{Seed: 3, NumJobs: 8, MeanInterarrival: 25, MaxReqGPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedulers.New(sched, schedulers.Config{Seed: 11, ArrivalRate: 1.0 / 25, Population: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulator.DefaultConfig(trace)
	cfg.Topo = cluster.Uniform(4, 4)
	cfg.RecordEvents = recordEvents
	if recordEvents {
		cfg.Capacity = []scenario.CapacityEvent{
			{Time: 40, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.3},
			{Time: 400, Kind: scenario.CapacityJoin, Servers: 1, Restocks: scenario.CapacityFail},
		}
	}
	res, err := simulator.Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustCache(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := New(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDoComputesOnceAndMemoizes(t *testing.T) {
	c := mustCache(t, "")
	computes := 0
	want := simulate(t, "fifo", false)
	for i := 0; i < 3; i++ {
		got, err := c.Do(context.Background(), "k", func() (*simulator.Result, error) {
			computes++
			return want, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatal("memo returned a different pointer than the computed result")
		}
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	st := c.Stats()
	if st.Computes != 1 || st.MemoryHits != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 compute, 2 memory hits, 1 entry", st)
	}
}

func TestDoSingleflightConcurrent(t *testing.T) {
	c := mustCache(t, "")
	var mu sync.Mutex
	computes := 0
	gate := make(chan struct{})
	res := simulate(t, "fifo", false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Do(context.Background(), "k", func() (*simulator.Result, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-gate // hold the flight open so every caller overlaps it
				return res, nil
			})
			if err != nil || got != res {
				t.Errorf("Do = %v, %v", got, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Errorf("%d concurrent computations of one key, want 1 (singleflight)", computes)
	}
}

// TestDiskRoundTripByteIdentical is the persistence determinism
// contract: a Result served from disk must be byte-identical (under
// encoding/json) and deeply equal to the freshly computed one, for every
// scheduler shape — including an elastic-scenario run with evictions,
// capacity events and the full event log.
func TestDiskRoundTripByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sched  string
		events bool
	}{
		{"fifo", "fifo", false},
		{"ones-with-events", "ones", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fresh := simulate(t, tc.sched, tc.events)
			c1 := mustCache(t, dir)
			if _, err := c1.Do(context.Background(), "cell", func() (*simulator.Result, error) { return fresh, nil }); err != nil {
				t.Fatal(err)
			}
			// A brand-new cache over the same dir simulates a process
			// restart: the compute func must never fire.
			c2 := mustCache(t, dir)
			loaded, err := c2.Do(context.Background(), "cell", func() (*simulator.Result, error) {
				t.Fatal("recomputed despite a warm disk cache")
				return nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if c2.Stats().DiskHits != 1 {
				t.Errorf("stats = %+v, want 1 disk hit", c2.Stats())
			}
			if !reflect.DeepEqual(fresh, loaded) {
				t.Error("loaded result differs structurally from the fresh one")
			}
			fb, err := json.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := json.Marshal(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if string(fb) != string(lb) {
				t.Error("loaded result is not byte-identical to the fresh one")
			}
			if tc.events && (fresh.Evictions == 0 || len(fresh.Events) == 0) {
				// Guard the test's own coverage: the elastic case must
				// actually exercise the optional fields.
				t.Logf("note: run had %d evictions, %d events", fresh.Evictions, len(fresh.Events))
			}
		})
	}
}

// cacheFile returns the single cache file under dir.
func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("cache dir holds %d files, want 1", len(ents))
	}
	return filepath.Join(dir, ents[0].Name())
}

func TestCorruptFileDiscardedWithWarning(t *testing.T) {
	dir := t.TempDir()
	res := simulate(t, "fifo", false)
	c1 := mustCache(t, dir)
	if _, err := c1.Do(context.Background(), "k", func() (*simulator.Result, error) { return res, nil }); err != nil {
		t.Fatal(err)
	}
	path := cacheFile(t, dir)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	c2, err := New(dir, func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	got, err := c2.Do(context.Background(), "k", func() (*simulator.Result, error) {
		recomputed = true
		return res, nil
	})
	if err != nil || got == nil {
		t.Fatalf("Do over corrupt file: %v, %v", got, err)
	}
	if !recomputed {
		t.Error("corrupt file served instead of recomputing")
	}
	if len(warnings) == 0 {
		t.Error("corrupt file discarded silently, want a warning")
	}
	if c2.Stats().Discards != 1 {
		t.Errorf("stats = %+v, want 1 discard", c2.Stats())
	}
	// The recompute rewrites the entry: the file must be valid again.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("recomputed entry not rewritten: %v", err)
	}
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Errorf("rewritten entry is not valid JSON: %v", err)
	}
}

func TestVersionMismatchDiscarded(t *testing.T) {
	dir := t.TempDir()
	res := simulate(t, "fifo", false)
	c1 := mustCache(t, dir)
	if _, err := c1.Do(context.Background(), "k", func() (*simulator.Result, error) { return res, nil }); err != nil {
		t.Fatal(err)
	}
	path := cacheFile(t, dir)
	// Rewrite the envelope with a stale version but intact payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = json.RawMessage("0")
	stale, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	c2, err := New(dir, func(string, ...any) { warned = true })
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	if _, err := c2.Do(context.Background(), "k", func() (*simulator.Result, error) {
		recomputed = true
		return res, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed || !warned {
		t.Errorf("version-mismatched file: recomputed=%t warned=%t, want both", recomputed, warned)
	}
}

func TestKeyMismatchDiscarded(t *testing.T) {
	dir := t.TempDir()
	res := simulate(t, "fifo", false)
	c1 := mustCache(t, dir)
	if _, err := c1.Do(context.Background(), "k1", func() (*simulator.Result, error) { return res, nil }); err != nil {
		t.Fatal(err)
	}
	// Copy k1's file to where k2 would live — a (synthetic) collision.
	src := cacheFile(t, dir)
	c2 := mustCache(t, dir)
	dst := c2.path("k2")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recomputed := false
	if _, err := c2.Do(context.Background(), "k2", func() (*simulator.Result, error) {
		recomputed = true
		return res, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("a file keyed for another cell was served")
	}
}

func TestCancelledComputeNotCached(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "k", func() (*simulator.Result, error) {
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Computes != 0 {
		t.Errorf("stats = %+v after a cancelled compute, want nothing cached", st)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("%d files persisted by a cancelled compute, want 0", len(ents))
	}
	// A live retry must compute and cache normally.
	res := simulate(t, "fifo", false)
	if _, err := c.Do(context.Background(), "k", func() (*simulator.Result, error) { return res, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Computes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v after the live retry, want 1 compute, 1 entry", st)
	}
}

func TestRealErrorStaysCached(t *testing.T) {
	c := mustCache(t, "")
	computes := 0
	fail := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), "k", func() (*simulator.Result, error) {
			computes++
			return nil, fail
		}); !errors.Is(err, fail) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if computes != 1 {
		t.Errorf("a deterministic failure recomputed %d times, want it cached after 1", computes)
	}
}

func TestMemoryOnlyCacheWritesNothing(t *testing.T) {
	c := mustCache(t, "")
	res := simulate(t, "fifo", false)
	if _, err := c.Do(context.Background(), "k", func() (*simulator.Result, error) { return res, nil }); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" {
		t.Errorf("Dir() = %q, want empty", c.Dir())
	}
}

func TestResetDropsCompletedEntries(t *testing.T) {
	dir := t.TempDir()
	c := mustCache(t, dir)
	res := simulate(t, "fifo", false)
	for _, key := range []string{"a", "b"} {
		if _, err := c.Do(context.Background(), key, func() (*simulator.Result, error) { return res, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries before reset = %d, want 2", got)
	}
	if dropped := c.Reset(); dropped != 2 {
		t.Fatalf("Reset dropped %d, want 2", dropped)
	}
	if got := c.Stats().Entries; got != 0 {
		t.Fatalf("entries after reset = %d, want 0", got)
	}
	if dropped := c.Reset(); dropped != 0 {
		t.Fatalf("second Reset dropped %d, want 0", dropped)
	}
	// A dropped write-through entry reloads from disk, not recompute.
	if _, err := c.Do(context.Background(), "a", func() (*simulator.Result, error) {
		t.Fatal("recompute after reset despite disk entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1 (reload, not recompute)", st.DiskHits)
	}
}

func TestResetLeavesInFlightEntries(t *testing.T) {
	c := mustCache(t, "")
	res := simulate(t, "fifo", false)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "slow", func() (*simulator.Result, error) {
			close(started)
			<-release
			return res, nil
		})
	}()
	<-started
	if dropped := c.Reset(); dropped != 0 {
		t.Fatalf("Reset dropped an in-flight entry (%d)", dropped)
	}
	close(release)
	<-done
	if got := c.Stats().Entries; got != 1 {
		t.Fatalf("in-flight entry lost: entries = %d, want 1", got)
	}
}
