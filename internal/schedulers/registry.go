package schedulers

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/simulator"
)

// ErrUnknown is wrapped by New for names absent from the registry; match
// it with errors.Is.
var ErrUnknown = errors.New("schedulers: unknown scheduler")

// Config carries the policy-independent knobs a scheduler factory may use.
// Factories ignore fields that do not apply to their policy.
type Config struct {
	// Seed drives any scheduler-internal randomness.
	Seed int64
	// ArrivalRate is the trace's job arrival rate λ (ONES's scale-down
	// penalty is derived from it).
	ArrivalRate float64
	// Population overrides ONES's population size K (0 ⇒ cluster size).
	Population int
	// MutationRate overrides ONES's θ (0 ⇒ default).
	MutationRate float64
	// Parallelism bounds scheduler-internal fan-out (ONES's evolution
	// loop; 0 ⇒ GOMAXPROCS). Purely a performance knob: results are
	// identical at any setting.
	Parallelism int
	// Obs, when non-nil, receives scheduler-internal telemetry (ONES's
	// evolution generation/candidate counters and throughput-memo hit
	// ratio). Out of band only: results are byte-identical with or
	// without it.
	Obs *obs.Registry
	// Span, when non-nil, is the parent span scheduler-internal tracing
	// hangs off (ONES records evolution-interval child spans). Out of
	// band only, like Obs.
	Span *obs.Span
}

// Factory constructs one scheduler instance from a Config.
type Factory func(cfg Config) simulator.Scheduler

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a named scheduler factory. Names are the flag-facing
// lowercase identifiers ("ones", "drl", …). Re-registering a name panics:
// two policies silently shadowing each other would corrupt experiments.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("schedulers: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("schedulers: duplicate registration of %q — two policies would silently shadow each other and corrupt experiments; pick a distinct name", name))
	}
	registry[name] = f
}

// New constructs the named scheduler, or errors listing the known names.
func New(name string, cfg Config) (simulator.Scheduler, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
	}
	return f(cfg), nil
}

// Has reports whether a scheduler is registered under the given name.
func Has(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("ones", func(cfg Config) simulator.Scheduler {
		o := NewONES(cfg.Seed, cfg.ArrivalRate)
		if cfg.Population > 0 {
			o.PopulationSize = cfg.Population
		}
		if cfg.MutationRate > 0 {
			o.MutationRate = cfg.MutationRate
		}
		o.Parallelism = cfg.Parallelism
		o.Obs = cfg.Obs
		o.Span = cfg.Span
		return o
	})
	Register("drl", func(cfg Config) simulator.Scheduler { return NewDRL(cfg.Seed) })
	Register("tiresias", func(cfg Config) simulator.Scheduler { return NewTiresias() })
	Register("optimus", func(cfg Config) simulator.Scheduler { return NewOptimus() })
	Register("fifo", func(cfg Config) simulator.Scheduler { return NewFIFO() })
	Register("sjf", func(cfg Config) simulator.Scheduler { return NewSJF() })
}
