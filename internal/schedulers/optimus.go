package schedulers

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/simulator"
)

// Optimus reproduces the Optimus baseline (EuroSys '18) as characterized
// in the paper's Table 3: a periodic greedy scheduler with elastic job
// sizes but fixed global batch sizes. Every scheduling interval (10
// minutes in the paper, §4.2) it rebuilds the whole allocation:
//
//  1. every alive job gets one worker for fairness (arrival order when
//     over-subscribed), then
//  2. the job with the largest marginal reduction in estimated remaining
//     time repeatedly receives one more GPU until the cluster is full.
//
// Remaining time is estimated from an online fit of the job's observed
// accuracy trajectory — mirroring Optimus's resource-speed models — and
// all reconfigurations go through checkpoint-based migration.
type Optimus struct {
	// Interval is the rescheduling period in seconds (paper: 600).
	Interval float64

	hist map[cluster.JobID][]obsPoint
}

// obsPoint is one observed (epochs, accuracy) pair.
type obsPoint struct {
	epochs float64
	acc    float64
}

// NewOptimus returns an Optimus with the paper's 10-minute interval.
func NewOptimus() *Optimus {
	return &Optimus{Interval: 600, hist: make(map[cluster.JobID][]obsPoint)}
}

// Name implements simulator.Scheduler.
func (o *Optimus) Name() string { return "Optimus" }

// TickInterval implements simulator.Scheduler.
func (o *Optimus) TickInterval() float64 { return o.Interval }

// CostKind implements simulator.Scheduler.
func (o *Optimus) CostKind() simulator.CostKind { return simulator.CostCheckpoint }

// ManagesLR implements simulator.Scheduler: Optimus adjusts worker counts
// but never touches the batch size or learning rate (Table 3).
func (o *Optimus) ManagesLR() bool { return false }

// observe records the job's current training point for curve fitting.
func (o *Optimus) observe(view *simulator.View) {
	for _, j := range view.Jobs {
		h := o.hist[j.ID]
		if len(h) == 0 || j.WallEpochs > h[len(h)-1].epochs+1e-9 {
			o.hist[j.ID] = append(h, obsPoint{epochs: j.WallEpochs, acc: j.Accuracy})
		}
	}
}

// remainingEpochs estimates epochs until the job hits its target accuracy
// by extrapolating the recent accuracy slope. Fresh jobs fall back to the
// profile's nominal length. The estimate is floored at one epoch.
func (o *Optimus) remainingEpochs(j simulator.JobView) float64 {
	target := j.Task.Profile.TargetAcc
	if j.Accuracy >= target {
		return 1 // in its confirmation epochs
	}
	h := o.hist[j.ID]
	if len(h) >= 2 {
		a, b := h[len(h)-2], h[len(h)-1]
		de := b.epochs - a.epochs
		da := b.acc - a.acc
		if de > 0 && da > 1e-6 {
			rate := da / de
			// The accuracy curve decelerates; pad the linear extrapolation.
			rem := (target - j.Accuracy) / rate * 1.5
			if rem < 1 {
				rem = 1
			}
			return rem
		}
	}
	rem := j.Task.Profile.BaseEpochs - j.WallEpochs
	if rem < 1 {
		rem = 1
	}
	return rem
}

// remainingTime estimates seconds to completion with c workers at the
// job's fixed global batch.
func (o *Optimus) remainingTime(view *simulator.View, j simulator.JobView, c int) float64 {
	x := view.Throughput(j.ID, j.ReqBatch, c, serversFor(c, view.Topo))
	if x <= 0 {
		return 1e18
	}
	samples := o.remainingEpochs(j) * float64(j.Task.DatasetSize)
	return samples / x
}

// serversFor returns the packed server span of c workers: the fewest
// servers that can hold them, largest machines first (on a homogeneous
// cluster, ⌈c / gpusPerServer⌉).
func serversFor(c int, topo cluster.Topology) int {
	return topo.MinServersFor(c)
}

// Decide implements simulator.Scheduler. Optimus only acts on its periodic
// tick (plus the very first arrivals, so the cluster is not idle before
// the first interval elapses).
func (o *Optimus) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	o.observe(view)
	if trigger != simulator.TriggerTick && trigger != simulator.TriggerArrival {
		return nil
	}
	if trigger == simulator.TriggerArrival && len(runningJobs(view)) > 0 {
		// Mid-interval arrivals wait for the next tick — the paper's
		// critique of periodic schedulers.
		return nil
	}
	jobs := append([]simulator.JobView(nil), view.Jobs...)
	if len(jobs) == 0 {
		return nil
	}
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Submit < jobs[k].Submit })

	total := view.Topo.TotalGPUs()
	alloc := make(map[cluster.JobID]int, len(jobs))
	used := 0
	// Step 1: one worker each, arrival order.
	for _, j := range jobs {
		if used >= total {
			break
		}
		alloc[j.ID] = 1
		used++
	}
	// Step 2: greedy marginal-gain growth.
	for used < total {
		var best cluster.JobID = cluster.NoJob
		var bestGain float64
		for _, j := range jobs {
			c := alloc[j.ID]
			if c == 0 || c >= j.ReqBatch { // local batch must stay ≥ 1 sample
				continue
			}
			gain := o.remainingTime(view, j, c) - o.remainingTime(view, j, c+1)
			if gain > bestGain {
				bestGain = gain
				best = j.ID
			}
		}
		if best == cluster.NoJob {
			break
		}
		alloc[best]++
		used++
	}
	// Materialize, keeping placements stable where the count is unchanged.
	s := view.Current.Clone()
	changed := false
	for _, j := range view.Jobs {
		want := alloc[j.ID]
		if j.Running && want != j.GPUs {
			s.Evict(j.ID)
			changed = true
		}
	}
	for _, j := range jobs {
		want := alloc[j.ID]
		if want == 0 || s.IsRunning(j.ID) {
			continue
		}
		batch := clampBatchToMemory(want, j.ReqBatch, j.Task.Profile.MaxPerGPU)
		if placeGang(s, j.ID, want, batch) {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return s
}

// Forget drops the fitting history of completed jobs (bounded memory).
func (o *Optimus) Forget(view *simulator.View) {
	alive := make(map[cluster.JobID]bool, len(view.Jobs))
	for _, j := range view.Jobs {
		alive[j.ID] = true
	}
	for id := range o.hist {
		if !alive[id] {
			delete(o.hist, id)
		}
	}
}
