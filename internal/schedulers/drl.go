package schedulers

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/simulator"
)

// DRL reproduces the deep-reinforcement-learning baseline (Chic, adapted
// to all-reduce training as described in §4.1): a policy network scores
// (waiting job, worker count) actions, one job is (re)scheduled per
// decision, jobs are never preempted (Table 3), and the policy improves
// online with REINFORCE updates whose reward is the negated completion
// time of finished jobs.
//
// The "network" is a linear softmax policy over hand-crafted features —
// enough capacity for this action space while keeping the reproduction
// dependency-free, and faithful to the baseline's structural limits
// (single action per step, no preemption).
type DRL struct {
	// LearnRate is the REINFORCE step size.
	LearnRate float64
	// Temperature softens the softmax during action sampling.
	Temperature float64

	weights [drlFeatures]float64
	rng     *rand.Rand

	// episode log: features of each chosen action per job, consumed as
	// the job completes.
	chosen map[cluster.JobID][drlFeatures]float64
	seen   map[cluster.JobID]bool
	// lastJCT tracks now−submit per scheduled job so the reward is still
	// available after the job leaves the view.
	lastJCT map[cluster.JobID]float64
	// running reward baseline for variance reduction.
	baseline    float64
	nCompleted  int
	rewardScale float64
}

const drlFeatures = 6

// NewDRL returns a DRL scheduler seeded deterministically.
func NewDRL(seed int64) *DRL {
	return &DRL{
		LearnRate:   0.01,
		Temperature: 1,
		rng:         rand.New(rand.NewSource(seed)),
		chosen:      make(map[cluster.JobID][drlFeatures]float64),
		seen:        make(map[cluster.JobID]bool),
		lastJCT:     make(map[cluster.JobID]float64),
		rewardScale: 1000,
	}
}

// Name implements simulator.Scheduler.
func (d *DRL) Name() string { return "DRL" }

// TickInterval implements simulator.Scheduler: decisions are event-driven.
func (d *DRL) TickInterval() float64 { return 0 }

// CostKind implements simulator.Scheduler: DRL never preempts, so its only
// reconfigurations are job starts; checkpoint-style loading applies.
func (d *DRL) CostKind() simulator.CostKind { return simulator.CostCheckpoint }

// ManagesLR implements simulator.Scheduler: the DRL baseline sizes jobs but
// leaves batch size and LR at the user's configuration (Table 3).
func (d *DRL) ManagesLR() bool { return false }

// features builds the policy input for assigning c GPUs to job j.
func (d *DRL) features(view *simulator.View, j simulator.JobView, c int) [drlFeatures]float64 {
	idle := float64(view.Current.NumIdle())
	total := float64(view.Topo.TotalGPUs())
	return [drlFeatures]float64{
		1,
		float64(c) / 8,
		math.Log1p(float64(j.Task.DatasetSize)) / 12,
		math.Log1p(view.Now-j.Submit) / 8, // waiting time pressure
		idle / total,
		float64(j.ReqGPUs) / 8,
	}
}

func (d *DRL) scoreOf(f [drlFeatures]float64) float64 {
	var s float64
	for i, w := range d.weights {
		s += w * f[i]
	}
	return s
}

// learn applies REINFORCE updates for jobs that completed since the last
// decision: any job we scheduled that is no longer in the view has
// finished, and its reward is the negated JCT (approximated by now −
// submit at the first decision after completion).
func (d *DRL) learn(view *simulator.View) {
	alive := make(map[cluster.JobID]bool, len(view.Jobs))
	for _, j := range view.Jobs {
		alive[j.ID] = true
	}
	ids := make([]cluster.JobID, 0, len(d.chosen))
	for id := range d.chosen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		f := d.chosen[id]
		if alive[id] {
			continue
		}
		// Completed. Reward: shorter JCT is better.
		reward := -d.lastJCT[id] / d.rewardScale
		d.nCompleted++
		d.baseline += (reward - d.baseline) / float64(d.nCompleted)
		adv := reward - d.baseline
		for i := range d.weights {
			d.weights[i] += d.LearnRate * adv * f[i]
		}
		delete(d.chosen, id)
		delete(d.lastJCT, id)
	}
}

// Decide implements simulator.Scheduler: pick at most one waiting job and
// one worker count via softmax over the policy scores, and start it on
// idle GPUs with its fixed requested batch.
func (d *DRL) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	for _, j := range view.Jobs {
		if d.seen[j.ID] {
			d.lastJCT[j.ID] = view.Now - j.Submit
		}
	}
	d.learn(view)

	idle := view.Current.NumIdle()
	if idle == 0 {
		return nil
	}
	waiting := waitingJobs(view)
	if len(waiting) == 0 {
		return nil
	}
	// Enumerate (job, workers) actions that fit the idle capacity.
	type action struct {
		job   simulator.JobView
		gpus  int
		feats [drlFeatures]float64
		score float64
	}
	var actions []action
	for _, j := range waiting {
		for _, c := range []int{1, 2, 4, 8} {
			if c > idle || c > j.ReqBatch {
				continue
			}
			f := d.features(view, j, c)
			actions = append(actions, action{job: j, gpus: c, feats: f, score: d.scoreOf(f)})
		}
	}
	if len(actions) == 0 {
		return nil
	}
	// Softmax sampling.
	maxS := actions[0].score
	for _, a := range actions[1:] {
		if a.score > maxS {
			maxS = a.score
		}
	}
	var z float64
	probs := make([]float64, len(actions))
	for i, a := range actions {
		probs[i] = math.Exp((a.score - maxS) / d.Temperature)
		z += probs[i]
	}
	r := d.rng.Float64() * z
	pick := 0
	for i, p := range probs {
		if r < p {
			pick = i
			break
		}
		r -= p
	}
	a := actions[pick]
	s := view.Current.Clone()
	batch := clampBatchToMemory(a.gpus, a.job.ReqBatch, a.job.Task.Profile.MaxPerGPU)
	if !placeGang(s, a.job.ID, a.gpus, batch) {
		return nil
	}
	d.chosen[a.job.ID] = a.feats
	d.seen[a.job.ID] = true
	d.lastJCT[a.job.ID] = view.Now - a.job.Submit
	return s
}
