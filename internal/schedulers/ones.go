package schedulers

import (
	"math"
	"math/rand"
	gorun "runtime"

	"repro/internal/cluster"
	"repro/internal/evolution"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/scaling"
	"repro/internal/simulator"
)

// ONES is the paper's scheduler: an online evolutionary search over
// batch-size genomes (§3.2) steered by a Beta-regression progress
// predictor (§3.2.1), with the batch-size limit policies of §3.3.2 and
// checkpoint-free elastic scaling (§3.3.1).
type ONES struct {
	// PopulationSize K; the paper suggests matching the GPU count.
	// Zero ⇒ set to the cluster size on first decision.
	PopulationSize int
	// MutationRate θ for the uniform mutation operator.
	MutationRate float64
	// IterationsPerDecision controls how many evolution rounds run at
	// each decision point (the real system evolves continuously in the
	// background; more rounds per event approximate that).
	IterationsPerDecision int
	// WarmupEpochs holds a new job at its start limit until it has
	// trained this many epochs ("Start" policy).
	WarmupEpochs float64
	// Parallelism is the number of goroutines the evolution engine uses
	// per iteration (0 ⇒ GOMAXPROCS). Results are identical regardless:
	// candidate randomness is pre-seeded serially.
	Parallelism int
	// DisableReorder / DisableSampling / DisableScaleDown are ablation
	// switches used by the benchmark harness.
	DisableReorder   bool
	DisableSampling  bool
	DisableScaleDown bool

	// Obs, when set before the first decision, receives out-of-band
	// search telemetry: evolution generations and candidates, the
	// throughput-memo hit ratio, decision and deployment counts. Results
	// are byte-identical with or without it.
	Obs *obs.Registry
	// Span, when set, is the parent span under which Decide records one
	// "evolution-interval" child per decision (bounded by the owning
	// trace's span cap). Out of band only, like Obs.
	Span *obs.Span

	memoHits    *obs.Counter
	memoMisses  *obs.Counter
	decisions   *obs.Counter
	deployments *obs.Counter

	engine      *evolution.Engine
	pred        *predictor.Predictor
	limiter     *scaling.Limiter
	rng         *rand.Rand
	arrivalRate float64
	cancelled   func() bool

	jobs map[cluster.JobID]*onesJob
	// lastDeployEpochs snapshots each running job's epoch count at the
	// last deployment: the paper deploys a new champion only after every
	// running job finishes at least one more epoch.
	lastDeployEpochs map[cluster.JobID]float64
	deployed         bool

	// Stats counts decision outcomes for reporting and debugging.
	Stats ONESStats
}

// ONESStats summarizes a run's decision outcomes.
type ONESStats struct {
	Decisions     int // Decide invocations
	Deployments   int // champions actually deployed
	GatedByEpochs int // champions held back by the one-epoch update rule
	NoChange      int // champion identical to the live schedule
}

// onesJob is ONES's private per-job state.
type onesJob struct {
	limit      int
	startLimit int
	everRan    bool
	seenEpochs float64
	logs       []predictor.Sample
	logSamples []int64 // processed counter at each log point
	lastSeen   simulator.JobView
	wasWaiting bool // waiting at the previous deployment (Resume policy)
}

// NewONES builds the scheduler. arrivalRate (λ) tunes the scale-down
// penalty σ; pass the trace's workload.Config.ArrivalRate().
//
// The paper suggests σ = λ so jobs longer than the mean interarrival
// interval are penalized. Applied literally at this simulation's workload
// intensity (interarrival tens of seconds, typical JCT hundreds) that
// collapses every batch limit within minutes, so σ is normalized by the
// cluster size on first decision: a job is a convoy risk once it runs
// longer than the interarrival time of work per GPU.
func NewONES(seed int64, arrivalRate float64) *ONES {
	return &ONES{
		MutationRate:          0.1,
		IterationsPerDecision: 2,
		WarmupEpochs:          1,
		arrivalRate:           arrivalRate,
		pred:                  predictor.New(seed, predictor.DefaultConfig()),
		limiter:               scaling.NewLimiter(arrivalRate),
		rng:                   rand.New(rand.NewSource(seed)),
		jobs:                  make(map[cluster.JobID]*onesJob),
		lastDeployEpochs:      make(map[cluster.JobID]float64),
	}
}

// Name implements simulator.Scheduler.
func (o *ONES) Name() string { return "ONES" }

// TickInterval implements simulator.Scheduler: ONES is event-driven (the
// population evolves at every arrival, epoch end and completion).
func (o *ONES) TickInterval() float64 { return 0 }

// CostKind implements simulator.Scheduler: reconfigurations use the
// elastic batch-size scaling mechanism.
func (o *ONES) CostKind() simulator.CostKind { return simulator.CostElastic }

// ManagesLR implements simulator.Scheduler: ONES scales the learning rate
// linearly with the batch size (§3.3.2), so its jobs keep their
// convergence behaviour across rescales.
func (o *ONES) ManagesLR() bool { return true }

// Predictor exposes the online progress model (examples and the Figure 6
// experiment read it).
func (o *ONES) Predictor() *predictor.Predictor { return o.pred }

// SetCancel implements simulator.CancelAware: the evolution loop polls
// the probe between candidate tasks so a cancelled run aborts
// mid-decision instead of waiting out the search.
func (o *ONES) SetCancel(cancelled func() bool) {
	o.cancelled = cancelled
	if o.engine != nil {
		o.engine.Cancel = cancelled
	}
}

// Decide implements simulator.Scheduler.
func (o *ONES) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	if o.engine == nil {
		k := o.PopulationSize
		if k <= 0 {
			k = view.Topo.TotalGPUs()
			o.PopulationSize = k
		}
		o.engine = evolution.NewEngine(k, o.MutationRate)
		o.engine.Cancel = o.cancelled
		o.engine.DisableReorder = o.DisableReorder
		o.engine.DisableSampling = o.DisableSampling
		if o.Parallelism > 0 {
			o.engine.Parallelism = o.Parallelism
		} else {
			o.engine.Parallelism = gorun.GOMAXPROCS(0)
		}
		o.limiter.Sigma = o.arrivalRate / float64(view.Topo.TotalGPUs())
		// Register instrument handles with the engine (all calls are
		// nil-safe, so an unset Obs just leaves them nil).
		o.engine.Generations = o.Obs.Counter("evolution_generations_total", "Evolution rounds executed (Engine.Iterate calls).")
		o.engine.Candidates = o.Obs.Counter("evolution_candidates_total", "Candidate schedules generated across all evolution rounds.")
		o.memoHits = o.Obs.Counter("evolution_memo_hits_total", "Throughput evaluations answered by the per-decision memo.")
		o.memoMisses = o.Obs.Counter("evolution_memo_misses_total", "Throughput evaluations computed fresh (memo misses).")
		o.decisions = o.Obs.Counter("ones_decisions_total", "ONES scheduling decisions taken.")
		o.deployments = o.Obs.Counter("ones_deployments_total", "Champion schedules actually deployed (improvements over the live schedule).")
	}
	o.ingest(view)

	evoSpan := o.Span.StartChild("evolution-interval")
	ctx := o.buildContext(view)
	iters := o.IterationsPerDecision
	if iters < 1 {
		iters = 1
	}
	var champion *cluster.Schedule
	for i := 0; i < iters; i++ {
		champion = o.engine.Iterate(ctx)
	}
	evoSpan.End()

	o.Stats.Decisions++
	o.decisions.Inc()
	if o.cancelled != nil && o.cancelled() {
		// The search was cut short: the champion may be stale — it can
		// even reference jobs that completed since the population last
		// refreshed — so deploying it could be invalid. Keep the current
		// deployment; the simulator is about to abort the run anyway.
		return nil
	}
	if !o.shouldDeploy(trigger, view) {
		o.Stats.GatedByEpochs++
		return nil
	}
	if champion.Equal(view.Current) {
		o.Stats.NoChange++
		return nil
	}
	o.Stats.Deployments++
	o.deployments.Inc()
	o.recordDeployment(view, champion)
	return champion
}

// ingest folds the fresh view into per-job state: epoch crossings update
// the batch-size limits and append predictor log points; vanished jobs are
// finalized into the predictor's training set.
func (o *ONES) ingest(view *simulator.View) {
	alive := make(map[cluster.JobID]bool, len(view.Jobs))
	maxGlobal := view.Topo.TotalGPUs() * 1 // refined per job below
	for _, j := range view.Jobs {
		alive[j.ID] = true
		st, ok := o.jobs[j.ID]
		if !ok {
			st = &onesJob{
				limit:      o.limiter.Start(j.Task.Profile),
				startLimit: o.limiter.Start(j.Task.Profile),
			}
			o.jobs[j.ID] = st
		}
		// Epoch crossings since last view.
		newEpochs := math.Floor(j.WallEpochs)
		for e := math.Floor(st.seenEpochs) + 1; e <= newEpochs; e++ {
			o.onEpochEnd(&j, st, view.Topo, maxGlobal)
		}
		st.seenEpochs = j.WallEpochs
		st.lastSeen = j
		if j.Running {
			st.everRan = true
		}
	}
	// Finalize completed jobs into the predictor.
	for id, st := range o.jobs {
		if alive[id] {
			continue
		}
		o.finalize(st)
		delete(o.jobs, id)
		delete(o.lastDeployEpochs, id)
	}
}

// onEpochEnd applies the per-epoch limit update (the §3.3.2 scale-up /
// scale-down rule) and logs a predictor sample.
func (o *ONES) onEpochEnd(j *simulator.JobView, st *onesJob, topo cluster.Topology, _ int) {
	maxGlobal := topo.TotalGPUs() * j.Task.Profile.MaxPerGPU
	if j.WallEpochs < o.WarmupEpochs {
		// Still warming up: hold the start limit.
		st.limit = st.startLimit
	} else if o.DisableScaleDown {
		st.limit = o.limiter.ScaleUp(st.limit, maxGlobal)
	} else {
		st.limit = o.limiter.Update(st.limit, j.ExecTime, maxGlobal)
	}
	st.logs = append(st.logs, predictor.Sample{
		X: predictor.Features{
			DatasetSize: float64(j.Task.DatasetSize),
			InitLoss:    j.Task.Profile.InitLoss,
			Processed:   float64(j.Processed),
			LossRatio:   lossRatio(j),
			Accuracy:    j.Accuracy,
		},
		Progress: 0, // labeled at completion
	})
	st.logSamples = append(st.logSamples, j.Processed)
}

func lossRatio(j *simulator.JobView) float64 {
	if j.Task.Profile.InitLoss <= 0 {
		return 0
	}
	r := 1 - j.Loss/j.Task.Profile.InitLoss
	if r < 0 {
		r = 0
	}
	return r
}

// finalize labels a completed job's log with true progress and feeds the
// predictor.
func (o *ONES) finalize(st *onesJob) {
	total := st.lastSeen.Processed
	if total <= 0 || len(st.logs) == 0 {
		return
	}
	labeled := st.logs[:0]
	for i := range st.logs {
		p := float64(st.logSamples[i]) / float64(total)
		if p <= 0 || p >= 1 {
			continue
		}
		st.logs[i].Progress = p
		labeled = append(labeled, st.logs[i])
	}
	if len(labeled) == 0 {
		return
	}
	// AddCompletedJob only errors on out-of-range progress, which the
	// filter above precludes.
	_ = o.pred.AddCompletedJob(labeled)
}

// buildContext assembles the evolution context from the view and ONES
// state.
func (o *ONES) buildContext(view *simulator.View) *evolution.Context {
	jobs := make(map[cluster.JobID]*evolution.JobInfo, len(view.Jobs))
	var newJobs []cluster.JobID
	for _, j := range view.Jobs {
		st := o.jobs[j.ID]
		dist := o.pred.Predict(predictor.Features{
			DatasetSize: float64(j.Task.DatasetSize),
			InitLoss:    j.Task.Profile.InitLoss,
			Processed:   float64(j.Processed),
			LossRatio:   lossRatio(&j),
			Accuracy:    j.Accuracy,
		})
		jobs[j.ID] = &evolution.JobInfo{
			ID:               j.ID,
			Limit:            st.limit,
			MaxPerGPU:        j.Task.Profile.MaxPerGPU,
			DeployedBatch:    j.Batch,
			EpochSize:        float64(j.Task.DatasetSize),
			ProcessedSamples: float64(j.Processed),
			ProcessedTime:    j.ExecTime,
			Dist:             dist,
		}
		if !st.everRan && !j.Running {
			newJobs = append(newJobs, j.ID)
		}
	}
	return &evolution.Context{
		Topo:       view.Topo,
		Jobs:       jobs,
		NewJobs:    newJobs,
		Throughput: view.Throughput,
		Rng:        o.rng,
		MemoHits:   o.memoHits,
		MemoMisses: o.memoMisses,
	}
}

// shouldDeploy applies the paper's update rule: deploy when resources
// changed (arrival or completion) or when every running job has completed
// at least one epoch since the previous deployment.
func (o *ONES) shouldDeploy(trigger simulator.Trigger, view *simulator.View) bool {
	if !o.deployed {
		return true
	}
	if trigger == simulator.TriggerArrival || trigger == simulator.TriggerCompletion {
		return true
	}
	for _, j := range view.Jobs {
		if !j.Running {
			continue
		}
		since, ok := o.lastDeployEpochs[j.ID]
		if ok && j.WallEpochs < since+1 {
			return false
		}
	}
	return true
}

// recordDeployment snapshots epochs and applies the Resume policy: a job
// that was already waiting at the previous deployment and stays waiting in
// the new one has its limit halved (reducing its footprint so it can be
// admitted sooner).
func (o *ONES) recordDeployment(view *simulator.View, next *cluster.Schedule) {
	o.deployed = true
	for _, j := range view.Jobs {
		st := o.jobs[j.ID]
		willRun := next.IsRunning(j.ID)
		if !willRun && st.wasWaiting && st.everRan {
			st.limit = o.limiter.Reject(st.limit)
		}
		st.wasWaiting = !willRun
		if willRun {
			o.lastDeployEpochs[j.ID] = j.WallEpochs
		}
	}
}
