package schedulers

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/simulator"
)

func TestNewUnknownSchedulerListsKnownNames(t *testing.T) {
	_, err := New("no-such-policy", Config{})
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-policy"`) {
		t.Errorf("error does not name the missing scheduler: %v", err)
	}
	for _, known := range []string{"ones", "drl", "tiresias", "optimus", "fifo", "sjf"} {
		if !strings.Contains(msg, known) {
			t.Errorf("error does not list known scheduler %q: %v", known, err)
		}
	}
}

func TestRegistryBuildsEveryKnownName(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, Config{Seed: 1, ArrivalRate: 0.1, Population: 4})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s == nil || s.Name() == "" {
			t.Errorf("New(%q) built an unusable scheduler %v", name, s)
		}
	}
}

func mustPanicRegistering(t *testing.T, why, name string, f Factory) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: Register did not panic", why)
		}
	}()
	Register(name, f)
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanicRegistering(t, "duplicate name", "ones",
		func(cfg Config) simulator.Scheduler { return NewFIFO() })
}

func TestRegisterDuplicatePanicMessageIsActionable(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, `"ones"`) || !strings.Contains(msg, "duplicate") {
			t.Errorf("panic message does not name the clash: %q", msg)
		}
	}()
	Register("ones", func(cfg Config) simulator.Scheduler { return NewFIFO() })
}

func TestNewWrapsTypedSentinel(t *testing.T) {
	_, err := New("no-such-policy", Config{})
	if !errors.Is(err, ErrUnknown) {
		t.Errorf("New error does not wrap ErrUnknown: %v", err)
	}
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	mustPanicRegistering(t, "nil factory", "nil-factory", nil)
	if _, err := New("nil-factory", Config{}); err == nil {
		t.Error("rejected registration still resolvable")
	}
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	mustPanicRegistering(t, "empty name", "",
		func(cfg Config) simulator.Scheduler { return NewFIFO() })
}

func TestRegistryConfigPlumbs(t *testing.T) {
	s, err := New("ones", Config{Seed: 3, ArrivalRate: 0.05, Population: 7, MutationRate: 0.25, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := s.(*ONES)
	if !ok {
		t.Fatalf("factory for \"ones\" built %T", s)
	}
	if o.PopulationSize != 7 || o.MutationRate != 0.25 || o.Parallelism != 2 {
		t.Errorf("config not plumbed: pop=%d θ=%v par=%d", o.PopulationSize, o.MutationRate, o.Parallelism)
	}
}
