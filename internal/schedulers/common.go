// Package schedulers contains the ONES scheduler driver and the baseline
// policies it is evaluated against in the paper: DRL, Tiresias and Optimus
// (Table 3), plus simple FIFO/SJF extras used for ablations and tests.
package schedulers

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/simulator"
)

// waitingJobs returns the alive jobs without GPUs, in arrival order.
func waitingJobs(view *simulator.View) []simulator.JobView {
	var out []simulator.JobView
	for _, j := range view.Jobs {
		if !j.Running {
			out = append(out, j)
		}
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Submit < out[k].Submit })
	return out
}

// runningJobs returns the alive jobs holding GPUs, ascending ID.
func runningJobs(view *simulator.View) []simulator.JobView {
	var out []simulator.JobView
	for _, j := range view.Jobs {
		if j.Running {
			out = append(out, j)
		}
	}
	return out
}

// placeGang assigns `gpus` idle GPUs to the job with an even split of
// `batch`, preferring contiguous placement (lowest-index idle GPUs, which
// the reorder convention keeps packed). Returns false without modifying s
// when not enough GPUs are idle.
func placeGang(s *cluster.Schedule, id cluster.JobID, gpus, batch int) bool {
	idle := s.IdleGPUs()
	if len(idle) < gpus || gpus <= 0 {
		return false
	}
	if batch < gpus {
		batch = gpus
	}
	base := batch / gpus
	rem := batch % gpus
	for i := 0; i < gpus; i++ {
		b := base
		if i < rem {
			b++
		}
		s.SetSlot(idle[i], id, b)
	}
	return true
}

// clampBatchToMemory shrinks a (gpus, batch) request so the per-GPU batch
// fits the model's memory cap.
func clampBatchToMemory(gpus, batch, maxPerGPU int) int {
	if maxPerGPU <= 0 {
		return batch
	}
	if max := gpus * maxPerGPU; batch > max {
		return max
	}
	return batch
}

// FIFO is the simplest baseline: first-come first-served gang scheduling
// with the user-requested fixed size, no preemption, checkpoint-based
// starts. It exists for tests and as a floor in ablation benches.
type FIFO struct{}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements simulator.Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// TickInterval implements simulator.Scheduler: FIFO is event-driven.
func (f *FIFO) TickInterval() float64 { return 0 }

// CostKind implements simulator.Scheduler.
func (f *FIFO) CostKind() simulator.CostKind { return simulator.CostCheckpoint }

// ManagesLR implements simulator.Scheduler: FIFO runs jobs as black boxes.
func (f *FIFO) ManagesLR() bool { return false }

// Decide implements simulator.Scheduler: admit waiting jobs in arrival
// order while they fit; never touch running jobs.
func (f *FIFO) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	waiting := waitingJobs(view)
	if len(waiting) == 0 {
		return nil
	}
	s := view.Current.Clone()
	changed := false
	for _, j := range waiting {
		batch := clampBatchToMemory(j.ReqGPUs, j.ReqBatch, j.Task.Profile.MaxPerGPU)
		if placeGang(s, j.ID, j.ReqGPUs, batch) {
			changed = true
		} else {
			break // strict FIFO: the head of the queue blocks
		}
	}
	if !changed {
		return nil
	}
	return s
}

// SJF schedules the waiting job with the smallest requested work first
// (using dataset size × base epochs as the size proxy), still gang and
// non-preemptive. Used in ablation benches.
type SJF struct{}

// NewSJF returns an SJF scheduler.
func NewSJF() *SJF { return &SJF{} }

// Name implements simulator.Scheduler.
func (s *SJF) Name() string { return "SJF" }

// TickInterval implements simulator.Scheduler.
func (s *SJF) TickInterval() float64 { return 0 }

// CostKind implements simulator.Scheduler.
func (s *SJF) CostKind() simulator.CostKind { return simulator.CostCheckpoint }

// ManagesLR implements simulator.Scheduler: SJF runs jobs as black boxes.
func (s *SJF) ManagesLR() bool { return false }

// Decide implements simulator.Scheduler.
func (s *SJF) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	waiting := waitingJobs(view)
	if len(waiting) == 0 {
		return nil
	}
	sort.SliceStable(waiting, func(i, k int) bool {
		wi := float64(waiting[i].Task.DatasetSize) * waiting[i].Task.Profile.BaseEpochs
		wk := float64(waiting[k].Task.DatasetSize) * waiting[k].Task.Profile.BaseEpochs
		return wi < wk
	})
	sched := view.Current.Clone()
	changed := false
	for _, j := range waiting {
		batch := clampBatchToMemory(j.ReqGPUs, j.ReqBatch, j.Task.Profile.MaxPerGPU)
		if placeGang(sched, j.ID, j.ReqGPUs, batch) {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return sched
}
