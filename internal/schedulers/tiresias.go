package schedulers

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/simulator"
)

// Tiresias reproduces the Tiresias baseline (NSDI '19) as characterized in
// the paper's Table 3: a greedy scheduler with preemption but fixed job
// sizes and fixed batch sizes. Jobs live in a discretized multi-level
// feedback queue ordered by attained GPU service (the Least Attained
// Service policy): jobs that have consumed little GPU time get priority,
// which approximates shortest-remaining-first without any job-length
// prediction. Preemption uses checkpoint-based migration.
type Tiresias struct {
	// QueueThresholds are the attained-service boundaries (GPU-seconds)
	// between priority queues; a job's queue is the number of thresholds
	// it has crossed.
	QueueThresholds []float64
}

// NewTiresias returns a two-queue Tiresias with the default promotion
// threshold.
func NewTiresias() *Tiresias {
	return &Tiresias{QueueThresholds: []float64{2000}}
}

// Name implements simulator.Scheduler.
func (t *Tiresias) Name() string { return "Tiresias" }

// TickInterval implements simulator.Scheduler: Tiresias reacts to events.
func (t *Tiresias) TickInterval() float64 { return 0 }

// CostKind implements simulator.Scheduler: preemption goes through
// checkpoints.
func (t *Tiresias) CostKind() simulator.CostKind { return simulator.CostCheckpoint }

// ManagesLR implements simulator.Scheduler: Tiresias treats jobs as black
// boxes (Table 3), so large user-configured batches keep the user's LR.
func (t *Tiresias) ManagesLR() bool { return false }

// queueOf returns the job's priority queue index (0 = highest priority).
func (t *Tiresias) queueOf(j simulator.JobView) int {
	attained := j.ExecTime * float64(j.GPUs)
	if !j.Running {
		attained = j.ExecTime // frozen service while waiting
	}
	q := 0
	for _, th := range t.QueueThresholds {
		if attained >= th {
			q++
		}
	}
	return q
}

// Decide implements simulator.Scheduler: recompute the desired running set
// in (queue, arrival) priority order with gang semantics, preempting
// lower-priority jobs when a higher-priority one needs their GPUs.
func (t *Tiresias) Decide(trigger simulator.Trigger, view *simulator.View) *cluster.Schedule {
	jobs := append([]simulator.JobView(nil), view.Jobs...)
	sort.SliceStable(jobs, func(i, k int) bool {
		qi, qk := t.queueOf(jobs[i]), t.queueOf(jobs[k])
		if qi != qk {
			return qi < qk
		}
		return jobs[i].Submit < jobs[k].Submit
	})
	// Admit greedily in priority order with the fixed requested size.
	capacity := view.Topo.TotalGPUs()
	admit := make(map[cluster.JobID]bool, len(jobs))
	for _, j := range jobs {
		if j.ReqGPUs <= capacity {
			admit[j.ID] = true
			capacity -= j.ReqGPUs
		}
	}
	// Keep currently running admitted jobs in place; evict the rest;
	// place newly admitted ones into freed slots.
	s := view.Current.Clone()
	changed := false
	for _, j := range view.Jobs {
		if j.Running && !admit[j.ID] {
			s.Evict(j.ID)
			changed = true
		}
	}
	for _, j := range jobs {
		if !admit[j.ID] || s.IsRunning(j.ID) {
			continue
		}
		batch := clampBatchToMemory(j.ReqGPUs, j.ReqBatch, j.Task.Profile.MaxPerGPU)
		if placeGang(s, j.ID, j.ReqGPUs, batch) {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return s
}
