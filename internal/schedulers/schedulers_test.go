package schedulers

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/simulator"
	"repro/internal/workload"
)

func testTrace(t testing.TB, n int, seed int64) (*workload.Trace, workload.Config) {
	t.Helper()
	cfg := workload.Config{Seed: seed, NumJobs: n, MeanInterarrival: 25, MaxReqGPUs: 4}
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg
}

func runSched(t testing.TB, sched simulator.Scheduler, n int, seed int64) *simulator.Result {
	t.Helper()
	tr, _ := testTrace(t, n, seed)
	cfg := simulator.DefaultConfig(tr)
	cfg.Topo = cluster.Uniform(4, 4)
	res, err := simulator.Run(cfg, sched)
	if err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	if res.Truncated {
		t.Fatalf("%s truncated with %d unfinished jobs", sched.Name(), res.Unfinished)
	}
	if len(res.Jobs) != n {
		t.Fatalf("%s completed %d/%d jobs", sched.Name(), len(res.Jobs), n)
	}
	return res
}

func TestFIFOCompletesTrace(t *testing.T) { runSched(t, NewFIFO(), 15, 1) }

func TestSJFCompletesTrace(t *testing.T) { runSched(t, NewSJF(), 15, 1) }

func TestTiresiasCompletesTrace(t *testing.T) { runSched(t, NewTiresias(), 15, 1) }

func TestOptimusCompletesTrace(t *testing.T) { runSched(t, NewOptimus(), 15, 1) }

func TestDRLCompletesTrace(t *testing.T) { runSched(t, NewDRL(7), 15, 1) }

func TestONESCompletesTrace(t *testing.T) {
	_, wcfg := testTrace(t, 15, 1)
	o := NewONES(7, wcfg.ArrivalRate())
	o.PopulationSize = 8 // keep the test fast
	runSched(t, o, 15, 1)
}

func TestONESBeatsFixedSizeBaselinesOnMeanJCT(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	const n, seed = 25, 3
	_, wcfg := testTrace(t, n, seed)
	o := NewONES(7, wcfg.ArrivalRate())
	o.PopulationSize = 12
	ones := runSched(t, o, n, seed)
	tiresias := runSched(t, NewTiresias(), n, seed)
	fifo := runSched(t, NewFIFO(), n, seed)
	if ones.MeanJCT() >= tiresias.MeanJCT() {
		t.Errorf("ONES mean JCT %.1f should beat Tiresias %.1f", ones.MeanJCT(), tiresias.MeanJCT())
	}
	if ones.MeanJCT() >= fifo.MeanJCT() {
		t.Errorf("ONES mean JCT %.1f should beat FIFO %.1f", ones.MeanJCT(), fifo.MeanJCT())
	}
}

func TestTiresiasPrioritizesShortAttainedService(t *testing.T) {
	tires := NewTiresias()
	young := simulator.JobView{ExecTime: 10, GPUs: 1, Running: true}
	old := simulator.JobView{ExecTime: 5000, GPUs: 2, Running: true}
	if tires.queueOf(young) >= tires.queueOf(old) {
		t.Errorf("young job queue %d should be above old job queue %d",
			tires.queueOf(young), tires.queueOf(old))
	}
}

func TestOptimusRemainingEpochsFallsBackForFreshJobs(t *testing.T) {
	o := NewOptimus()
	tr, _ := testTrace(t, 1, 1)
	j := simulator.JobView{ID: 0, Task: tr.Jobs[0].Task, Accuracy: 0}
	rem := o.remainingEpochs(j)
	if rem < 1 {
		t.Errorf("remainingEpochs = %v, want >= 1", rem)
	}
	if rem > j.Task.Profile.BaseEpochs+1 {
		t.Errorf("fresh-job estimate %v exceeds nominal length %v", rem, j.Task.Profile.BaseEpochs)
	}
}

func TestOptimusUsesSlopeWhenHistoryAvailable(t *testing.T) {
	o := NewOptimus()
	tr, _ := testTrace(t, 1, 1)
	id := cluster.JobID(0)
	o.hist[id] = []obsPoint{{epochs: 1, acc: 0.2}, {epochs: 2, acc: 0.3}}
	j := simulator.JobView{ID: id, Task: tr.Jobs[0].Task, Accuracy: 0.3, WallEpochs: 2}
	rem := o.remainingEpochs(j)
	// Target ≈ 0.84 for the generated profiles; slope 0.1/epoch ⇒ ~5.4
	// epochs linear, ×1.5 padding ⇒ ~8. Anything in (1, 30) is sane.
	if rem <= 1 || rem > 30 {
		t.Errorf("slope-based estimate %v implausible", rem)
	}
}

func TestPlaceGangRespectsCapacity(t *testing.T) {
	s := cluster.NewSchedule(cluster.Uniform(1, 4))
	if !placeGang(s, 1, 4, 256) {
		t.Fatal("placement of 4 GPUs on empty 4-GPU cluster failed")
	}
	if placeGang(s, 2, 1, 64) {
		t.Error("placement on full cluster succeeded")
	}
	if got := s.GlobalBatch(1); got != 256 {
		t.Errorf("global batch %d, want 256", got)
	}
	if got := s.GPUCount(1); got != 4 {
		t.Errorf("gpus %d, want 4", got)
	}
}

func TestPlaceGangEvenSplit(t *testing.T) {
	s := cluster.NewSchedule(cluster.Uniform(1, 4))
	placeGang(s, 1, 3, 100) // 34+33+33
	want := []int{34, 33, 33}
	for i, w := range want {
		if got := s.Slot(cluster.GPUID(i)).Batch; got != w {
			t.Errorf("slot %d batch %d, want %d", i, got, w)
		}
	}
}

func TestClampBatchToMemory(t *testing.T) {
	if got := clampBatchToMemory(2, 5000, 512); got != 1024 {
		t.Errorf("clamp = %d, want 1024", got)
	}
	if got := clampBatchToMemory(2, 100, 512); got != 100 {
		t.Errorf("clamp = %d, want 100", got)
	}
	if got := clampBatchToMemory(2, 100, 0); got != 100 {
		t.Errorf("clamp with no cap = %d, want 100", got)
	}
}

func TestONESDeterministic(t *testing.T) {
	run := func() float64 {
		_, wcfg := testTrace(t, 10, 5)
		o := NewONES(11, wcfg.ArrivalRate())
		o.PopulationSize = 6
		return runSched(t, o, 10, 5).MeanJCT()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("ONES nondeterministic: %v vs %v", a, b)
	}
}

func TestONESPredictorLearnsOnline(t *testing.T) {
	_, wcfg := testTrace(t, 12, 2)
	o := NewONES(3, wcfg.ArrivalRate())
	o.PopulationSize = 6
	runSched(t, o, 12, 2)
	if o.Predictor().Fits() == 0 {
		t.Error("predictor never refitted despite completed jobs")
	}
	if o.Predictor().TrainingSize() == 0 {
		t.Error("predictor training set empty after 12 completions")
	}
}

func TestONESUsesElasticCosts(t *testing.T) {
	o := NewONES(1, 0.05)
	if o.CostKind() != simulator.CostElastic {
		t.Error("ONES must use elastic scaling costs")
	}
	for _, s := range []simulator.Scheduler{NewFIFO(), NewTiresias(), NewOptimus(), NewDRL(1)} {
		if s.CostKind() != simulator.CostCheckpoint {
			t.Errorf("%s should use checkpoint-based migration", s.Name())
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[simulator.Scheduler]string{
		NewONES(1, 0): "ONES",
		NewDRL(1):     "DRL",
		NewTiresias(): "Tiresias",
		NewOptimus():  "Optimus",
		NewFIFO():     "FIFO",
		NewSJF():      "SJF",
	}
	for s, want := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestOptimusTickInterval(t *testing.T) {
	if got := NewOptimus().TickInterval(); got != 600 {
		t.Errorf("Optimus interval %v, want the paper's 600 s", got)
	}
	for _, s := range []simulator.Scheduler{NewONES(1, 0), NewTiresias(), NewDRL(1), NewFIFO()} {
		if s.TickInterval() != 0 {
			t.Errorf("%s should be event-driven", s.Name())
		}
	}
}
