package schedulers

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// makeView builds a minimal scheduler view for unit-testing ONES's
// decision plumbing without a full simulation.
func makeView(now float64, topo cluster.Topology, jobs []simulator.JobView, current *cluster.Schedule) *simulator.View {
	if current == nil {
		current = cluster.NewSchedule(topo)
	}
	return &simulator.View{
		Now:     now,
		Topo:    topo,
		Jobs:    jobs,
		Current: current,
		Throughput: func(id cluster.JobID, B, c, servers int) float64 {
			if B <= 0 || c <= 0 {
				return 0
			}
			// Simple concave throughput: diminishing returns per worker.
			return float64(B) / (0.01 + float64(B)*0.001/float64(c) + 0.02*float64(c))
		},
	}
}

func sampleJobView(id cluster.JobID) simulator.JobView {
	task := workload.Catalog()[0]
	return simulator.JobView{
		ID:       id,
		Submit:   0,
		Task:     task,
		ReqGPUs:  2,
		ReqBatch: 512,
	}
}

func TestONESFirstDecisionDeploysNewJob(t *testing.T) {
	o := NewONES(1, 1.0/12)
	o.PopulationSize = 4
	topo := cluster.Uniform(1, 4)
	view := makeView(0, topo, []simulator.JobView{sampleJobView(0)}, nil)
	s := o.Decide(simulator.TriggerArrival, view)
	if s == nil {
		t.Fatal("first arrival produced no deployment")
	}
	if !s.IsRunning(0) {
		t.Errorf("new job not scheduled: %v", s)
	}
	// Start policy: a fresh job must fit a single GPU.
	if got := s.GPUCount(0); got != 1 {
		t.Errorf("fresh job got %d GPUs, Start policy says 1", got)
	}
	if o.Stats.Decisions != 1 || o.Stats.Deployments != 1 {
		t.Errorf("stats: %+v", o.Stats)
	}
}

func TestONESLimitDoublesAfterEpochs(t *testing.T) {
	o := NewONES(1, 1.0/12)
	o.PopulationSize = 4
	topo := cluster.Uniform(1, 4)
	jv := sampleJobView(0)
	view := makeView(0, topo, []simulator.JobView{jv}, nil)
	dep := o.Decide(simulator.TriggerArrival, view)
	if dep == nil {
		t.Fatal("no initial deployment")
	}

	// Simulate two completed epochs of the running job with short exec
	// time (no convoy penalty): the limit should double each epoch.
	jv.Running = true
	jv.GPUs = dep.GPUCount(0)
	jv.Batch = dep.GlobalBatch(0)
	start := o.jobs[0].limit
	jv.WallEpochs = 1
	jv.ExecTime = 10
	jv.Processed = int64(jv.Task.DatasetSize)
	o.Decide(simulator.TriggerEpochEnd, makeView(10, topo, []simulator.JobView{jv}, dep))
	afterOne := o.jobs[0].limit
	jv.WallEpochs = 2
	jv.Processed *= 2
	o.Decide(simulator.TriggerEpochEnd, makeView(20, topo, []simulator.JobView{jv}, dep))
	afterTwo := o.jobs[0].limit
	if afterOne != 2*start || afterTwo != 4*start {
		t.Errorf("limit progression %d -> %d -> %d, want doubling from %d",
			start, afterOne, afterTwo, start)
	}
}

func TestONESFinalizesCompletedJobsIntoPredictor(t *testing.T) {
	o := NewONES(1, 1.0/12)
	o.PopulationSize = 4
	topo := cluster.Uniform(1, 2)
	jv := sampleJobView(0)
	dep := o.Decide(simulator.TriggerArrival, makeView(0, topo, []simulator.JobView{jv}, nil))

	// Feed several epoch ends so the job accumulates log points.
	jv.Running = true
	jv.GPUs = 1
	jv.Batch = 256
	for e := 1; e <= 5; e++ {
		jv.WallEpochs = float64(e)
		jv.Processed = int64(e * jv.Task.DatasetSize)
		jv.ExecTime = float64(e * 20)
		jv.Accuracy = 0.1 * float64(e)
		o.Decide(simulator.TriggerEpochEnd, makeView(float64(e*20), topo, []simulator.JobView{jv}, dep))
	}
	// Job vanishes from the view: ONES must label its logs and refit.
	o.Decide(simulator.TriggerCompletion, makeView(120, topo, nil, cluster.NewSchedule(topo)))
	if o.Predictor().Fits() != 1 {
		t.Errorf("predictor fits = %d, want 1 after completion", o.Predictor().Fits())
	}
	if o.Predictor().TrainingSize() == 0 {
		t.Error("no training samples harvested from the completed job")
	}
	if _, tracked := o.jobs[0]; tracked {
		t.Error("completed job still tracked")
	}
}

func TestONESEpochGateBlocksMidEpochRedeploys(t *testing.T) {
	o := NewONES(1, 1.0/12)
	o.PopulationSize = 4
	topo := cluster.Uniform(1, 2)
	jv := sampleJobView(0)
	dep := o.Decide(simulator.TriggerArrival, makeView(0, topo, []simulator.JobView{jv}, nil))
	jv.Running = true
	jv.GPUs = dep.GPUCount(0)
	jv.Batch = dep.GlobalBatch(0)
	jv.WallEpochs = 0.4 // mid-epoch
	before := o.Stats.GatedByEpochs
	if got := o.Decide(simulator.TriggerEpochEnd, makeView(5, topo, []simulator.JobView{jv}, dep)); got != nil {
		t.Error("mid-epoch epoch-end trigger should be gated")
	}
	if o.Stats.GatedByEpochs != before+1 {
		t.Errorf("gating not counted: %+v", o.Stats)
	}
}

func TestDRLNeverPreempts(t *testing.T) {
	// Run a full small trace and assert no running job ever loses GPUs
	// before completing (Table 3: DRL cannot preempt).
	tr, _ := testTrace(t, 12, 4)
	d := NewDRL(3)
	cfg := simulator.DefaultConfig(tr)
	cfg.Topo = cluster.Uniform(2, 4)
	watch := &preemptionWatcher{inner: d, alloc: map[cluster.JobID]int{}}
	res, err := simulator.Run(cfg, watch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated")
	}
	if watch.preempted {
		t.Error("DRL preempted a running job")
	}
}

// preemptionWatcher wraps a scheduler and flags any deployment that
// shrinks a running job to zero GPUs.
type preemptionWatcher struct {
	inner     simulator.Scheduler
	alloc     map[cluster.JobID]int
	preempted bool
}

func (w *preemptionWatcher) Name() string                 { return w.inner.Name() }
func (w *preemptionWatcher) TickInterval() float64        { return w.inner.TickInterval() }
func (w *preemptionWatcher) CostKind() simulator.CostKind { return w.inner.CostKind() }
func (w *preemptionWatcher) ManagesLR() bool              { return w.inner.ManagesLR() }
func (w *preemptionWatcher) Decide(tr simulator.Trigger, v *simulator.View) *cluster.Schedule {
	s := w.inner.Decide(tr, v)
	if s != nil {
		alive := map[cluster.JobID]bool{}
		for _, j := range v.Jobs {
			alive[j.ID] = true
		}
		for id, had := range w.alloc {
			if alive[id] && had > 0 && s.GPUCount(id) == 0 {
				w.preempted = true
			}
		}
		for id := range w.alloc {
			delete(w.alloc, id)
		}
		for _, j := range v.Jobs {
			w.alloc[j.ID] = s.GPUCount(j.ID)
		}
	}
	return s
}

func TestTiresiasPreemptsForHigherPriority(t *testing.T) {
	tires := NewTiresias()
	topo := cluster.Uniform(1, 4)
	// An old job with huge attained service fills the cluster; a new job
	// arrives. Tiresias must evict the old one (queue 1) for the new
	// (queue 0).
	old := sampleJobView(0)
	old.Running = true
	old.GPUs = 4
	old.Batch = 1024
	old.ExecTime = 99999
	old.Submit = 0
	old.ReqGPUs = 4
	fresh := sampleJobView(1)
	fresh.Submit = 100
	fresh.ReqGPUs = 4

	current := cluster.NewSchedule(topo)
	for g := 0; g < 4; g++ {
		current.SetSlot(cluster.GPUID(g), 0, 256)
	}
	view := makeView(100, topo, []simulator.JobView{old, fresh}, current)
	s := tires.Decide(simulator.TriggerArrival, view)
	if s == nil {
		t.Fatal("Tiresias made no decision")
	}
	if !s.IsRunning(1) {
		t.Error("fresh high-priority job not admitted")
	}
}

func TestDRLWeightsUpdateOnCompletion(t *testing.T) {
	d := NewDRL(5)
	topo := cluster.Uniform(1, 4)
	jv := sampleJobView(0)
	view := makeView(0, topo, []simulator.JobView{jv}, nil)
	if s := d.Decide(simulator.TriggerArrival, view); s == nil {
		t.Fatal("DRL scheduled nothing with idle GPUs")
	}
	before := d.weights
	// Job completes (vanishes): REINFORCE update must fire.
	d.Decide(simulator.TriggerCompletion, makeView(500, topo, nil, cluster.NewSchedule(topo)))
	// First completion sets the reward baseline; a second scheduled job
	// with a different JCT must move the weights.
	jv2 := sampleJobView(1)
	jv2.Submit = 500
	view2 := makeView(500, topo, []simulator.JobView{jv2}, cluster.NewSchedule(topo))
	if s := d.Decide(simulator.TriggerArrival, view2); s == nil {
		t.Fatal("DRL did not schedule the second job")
	}
	d.Decide(simulator.TriggerCompletion, makeView(3000, topo, nil, cluster.NewSchedule(topo)))
	if d.weights == before && d.nCompleted < 2 {
		t.Error("REINFORCE updates never ran")
	}
	if d.nCompleted != 2 {
		t.Errorf("completions learned: %d, want 2", d.nCompleted)
	}
}

func TestONESSeedsDiffer(t *testing.T) {
	// Different seeds should explore differently; smoke-check that two
	// seeds produce different deployments at some decision.
	topo := cluster.Uniform(2, 4)
	deploy := func(seed int64) string {
		o := NewONES(seed, 1.0/12)
		o.PopulationSize = 6
		var jobs []simulator.JobView
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 6; i++ {
			jv := sampleJobView(cluster.JobID(i))
			jv.Submit = float64(rng.Intn(50))
			jobs = append(jobs, jv)
		}
		s := o.Decide(simulator.TriggerArrival, makeView(60, topo, jobs, nil))
		if s == nil {
			return ""
		}
		return s.String()
	}
	if deploy(1) == deploy(999) {
		t.Log("two seeds deployed identically — acceptable but unusual; not failing")
	}
}
