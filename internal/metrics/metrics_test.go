package metrics

import (
	"strings"
	"testing"

	"repro/internal/simulator"
)

func fakeResult(name string, jcts, execs []float64) *simulator.Result {
	r := &simulator.Result{Scheduler: name}
	for i := range jcts {
		r.Jobs = append(r.Jobs, simulator.JobMetric{
			JCT:   jcts[i],
			Exec:  execs[i],
			Queue: jcts[i] - execs[i],
		})
	}
	return r
}

func TestSummarize(t *testing.T) {
	r := fakeResult("ONES", []float64{100, 200, 300}, []float64{80, 150, 250})
	s := Summarize(r)
	if s.Scheduler != "ONES" || s.Jobs != 3 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	if s.MeanJCT != 200 {
		t.Errorf("MeanJCT = %v", s.MeanJCT)
	}
	if s.MeanExec != 160 {
		t.Errorf("MeanExec = %v", s.MeanExec)
	}
	if s.MeanQueue != 40 {
		t.Errorf("MeanQueue = %v", s.MeanQueue)
	}
	if s.JCTBox.Median != 200 {
		t.Errorf("JCT median = %v", s.JCTBox.Median)
	}
}

func TestValues(t *testing.T) {
	r := fakeResult("x", []float64{10, 20}, []float64{4, 8})
	if got := Values(r, JCT); got[0] != 10 || got[1] != 20 {
		t.Errorf("JCT values %v", got)
	}
	if got := Values(r, Exec); got[0] != 4 {
		t.Errorf("Exec values %v", got)
	}
	if got := Values(r, Queue); got[0] != 6 {
		t.Errorf("Queue values %v", got)
	}
}

func TestMetricString(t *testing.T) {
	if JCT.String() != "JCT" || Exec.String() != "execution time" ||
		Queue.String() != "queuing time" || Metric(9).String() != "unknown" {
		t.Error("metric names wrong")
	}
}

func TestComparisonTableShowsImprovement(t *testing.T) {
	sums := []Summary{
		Summarize(fakeResult("ONES", []float64{100, 100}, []float64{90, 90})),
		Summarize(fakeResult("Tiresias", []float64{200, 200}, []float64{150, 150})),
	}
	out := ComparisonTable(sums)
	if !strings.Contains(out, "ONES") || !strings.Contains(out, "Tiresias") {
		t.Fatalf("missing schedulers:\n%s", out)
	}
	if !strings.Contains(out, "−50.0%") {
		t.Errorf("expected 50%% improvement annotation:\n%s", out)
	}
}

func TestBoxTable(t *testing.T) {
	rs := []*simulator.Result{
		fakeResult("A", []float64{1, 2, 3, 4, 5}, []float64{1, 1, 1, 1, 1}),
	}
	out := BoxTable(rs, JCT)
	if !strings.Contains(out, "median") || !strings.Contains(out, "A") {
		t.Errorf("box table malformed:\n%s", out)
	}
}

func TestCFCurves(t *testing.T) {
	rs := []*simulator.Result{
		fakeResult("A", []float64{10, 100, 1000}, []float64{5, 50, 500}),
		fakeResult("B", []float64{20, 200, 2000}, []float64{5, 50, 500}),
	}
	curves := CFCurves(rs, JCT, 10)
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.X) != 10 || len(c.Y) != 10 {
			t.Fatalf("curve %s has %d/%d points", c.Scheduler, len(c.X), len(c.Y))
		}
		if c.Y[len(c.Y)-1] < c.Y[0] {
			t.Errorf("curve %s not nondecreasing", c.Scheduler)
		}
	}
	txt := RenderCF(curves)
	if !strings.Contains(txt, "A") || !strings.Contains(txt, "B") {
		t.Errorf("rendered CF missing headers:\n%s", txt)
	}
	if RenderCF(nil) == "" {
		t.Error("empty render should still say something")
	}
}

func TestCFCurvesDegenerate(t *testing.T) {
	rs := []*simulator.Result{fakeResult("A", []float64{0}, []float64{0})}
	if got := CFCurves(rs, JCT, 5); got != nil {
		t.Errorf("degenerate data should yield nil, got %v", got)
	}
}

func TestRelativeJCT(t *testing.T) {
	sums := []Summary{
		Summarize(fakeResult("ONES", []float64{100}, []float64{100})),
		Summarize(fakeResult("DRL", []float64{150}, []float64{150})),
	}
	rel := RelativeJCT(sums, "ONES")
	if rel["ONES"] != 1 {
		t.Errorf("ONES relative = %v", rel["ONES"])
	}
	if rel["DRL"] != 1.5 {
		t.Errorf("DRL relative = %v", rel["DRL"])
	}
	if len(RelativeJCT(sums, "missing")) != 0 {
		t.Error("missing reference should yield empty map")
	}
}

func TestFractionWithin(t *testing.T) {
	r := fakeResult("x", []float64{100, 150, 250, 400}, []float64{0, 0, 0, 0})
	if got := FractionWithin(r, JCT, 200); got != 0.5 {
		t.Errorf("FractionWithin = %v, want 0.5", got)
	}
}

func TestSortSummariesONESFirst(t *testing.T) {
	sums := []Summary{{Scheduler: "Tiresias"}, {Scheduler: "DRL"}, {Scheduler: "ONES"}}
	SortSummaries(sums)
	if sums[0].Scheduler != "ONES" {
		t.Errorf("ONES not first: %v", sums)
	}
	if sums[1].Scheduler != "DRL" || sums[2].Scheduler != "Tiresias" {
		t.Errorf("rest not alphabetical: %+v", sums)
	}
}
