package metrics

import (
	"strings"
	"testing"

	"repro/internal/simulator"
)

func TestWriteJobsCSV(t *testing.T) {
	rs := []*simulator.Result{
		fakeResult("ONES", []float64{100, 200}, []float64{80, 150}),
		fakeResult("FIFO", []float64{300}, []float64{250}),
	}
	rs[0].Jobs[0].Name = "resnet50-imagenet-10k"
	var b strings.Builder
	if err := WriteJobsCSV(&b, rs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 jobs
		t.Fatalf("csv has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheduler,job,task") {
		t.Errorf("header wrong: %s", lines[0])
	}
	if !strings.Contains(out, "resnet50-imagenet-10k") {
		t.Error("task name missing")
	}
	if !strings.Contains(lines[3], "FIFO") {
		t.Errorf("second scheduler missing: %s", lines[3])
	}
}

func TestWriteEventsCSV(t *testing.T) {
	res := &simulator.Result{
		Scheduler: "ONES",
		Events: []simulator.Event{
			{Time: 1.5, Kind: simulator.EventArrive, Job: 0},
			{Time: 1.5, Kind: simulator.EventStart, Job: 0, GPUs: 1, Batch: 256},
			{Time: 9.0, Kind: simulator.EventRescale, Job: 0, GPUs: 2, Batch: 512},
		},
	}
	var b strings.Builder
	if err := WriteEventsCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.Contains(lines[3], "rescale") || !strings.Contains(lines[3], "512") {
		t.Errorf("rescale row wrong: %s", lines[3])
	}
}

func TestWriteEventsCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteEventsCSV(&b, &simulator.Result{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "time,kind,job,gpus,batch" {
		t.Errorf("empty log csv = %q", got)
	}
}
