package metrics

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simulator"
)

func TestWriteJobsCSV(t *testing.T) {
	rs := []*simulator.Result{
		fakeResult("ONES", []float64{100, 200}, []float64{80, 150}),
		fakeResult("FIFO", []float64{300}, []float64{250}),
	}
	rs[0].Jobs[0].Name = "resnet50-imagenet-10k"
	var b strings.Builder
	if err := WriteJobsCSV(&b, rs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 jobs
		t.Fatalf("csv has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheduler,job,task") {
		t.Errorf("header wrong: %s", lines[0])
	}
	if !strings.Contains(out, "resnet50-imagenet-10k") {
		t.Error("task name missing")
	}
	if !strings.Contains(lines[3], "FIFO") {
		t.Errorf("second scheduler missing: %s", lines[3])
	}
}

func TestWriteEventsCSV(t *testing.T) {
	res := &simulator.Result{
		Scheduler: "ONES",
		Events: []simulator.Event{
			{Time: 1.5, Kind: simulator.EventArrive, Job: 0},
			{Time: 1.5, Kind: simulator.EventStart, Job: 0, GPUs: 1, Batch: 256},
			{Time: 9.0, Kind: simulator.EventRescale, Job: 0, GPUs: 2, Batch: 512},
		},
	}
	var b strings.Builder
	if err := WriteEventsCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.Contains(lines[3], "rescale") || !strings.Contains(lines[3], "512") {
		t.Errorf("rescale row wrong: %s", lines[3])
	}
}

func TestWriteEventsCSVEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteEventsCSV(&b, &simulator.Result{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "time,kind,job,gpus,batch" {
		t.Errorf("empty log csv = %q", got)
	}
}

// goldenJobsResults builds the fixed input behind testdata/jobs.golden.csv.
// The FIFO job's queue is a computed −0.0: the golden file proves the
// writer collapses it to "0.000" rather than leaking a sign bit that
// depends on how the value was produced.
func goldenJobsResults() []*simulator.Result {
	negZero := math.Copysign(0, -1)
	return []*simulator.Result{
		{
			Scheduler: "ONES",
			Jobs: []simulator.JobMetric{
				{ID: 1, Name: "resnet50-imagenet", Submit: 0, Start: 2.5, Done: 102.5, JCT: 102.5, Exec: 100, Queue: 2.5},
				{ID: 2, Name: "vgg16-cifar10", Submit: 10.125, Start: 12, Done: 212, JCT: 201.875, Exec: 200, Queue: 1.875},
			},
		},
		{
			Scheduler: "FIFO",
			Jobs: []simulator.JobMetric{
				{ID: 3, Name: "bert-large-squad", Submit: 0, Start: 0, Done: 300, JCT: 300, Exec: 300, Queue: negZero},
			},
		},
	}
}

// goldenEventsResult builds the fixed input behind testdata/events.golden.csv.
func goldenEventsResult() *simulator.Result {
	return &simulator.Result{
		Scheduler: "ONES",
		Events: []simulator.Event{
			{Time: 0, Kind: simulator.EventArrive, Job: 7},
			{Time: 1.5, Kind: simulator.EventStart, Job: 7, GPUs: 1, Batch: 256},
			{Time: 9, Kind: simulator.EventRescale, Job: 7, GPUs: 2, Batch: 512},
			{Time: 10.25, Kind: simulator.EventComplete, Job: 7, GPUs: 2, Batch: 512},
		},
	}
}

// checkGolden compares emitted bytes against the checked-in golden file.
// The files pin the full emission contract — column order, float format,
// row order — so an accidental format change fails loudly here instead
// of silently breaking downstream plotting pipelines.
func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestJobsCSVGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJobsCSV(&b, goldenJobsResults()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "jobs.golden.csv", b.Bytes())
}

func TestEventsCSVGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteEventsCSV(&b, goldenEventsResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.golden.csv", b.Bytes())
}

// TestFormatSecondsStable pins the shared float formatter directly:
// fixed precision, no exponent form at any magnitude, and no negative
// zero.
func TestFormatSecondsStable(t *testing.T) {
	cases := map[float64]string{
		0:                    "0.000",
		math.Copysign(0, -1): "0.000",
		0.0005:               "0.001",
		-1.5:                 "-1.500",
		1e6:                  "1000000.000",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want {
			t.Errorf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
