package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/simulator"
)

// WriteJobsCSV emits one row per completed job across all results, ready
// for external plotting of the Figure 15 distributions:
//
//	scheduler,job,task,submit,start,done,jct,exec,queue
func WriteJobsCSV(w io.Writer, results []*simulator.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"scheduler", "job", "task", "submit", "start", "done", "jct", "exec", "queue"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range results {
		for _, j := range r.Jobs {
			row := []string{
				r.Scheduler,
				strconv.Itoa(int(j.ID)),
				j.Name,
				f(j.Submit), f(j.Start), f(j.Done), f(j.JCT), f(j.Exec), f(j.Queue),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("metrics: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventsCSV emits the scheduling event log of one result:
//
//	time,kind,job,gpus,batch
func WriteEventsCSV(w io.Writer, res *simulator.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "job", "gpus", "batch"}); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, ev := range res.Events {
		row := []string{
			strconv.FormatFloat(ev.Time, 'f', 3, 64),
			string(ev.Kind),
			strconv.Itoa(int(ev.Job)),
			strconv.Itoa(ev.GPUs),
			strconv.Itoa(ev.Batch),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
