package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/simulator"
)

// Canonical column orders. Headers and rows are built from the same
// slice, so the two can never drift apart; reorder here (never inline)
// if a column must move. Downstream plotting scripts key on these names.
var (
	jobsColumns   = []string{"scheduler", "job", "task", "submit", "start", "done", "jct", "exec", "queue"}
	eventsColumns = []string{"time", "kind", "job", "gpus", "batch"}
)

// formatSeconds renders one duration value for CSV emission. The format
// is pinned — fixed-point, millisecond precision, '.' decimal separator
// — and locale-independent: strconv never consults the process locale
// (unlike printf-style formatting in other runtimes), so the same value
// produces the same bytes on every machine. Negative zero (a possible
// product of float subtraction, e.g. queue = jct − exec) is collapsed to
// plain zero so equal values always render equal.
func formatSeconds(v float64) string {
	if v == 0 {
		v = 0 // rewrites -0.0 ("-0.000") to +0.0 ("0.000")
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// WriteJobsCSV emits one row per completed job across all results, ready
// for external plotting of the Figure 15 distributions:
//
//	scheduler,job,task,submit,start,done,jct,exec,queue
//
// Emission is byte-stable: fixed column order, fixed float formatting
// (see formatSeconds), rows in input order. Identical results produce
// identical files — csv_test.go pins the bytes with golden files.
func WriteJobsCSV(w io.Writer, results []*simulator.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobsColumns); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, r := range results {
		for _, j := range r.Jobs {
			row := []string{
				r.Scheduler,
				strconv.Itoa(int(j.ID)),
				j.Name,
				formatSeconds(j.Submit), formatSeconds(j.Start), formatSeconds(j.Done),
				formatSeconds(j.JCT), formatSeconds(j.Exec), formatSeconds(j.Queue),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("metrics: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventsCSV emits the scheduling event log of one result:
//
//	time,kind,job,gpus,batch
//
// Byte-stable under the same contract as WriteJobsCSV.
func WriteEventsCSV(w io.Writer, res *simulator.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(eventsColumns); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for _, ev := range res.Events {
		row := []string{
			formatSeconds(ev.Time),
			string(ev.Kind),
			strconv.Itoa(int(ev.Job)),
			strconv.Itoa(ev.GPUs),
			strconv.Itoa(ev.Batch),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
