// Package metrics turns simulation results into the rows and series the
// paper's evaluation figures report: the average JCT / execution / queuing
// bars of Figures 15a–c, the box-plot distributions of Figures 15d–f, the
// cumulative-frequency curves of Figures 15g–i, and the relative-JCT
// scalability view of Figures 17–18.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simulator"
	"repro/internal/stats"
)

// Summary condenses one scheduler's run.
type Summary struct {
	Scheduler string
	Jobs      int
	MeanJCT   float64
	MeanExec  float64
	MeanQueue float64
	JCTBox    stats.BoxStats
	ExecBox   stats.BoxStats
	QueueBox  stats.BoxStats
	Reconfigs int
	Makespan  float64
}

// Summarize builds a Summary from a simulation result.
func Summarize(res *simulator.Result) Summary {
	jcts := make([]float64, len(res.Jobs))
	execs := make([]float64, len(res.Jobs))
	queues := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		jcts[i] = j.JCT
		execs[i] = j.Exec
		queues[i] = j.Queue
	}
	return Summary{
		Scheduler: res.Scheduler,
		Jobs:      len(res.Jobs),
		MeanJCT:   res.MeanJCT(),
		MeanExec:  res.MeanExec(),
		MeanQueue: res.MeanQueue(),
		JCTBox:    stats.Box(jcts),
		ExecBox:   stats.Box(execs),
		QueueBox:  stats.Box(queues),
		Reconfigs: res.Reconfigs,
		Makespan:  res.Makespan,
	}
}

// Metric selects which per-job duration a rendering uses.
type Metric int

// Metrics.
const (
	JCT Metric = iota
	Exec
	Queue
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case JCT:
		return "JCT"
	case Exec:
		return "execution time"
	case Queue:
		return "queuing time"
	default:
		return "unknown"
	}
}

// Values extracts the selected per-job series from a result.
func Values(res *simulator.Result, m Metric) []float64 {
	out := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		switch m {
		case Exec:
			out[i] = j.Exec
		case Queue:
			out[i] = j.Queue
		default:
			out[i] = j.JCT
		}
	}
	return out
}

// ComparisonTable renders the Figure 15a–c rows: one line per scheduler
// with the three averages, plus the relative reduction ONES achieves
// (positive = ONES is better).
func ComparisonTable(sums []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s %14s %10s\n", "scheduler", "avg JCT (s)", "avg exec (s)", "avg queue (s)", "reconfigs")
	var ones *Summary
	for i := range sums {
		if sums[i].Scheduler == "ONES" {
			ones = &sums[i]
		}
	}
	for _, s := range sums {
		fmt.Fprintf(&b, "%-10s %12.2f %14.2f %14.2f %10d", s.Scheduler, s.MeanJCT, s.MeanExec, s.MeanQueue, s.Reconfigs)
		if ones != nil && s.Scheduler != "ONES" && s.MeanJCT > 0 {
			fmt.Fprintf(&b, "   (ONES −%.1f%%)", 100*(1-ones.MeanJCT/s.MeanJCT))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BoxTable renders the Figure 15d–f distributions for the chosen metric.
func BoxTable(results []*simulator.Result, m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s distribution (s)\n", m)
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s %9s\n", "scheduler", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range results {
		box := stats.Box(Values(r, m))
		fmt.Fprintf(&b, "%-10s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
			r.Scheduler, box.Min, box.Q1, box.Median, box.Q3, box.Max, box.Mean)
	}
	return b.String()
}

// CFSeries is one scheduler's cumulative-frequency curve.
type CFSeries struct {
	Scheduler string
	X         []float64 // metric values (log-spaced)
	Y         []float64 // cumulative frequency at X
}

// CFCurves computes the Figure 15g–i curves for all results over a shared
// log-spaced x-axis spanning the observed range.
func CFCurves(results []*simulator.Result, m Metric, points int) []CFSeries {
	if points < 2 {
		points = 2
	}
	lo, hi := 1e18, 0.0
	for _, r := range results {
		for _, v := range Values(r, m) {
			if v > 0 && v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= 0 || lo >= hi {
		return nil
	}
	xs := stats.LogSpace(lo, hi, points)
	out := make([]CFSeries, 0, len(results))
	for _, r := range results {
		out = append(out, CFSeries{
			Scheduler: r.Scheduler,
			X:         xs,
			Y:         stats.ECDF(Values(r, m), xs),
		})
	}
	return out
}

// RenderCF renders CF curves as aligned text columns.
func RenderCF(series []CFSeries) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "value(s)")
	for _, s := range series {
		fmt.Fprintf(&b, " %9s", s.Scheduler)
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%10.1f", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, " %9.3f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RelativeJCT returns each scheduler's mean JCT divided by the reference
// scheduler's (Figure 18's bars; reference = ONES ⇒ 1.00).
func RelativeJCT(sums []Summary, reference string) map[string]float64 {
	var ref float64
	for _, s := range sums {
		if s.Scheduler == reference {
			ref = s.MeanJCT
		}
	}
	out := make(map[string]float64, len(sums))
	if ref <= 0 {
		return out
	}
	for _, s := range sums {
		out[s.Scheduler] = s.MeanJCT / ref
	}
	return out
}

// FractionWithin reports the share of jobs whose metric is at or below
// the threshold (the paper's "fraction of jobs completed within 200 s").
func FractionWithin(res *simulator.Result, m Metric, threshold float64) float64 {
	return stats.FractionBelow(Values(res, m), threshold)
}

// SortSummaries orders summaries with ONES first, then by name, for stable
// report layouts.
func SortSummaries(sums []Summary) {
	sort.SliceStable(sums, func(i, j int) bool {
		if (sums[i].Scheduler == "ONES") != (sums[j].Scheduler == "ONES") {
			return sums[i].Scheduler == "ONES"
		}
		return sums[i].Scheduler < sums[j].Scheduler
	})
}
