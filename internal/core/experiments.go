package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/predictor"
	"repro/internal/runtime"
	"repro/internal/scaling"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options parameterize the experiment suite.
type Options struct {
	Seed         int64
	Jobs         int     // trace length for Fig 15/17/18
	Interarrival float64 // seconds between arrivals
	Population   int     // ONES population size K
	Capacities   []int   // GPU counts for the scalability sweep
	ParamScale   int     // live-runtime model-size divisor (Fig 16)
	CFPoints     int     // samples per cumulative-frequency curve
}

// DefaultOptions reproduce the paper-scale experiments (minutes of wall
// time: the evolutionary search is the dominant cost).
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		Jobs:         120,
		Interarrival: 12,
		Population:   32,
		Capacities:   []int{16, 32, 48, 64},
		ParamScale:   50,
		CFPoints:     12,
	}
}

// QuickOptions shrink every experiment for smoke tests and benchmarks.
func QuickOptions() Options {
	return Options{
		Seed:         1,
		Jobs:         30,
		Interarrival: 12,
		Population:   10,
		Capacities:   []int{16, 64},
		ParamScale:   400,
		CFPoints:     8,
	}
}

// Suite runs and caches the paper's experiments. Methods are not safe for
// concurrent use.
type Suite struct {
	Opt Options

	fig15 []*simulator.Result
	fig17 map[int][]*simulator.Result // capacity → results
}

// NewSuite returns a Suite over the given options.
func NewSuite(opt Options) *Suite {
	if opt.Jobs <= 0 {
		opt = DefaultOptions()
	}
	return &Suite{Opt: opt, fig17: make(map[int][]*simulator.Result)}
}

// traceConfig returns the suite's workload configuration.
func (s *Suite) traceConfig() workload.Config {
	return workload.Config{
		Seed:             s.Opt.Seed,
		NumJobs:          s.Opt.Jobs,
		MeanInterarrival: s.Opt.Interarrival,
		MaxReqGPUs:       8,
	}
}

// Fig2 regenerates Figure 2: ResNet50/CIFAR10 throughput vs worker count,
// elastic (256 per worker) against a fixed global batch of 256.
func (s *Suite) Fig2() string {
	p := perfmodel.CIFARResNet50()
	net := perfmodel.DefaultNetwork()
	var b strings.Builder
	b.WriteString("Figure 2 — training speed of ResNet50 on CIFAR10 (images/s)\n")
	fmt.Fprintf(&b, "%8s %16s %16s\n", "workers", "elastic batch", "fixed batch=256")
	for c := 1; c <= 8; c++ {
		fmt.Fprintf(&b, "%8d %16.0f %16.0f\n", c,
			perfmodel.PackedThroughput(p, net, 256*c, c, 4),
			perfmodel.PackedThroughput(p, net, 256, c, 4))
	}
	return b.String()
}

// Fig3 regenerates Figure 3: accuracy vs epochs with a fixed local batch
// of 256 on 1/2/4/8 GPUs (global batch grows, learning rate does not).
func (s *Suite) Fig3() string {
	p := perfmodel.CIFARResNet50()
	var b strings.Builder
	b.WriteString("Figure 3 — accuracy with fixed local batch 256 (no LR scaling)\n")
	fmt.Fprintf(&b, "%8s %8s %8s %8s %8s\n", "epochs", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs")
	for _, e := range []float64{10, 25, 50, 100, 150, 200} {
		fmt.Fprintf(&b, "%8.0f", e)
		for _, c := range []int{1, 2, 4, 8} {
			B := 256 * c
			eff := e / perfmodel.EpochPenalty(p, B, false)
			fmt.Fprintf(&b, " %8.3f", perfmodel.AccuracyAt(p, eff, B, false))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6 regenerates Figure 6: the online predictor's progress estimate with
// a 90% confidence interval against the observed progress of a held-out
// job.
func (s *Suite) Fig6() (string, error) {
	pred := predictor.New(s.Opt.Seed, predictor.DefaultConfig())
	catalog := workload.Catalog()
	// Train the model on completed jobs spanning the catalog.
	for i, task := range catalog {
		if i%2 == 1 {
			continue // hold out half
		}
		logs, err := trainingLogs(task, task.Profile.RefBatch)
		if err != nil {
			return "", err
		}
		if err := pred.AddCompletedJob(logs); err != nil {
			return "", err
		}
	}
	// Held-out job: mid-sized ResNet50.
	var held workload.Task
	for _, task := range catalog {
		if task.Name == "resnet50-imagenet-14k" {
			held = task
		}
	}
	tr, err := perfmodel.NewTrainer(held.Profile, held.DatasetSize, held.Profile.RefBatch, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 6 — online prediction of training progress (held-out job)\n")
	fmt.Fprintf(&b, "%12s %10s %10s %10s %10s\n", "# samples", "observed", "predicted", "ci90-lo", "ci90-hi")
	for !tr.Converged() {
		tr.AdvanceEpoch()
		d := pred.Predict(predictor.Features{
			DatasetSize: float64(tr.DatasetSize()),
			InitLoss:    held.Profile.InitLoss,
			Processed:   float64(tr.Processed()),
			LossRatio:   tr.LossRatio(),
			Accuracy:    tr.Accuracy(),
		})
		lo, hi := d.CI(0.9)
		fmt.Fprintf(&b, "%12d %10.3f %10.3f %10.3f %10.3f\n",
			tr.Processed(), tr.TrueProgress(), d.Mean(), lo, hi)
	}
	return b.String(), nil
}

// trainingLogs simulates one job to convergence at a fixed batch and
// returns its labeled per-epoch predictor samples.
func trainingLogs(task workload.Task, batch int) ([]predictor.Sample, error) {
	tr, err := perfmodel.NewTrainer(task.Profile, task.DatasetSize, batch, true)
	if err != nil {
		return nil, err
	}
	var raw []predictor.Sample
	var processed []int64
	for !tr.Converged() {
		tr.AdvanceEpoch()
		raw = append(raw, predictor.Sample{X: predictor.Features{
			DatasetSize: float64(task.DatasetSize),
			InitLoss:    task.Profile.InitLoss,
			Processed:   float64(tr.Processed()),
			LossRatio:   tr.LossRatio(),
			Accuracy:    tr.Accuracy(),
		}})
		processed = append(processed, tr.Processed())
	}
	total := float64(tr.Processed())
	logs := raw[:0]
	for i := range raw {
		p := float64(processed[i]) / total
		if p <= 0 || p >= 1 {
			continue
		}
		raw[i].Progress = p
		logs = append(logs, raw[i])
	}
	return logs, nil
}

// Table2 renders the workload catalog composition.
func (s *Suite) Table2() string {
	catalog := workload.Catalog()
	var b strings.Builder
	b.WriteString("Table 2 — workload catalog (50 task types)\n")
	fmt.Fprintf(&b, "%-28s %-12s %-10s %10s %8s\n", "task", "class", "model", "‖D‖", "classes")
	for _, t := range catalog {
		fmt.Fprintf(&b, "%-28s %-12s %-10s %10d %8d\n", t.Name, t.Class, t.Model, t.DatasetSize, t.Classes)
	}
	return b.String()
}

// Table3 renders the scheduler capability matrix.
func (s *Suite) Table3() string {
	var b strings.Builder
	b.WriteString("Table 3 — scheduler capabilities\n")
	fmt.Fprintf(&b, "%-10s %-18s %-12s %-14s %-14s\n",
		"scheduler", "strategy", "preemption", "elastic size", "elastic batch")
	rows := [][5]string{
		{"ONES", "dynamic (EA)", "yes", "yes", "yes"},
		{"DRL", "dynamic (RL)", "no", "yes", "no"},
		{"Tiresias", "greedy (LAS)", "yes", "no", "no"},
		{"Optimus", "greedy (periodic)", "yes", "yes", "no"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-18s %-12s %-14s %-14s\n", r[0], r[1], r[2], r[3], r[4])
	}
	return b.String()
}

// Fig15Results runs (once) the head-to-head comparison on the default
// 64-GPU trace.
func (s *Suite) Fig15Results() ([]*simulator.Result, error) {
	if s.fig15 != nil {
		return s.fig15, nil
	}
	cfg := RunConfig{
		Topo:       cluster.Longhorn(),
		Trace:      s.traceConfig(),
		Seed:       s.Opt.Seed,
		Population: s.Opt.Population,
	}
	res, err := Compare(cfg, PaperBaselines())
	if err != nil {
		return nil, err
	}
	s.fig15 = res
	return res, nil
}

// Fig15 renders all nine panels of Figure 15 as text.
func (s *Suite) Fig15() (string, error) {
	results, err := s.Fig15Results()
	if err != nil {
		return "", err
	}
	sums := make([]metrics.Summary, len(results))
	for i, r := range results {
		sums[i] = metrics.Summarize(r)
	}
	metrics.SortSummaries(sums)
	var b strings.Builder
	b.WriteString("Figure 15a–c — average completion / execution / queuing time\n")
	b.WriteString(metrics.ComparisonTable(sums))
	b.WriteByte('\n')
	for _, m := range []metrics.Metric{metrics.JCT, metrics.Exec, metrics.Queue} {
		b.WriteString("Figure 15d–f — ")
		b.WriteString(metrics.BoxTable(results, m))
		b.WriteByte('\n')
	}
	for _, m := range []metrics.Metric{metrics.JCT, metrics.Exec, metrics.Queue} {
		fmt.Fprintf(&b, "Figure 15g–i — cumulative frequency of %s\n", m)
		b.WriteString(metrics.RenderCF(metrics.CFCurves(results, m, s.Opt.CFPoints)))
		b.WriteByte('\n')
	}
	// The paper's headline observation on the JCT distribution.
	for _, r := range results {
		fmt.Fprintf(&b, "fraction of jobs completed within 200 s (%s): %.0f%%\n",
			r.Scheduler, 100*metrics.FractionWithin(r, metrics.JCT, 200))
	}
	return b.String(), nil
}

// Table4 runs the Wilcoxon significance tests of ONES against each
// baseline on the paired per-job JCTs from the Figure 15 runs.
func (s *Suite) Table4() (string, error) {
	results, err := s.Fig15Results()
	if err != nil {
		return "", err
	}
	var ones *simulator.Result
	for _, r := range results {
		if r.Scheduler == "ONES" {
			ones = r
		}
	}
	if ones == nil {
		return "", fmt.Errorf("core: Figure 15 runs missing ONES")
	}
	var b strings.Builder
	b.WriteString("Table 4 — Wilcoxon significance tests on per-job JCT\n")
	fmt.Fprintf(&b, "%-14s %18s %26s\n", "comparison", "p (two-sided)", "p (one-sided negative)")
	for _, r := range results {
		if r.Scheduler == "ONES" {
			continue
		}
		two, err := stats.Wilcoxon(ones.JCTs(), r.JCTs(), stats.TwoSided)
		if err != nil {
			return "", err
		}
		neg, err := stats.Wilcoxon(ones.JCTs(), r.JCTs(), stats.Greater)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "vs. %-10s %18.3g %26.5f\n", r.Scheduler, two.P, neg.P)
	}
	b.WriteString("(small two-sided p rejects equivalence; one-sided p near 1 accepts \"ONES smaller\")\n")
	return b.String(), nil
}

// Fig13 regenerates Figure 13: abrupt 256→4096 rescale at epoch 30.
func (s *Suite) Fig13() (string, error) {
	return s.lossCurve("Figure 13 — loss under abrupt rescale 256→4096 at epoch 30",
		map[int]int{30: 4096})
}

// Fig14 regenerates Figure 14: gradual 256→1024→4096 rescale.
func (s *Suite) Fig14() (string, error) {
	return s.lossCurve("Figure 14 — loss under gradual rescale 256→1024→4096",
		map[int]int{30: 1024, 60: 4096})
}

// lossCurve trains ResNet50/CIFAR10 for 90 epochs applying the given
// epoch→batch rescales, against a fixed-batch control run.
func (s *Suite) lossCurve(title string, rescale map[int]int) (string, error) {
	p := perfmodel.CIFARResNet50()
	scaled, err := perfmodel.NewTrainer(p, 40000, 256, true)
	if err != nil {
		return "", err
	}
	fixed, err := perfmodel.NewTrainer(p, 40000, 256, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "epoch", "scaled batch", "fixed batch")
	for e := 1; e <= 90; e++ {
		if nb, ok := rescale[e]; ok {
			scaled.SetBatch(nb)
		}
		scaled.AdvanceEpoch()
		fixed.AdvanceEpoch()
		if e%3 == 0 || e == 1 {
			fmt.Fprintf(&b, "%8d %14.4f %14.4f\n", e, scaled.Loss(), fixed.Loss())
		}
	}
	return b.String(), nil
}

// Fig16Row is one model's measured and calibrated scaling overheads.
type Fig16Row struct {
	Model              string
	ElasticMeasured    float64 // seconds, live mini-cluster
	CheckpointMeasured float64 // seconds, live mini-cluster
	ElasticPaper       float64 // seconds, calibrated cost model
	CheckpointPaper    float64 // seconds, calibrated cost model
}

// Fig16 measures the scaling overheads on the live runtime for each model
// in the paper's Figure 16, alongside the cost model calibrated to the
// paper's testbed magnitudes.
func (s *Suite) Fig16() ([]Fig16Row, string, error) {
	models := []string{"alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "lstm"}
	cm := scaling.DefaultCostModel()
	scale := s.Opt.ParamScale
	if scale <= 0 {
		scale = 50
	}
	rows := make([]Fig16Row, 0, len(models))
	for _, name := range models {
		prof, err := perfmodel.ByName(name)
		if err != nil {
			return nil, "", err
		}
		params := int(prof.GradBytes/4) / scale
		if params < 1024 {
			params = 1024
		}
		spec := runtime.Spec{
			Name:        name,
			ParamCount:  params,
			GlobalBatch: 256,
			LR:          0.05,
			Momentum:    0.9,
			DatasetSize: 1 << 18,
		}
		elastic, err := measureRescale(spec, false)
		if err != nil {
			return nil, "", err
		}
		checkpoint, err := measureRescale(spec, true)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig16Row{
			Model:              name,
			ElasticMeasured:    elastic,
			CheckpointMeasured: checkpoint,
			ElasticPaper:       cm.Elastic(prof, 2, 4),
			CheckpointPaper:    cm.Checkpoint(prof),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 16 — batch-size scaling overhead: elastic vs checkpoint-based (s)\n")
	fmt.Fprintf(&b, "%-12s %16s %16s %14s %14s\n",
		"model", "elastic (live)", "ckpt (live)", "elastic (cal)", "ckpt (cal)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %16.4f %16.4f %14.2f %14.2f\n",
			r.Model, r.ElasticMeasured, r.CheckpointMeasured, r.ElasticPaper, r.CheckpointPaper)
	}
	b.WriteString("(live columns: measured on the goroutine mini-cluster with models scaled down\n")
	fmt.Fprintf(&b, " by %dx; calibrated columns: cost model matching the paper's V100 testbed)\n", scale)
	return rows, b.String(), nil
}

// measureRescale times one 2→4 worker rescale on the live runtime.
func measureRescale(spec runtime.Spec, viaCheckpoint bool) (float64, error) {
	j, err := runtime.Start(spec, 2)
	if err != nil {
		return 0, err
	}
	defer j.Stop()
	if viaCheckpoint {
		d, err := j.RescaleCheckpoint(4, 2*spec.GlobalBatch)
		return d.Seconds(), err
	}
	d, err := j.RescaleElastic(4, 2*spec.GlobalBatch)
	return d.Seconds(), err
}

// Fig17Results runs (once) the capacity sweep.
func (s *Suite) Fig17Results() (map[int][]*simulator.Result, error) {
	for _, capGPUs := range s.Opt.Capacities {
		if _, ok := s.fig17[capGPUs]; ok {
			continue
		}
		topo := cluster.Topology{Servers: (capGPUs + 3) / 4, GPUsPerServer: 4}
		cfg := RunConfig{
			Topo:       topo,
			Trace:      s.traceConfig(),
			Seed:       s.Opt.Seed,
			Population: s.Opt.Population,
		}
		res, err := Compare(cfg, PaperBaselines())
		if err != nil {
			return nil, fmt.Errorf("core: capacity %d: %w", capGPUs, err)
		}
		s.fig17[capGPUs] = res
	}
	return s.fig17, nil
}

// Fig17 renders average JCT vs cluster capacity.
func (s *Suite) Fig17() (string, error) {
	byCap, err := s.Fig17Results()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 17 — average JCT (s) vs cluster capacity\n")
	fmt.Fprintf(&b, "%8s", "GPUs")
	for _, k := range PaperBaselines() {
		fmt.Fprintf(&b, " %10s", schedName(k))
	}
	b.WriteByte('\n')
	for _, capGPUs := range s.Opt.Capacities {
		fmt.Fprintf(&b, "%8d", capGPUs)
		for i := range PaperBaselines() {
			fmt.Fprintf(&b, " %10.1f", byCap[capGPUs][i].MeanJCT())
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig18 renders the relative JCT (baseline / ONES) per capacity.
func (s *Suite) Fig18() (string, error) {
	byCap, err := s.Fig17Results()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 18 — JCT relative to ONES (lower is better; ONES = 1.00)\n")
	fmt.Fprintf(&b, "%8s", "GPUs")
	for _, k := range PaperBaselines() {
		fmt.Fprintf(&b, " %10s", schedName(k))
	}
	b.WriteByte('\n')
	for _, capGPUs := range s.Opt.Capacities {
		results := byCap[capGPUs]
		var ones float64
		for _, r := range results {
			if r.Scheduler == "ONES" {
				ones = r.MeanJCT()
			}
		}
		fmt.Fprintf(&b, "%8d", capGPUs)
		for _, r := range results {
			rel := math.NaN()
			if ones > 0 {
				rel = r.MeanJCT() / ones
			}
			fmt.Fprintf(&b, " %10.2f", rel)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func schedName(k SchedulerKind) string {
	switch k {
	case KindONES:
		return "ONES"
	case KindDRL:
		return "DRL"
	case KindTiresias:
		return "Tiresias"
	case KindOptimus:
		return "Optimus"
	default:
		return string(k)
	}
}
