// Package core is the public façade of the ONES reproduction: it wires
// the workload generator, the discrete-event cluster simulator and the
// scheduler registry together behind a one-call Run/Compare API.
//
// The experiment suite that regenerates the paper's tables and figures
// lives in internal/experiments, executed through the parallel runner in
// internal/engine.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// SchedulerKind names a scheduling policy. Kinds are the names of the
// schedulers registry; NewScheduler resolves them there.
type SchedulerKind string

// Available schedulers: ONES and the paper's three baselines, plus the
// FIFO/SJF extras used in ablations.
const (
	KindONES     SchedulerKind = "ones"
	KindDRL      SchedulerKind = "drl"
	KindTiresias SchedulerKind = "tiresias"
	KindOptimus  SchedulerKind = "optimus"
	KindFIFO     SchedulerKind = "fifo"
	KindSJF      SchedulerKind = "sjf"
)

// PaperBaselines are the schedulers compared in Figure 15.
func PaperBaselines() []SchedulerKind {
	return []SchedulerKind{KindONES, KindDRL, KindTiresias, KindOptimus}
}

// RunConfig describes one simulation run.
type RunConfig struct {
	Scheduler SchedulerKind
	Topo      cluster.Topology // zero ⇒ the paper's 16×4 Longhorn testbed
	Trace     workload.Config  // zero ⇒ workload.DefaultConfig()
	Seed      int64            // scheduler RNG seed (0 ⇒ 1)

	// Population overrides ONES's population size K (0 ⇒ cluster size).
	// Smaller populations run faster with slightly noisier search.
	Population int
	// MutationRate overrides ONES's θ (0 ⇒ default 0.1).
	MutationRate float64
}

func (c *RunConfig) normalize() {
	if c.Topo == (cluster.Topology{}) {
		c.Topo = cluster.Longhorn()
	}
	if c.Trace == (workload.Config{}) {
		c.Trace = workload.DefaultConfig()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// NewScheduler constructs the named scheduler through the registry.
func NewScheduler(kind SchedulerKind, seed int64, trace workload.Config, population int, mutation float64) (simulator.Scheduler, error) {
	return schedulers.New(string(kind), schedulers.Config{
		Seed:         seed,
		ArrivalRate:  trace.ArrivalRate(),
		Population:   population,
		MutationRate: mutation,
	})
}

// Run simulates one trace under one scheduler.
func Run(cfg RunConfig) (*simulator.Result, error) { return RunWithEvents(cfg, false) }

// RunWithEvents is Run with the scheduling event log enabled on demand.
func RunWithEvents(cfg RunConfig, recordEvents bool) (*simulator.Result, error) {
	cfg.normalize()
	trace, err := workload.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(cfg.Scheduler, cfg.Seed, cfg.Trace, cfg.Population, cfg.MutationRate)
	if err != nil {
		return nil, err
	}
	simCfg := simulator.DefaultConfig(trace)
	simCfg.Topo = cfg.Topo
	simCfg.RecordEvents = recordEvents
	return simulator.Run(simCfg, sched)
}

// Compare runs several schedulers against the SAME generated trace — the
// pairing the Wilcoxon analysis of Table 4 requires.
func Compare(cfg RunConfig, kinds []SchedulerKind) ([]*simulator.Result, error) {
	cfg.normalize()
	trace, err := workload.Generate(cfg.Trace)
	if err != nil {
		return nil, err
	}
	results := make([]*simulator.Result, 0, len(kinds))
	for _, k := range kinds {
		sched, err := NewScheduler(k, cfg.Seed, cfg.Trace, cfg.Population, cfg.MutationRate)
		if err != nil {
			return nil, err
		}
		simCfg := simulator.DefaultConfig(trace)
		simCfg.Topo = cfg.Topo
		res, err := simulator.Run(simCfg, sched)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", k, err)
		}
		results = append(results, res)
	}
	return results, nil
}
