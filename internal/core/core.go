// Package core was the original one-call façade of the ONES
// reproduction. It survives only as a thin compatibility shim over the
// public SDK in pkg/ones, which is the single supported API surface.
//
// Deprecated: new code should construct an ones.Session (pkg/ones) —
// it adds context cancellation, scenarios, streaming progress and a
// memoized parallel worker pool that this shim cannot expose.
package core

import (
	"context"

	"repro/pkg/ones"

	"repro/internal/cluster"
	"repro/internal/schedulers"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// SchedulerKind names a scheduling policy. Kinds are the names of the
// schedulers registry.
//
// Deprecated: use the registry names directly (ones.Schedulers).
type SchedulerKind string

// Available schedulers: ONES and the paper's three baselines, plus the
// FIFO/SJF extras used in ablations.
const (
	KindONES     SchedulerKind = "ones"
	KindDRL      SchedulerKind = "drl"
	KindTiresias SchedulerKind = "tiresias"
	KindOptimus  SchedulerKind = "optimus"
	KindFIFO     SchedulerKind = "fifo"
	KindSJF      SchedulerKind = "sjf"
)

// PaperBaselines are the schedulers compared in Figure 15.
//
// Deprecated: use ones.PaperSchedulers.
func PaperBaselines() []SchedulerKind {
	out := make([]SchedulerKind, 0, 4)
	for _, name := range ones.PaperSchedulers() {
		out = append(out, SchedulerKind(name))
	}
	return out
}

// RunConfig describes one simulation run.
//
// Deprecated: configure an ones.Session with functional options instead.
type RunConfig struct {
	Scheduler SchedulerKind
	Topo      cluster.Topology // zero ⇒ the paper's 16×4 Longhorn testbed
	Trace     workload.Config  // zero ⇒ workload.DefaultConfig()
	Seed      int64            // master RNG seed (0 ⇒ 1)

	// Population overrides ONES's population size K.
	Population int
	// MutationRate overrides ONES's θ (0 ⇒ default 0.1).
	MutationRate float64
}

// options maps the legacy config onto SDK options.
func (c RunConfig) options(recordEvents bool) []ones.Option {
	trace := c.Trace
	if trace == (workload.Config{}) {
		trace = workload.DefaultConfig()
	}
	opts := []ones.Option{
		ones.WithScheduler(string(c.Scheduler)),
		ones.WithTrace(ones.Trace{
			Jobs:             trace.NumJobs,
			MeanInterarrival: trace.MeanInterarrival,
			MaxGPUs:          trace.MaxReqGPUs,
			Seed:             trace.Seed,
		}),
		ones.WithEventLog(recordEvents),
	}
	if c.Topo.NumServers() > 0 {
		if per, ok := c.Topo.Homogeneous(); ok {
			opts = append(opts, ones.WithTopology(c.Topo.NumServers(), per))
		} else {
			opts = append(opts, ones.WithShape(c.Topo.Shape()))
		}
	}
	if c.Seed != 0 {
		opts = append(opts, ones.WithSeed(c.Seed))
	}
	if c.Population > 0 {
		opts = append(opts, ones.WithPopulation(c.Population))
	}
	if c.MutationRate > 0 {
		opts = append(opts, ones.WithMutationRate(c.MutationRate))
	}
	return opts
}

// NewScheduler constructs the named scheduler through the registry.
//
// Deprecated: use the schedulers registry (or ones.Session) directly.
func NewScheduler(kind SchedulerKind, seed int64, trace workload.Config, population int, mutation float64) (simulator.Scheduler, error) {
	return schedulers.New(string(kind), schedulers.Config{
		Seed:         seed,
		ArrivalRate:  trace.ArrivalRate(),
		Population:   population,
		MutationRate: mutation,
	})
}

// Run simulates one trace under one scheduler.
//
// Deprecated: use ones.New(...).Run(ctx).
func Run(cfg RunConfig) (*simulator.Result, error) { return RunWithEvents(cfg, false) }

// RunWithEvents is Run with the scheduling event log enabled on demand.
//
// Deprecated: use ones.New(..., ones.WithEventLog(true)).Run(ctx).
func RunWithEvents(cfg RunConfig, recordEvents bool) (*simulator.Result, error) {
	s, err := ones.New(cfg.options(recordEvents)...)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return fromPublic(res), nil
}

// Compare runs several schedulers against the SAME generated trace — the
// pairing the Wilcoxon analysis of Table 4 requires.
//
// Deprecated: use ones.Session.Compare.
func Compare(cfg RunConfig, kinds []SchedulerKind) ([]*simulator.Result, error) {
	s, err := ones.New(cfg.options(false)...)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	pub, err := s.Compare(context.Background(), names...)
	if err != nil {
		return nil, err
	}
	out := make([]*simulator.Result, len(pub))
	for i, r := range pub {
		out[i] = fromPublic(r)
	}
	return out, nil
}

// fromPublic rebuilds the legacy simulator.Result view this package's
// callers expect from the SDK's public Result.
func fromPublic(r *ones.Result) *simulator.Result {
	out := &simulator.Result{
		Scheduler:          r.Scheduler,
		Jobs:               make([]simulator.JobMetric, len(r.Jobs)),
		Makespan:           r.Makespan,
		Truncated:          r.Truncated,
		Unfinished:         r.Unfinished,
		Reconfigs:          r.Reconfigs,
		Evictions:          r.Evictions,
		CapacityEvents:     r.CapacityEvents,
		BusyGPUSeconds:     r.BusyGPUSeconds,
		TotalGPUs:          r.Capacity,
		CapacityGPUSeconds: r.CapacityGPUSeconds,
	}
	for i, j := range r.Jobs {
		out.Jobs[i] = simulator.JobMetric{
			ID:     cluster.JobID(j.ID),
			Name:   j.Name,
			Submit: j.Submit,
			Start:  j.Start,
			Done:   j.Done,
			JCT:    j.JCT,
			Exec:   j.Exec,
			Queue:  j.Queue,
		}
	}
	for _, ev := range r.Events {
		out.Events = append(out.Events, simulator.Event{
			Time:  ev.Time,
			Kind:  simulator.EventKind(ev.Kind),
			Job:   cluster.JobID(ev.Job),
			GPUs:  ev.GPUs,
			Batch: ev.Batch,
		})
	}
	return out
}
