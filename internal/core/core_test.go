package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func quickSuite() *Suite { return NewSuite(QuickOptions()) }

func quickRunConfig(kind SchedulerKind) RunConfig {
	return RunConfig{
		Scheduler:  kind,
		Topo:       cluster.Topology{Servers: 4, GPUsPerServer: 4},
		Trace:      workload.Config{Seed: 2, NumJobs: 10, MeanInterarrival: 25, MaxReqGPUs: 4},
		Seed:       3,
		Population: 8,
	}
}

func TestNewSchedulerAllKinds(t *testing.T) {
	trace := workload.DefaultConfig()
	for _, k := range []SchedulerKind{KindONES, KindDRL, KindTiresias, KindOptimus, KindFIFO, KindSJF} {
		s, err := NewScheduler(k, 1, trace, 8, 0.1)
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s has empty name", k)
		}
	}
	if _, err := NewScheduler("bogus", 1, trace, 0, 0); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(quickRunConfig(KindFIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 10 || res.Truncated {
		t.Fatalf("run incomplete: %d jobs, truncated %v", len(res.Jobs), res.Truncated)
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	cfg := RunConfig{Scheduler: KindTiresias}
	cfg.Trace = workload.Config{Seed: 1, NumJobs: 5, MeanInterarrival: 30, MaxReqGPUs: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 5 {
		t.Fatalf("jobs %d", len(res.Jobs))
	}
}

func TestCompareIsPaired(t *testing.T) {
	cfg := quickRunConfig(KindONES)
	results, err := Compare(cfg, []SchedulerKind{KindFIFO, KindSJF})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	// Paired: both schedulers saw the identical job set.
	if len(results[0].Jobs) != len(results[1].Jobs) {
		t.Error("job counts differ across paired runs")
	}
}

func TestFig2Shape(t *testing.T) {
	out := quickSuite().Fig2()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "elastic") {
		t.Errorf("Fig2 output malformed:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 9 {
		t.Errorf("Fig2 has %d lines, want 8 worker rows", got)
	}
}

func TestFig3Shape(t *testing.T) {
	out := quickSuite().Fig3()
	if !strings.Contains(out, "8 GPUs") {
		t.Errorf("Fig3 output malformed:\n%s", out)
	}
}

func TestFig6Runs(t *testing.T) {
	out, err := quickSuite().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ci90-lo") {
		t.Errorf("Fig6 missing CI columns:\n%s", out)
	}
	if strings.Count(out, "\n") < 8 {
		t.Errorf("Fig6 too few prediction rows:\n%s", out)
	}
}

func TestTables(t *testing.T) {
	s := quickSuite()
	t2 := s.Table2()
	if strings.Count(t2, "\n") < 52 { // header + 50 rows
		t.Errorf("Table2 should list 50 tasks:\n%s", t2)
	}
	t3 := s.Table3()
	for _, name := range []string{"ONES", "DRL", "Tiresias", "Optimus"} {
		if !strings.Contains(t3, name) {
			t.Errorf("Table3 missing %s", name)
		}
	}
}

func TestFig13And14(t *testing.T) {
	s := quickSuite()
	f13, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	f14, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f13, "abrupt") || !strings.Contains(f14, "gradual") {
		t.Error("loss-curve titles wrong")
	}
}

func TestFig16QuickScale(t *testing.T) {
	rows, out, err := quickSuite().Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Fig16 rows = %d, want 7 models", len(rows))
	}
	for _, r := range rows {
		if r.ElasticMeasured <= 0 || r.CheckpointMeasured <= 0 {
			t.Errorf("%s: nonpositive measured overheads %+v", r.Model, r)
		}
		if r.CheckpointPaper < 5*r.ElasticPaper {
			t.Errorf("%s: calibrated checkpoint should dwarf elastic: %+v", r.Model, r)
		}
	}
	if !strings.Contains(out, "vgg16") {
		t.Errorf("Fig16 render missing models:\n%s", out)
	}
}

func TestFullPipelineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick evolutionary comparison")
	}
	s := quickSuite()
	f15, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 15a", "cumulative frequency", "within 200 s"} {
		if !strings.Contains(f15, want) {
			t.Errorf("Fig15 output missing %q", want)
		}
	}
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4, "vs. ") {
		t.Errorf("Table4 malformed:\n%s", t4)
	}
	f17, err := s.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	f18, err := s.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f17, "GPUs") || !strings.Contains(f18, "1.00") {
		t.Errorf("scalability outputs malformed:\n%s\n%s", f17, f18)
	}
}

func TestRunWithEventsRecordsLog(t *testing.T) {
	res, err := RunWithEvents(quickRunConfig(KindFIFO), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Error("no events recorded")
	}
	plain, err := Run(quickRunConfig(KindFIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Events) != 0 {
		t.Error("Run should not record events")
	}
}
