package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func quickRunConfig(kind SchedulerKind) RunConfig {
	return RunConfig{
		Scheduler:  kind,
		Topo:       cluster.Uniform(4, 4),
		Trace:      workload.Config{Seed: 2, NumJobs: 10, MeanInterarrival: 25, MaxReqGPUs: 4},
		Seed:       3,
		Population: 8,
	}
}

func TestNewSchedulerAllKinds(t *testing.T) {
	trace := workload.DefaultConfig()
	for _, k := range []SchedulerKind{KindONES, KindDRL, KindTiresias, KindOptimus, KindFIFO, KindSJF} {
		s, err := NewScheduler(k, 1, trace, 8, 0.1)
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s has empty name", k)
		}
	}
	if _, err := NewScheduler("bogus", 1, trace, 0, 0); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(quickRunConfig(KindFIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 10 || res.Truncated {
		t.Fatalf("run incomplete: %d jobs, truncated %v", len(res.Jobs), res.Truncated)
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	cfg := RunConfig{Scheduler: KindTiresias}
	cfg.Trace = workload.Config{Seed: 1, NumJobs: 5, MeanInterarrival: 30, MaxReqGPUs: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 5 {
		t.Fatalf("jobs %d", len(res.Jobs))
	}
}

func TestCompareIsPaired(t *testing.T) {
	cfg := quickRunConfig(KindONES)
	results, err := Compare(cfg, []SchedulerKind{KindFIFO, KindSJF})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	// Paired: both schedulers saw the identical job set.
	if len(results[0].Jobs) != len(results[1].Jobs) {
		t.Error("job counts differ across paired runs")
	}
}

func TestRunWithEventsRecordsLog(t *testing.T) {
	res, err := RunWithEvents(quickRunConfig(KindFIFO), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Error("no events recorded")
	}
	plain, err := Run(quickRunConfig(KindFIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Events) != 0 {
		t.Error("Run should not record events")
	}
}
