// Package runtime is the live mini-cluster: a central controller, one
// worker manager per worker, and scaling agents executing the paper's
// elastic batch-size scaling (§3.3.1, Figures 11–12) with real goroutine
// workers training a real (synthetic) model over the collective package's
// ring all-reduce.
//
// Two reconfiguration paths are implemented:
//
//   - RescaleElastic — the paper's checkpoint-free protocol: new workers
//     initialize concurrently with ongoing training, existing workers
//     pause at a step boundary (the pause request rides on the gradient
//     all-reduce, so every rank agrees on the stopping step), everyone
//     connects to the new topology, parameters are broadcast from a
//     surviving worker, and training resumes.
//
//   - RescaleCheckpoint — the conventional baseline: pause, serialize the
//     full training state with gob, tear every worker down, re-prepare the
//     input pipeline, restart workers from scratch and reload.
//
// Both return wall-clock durations, which the Figure 16 benchmark compares.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
)

// Spec describes a job for the live runtime.
type Spec struct {
	Name        string
	ParamCount  int     // model parameters (floats)
	GlobalBatch int     // samples per step across all workers
	LR          float32 // SGD learning rate
	Momentum    float32 // SGD momentum coefficient
	DatasetSize int     // synthetic samples regenerated on checkpoint restart
}

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	switch {
	case s.ParamCount <= 0:
		return fmt.Errorf("runtime: ParamCount %d", s.ParamCount)
	case s.GlobalBatch <= 0:
		return fmt.Errorf("runtime: GlobalBatch %d", s.GlobalBatch)
	case s.LR <= 0:
		return fmt.Errorf("runtime: LR %v", s.LR)
	case s.DatasetSize <= 0:
		return fmt.Errorf("runtime: DatasetSize %d", s.DatasetSize)
	}
	return nil
}

// model is one worker's replica.
type model struct {
	params   []float32
	momentum []float32
	step     int64
}

func newModel(n int) *model {
	return &model{params: make([]float32, n), momentum: make([]float32, n)}
}

// target returns the synthetic optimum the model regresses toward; the
// training loss is the mean squared distance to it.
func target(i int) float32 { return float32(i%17)/17 - 0.5 }

// worker is one rank: a worker manager plus its scaling agent.
type worker struct {
	rank  int
	spec  Spec
	model *model
	comm  *collective.Comm
	local int // local batch size

	pause  atomic.Bool
	ctrl   chan ctrlMsg
	paused chan struct{} // signaled when the worker leaves its training loop
}

type ctrlMsg struct {
	kind  ctrlKind
	comm  *collective.Comm
	local int
	bcast bool
	root  int
	ack   chan struct{}
}

type ctrlKind int

const (
	ctrlResume ctrlKind = iota
	ctrlQuit
)

// run is the worker-manager goroutine: wait for control, train, repeat.
func (w *worker) run() {
	for msg := range w.ctrl {
		switch msg.kind {
		case ctrlResume:
			w.comm = msg.comm
			w.local = msg.local
			if msg.bcast {
				// Figure 12: broadcast parameters together from one of
				// the previous workers.
				_ = w.comm.Broadcast(w.model.params, msg.root)
				_ = w.comm.Broadcast(w.model.momentum, msg.root)
			}
			w.pause.Store(false)
			close(msg.ack)
			w.train()
		case ctrlQuit:
			close(msg.ack)
			return
		}
	}
}

// train steps until a pause is agreed. The pause request is appended to
// the gradient all-reduce so every rank stops after the same step — the
// paper's "pauses the user script at the end of a training step".
func (w *worker) train() {
	n := len(w.model.params)
	buf := make([]float32, n+1) // gradients + control flag
	for {
		grads := buf[:n]
		for i := range grads {
			grads[i] = w.model.params[i] - target(i)
		}
		// Simulated per-sample compute (stands in for the forward/backward
		// pass; cost proportional to the local batch).
		var sink float32
		for s := 0; s < w.local; s++ {
			sink += float32(s & 7)
		}
		_ = sink
		flag := float32(0)
		if w.pause.Load() {
			flag = 1
		}
		buf[n] = flag
		w.comm.AllReduceSum(buf)
		inv := 1 / float32(w.comm.Size())
		lr := w.spec.LR
		mu := w.spec.Momentum
		for i := range grads {
			g := grads[i] * inv
			w.model.momentum[i] = mu*w.model.momentum[i] + g
			w.model.params[i] -= lr * w.model.momentum[i]
		}
		w.model.step++
		if buf[n] > 0 { // some rank requested a pause: all stop here
			w.paused <- struct{}{}
			return
		}
	}
}

// Job is a running elastic training job.
type Job struct {
	mu      sync.Mutex
	spec    Spec
	workers []*worker
	paused  bool
	stopped bool
}

// Start launches the job on n workers: rank 0 initializes parameters
// deterministically and broadcasts them, then training begins.
func Start(spec Spec, n int) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("runtime: worker count %d", n)
	}
	j := &Job{spec: spec}
	j.workers = spawnWorkers(spec, 0, n)
	rng := rand.New(rand.NewSource(42))
	for i := range j.workers[0].model.params {
		j.workers[0].model.params[i] = float32(rng.NormFloat64())
	}
	if err := j.resumeAll(true); err != nil {
		return nil, err
	}
	return j, nil
}

// spawnWorkers creates and starts worker goroutines with ranks
// [firstRank, firstRank+count). They initialize their model buffers (the
// Figure 12 "overlap initialization with previous training") and then
// block waiting for a resume.
func spawnWorkers(spec Spec, firstRank, count int) []*worker {
	ws := make([]*worker, count)
	for i := range ws {
		ws[i] = &worker{
			rank:   firstRank + i,
			spec:   spec,
			model:  newModel(spec.ParamCount),
			ctrl:   make(chan ctrlMsg),
			paused: make(chan struct{}, 1),
		}
		go ws[i].run()
	}
	return ws
}

// Workers returns the current worker count.
func (j *Job) Workers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.workers)
}

// GlobalBatch returns the current global batch size.
func (j *Job) GlobalBatch() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spec.GlobalBatch
}

// pauseAllLocked stops training at the next step boundary and waits for
// every worker to leave its loop. Idempotent: a second pause without an
// intervening resume is a no-op (the workers are already parked). Callers
// hold j.mu.
func (j *Job) pauseAllLocked() {
	if j.paused {
		return
	}
	for _, w := range j.workers {
		w.pause.Store(true)
	}
	for _, w := range j.workers {
		<-w.paused
	}
	j.paused = true
}

// resumeAll reconnects every worker to a fresh topology and restarts
// training; when bcast is set, rank 0's parameters are distributed first.
func (j *Job) resumeAll(bcast bool) error {
	group, err := collective.NewGroup(len(j.workers))
	if err != nil {
		return err
	}
	local := j.spec.GlobalBatch / len(j.workers)
	if local < 1 {
		local = 1
	}
	acks := make([]chan struct{}, len(j.workers))
	for i, w := range j.workers {
		comm, err := group.Comm(i)
		if err != nil {
			return err
		}
		w.rank = i
		acks[i] = make(chan struct{})
		w.ctrl <- ctrlMsg{kind: ctrlResume, comm: comm, local: local, bcast: bcast, root: 0, ack: acks[i]}
	}
	for _, a := range acks {
		<-a
	}
	j.paused = false
	return nil
}

// quitWorkersLocked tears down the given workers.
func quitWorkers(ws []*worker) {
	for _, w := range ws {
		ack := make(chan struct{})
		w.ctrl <- ctrlMsg{kind: ctrlQuit, ack: ack}
		<-ack
	}
}

// Pause stops training at the next step boundary; every worker agrees on
// the stopping step via the control flag on the gradient all-reduce.
// Inspection methods (Steps, Loss, ParamsDigest) are exact only while
// paused or stopped.
func (j *Job) Pause() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return
	}
	j.pauseAllLocked()
}

// Resume restarts training after a Pause with the same topology.
func (j *Job) Resume() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return fmt.Errorf("runtime: job %s stopped", j.spec.Name)
	}
	return j.resumeAll(false)
}

// Stop pauses and tears the job down.
func (j *Job) Stop() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return
	}
	j.pauseAllLocked()
	quitWorkers(j.workers)
	j.workers = nil
	j.stopped = true
}

// Steps returns rank 0's step counter. Only meaningful while paused or
// stopped-consistent; used by tests after rescales.
func (j *Job) Steps() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.workers) == 0 {
		return 0
	}
	return j.workers[0].model.step
}

// Loss returns rank 0's current mean squared error to the synthetic
// optimum. Callers should pause first for an exact value; a racy read is
// fine for monitoring.
func (j *Job) Loss() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.workers) == 0 {
		return 0
	}
	var s float64
	params := j.workers[0].model.params
	for i, p := range params {
		d := float64(p - target(i))
		s += d * d
	}
	return s / float64(len(params))
}

// ParamsDigest returns a checksum of each worker's parameters, for
// consistency checks after reconfiguration.
func (j *Job) ParamsDigest() []float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]float64, len(j.workers))
	for i, w := range j.workers {
		var s float64
		for _, p := range w.model.params {
			s += float64(p)
		}
		out[i] = s
	}
	return out
}

// RescaleElastic executes the checkpoint-free protocol of Figures 11–12
// and returns how long the training was actually interrupted (pause →
// resume). Growth spawns and initializes the new workers BEFORE pausing,
// overlapping their setup with ongoing training.
func (j *Job) RescaleElastic(newWorkers, newGlobalBatch int) (time.Duration, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return 0, fmt.Errorf("runtime: job %s already stopped", j.spec.Name)
	}
	if newWorkers <= 0 || newGlobalBatch <= 0 {
		return 0, fmt.Errorf("runtime: rescale to %d workers batch %d", newWorkers, newGlobalBatch)
	}
	old := len(j.workers)
	// Step 1 (grow only): start new workers and let them initialize while
	// the previous topology keeps training.
	var joiners []*worker
	if newWorkers > old {
		joiners = spawnWorkers(j.spec, old, newWorkers-old)
	}
	start := time.Now()
	// Step 2: pause at a step boundary.
	j.pauseAllLocked()
	// Step 3: reshape the worker set.
	if newWorkers > old {
		j.workers = append(j.workers, joiners...)
	} else if newWorkers < old {
		quitWorkers(j.workers[newWorkers:])
		j.workers = j.workers[:newWorkers]
	}
	j.spec.GlobalBatch = newGlobalBatch
	// Step 4: reconnect and broadcast parameters from a surviving worker.
	if err := j.resumeAll(true); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RescaleCheckpoint executes the conventional baseline: pause, serialize
// the full state, destroy every worker, re-prepare the input pipeline,
// restart from the checkpoint. Returns the training interruption time.
func (j *Job) RescaleCheckpoint(newWorkers, newGlobalBatch int) (time.Duration, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stopped {
		return 0, fmt.Errorf("runtime: job %s already stopped", j.spec.Name)
	}
	if newWorkers <= 0 || newGlobalBatch <= 0 {
		return 0, fmt.Errorf("runtime: rescale to %d workers batch %d", newWorkers, newGlobalBatch)
	}
	start := time.Now()
	j.pauseAllLocked()
	// Save.
	state := &ckpt.State{
		Name:     j.spec.Name,
		Step:     j.workers[0].model.step,
		Batch:    newGlobalBatch,
		Params:   j.workers[0].model.params,
		Momentum: j.workers[0].model.momentum,
	}
	blob, err := ckpt.Encode(state)
	if err != nil {
		return 0, err
	}
	// Stop: every worker process goes away.
	quitWorkers(j.workers)
	// Restart: re-prepare the input pipeline (the dominant real-world cost
	// besides CUDA context setup — data is regenerated from scratch).
	dataset := make([]float32, j.spec.DatasetSize)
	rng := rand.New(rand.NewSource(7))
	for i := range dataset {
		dataset[i] = float32(rng.NormFloat64())
	}
	_ = dataset
	// Reload.
	restored, err := ckpt.Decode(blob)
	if err != nil {
		return 0, err
	}
	j.spec.GlobalBatch = newGlobalBatch
	j.workers = spawnWorkers(j.spec, 0, newWorkers)
	copy(j.workers[0].model.params, restored.Params)
	copy(j.workers[0].model.momentum, restored.Momentum)
	for _, w := range j.workers {
		w.model.step = restored.Step
	}
	if err := j.resumeAll(true); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
