package runtime

import (
	"math"
	"testing"
	"time"
)

func testSpec() Spec {
	return Spec{
		Name:        "test-job",
		ParamCount:  4096,
		GlobalBatch: 256,
		LR:          0.1,
		Momentum:    0.9,
		DatasetSize: 10000,
	}
}

// monotoneSpec is testSpec without momentum, for tests that compare
// loss between two pause points. With Momentum 0.9 the loss follows
// underdamped second-order dynamics (the update's characteristic poles
// are complex with modulus ~0.95), so it oscillates on its way down and
// an instantaneous before/after comparison can land on opposite phases
// of a swing — a real intermittent failure under -race, whose slower
// scheduling shifts where the pauses fall. Momentum coverage stays in
// the digest-consistency and step-count tests, which don't compare
// loss snapshots.
func monotoneSpec() Spec {
	s := testSpec()
	s.Momentum = 0
	return s
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.ParamCount = 0 },
		func(s *Spec) { s.GlobalBatch = 0 },
		func(s *Spec) { s.LR = 0 },
		func(s *Spec) { s.DatasetSize = 0 },
	} {
		bad := testSpec()
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid spec accepted: %+v", bad)
		}
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Spec{}, 2); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := Start(testSpec(), 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestTrainingMakesProgress(t *testing.T) {
	j, err := Start(monotoneSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(50 * time.Millisecond)
	j.Pause()
	steps := j.Steps()
	loss := j.Loss()
	if steps == 0 {
		t.Fatal("no steps executed")
	}
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	j.Pause()
	if j.Steps() <= steps {
		t.Errorf("steps did not advance after resume: %d -> %d", steps, j.Steps())
	}
	// The synthetic objective can converge to exactly zero within the
	// sleep window; only require monotone non-increase then.
	if after := j.Loss(); after > loss || (loss > 1e-6 && after >= loss) {
		t.Errorf("loss did not decrease: %v -> %v", loss, after)
	}
}

func TestWorkersStayConsistent(t *testing.T) {
	j, err := Start(testSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(30 * time.Millisecond)
	j.Pause()
	digests := j.ParamsDigest()
	for i := 1; i < len(digests); i++ {
		if math.Abs(digests[i]-digests[0]) > 1e-3 {
			t.Fatalf("worker %d diverged: %v vs %v", i, digests[i], digests[0])
		}
	}
}

func TestRescaleElasticGrow(t *testing.T) {
	j, err := Start(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(20 * time.Millisecond)
	d, err := j.RescaleElastic(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("rescale duration %v", d)
	}
	if j.Workers() != 4 || j.GlobalBatch() != 512 {
		t.Errorf("after grow: %d workers batch %d", j.Workers(), j.GlobalBatch())
	}
	time.Sleep(20 * time.Millisecond)
	j.Pause()
	digests := j.ParamsDigest()
	for i := 1; i < 4; i++ {
		if math.Abs(digests[i]-digests[0]) > 1e-3 {
			t.Fatalf("joiner %d inconsistent after elastic grow", i)
		}
	}
}

func TestRescaleElasticShrink(t *testing.T) {
	j, err := Start(testSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(20 * time.Millisecond)
	if _, err := j.RescaleElastic(1, 128); err != nil {
		t.Fatal(err)
	}
	if j.Workers() != 1 {
		t.Errorf("after shrink: %d workers", j.Workers())
	}
	time.Sleep(20 * time.Millisecond)
	j.Pause()
	if j.Steps() == 0 {
		t.Error("single worker stopped training after shrink")
	}
}

func TestRescaleElasticPreservesProgress(t *testing.T) {
	j, err := Start(monotoneSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(40 * time.Millisecond)
	j.Pause()
	stepsBefore := j.Steps()
	lossBefore := j.Loss()
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.RescaleElastic(3, 384); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	j.Pause()
	if j.Steps() <= stepsBefore {
		t.Error("steps lost across elastic rescale")
	}
	if after := j.Loss(); after > lossBefore || (lossBefore > 1e-6 && after >= lossBefore) {
		t.Errorf("loss regressed across elastic rescale: %v -> %v", lossBefore, after)
	}
}

func TestRescaleCheckpointPreservesState(t *testing.T) {
	j, err := Start(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	time.Sleep(40 * time.Millisecond)
	j.Pause()
	stepsBefore := j.Steps()
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	d, err := j.RescaleCheckpoint(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("checkpoint rescale duration %v", d)
	}
	if j.Workers() != 4 {
		t.Errorf("workers = %d", j.Workers())
	}
	time.Sleep(20 * time.Millisecond)
	j.Pause()
	if j.Steps() <= stepsBefore {
		t.Error("checkpoint restart lost step counter")
	}
	digests := j.ParamsDigest()
	for i := 1; i < 4; i++ {
		if math.Abs(digests[i]-digests[0]) > 1e-3 {
			t.Fatalf("worker %d inconsistent after checkpoint restart", i)
		}
	}
}

func TestElasticCheaperThanCheckpoint(t *testing.T) {
	// The Figure 16 claim at mini-cluster scale: the elastic path
	// interrupts training for far less time than save/teardown/restart.
	// Use a beefier model so serialization cost dominates noise.
	spec := testSpec()
	spec.ParamCount = 1 << 20 // 4 MB of parameters
	spec.DatasetSize = 1 << 20

	var elastic, checkpoint time.Duration
	const rounds = 3
	for i := 0; i < rounds; i++ {
		j, err := Start(spec, 2)
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		d, err := j.RescaleElastic(4, 512)
		if err != nil {
			t.Fatal(err)
		}
		elastic += d
		j.Stop()

		j2, err := Start(spec, 2)
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		d2, err := j2.RescaleCheckpoint(4, 512)
		if err != nil {
			t.Fatal(err)
		}
		checkpoint += d2
		j2.Stop()
	}
	if checkpoint <= elastic {
		t.Errorf("checkpoint rescale (%v) should cost more than elastic (%v)", checkpoint, elastic)
	}
}

func TestOpsOnStoppedJobFail(t *testing.T) {
	j, err := Start(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Stop()
	j.Stop() // idempotent
	if _, err := j.RescaleElastic(3, 256); err == nil {
		t.Error("rescale of stopped job accepted")
	}
	if _, err := j.RescaleCheckpoint(3, 256); err == nil {
		t.Error("checkpoint rescale of stopped job accepted")
	}
	if err := j.Resume(); err == nil {
		t.Error("resume of stopped job accepted")
	}
	if j.Steps() != 0 || j.Loss() != 0 {
		t.Error("stopped job should report zero state")
	}
}

func TestRescaleRejectsDegenerateArgs(t *testing.T) {
	j, err := Start(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	if _, err := j.RescaleElastic(0, 256); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := j.RescaleElastic(2, 0); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestDoublePauseAndStopAfterPause(t *testing.T) {
	j, err := Start(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	j.Pause()
	j.Pause() // must be a no-op, not a deadlock
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	j.Pause()
	j.Stop() // stop of an already-paused job must not hang
}
