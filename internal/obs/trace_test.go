package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestSpanTreeOrderingAndTiming(t *testing.T) {
	tr := NewTracer(4, 64)
	ctx, root := tr.Start(context.Background(), "run-1", "run")
	cctx, cell := StartSpan(ctx, "cell")
	q := cell.StartChild("queued")
	q.End()
	sim := cell.StartChild("simulate")
	sim.Annotate("scheduler", "ones")
	_, inner := StartSpan(ContextWithSpan(cctx, sim), "evolution-interval")
	inner.End()
	sim.End()
	cell.End()
	root.End()

	node, ok := tr.Tree("run-1")
	if !ok {
		t.Fatal("trace missing")
	}
	if node.Name != "run" || len(node.Children) != 1 {
		t.Fatalf("root = %q with %d children", node.Name, len(node.Children))
	}
	cn := node.Children[0]
	if cn.Name != "cell" || len(cn.Children) != 2 {
		t.Fatalf("cell node = %q with %d children", cn.Name, len(cn.Children))
	}
	// Children keep creation order: queued before simulate.
	if cn.Children[0].Name != "queued" || cn.Children[1].Name != "simulate" {
		t.Errorf("child order = [%s, %s], want [queued, simulate]", cn.Children[0].Name, cn.Children[1].Name)
	}
	simNode := cn.Children[1]
	if simNode.Attrs["scheduler"] != "ones" {
		t.Errorf("simulate attrs = %v", simNode.Attrs)
	}
	if len(simNode.Children) != 1 || simNode.Children[0].Name != "evolution-interval" {
		t.Errorf("simulate children = %+v", simNode.Children)
	}
	if simNode.StartMS < cn.Children[0].StartMS {
		t.Error("simulate started before queued")
	}
	if node.InProgress || cn.InProgress {
		t.Error("ended spans still in progress")
	}
}

func TestSpanTreeInProgressAndCancelledAnnotation(t *testing.T) {
	tr := NewTracer(4, 64)
	ctx, root := tr.Start(context.Background(), "run-2", "run")
	_, cell := StartSpan(ctx, "cell")
	q := cell.StartChild("queued")
	q.End()
	sim := cell.StartChild("simulate")
	// A cancelled run ends the simulate span with an annotation and
	// leaves the root open (the run goroutine is still unwinding).
	sim.Annotate("cancelled", "true")
	sim.End()
	cell.End()

	node, ok := tr.Tree("run-2")
	if !ok {
		t.Fatal("trace missing")
	}
	if !node.InProgress {
		t.Error("open root must render in_progress")
	}
	cn := node.Children[0]
	simNode := cn.Children[1]
	if simNode.Attrs["cancelled"] != "true" {
		t.Errorf("cancelled annotation missing: %v", simNode.Attrs)
	}
	if simNode.InProgress {
		t.Error("ended simulate span still in progress")
	}
	root.End()
}

func TestTraceSpanBoundAndDrops(t *testing.T) {
	tr := NewTracer(2, 3)
	_, root := tr.Start(context.Background(), "r", "run")
	a := root.StartChild("a")
	b := root.StartChild("b") // hits the 3-span cap
	c := root.StartChild("c") // dropped
	if a == nil || b == nil {
		t.Fatal("spans under the cap must record")
	}
	if c != nil {
		t.Fatal("span over the cap must drop (nil)")
	}
	// Dropped spans are no-op parents: grandchildren drop too, silently.
	if gc := c.StartChild("grandchild"); gc != nil {
		t.Error("child of dropped span must be nil")
	}
	c.End()
	c.Annotate("k", "v")
	node, _ := tr.Tree("r")
	if node.DroppedSpans != 1 {
		t.Errorf("dropped = %d, want 1", node.DroppedSpans)
	}
	if len(node.Children) != 2 {
		t.Errorf("children = %d, want 2", len(node.Children))
	}
}

func TestTracerEvictsOldest(t *testing.T) {
	tr := NewTracer(2, 8)
	for i := 1; i <= 3; i++ {
		_, root := tr.Start(context.Background(), fmt.Sprintf("run-%d", i), "run")
		root.End()
	}
	if _, ok := tr.Tree("run-1"); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range []string{"run-2", "run-3"} {
		if _, ok := tr.Tree(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
}

func TestNilTracerAndContextFreeSpans(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Start(context.Background(), "x", "run")
	if root != nil {
		t.Error("nil tracer must return nil span")
	}
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without a trace must be a no-op")
	}
	sp.Annotate("k", "v")
	sp.End()
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(2, 10_000)
	ctx, root := tr.Start(context.Background(), "r", "run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := StartSpan(ctx, "cell")
				s.Annotate("i", "x")
				ch := s.StartChild("inner")
				ch.End()
				s.End()
				if i%50 == 0 {
					tr.Tree("r") // render concurrently with recording
				}
			}
		}()
	}
	wg.Wait()
	root.End()
	node, _ := tr.Tree("r")
	if len(node.Children) != 8*200 {
		t.Errorf("recorded %d cells, want %d", len(node.Children), 8*200)
	}
}
