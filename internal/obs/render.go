package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, each
// with its # HELP and # TYPE lines, children sorted by label values,
// histograms expanded into cumulative _bucket{le=...} series plus _sum
// and _count. Rendering is deterministic for a given registry state —
// golden and conformance tests rely on that. Safe on a nil Registry
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// snapshotChildren copies the family's child list, sorted by label
// values for render stability.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	f.mu.Unlock()
	return out
}

func (f *family) write(w io.Writer) error {
	children := f.snapshotChildren()
	if len(children) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, c := range children {
		if err := f.writeChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, c *child) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues, ""), strconv.FormatUint(c.counter.Value(), 10))
		return err
	case kindGauge:
		v := 0.0
		if fn := c.fn.Load(); fn != nil {
			v = (*fn)()
		} else {
			v = c.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues, ""), formatFloat(v))
		return err
	case kindHistogram:
		h := c.hist
		// Snapshot count first: concurrent Observes may land between the
		// bucket reads below and would otherwise make the +Inf bucket
		// disagree with _count within one exposition.
		total := h.Count()
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if cum > total {
				cum = total
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labelNames, c.labelValues, formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labelNames, c.labelValues, "+Inf"), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues, ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labelNames, c.labelValues, ""), total)
		return err
	}
	return nil
}

// renderLabels renders a {name="value",...} label set, optionally
// appending an le bucket label (le == "" ⇒ none). Returns "" for an
// empty set.
func renderLabels(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, locale-independent.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
