// Package obs is the repo's dependency-free observability core: a
// metrics registry (counters, gauges, histograms — all with atomic hot
// paths) that renders the Prometheus text exposition format, and a
// lightweight span/tracing API that records per-run lifecycles into a
// bounded in-memory buffer exportable as a JSON span tree.
//
// The package is built for out-of-band instrumentation of deterministic
// code: nothing here touches an RNG, and every instrument handle is
// nil-safe — a package holds *Counter/*Gauge/*Histogram/*Span fields
// unconditionally and calls Inc/Set/Observe/End on them, and when no
// registry (or trace) is wired in the handles are nil and the calls are
// single-branch no-ops. Enabling metrics can therefore change
// performance, never results; the byte-identical-Result tests in
// pkg/ones pin that.
//
// Metric naming follows Prometheus conventions: `<subsystem>_<noun>_
// <unit>` with `_total` counters (engine_cells_completed_total,
// servecache_hits_total, http_request_seconds). See DESIGN.md
// ("Observability") for the full catalog.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds, in TYPE-line spelling.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families by name and renders them as Prometheus
// text. All methods are safe for concurrent use; instrument handles
// returned by the getters are get-or-create, so independent packages (or
// repeated Session constructions over one registry) share one underlying
// series per (name, labels) pair instead of fighting over registration.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one metric name: metadata plus the children (one per label
// combination; exactly one unlabeled child for plain instruments).
type family struct {
	name       string
	help       string
	kind       string
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child // key: label values joined by \xff
}

// child is one series: a concrete instrument or a gauge callback.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          atomic.Pointer[func() float64] // GaugeFunc children
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family for name, checking
// that kind and label names match any prior registration — a mismatch is
// a programming error and panics.
func (r *Registry) familyFor(name, help, kind string, labelNames []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:       name,
			help:       help,
			kind:       kind,
			labelNames: append([]string(nil), labelNames...),
			buckets:    append([]float64(nil), buckets...),
			children:   make(map[string]*child),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	if len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labelNames, f.labelNames))
	}
	for i, n := range labelNames {
		if f.labelNames[i] != n {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)", name, labelNames, f.labelNames))
		}
	}
	return f
}

// childKey joins label values into a map key. \xff cannot appear in
// valid UTF-8 label values, so the join is unambiguous.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// childFor returns (creating if needed) the series for the given label
// values.
func (f *family) childFor(values []string) *child {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d label names", f.name, len(values), len(f.labelNames)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = newHistogram(f.buckets)
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the unlabeled counter registered under name,
// creating it on first use. Safe on a nil Registry (returns nil; all
// Counter methods are nil-safe no-ops).
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, kindCounter, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).counter
}

// Gauge returns the unlabeled gauge registered under name, creating it
// on first use. Safe on a nil Registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).gauge
}

// Histogram returns the unlabeled histogram registered under name with
// the given upper bounds (nil ⇒ DefBuckets), creating it on first use.
// Safe on a nil Registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(name, help, kindHistogram, nil, buckets)
	if f == nil {
		return nil
	}
	return f.childFor(nil).hist
}

// CounterVec declares a labeled counter family; With resolves one
// series. Safe on a nil Registry.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.familyFor(name, help, kindCounter, labelNames, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// GaugeVec declares a labeled gauge family; With resolves one series.
// Safe on a nil Registry.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.familyFor(name, help, kindGauge, labelNames, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// HistogramVec declares a labeled histogram family (nil buckets ⇒
// DefBuckets); With resolves one series. Safe on a nil Registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(name, help, kindHistogram, labelNames, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// GaugeFunc registers a gauge whose value is computed by fn at render
// time — for cheap derived readings (map sizes, bytes on disk, runs by
// state) that would otherwise need bookkeeping on every mutation.
// labelPairs is an alternating key, value list; registering the same
// (name, labels) again replaces the callback. Safe on a nil Registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: GaugeFunc %q: odd label pair list", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.familyFor(name, help, kindGauge, names, nil)
	f.childFor(values).fn.Store(&fn)
}

// lookupChild returns the registered series for (name, labelValues), or
// nil — read-only: unlike the instrument getters it never creates a
// family or series, so snapshot readers do not pollute the registry.
func (r *Registry) lookupChild(name string, labelValues []string) *child {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.Lock()
	c := f.children[childKey(labelValues)]
	f.mu.Unlock()
	return c
}

// CounterValue reads the named counter series (0 when never registered).
// Read-only; see lookupChild.
func (r *Registry) CounterValue(name string, labelValues ...string) uint64 {
	c := r.lookupChild(name, labelValues)
	if c == nil {
		return 0
	}
	return c.counter.Value()
}

// GaugeValue reads the named gauge series (0 when never registered; a
// GaugeFunc series evaluates its callback). Read-only; see lookupChild.
func (r *Registry) GaugeValue(name string, labelValues ...string) float64 {
	c := r.lookupChild(name, labelValues)
	if c == nil {
		return 0
	}
	if fn := c.fn.Load(); fn != nil {
		return (*fn)()
	}
	return c.gauge.Value()
}

// HistogramSum reads the named histogram series' sum of observations
// (0 when never registered). Read-only; see lookupChild.
func (r *Registry) HistogramSum(name string, labelValues ...string) float64 {
	c := r.lookupChild(name, labelValues)
	if c == nil {
		return 0
	}
	return c.hist.Sum()
}

// CounterVec resolves labeled counters.
//
//ones:nilsafe
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// name, in declaration order). Safe on a nil vec.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.childFor(labelValues).counter
}

// GaugeVec resolves labeled gauges.
//
//ones:nilsafe
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values. Safe on a nil vec.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.childFor(labelValues).gauge
}

// HistogramVec resolves labeled histograms.
//
//ones:nilsafe
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values. Safe on a nil
// vec.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.childFor(labelValues).hist
}

// Counter is a monotonically increasing count. The zero value is ready;
// all methods are safe on a nil receiver (no-ops) and for concurrent
// use (one atomic add).
//
//ones:nilsafe
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits with
// atomic updates. The zero value is ready; all methods are safe on a
// nil receiver and for concurrent use.
//
//ones:nilsafe
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop — contended adds stay correct).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram upper bounds (seconds), spanning
// sub-millisecond cache hits to multi-minute evolution cells.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Histogram counts observations into cumulative buckets, Prometheus
// style. Observations are lock-free: one atomic add into the owning
// bucket, one into the count, and a CAS loop on the float sum.
//
//ones:nilsafe
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implied
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &Histogram{bounds: sorted, counts: make([]atomic.Uint64, len(sorted)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}
