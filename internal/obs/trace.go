package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer owns a bounded buffer of traces, keyed by trace ID (onesd uses
// run IDs). When the buffer is full the oldest trace is evicted — a
// long-lived daemon keeps the most recent runs inspectable without
// unbounded memory. Safe for concurrent use.
//
//ones:nilsafe
type Tracer struct {
	maxTraces int
	maxSpans  int

	mu     sync.Mutex
	traces map[string]*Trace
	order  []string // insertion order, for eviction
}

// Default trace-buffer bounds: how many traces a Tracer retains and how
// many spans one trace records before dropping (ONES cells take
// thousands of evolution intervals; the cap keeps the early shape and
// counts the rest).
const (
	DefaultMaxTraces        = 64
	DefaultMaxSpansPerTrace = 512
)

// NewTracer returns a Tracer retaining up to maxTraces traces of up to
// maxSpansPerTrace spans each (≤0 ⇒ the package defaults).
func NewTracer(maxTraces, maxSpansPerTrace int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &Tracer{maxTraces: maxTraces, maxSpans: maxSpansPerTrace, traces: make(map[string]*Trace)}
}

// Start opens a new trace under id with a root span named name and
// returns a context carrying it — StartSpan calls below that context
// record child spans into the trace. Re-using an id replaces the old
// trace. End the returned span to close the root. Safe on a nil Tracer
// (returns ctx unchanged and a nil span).
func (t *Tracer) Start(ctx context.Context, id, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{id: id, start: time.Now(), maxSpans: t.maxSpans}
	root := tr.newSpan(nil, name)
	t.mu.Lock()
	if _, exists := t.traces[id]; !exists {
		t.order = append(t.order, id)
		for len(t.order) > t.maxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.traces[id] = tr
	t.mu.Unlock()
	return ContextWithSpan(ctx, root), root
}

// Tree renders the trace's span tree (children in span-creation order),
// or false if the id is unknown or already evicted. Safe on a nil
// Tracer.
func (t *Tracer) Tree(id string) (*SpanNode, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	tr := t.traces[id]
	t.mu.Unlock()
	if tr == nil {
		return nil, false
	}
	return tr.tree(), true
}

// Trace is one bounded in-memory span buffer. Spans append in creation
// order; once maxSpans is reached further spans are counted as dropped
// instead of stored, so a trace's memory is bounded however long the
// run.
type Trace struct {
	id       string
	start    time.Time
	maxSpans int

	mu      sync.Mutex
	spans   []*Span
	dropped int
}

// newSpan appends a started span (or counts a drop and returns nil —
// every Span method is nil-safe, so callers never check).
func (tr *Trace) newSpan(parent *Span, name string) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= tr.maxSpans {
		tr.dropped++
		return nil
	}
	s := &Span{trace: tr, parent: parent, name: name, start: time.Now()}
	tr.spans = append(tr.spans, s)
	return s
}

// Span is one timed section of a trace. The zero of a trace-less
// (nil) span is a no-op: StartChild returns nil, End and Annotate do
// nothing — instrumented code never branches on whether tracing is on.
//
//ones:nilsafe
type Span struct {
	trace  *Trace
	parent *Span
	name   string
	start  time.Time

	mu    sync.Mutex
	end   time.Time
	attrs map[string]string
}

// StartChild opens and records a child span. Safe on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(s, name)
}

// End closes the span (first call wins; later calls are no-ops). Safe
// on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Annotate attaches a key=value attribute to the span. Safe on a nil
// receiver.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// spanKey carries the current span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying span as the current parent
// for StartSpan.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the context's current span (nil when the
// context carries no trace).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying the child plus the child itself. When the context
// carries no trace — tracing off — it returns the context unchanged and
// a nil (no-op) span, so instrumented code pays one map lookup and
// nothing else.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}

// SpanNode is the JSON view of one span in a trace tree. Times are
// milliseconds relative to the trace start, so a tree is readable
// without clock context.
type SpanNode struct {
	Name       string            `json:"name"`
	StartMS    float64           `json:"start_ms"`
	DurationMS float64           `json:"duration_ms"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanNode       `json:"children,omitempty"`
	// DroppedSpans (root only) counts spans the bounded buffer refused.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// tree assembles the span tree. Spans were appended in creation order
// and parents are always created before children, so one forward pass
// links every node; children keep creation order.
func (tr *Trace) tree() *SpanNode {
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	dropped := tr.dropped
	tr.mu.Unlock()
	if len(spans) == 0 {
		return &SpanNode{Name: "(empty)", DroppedSpans: dropped}
	}
	nodes := make(map[*Span]*SpanNode, len(spans))
	var root *SpanNode
	for _, s := range spans {
		s.mu.Lock()
		end := s.end
		var attrs map[string]string
		if len(s.attrs) > 0 {
			attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
		}
		s.mu.Unlock()
		n := &SpanNode{
			Name:    s.name,
			StartMS: float64(s.start.Sub(tr.start)) / float64(time.Millisecond),
			Attrs:   attrs,
		}
		if end.IsZero() {
			n.InProgress = true
		} else {
			n.DurationMS = float64(end.Sub(s.start)) / float64(time.Millisecond)
		}
		nodes[s] = n
		if s.parent == nil {
			root = n
			continue
		}
		if p := nodes[s.parent]; p != nil {
			p.Children = append(p.Children, n)
		}
	}
	if root == nil {
		root = &SpanNode{Name: "(orphaned)"}
	}
	root.DroppedSpans = dropped
	return root
}
