package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "jobs"); again != c {
		t.Error("Counter is not get-or-create: second handle differs")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Errorf("hist sum = %v, want 55.55", h.Sum())
	}
}

func TestVecsResolveDistinctSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "endpoint", "code")
	v.With("/v1/runs", "200").Add(3)
	v.With("/v1/runs", "404").Inc()
	v.With("/metrics", "200").Inc()
	if got := v.With("/v1/runs", "200").Value(); got != 3 {
		t.Errorf("series = %d, want 3", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`http_requests_total{endpoint="/v1/runs",code="200"} 3`,
		`http_requests_total{endpoint="/v1/runs",code="404"} 1`,
		`http_requests_total{endpoint="/metrics",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "a").Inc()
	r.Gauge("b", "b").Set(1)
	r.Histogram("c", "c", nil).Observe(1)
	r.CounterVec("d", "d", "l").With("x").Inc()
	r.GaugeVec("e", "e", "l").With("x").Set(2)
	r.HistogramVec("f", "f", nil, "l").With("x").Observe(3)
	r.GaugeFunc("g", "g", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	for name, f := range map[string]func(){
		"kind":   func() { r.Gauge("x_total", "x") },
		"labels": func() { r.CounterVec("x_total", "x", "l") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

// sampleLine matches one Prometheus text sample:
// name{label="value",...} value
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN|[+-]Inf)$`)

// TestPrometheusExpositionConformance renders a registry exercising
// every instrument kind and label shape, then parses the output line by
// line: every sample's family must have emitted # HELP and # TYPE
// lines first, names and labels must match the exposition grammar,
// histogram buckets must be cumulative and end in an le="+Inf" bucket
// equal to _count, and families must appear in sorted order.
func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_cells_completed_total", "cells completed").Add(7)
	r.CounterVec("servecache_hits_total", "cache hits", "source").With("disk").Add(2)
	r.Gauge("engine_workers_busy", "busy workers").Set(3)
	r.GaugeFunc("onesd_runs", "runs by state", func() float64 { return 2 }, "state", "running")
	r.GaugeFunc("onesd_runs", "runs by state", func() float64 { return 5 }, "state", "done")
	h := r.Histogram("engine_cell_seconds", "cell wall time", []float64{0.1, 1, 10})
	for _, v := range []float64{0.01, 0.5, 0.7, 3, 30} {
		h.Observe(v)
	}
	r.HistogramVec("http_request_seconds", "latency", []float64{0.5}, "endpoint").
		With(`weird"label\value`).Observe(0.2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	type famState struct {
		typ     string
		help    bool
		buckets map[string]uint64 // labels-sans-le → last cumulative value
		counts  map[string]uint64 // labels → _count value
	}
	fams := make(map[string]*famState)
	var lastFam string
	nameOf := func(metric string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(metric, suffix)
			if base != metric {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return metric
	}
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", i, line)
			}
			if fams[parts[0]] == nil {
				fams[parts[0]] = &famState{buckets: map[string]uint64{}, counts: map[string]uint64{}}
			}
			fams[parts[0]].help = true
			if parts[0] < lastFam {
				t.Errorf("family %q out of sorted order (after %q)", parts[0], lastFam)
			}
			lastFam = parts[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i, line)
			}
			if parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram" {
				t.Errorf("line %d: unknown type %q", i, parts[1])
			}
			f := fams[parts[0]]
			if f == nil || !f.help {
				t.Errorf("line %d: TYPE before HELP for %q", i, parts[0])
			} else {
				f.typ = parts[1]
			}
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: not a valid sample: %q", i, line)
			}
			fam := nameOf(m[1])
			f := fams[fam]
			if f == nil || !f.help || f.typ == "" {
				t.Fatalf("line %d: sample %q before its HELP/TYPE", i, m[1])
			}
			if f.typ == "histogram" && strings.HasSuffix(m[1], "_bucket") {
				labels := m[2]
				le := regexp.MustCompile(`,?le="([^"]*)"`).FindStringSubmatch(labels)
				if le == nil {
					t.Fatalf("line %d: bucket without le: %q", i, line)
				}
				base := strings.Replace(labels, le[0], "", 1)
				v, err := strconv.ParseUint(m[3], 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket value %q: %v", i, m[3], err)
				}
				if prev, ok := f.buckets[base]; ok && v < prev {
					t.Errorf("line %d: bucket not cumulative: %d after %d", i, v, prev)
				}
				f.buckets[base] = v
				if le[1] == "+Inf" {
					f.counts[base] = v
				}
			}
			if f.typ == "histogram" && strings.HasSuffix(m[1], "_count") {
				v, _ := strconv.ParseUint(m[3], 10, 64)
				want, ok := f.counts[normalizeEmpty(m[2])]
				if !ok || want != v {
					t.Errorf("line %d: _count %d disagrees with le=+Inf bucket %d", i, v, want)
				}
			}
		}
	}
	// Spot-check required series made it out at all.
	for _, want := range []string{
		"engine_cells_completed_total 7",
		`servecache_hits_total{source="disk"} 2`,
		`onesd_runs{state="done"} 5`,
		`engine_cell_seconds_bucket{le="+Inf"} 5`,
		`http_request_seconds_bucket{endpoint="weird\"label\\value",le="0.5"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// normalizeEmpty maps the label set of a _count line onto the
// bucket-map key built by stripping le from a _bucket line: a histogram
// with no other labels yields "{}" there and "" on the _count line.
func normalizeEmpty(labels string) string {
	if labels == "" {
		return "{}"
	}
	return labels
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// increments, vec resolution, gauge funcs, histogram observes and
// renders all interleave — and asserts the final counts. Run with
// -race (CI does).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", "ops")
			vec := r.CounterVec("ops_by_kind_total", "ops by kind", "kind")
			h := r.Histogram("op_seconds", "op latency", nil)
			g := r.Gauge("inflight", "in flight")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With(fmt.Sprintf("kind%d", i%3)).Inc()
				h.Observe(float64(i%10) / 10)
				g.Inc()
				g.Dec()
				if i%500 == 0 {
					r.GaugeFunc("derived", "derived", func() float64 { return float64(i) }, "w", fmt.Sprint(w))
					if err := r.WritePrometheus(&strings.Builder{}); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total", "ops").Value(); got != workers*perWorker {
		t.Errorf("ops_total = %d, want %d", got, workers*perWorker)
	}
	var total uint64
	vec := r.CounterVec("ops_by_kind_total", "ops by kind", "kind")
	for k := 0; k < 3; k++ {
		total += vec.With(fmt.Sprintf("kind%d", k)).Value()
	}
	if total != workers*perWorker {
		t.Errorf("ops_by_kind_total sums to %d, want %d", total, workers*perWorker)
	}
	if got := r.Histogram("op_seconds", "op latency", nil).Count(); got != workers*perWorker {
		t.Errorf("op_seconds count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight", "in flight").Value(); got != 0 {
		t.Errorf("inflight = %v, want 0", got)
	}
}
