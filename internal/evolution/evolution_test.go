package evolution

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/predictor"
)

// testCtx builds a Context with n alive jobs over the given topology.
// Jobs get staggered limits, processed history and progress distributions.
func testCtx(seed int64, n int, topo cluster.Topology) *Context {
	prof := perfmodel.CIFARResNet50()
	net := perfmodel.DefaultNetwork()
	jobs := make(map[cluster.JobID]*JobInfo, n)
	for i := 0; i < n; i++ {
		id := cluster.JobID(i)
		jobs[id] = &JobInfo{
			ID:               id,
			Limit:            256 << uint(i%4), // 256..2048
			MaxPerGPU:        prof.MaxPerGPU,
			EpochSize:        40000,
			ProcessedSamples: float64(40000 * (i % 5)),
			ProcessedTime:    float64(60 * i),
			Dist:             predictor.Dist{Alpha: float64(1 + i%5), Beta: float64(2 + i%7)},
		}
	}
	return &Context{
		Topo: topo,
		Jobs: jobs,
		Throughput: func(j cluster.JobID, B, c, servers int) float64 {
			return perfmodel.Throughput(prof, net, B, c, servers)
		},
		Rng: rand.New(rand.NewSource(seed)),
	}
}

func validateLimits(t *testing.T, s *cluster.Schedule, ctx *Context) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	for _, j := range s.RunningJobs() {
		info, ok := ctx.Jobs[j]
		if !ok {
			t.Fatalf("completed job %d still scheduled", j)
		}
		if B := s.GlobalBatch(j); B > info.Limit {
			t.Fatalf("job %d batch %d exceeds limit %d", j, B, info.Limit)
		}
		for _, g := range s.GPUsOf(j) {
			if b := s.Slot(g).Batch; b > info.MaxPerGPU {
				t.Fatalf("job %d local batch %d exceeds GPU memory %d", j, b, info.MaxPerGPU)
			}
		}
	}
}

func TestRefreshFillsEmptyCluster(t *testing.T) {
	topo := cluster.Uniform(2, 4)
	ctx := testCtx(1, 6, topo)
	s := Refresh(cluster.NewSchedule(topo), ctx)
	validateLimits(t, s, ctx)
	if s.NumIdle() != 0 {
		t.Errorf("refresh left %d idle GPUs with 6 hungry jobs", s.NumIdle())
	}
	if len(s.RunningJobs()) == 0 {
		t.Error("refresh scheduled nothing")
	}
}

func TestRefreshRemovesCompletedJobs(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(2, 3, topo)
	s := cluster.NewSchedule(topo)
	s.SetSlot(0, 99, 128) // job 99 is not alive
	s.SetSlot(1, 0, 128)
	out := Refresh(s, ctx)
	if out.IsRunning(99) {
		t.Error("completed job survived refresh")
	}
	validateLimits(t, out, ctx)
}

func TestRefreshEnforcesLimit(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(3, 1, topo)
	ctx.Jobs[0].Limit = 256
	s := cluster.NewSchedule(topo)
	// Job 0 over-allocated: B = 1024 > R = 256.
	for g := 0; g < 4; g++ {
		s.SetSlot(cluster.GPUID(g), 0, 256)
	}
	out := Refresh(s, ctx)
	validateLimits(t, out, ctx)
	if B := out.GlobalBatch(0); B > 256 {
		t.Errorf("limit not enforced: B = %d", B)
	}
}

func TestRefreshAllocatesNewJobsOnFullCluster(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(4, 5, topo)
	// Jobs 0..3 fill the cluster; job 4 is brand new.
	ctx.NewJobs = []cluster.JobID{4}
	ctx.Jobs[4].ProcessedSamples = 0
	ctx.Jobs[4].ProcessedTime = 0
	s := cluster.NewSchedule(topo)
	for g := 0; g < 4; g++ {
		s.SetSlot(cluster.GPUID(g), cluster.JobID(g), 256)
	}
	out := Refresh(s, ctx)
	validateLimits(t, out, ctx)
	if !out.IsRunning(4) {
		t.Error("new job not allocated despite preferential policy")
	}
}

func TestRefreshTakesFromLongestRunningJob(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(5, 5, topo)
	ctx.NewJobs = []cluster.JobID{4}
	// Job 2 has by far the largest processed time.
	for i := 0; i < 4; i++ {
		ctx.Jobs[cluster.JobID(i)].ProcessedTime = 10
	}
	ctx.Jobs[2].ProcessedTime = 10_000
	ctx.Jobs[4].ProcessedTime = 0
	s := cluster.NewSchedule(topo)
	for g := 0; g < 4; g++ {
		s.SetSlot(cluster.GPUID(g), cluster.JobID(g), 256)
	}
	out := Refresh(s, ctx)
	if out.IsRunning(2) && out.GPUCount(2) >= 1 && !out.IsRunning(4) {
		t.Error("new job should displace the longest-running job")
	}
}

func TestCrossoverIdenticalParentsYieldIdenticalChildren(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(6, 4, topo)
	parent := Refresh(cluster.NewSchedule(topo), ctx)
	c1, c2 := Crossover(parent, parent, ctx)
	if !c1.Equal(parent) || !c2.Equal(parent) {
		t.Error("crossover of identical full parents should be a no-op")
	}
}

func TestCrossoverChildrenValid(t *testing.T) {
	topo := cluster.Uniform(2, 4)
	ctx := testCtx(7, 6, topo)
	a := Refresh(cluster.NewSchedule(topo), ctx)
	b := Refresh(cluster.NewSchedule(topo), ctx)
	c1, c2 := Crossover(a, b, ctx)
	validateLimits(t, c1, ctx)
	validateLimits(t, c2, ctx)
}

func TestMutateThetaOneEvictsAndRefills(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(8, 4, topo)
	s := Refresh(cluster.NewSchedule(topo), ctx)
	m := Mutate(s, ctx, 1.0)
	validateLimits(t, m, ctx)
	if m.NumIdle() != 0 {
		t.Errorf("mutation left %d idle GPUs with hungry jobs", m.NumIdle())
	}
}

func TestMutateThetaZeroKeepsAssignmentsStable(t *testing.T) {
	topo := cluster.Uniform(1, 4)
	ctx := testCtx(9, 4, topo)
	s := Refresh(cluster.NewSchedule(topo), ctx)
	m := Mutate(s, ctx, 0)
	// With θ=0 no eviction happens; normalize/fill of an already feasible
	// full schedule must not change job placement.
	for _, j := range s.RunningJobs() {
		if m.GPUCount(j) != s.GPUCount(j) {
			t.Errorf("θ=0 mutation changed job %d GPU count", j)
		}
	}
}

func TestScoreEmptyScheduleZero(t *testing.T) {
	topo := cluster.Uniform(1, 2)
	ctx := testCtx(10, 2, topo)
	s := cluster.NewSchedule(topo)
	if got := Score(s, ctx, SampleRhos(ctx)); got != 0 {
		t.Errorf("empty schedule score = %v, want 0", got)
	}
}

func TestScoreInfiniteOnZeroThroughput(t *testing.T) {
	topo := cluster.Uniform(1, 2)
	ctx := testCtx(11, 1, topo)
	ctx.Throughput = func(cluster.JobID, int, int, int) float64 { return 0 }
	s := cluster.NewSchedule(topo)
	s.SetSlot(0, 0, 128)
	if got := Score(s, ctx, SampleRhos(ctx)); !math.IsInf(got, 1) {
		t.Errorf("score with zero throughput = %v, want +Inf", got)
	}
}

func TestScorePrefersNearlyDoneJobs(t *testing.T) {
	topo := cluster.Uniform(1, 1)
	ctx := testCtx(12, 2, topo)
	// Job 0 nearly done (ρ≈0.95), job 1 barely started (ρ≈0.05); equal
	// history otherwise.
	for _, id := range []cluster.JobID{0, 1} {
		ctx.Jobs[id].ProcessedSamples = 80000
		ctx.Jobs[id].Limit = 256
	}
	rhos := map[cluster.JobID]float64{0: 0.95, 1: 0.05}
	s0 := cluster.NewSchedule(topo)
	s0.SetSlot(0, 0, 256)
	s1 := cluster.NewSchedule(topo)
	s1.SetSlot(0, 1, 256)
	if Score(s0, ctx, rhos) >= Score(s1, ctx, rhos) {
		t.Error("running the nearly-done job should score lower (SRUF)")
	}
}

func TestSampleRhosInOpenInterval(t *testing.T) {
	ctx := testCtx(13, 8, cluster.Uniform(1, 4))
	rhos := SampleRhos(ctx)
	if len(rhos) != 8 {
		t.Fatalf("got %d draws, want 8", len(rhos))
	}
	for id, r := range rhos {
		if r <= 0 || r >= 1 {
			t.Errorf("job %d drew ρ=%v outside (0,1)", id, r)
		}
	}
}

func TestEngineIterateProducesValidFullSchedule(t *testing.T) {
	topo := cluster.Uniform(2, 4)
	ctx := testCtx(14, 10, topo)
	e := NewEngine(8, 0.2)
	var best *cluster.Schedule
	for i := 0; i < 5; i++ {
		best = e.Iterate(ctx)
	}
	validateLimits(t, best, ctx)
	if best.NumIdle() != 0 {
		t.Errorf("champion leaves %d GPUs idle with 10 hungry jobs", best.NumIdle())
	}
	if len(e.Population()) != 8 {
		t.Errorf("population size %d, want 8", len(e.Population()))
	}
}

func TestEngineDeterministicGivenSeed(t *testing.T) {
	run := func() string {
		topo := cluster.Uniform(2, 2)
		ctx := testCtx(42, 5, topo)
		e := NewEngine(6, 0.3)
		var best *cluster.Schedule
		for i := 0; i < 4; i++ {
			best = e.Iterate(ctx)
		}
		return best.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different champions:\n%s\n%s", a, b)
	}
}

func TestEngineImprovesOverRandomRefresh(t *testing.T) {
	topo := cluster.Uniform(4, 4)
	ctx := testCtx(15, 12, topo)
	meanRhos := make(map[cluster.JobID]float64, len(ctx.Jobs))
	for id, info := range ctx.Jobs {
		meanRhos[id] = info.Dist.Mean()
	}
	// Baseline: average score of single refreshes from empty.
	var refreshSum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		refreshSum += Score(Refresh(cluster.NewSchedule(topo), ctx), ctx, meanRhos)
	}
	refreshMean := refreshSum / trials
	// Evolution: champion after several iterations.
	e := NewEngine(12, 0.2)
	var best *cluster.Schedule
	for i := 0; i < 8; i++ {
		best = e.Iterate(ctx)
	}
	champ := Score(best, ctx, meanRhos)
	if champ > refreshMean*1.05 {
		t.Errorf("evolution champion (%v) should not be worse than mean random refresh (%v)", champ, refreshMean)
	}
}

func TestEngineBestWithoutIterate(t *testing.T) {
	topo := cluster.Uniform(1, 2)
	ctx := testCtx(16, 3, topo)
	e := NewEngine(4, 0.2)
	if e.Best(ctx) != nil {
		t.Error("Best on empty population should be nil")
	}
	e.Init(ctx)
	if e.Best(ctx) == nil {
		t.Error("Best after Init should not be nil")
	}
}

func TestEngineAblationSwitches(t *testing.T) {
	topo := cluster.Uniform(2, 2)
	ctx := testCtx(17, 5, topo)
	e := NewEngine(4, 0.2)
	e.DisableReorder = true
	e.DisableSampling = true
	best := e.Iterate(ctx)
	validateLimits(t, best, ctx)
}

func TestRefreshInvariantsProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		n := int(nJobs)%12 + 1
		topo := cluster.Uniform(2, 4)
		ctx := testCtx(seed, n, topo)
		s := Refresh(cluster.NewSchedule(topo), ctx)
		if s.Validate() != nil {
			return false
		}
		for _, j := range s.RunningJobs() {
			info := ctx.Jobs[j]
			if s.GlobalBatch(j) > info.Limit {
				return false
			}
			for _, g := range s.GPUsOf(j) {
				if s.Slot(g).Batch > info.MaxPerGPU {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEngineChampionInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		topo := cluster.Uniform(2, 2)
		ctx := testCtx(seed, 6, topo)
		e := NewEngine(5, 0.25)
		best := e.Iterate(ctx)
		if best.Validate() != nil {
			return false
		}
		for _, j := range best.RunningJobs() {
			if best.GlobalBatch(j) > ctx.Jobs[j].Limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEngineParallelMatchesSerial is the determinism matrix for parallel
// candidate generation: at parallelism 1, 4 and GOMAXPROCS the champion
// genome, the whole population and every sampled score must be
// byte-identical — the fan-out must never change a result, only wall
// time. Run under -race this also exercises the shared throughput memo
// and the scratch/RNG pools from concurrent workers.
func TestEngineParallelMatchesSerial(t *testing.T) {
	run := func(parallelism int) string {
		topo := cluster.Uniform(2, 4)
		ctx := testCtx(77, 8, topo)
		e := NewEngine(8, 0.2)
		e.Parallelism = parallelism
		var best *cluster.Schedule
		for i := 0; i < 5; i++ {
			best = e.Iterate(ctx)
		}
		// Snapshot everything selection produced: champion, population
		// order, and scores under one deterministic draw set. The master
		// RNG consumed an identical stream at any parallelism, so these
		// draws line up across runs too.
		rhos := SampleRhos(ctx)
		out := "champion=" + best.String() + "\n"
		for i, s := range e.Population() {
			out += fmt.Sprintf("pop[%d] score=%v genome=%s\n", i, Score(s, ctx, rhos), s)
		}
		return out
	}
	serial := run(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(par); got != serial {
			t.Errorf("parallelism %d changed the outcome:\nserial:\n%s\nparallel:\n%s", par, serial, got)
		}
	}
}

// TestScoreMemoMatchesRecompute is the memo soundness property: across
// 1000 random mutate/crossover candidates, Score through a prepared
// (memoized) Context must equal Score through a bare Context that
// recomputes every throughput directly. Equality is exact — the memo
// stores the very float64 the direct call returns.
func TestScoreMemoMatchesRecompute(t *testing.T) {
	topo := cluster.Uniform(4, 4)
	ctx := testCtx(123, 10, topo)
	ctx.prepare()
	if ctx.memo == nil {
		t.Fatal("prepare did not install the throughput memo")
	}
	// A bare context over the same jobs and throughput function: memo
	// nil ⇒ every Score recomputes from scratch.
	plain := &Context{Topo: ctx.Topo, Jobs: ctx.Jobs, Throughput: ctx.Throughput}
	pop := []*cluster.Schedule{
		Refresh(cluster.NewSchedule(topo), ctx),
		Refresh(cluster.NewSchedule(topo), ctx),
	}
	for i := 0; i < 1000; i++ {
		var cand *cluster.Schedule
		if i%2 == 0 {
			cand = Mutate(pop[i/2%2], ctx, 0.3)
		} else {
			cand, _ = Crossover(pop[0], pop[1], ctx)
		}
		rhos := SampleRhos(ctx)
		memoized := Score(cand, ctx, rhos)
		direct := Score(cand, plain, rhos)
		if memoized != direct {
			t.Fatalf("step %d: memoized score %v != recomputed %v", i, memoized, direct)
		}
		pop[i%2] = cand
	}
}
