package evolution

import (
	"testing"

	"repro/internal/cluster"
)

// BenchmarkIterate measures one full evolution round — candidate
// generation with all four operators plus selection — on a 32-GPU
// cluster with 12 alive jobs and population 16. allocs/op makes the
// clone/RNG/scratch pooling visible in the benchmark trajectory.
func BenchmarkIterate(b *testing.B) {
	topo := cluster.Uniform(8, 4)
	ctx := testCtx(42, 12, topo)
	e := NewEngine(16, 0.2)
	e.Iterate(ctx) // warm population, pools and memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Iterate(ctx)
	}
}

// BenchmarkScore measures the SRUF objective on one candidate via the
// one-pass aggregate load and the memoized throughput path.
func BenchmarkScore(b *testing.B) {
	topo := cluster.Uniform(8, 4)
	ctx := testCtx(42, 12, topo)
	ctx.prepare()
	s := Refresh(cluster.NewSchedule(topo), ctx)
	rhos := SampleRhos(ctx)
	Score(s, ctx, rhos) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(s, ctx, rhos)
	}
}
