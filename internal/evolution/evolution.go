// Package evolution implements ONES's online evolutionary search (§3.2):
// a population of schedule genomes is evolved with refresh, uniform
// crossover, uniform mutation and reorder operations, scored by the SRUF
// (smallest remaining utilization first) objective of Equation 8 using
// Beta-distributed progress draws (Algorithm 1), and the best candidate is
// deployed.
package evolution

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/predictor"
)

// JobInfo is everything the search needs to know about one alive job.
type JobInfo struct {
	ID        cluster.JobID
	Limit     int // batch-size limit R_j (§3.3.2)
	MaxPerGPU int // largest local batch fitting one GPU
	// DeployedBatch is the job's batch size in the live deployment
	// (0 when waiting). §3.3.2 only allows rescaling "within a limited
	// range at each time", so candidate schedules may not grow a job
	// beyond GrowthFactor× this value in a single deployment.
	DeployedBatch    int
	EpochSize        float64 // ‖D‖; also the Y floor for jobs with no history
	ProcessedSamples float64 // Y_processed
	ProcessedTime    float64 // T_processed, executed seconds (eviction order)
	Dist             predictor.Dist
}

// GrowthFactor is the largest single-deployment batch growth. It matches
// perfmodel.AbruptFactor: growing faster injects gradient noise and spikes
// the loss (Figure 13).
const GrowthFactor = 4

// effLimit returns the job's effective batch ceiling for this round of
// candidate generation.
func (info *JobInfo) effLimit() int {
	r := info.Limit
	if info.DeployedBatch > 0 && r > GrowthFactor*info.DeployedBatch {
		r = GrowthFactor * info.DeployedBatch
	}
	return r
}

// Context carries the live cluster state into one evolution iteration.
//
// A Context also owns two lazily built caches — the sorted job-ID order
// and the throughput memo — that one iteration's concurrent sub-contexts
// share. Both assume the Jobs set, the Topo and the Throughput function
// stay fixed for the Context's lifetime; the ONES scheduler guarantees
// this by building a fresh Context for every scheduling decision, which
// is also what invalidates the caches on topology changes and
// progress-distribution refreshes.
type Context struct {
	Topo cluster.Topology
	// Jobs holds every alive (running or waiting) job. Jobs absent from
	// the map are treated as completed and cleaned out of genomes.
	Jobs map[cluster.JobID]*JobInfo
	// NewJobs lists jobs that have arrived and never been allocated,
	// in arrival order; refresh allocates them preferentially.
	NewJobs []cluster.JobID
	// Throughput returns X_j for job j at global batch B over c workers
	// spanning `servers` servers. It must be pure for the Context's
	// lifetime: evaluations are memoized per (j, B, c, servers).
	Throughput func(j cluster.JobID, B, c, servers int) float64
	Rng        *rand.Rand

	// MemoHits / MemoMisses, when set, count throughput-memo outcomes
	// (see internal/obs). Telemetry only: scoring is unaffected, and the
	// nil default costs one branch per evaluation.
	MemoHits   *obs.Counter
	MemoMisses *obs.Counter

	ids  []cluster.JobID // sorted-job-ID cache; see jobIDs
	memo *throughputMemo // shared Throughput cache; see throughput
}

// throughputMemo caches Throughput evaluations for one Context. Candidate
// genomes overwhelmingly agree on most placements — mutation and
// crossover touch a handful of genes — so across one iteration's ~4K
// candidates the same (job, B, c, servers) points are evaluated over and
// over. The memo never invalidates within a Context; it is dropped with
// it.
type throughputMemo struct {
	mu sync.RWMutex
	m  map[throughputKey]float64
}

// throughputKey is the full argument tuple of Context.Throughput, which
// is pure over it for the life of a Context.
type throughputKey struct {
	job     cluster.JobID
	batch   int
	gpus    int
	servers int
}

// throughput evaluates X_j through the Context memo (or directly when the
// Context was never prepared — standalone operator calls in tests).
// Safe for concurrent use.
func (ctx *Context) throughput(j cluster.JobID, B, c, servers int) float64 {
	mm := ctx.memo
	if mm == nil {
		return ctx.Throughput(j, B, c, servers)
	}
	k := throughputKey{job: j, batch: B, gpus: c, servers: servers}
	mm.mu.RLock()
	x, ok := mm.m[k]
	mm.mu.RUnlock()
	if ok {
		ctx.MemoHits.Inc()
		return x
	}
	ctx.MemoMisses.Inc()
	x = ctx.Throughput(j, B, c, servers)
	mm.mu.Lock()
	mm.m[k] = x
	mm.mu.Unlock()
	return x
}

// prepare builds the shared caches on the master Context before a
// fan-out. Sub-contexts are struct copies, so they inherit the filled
// pointers and all workers share one ID slice and one memo.
func (ctx *Context) prepare() {
	if ctx.ids == nil {
		ctx.ids = sortIDs(ctx.Jobs)
	}
	if ctx.memo == nil {
		ctx.memo = &throughputMemo{m: make(map[throughputKey]float64, 8*len(ctx.Jobs))}
	}
}

// jobIDs returns the alive job IDs in ascending order so that random
// draws are consumed in a deterministic sequence. The order is computed
// once per Context (Jobs must not change within its lifetime).
func (ctx *Context) jobIDs() []cluster.JobID {
	if ctx.ids == nil {
		ctx.ids = sortIDs(ctx.Jobs)
	}
	return ctx.ids
}

func sortIDs(jobs map[cluster.JobID]*JobInfo) []cluster.JobID {
	ids := make([]cluster.JobID, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SampleRhos draws one progress sample per alive job (Algorithm 1,
// lines 1–3). All candidates in one selection round are scored against the
// same draws.
func SampleRhos(ctx *Context) map[cluster.JobID]float64 {
	rhos := make(map[cluster.JobID]float64, len(ctx.Jobs))
	for _, id := range ctx.jobIDs() {
		rhos[id] = ctx.Jobs[id].Dist.Sample(ctx.Rng)
	}
	return rhos
}

// remainingWork returns the sampled remaining workload Y_j (Equation 7)
// with the epoch size as a floor so brand-new jobs are not free.
func remainingWork(info *JobInfo, rho float64) float64 {
	processed := info.ProcessedSamples
	if processed < info.EpochSize {
		processed = info.EpochSize
	}
	return processed * (1/rho - 1)
}

// loadMode selects how much of the genome evalScratch.load digests.
const (
	loadAggs = iota // per-job aggregates only (Score)
	loadIdle        // aggregates + the idle GPU list (fill)
	loadGPUs        // aggregates + idle + per-job GPU lists (normalize)
)

// jobAgg summarizes one running job's placement: the (c_j, B_j, servers)
// triple Equation 2 derives from the genome, computed in one pass instead
// of one full slot scan per query.
type jobAgg struct {
	id      cluster.JobID
	c       int // GPU count c_j
	B       int // global batch B_j
	servers int // distinct servers spanned
	lastSrv int // load state: last server index this job was seen on
	gpuOff  int // offset of this job's GPU list in evalScratch.gpus
	cur     int // load state: next write position in the GPU list
}

// evalScratch holds the reusable buffers for evaluating one candidate
// schedule. The operators and Score used to interrogate genomes through
// per-job O(cluster) scans (RunningJobs, GPUCount, GlobalBatch, ServersOf,
// GPUsOf, IdleGPUs) that dominated the engine's profile; load digests the
// genome once and the operators read these aggregates instead.
type evalScratch struct {
	idx  map[cluster.JobID]int // job → index into aggs
	aggs []jobAgg              // running jobs in first-occurrence order
	gpus []cluster.GPUID       // arena backing the per-job GPU lists
	idle []cluster.GPUID       // idle GPUs in index order
	buf  []cluster.GPUID       // fill's per-assignment GPU gather list
}

var scratchPool = sync.Pool{
	New: func() any { return &evalScratch{idx: make(map[cluster.JobID]int)} },
}

// load digests schedule s: per-job aggregates in first-occurrence order,
// plus — by mode — the idle list and per-job GPU index lists (ascending
// within each job, exactly as GPUsOf reports them).
func (sc *evalScratch) load(s *cluster.Schedule, mode int) {
	clear(sc.idx)
	sc.aggs = sc.aggs[:0]
	sc.idle = sc.idle[:0]
	slots := s.Slots()
	topo := s.Topology()
	g := 0
	for srv := range topo.Servers {
		for end := g + topo.Servers[srv].GPUs; g < end; g++ {
			sl := slots[g]
			if sl.Idle() {
				if mode >= loadIdle {
					sc.idle = append(sc.idle, cluster.GPUID(g))
				}
				continue
			}
			i, ok := sc.idx[sl.Job]
			if !ok {
				i = len(sc.aggs)
				sc.idx[sl.Job] = i
				sc.aggs = append(sc.aggs, jobAgg{id: sl.Job, lastSrv: -1})
			}
			a := &sc.aggs[i]
			a.c++
			a.B += sl.Batch
			// Slots are scanned server by server, so counting distinct
			// servers only needs the last one this job appeared on.
			if a.lastSrv != srv {
				a.servers++
				a.lastSrv = srv
			}
		}
	}
	if mode < loadGPUs {
		return
	}
	total := 0
	for i := range sc.aggs {
		sc.aggs[i].gpuOff = total
		sc.aggs[i].cur = total
		total += sc.aggs[i].c
	}
	if cap(sc.gpus) < total {
		sc.gpus = make([]cluster.GPUID, total)
	}
	sc.gpus = sc.gpus[:total]
	for g, sl := range slots {
		if sl.Idle() {
			continue
		}
		a := &sc.aggs[sc.idx[sl.Job]]
		sc.gpus[a.cur] = cluster.GPUID(g)
		a.cur++
	}
}

// gpusOf returns job a's GPU list from the arena (load mode loadGPUs).
func (sc *evalScratch) gpusOf(a *jobAgg) []cluster.GPUID {
	return sc.gpus[a.gpuOff : a.gpuOff+a.c]
}

// Score computes the SRUF objective of Equation 8 for schedule s:
//
//	Σ_{j∈J_r}  Y_processed_j · c_j / X_j · (1/ρ_j − 1)
//
// Lower is better. A running job with zero throughput makes the schedule
// infeasible (+Inf).
//
// The paper's Equation 4 constrains candidates to assign every GPU; our
// operators may leave GPUs idle when job limits bind, so the raw sum is
// scaled by totalGPUs/usedGPUs — a half-used cluster carries twice the
// remaining utilization per allocated GPU. Without this, the objective
// would reward starving jobs of GPUs they could productively use.
func Score(s *cluster.Schedule, ctx *Context, rhos map[cluster.JobID]float64) float64 {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	sc.load(s, loadAggs)
	var total float64
	used := 0
	for i := range sc.aggs {
		a := &sc.aggs[i]
		info, ok := ctx.Jobs[a.id]
		if !ok {
			continue // completed job still in genome; refresh will clean it
		}
		x := ctx.throughput(a.id, a.B, a.c, a.servers)
		if x <= 0 {
			return math.Inf(1)
		}
		rho, ok := rhos[a.id]
		if !ok || rho <= 0 {
			rho = 0.5
		}
		used += a.c
		total += remainingWork(info, rho) * float64(a.c) / x
	}
	if used > 0 {
		total *= float64(s.NumGPUs()) / float64(used)
	}
	return total
}

// assign places job j on the given GPUs with global batch B distributed as
// evenly as integer slots allow. B is clamped to the feasible range
// [len(gpus), len(gpus)*MaxPerGPU]; the batch actually deployed is
// returned.
func assign(s *cluster.Schedule, info *JobInfo, gpus []cluster.GPUID, B int) int {
	c := len(gpus)
	if c == 0 {
		return 0
	}
	if B < c {
		B = c
	}
	if max := c * info.MaxPerGPU; B > max {
		B = max
	}
	base := B / c
	rem := B % c
	for i, g := range gpus {
		b := base
		if i < rem {
			b++
		}
		s.SetSlot(g, info.ID, b)
	}
	return B
}

// normalize removes completed jobs from s and enforces R_j: any job with
// B_j > R_j is scaled down by c_j − ⌊R_j·c_j/B_j⌋ GPUs (the paper's refresh
// step 2) and its batch reassigned within the limit. The aggregates are
// loaded once up front: each job's correction touches only its own slots,
// so the other entries stay valid as the loop mutates s.
func normalize(s *cluster.Schedule, ctx *Context, sc *evalScratch) {
	sc.load(s, loadGPUs)
	for i := range sc.aggs {
		a := &sc.aggs[i]
		info, ok := ctx.Jobs[a.id]
		if !ok {
			s.Evict(a.id)
			continue
		}
		gpus := sc.gpusOf(a)
		B := a.B
		c := a.c
		target := B
		keep := c
		if info.Limit < B {
			keep = info.Limit * c / B // ⌊R·c/B⌋
			if keep < 1 {
				keep = 1
			}
			target = info.Limit
		}
		if maxB := keep * info.MaxPerGPU; target > maxB {
			target = maxB
		}
		if keep == c && target == B {
			continue
		}
		for _, g := range gpus[keep:] {
			s.Clear(g)
		}
		assign(s, info, gpus[:keep], target)
	}
}

// fillOption is one way to consume idle GPUs: starting a waiting job or
// growing a running one toward its limit. For resumes, score is the job's
// sampled remaining footprint Y/X (lower first — shortest remaining
// first). For growths, score is the sampled throughput gain per added GPU
// (higher first).
type fillOption struct {
	job    cluster.JobID
	gpus   int // additional GPUs consumed
	batch  int // resulting global batch
	resume bool
	score  float64
}

// fill consumes idle GPUs in two phases (refresh step 4, Figure 7):
// waiting jobs are resumed first — queuing hurts JCT directly and resuming
// on one GPU is cheap — shortest sampled remaining time first (the
// Algorithm 1 minimization over {Δφ_j·Y_j}); any capacity still left then
// grows running jobs toward their limits by largest sampled utilization
// gain.
//
// The idle list is computed once and consumed incrementally: assign clamps
// B ≥ c, so every idle GPU an option consumes receives a positive batch
// and the remaining idle set is exactly the unconsumed suffix.
func fill(s *cluster.Schedule, ctx *Context, sc *evalScratch) {
	sc.load(s, loadIdle)
	idle := sc.idle
	for len(idle) > 0 {
		opt, ok := bestFillOption(ctx, sc, len(idle))
		if !ok {
			return
		}
		info := ctx.Jobs[opt.job]
		// Gather the job's current GPUs (index order) followed by the
		// consumed idle prefix — the same list the per-query scans built.
		sc.buf = sc.buf[:0]
		if i, ok := sc.idx[opt.job]; ok && sc.aggs[i].c > 0 {
			for g, sl := range s.Slots() {
				if sl.Job == opt.job {
					sc.buf = append(sc.buf, cluster.GPUID(g))
				}
			}
		}
		sc.buf = append(sc.buf, idle[:opt.gpus]...)
		B := assign(s, info, sc.buf, opt.batch)
		// Refresh the job's aggregate in place; no other job's slots moved.
		i, ok := sc.idx[opt.job]
		if !ok {
			i = len(sc.aggs)
			sc.idx[opt.job] = i
			sc.aggs = append(sc.aggs, jobAgg{id: opt.job})
		}
		a := &sc.aggs[i]
		a.c = len(sc.buf)
		a.B = B
		a.servers = s.ServersOf(opt.job)
		idle = idle[opt.gpus:]
	}
}

// bestFillOption returns the next fill action: the waiting job with the
// least sampled remaining work if any can start, else the growth with the
// largest sampled gain.
func bestFillOption(ctx *Context, sc *evalScratch, idle int) (fillOption, bool) {
	var bestResume, bestGrow fillOption
	var haveResume, haveGrow bool
	for _, id := range ctx.jobIDs() {
		info := ctx.Jobs[id]
		opt, ok := expandOption(ctx, sc, info, idle)
		if !ok {
			continue
		}
		rho := info.Dist.Sample(ctx.Rng)
		work := remainingWork(info, rho)
		if opt.resume {
			opt.score *= work // remaining seconds at the resume rate
			if !haveResume || opt.score < bestResume.score {
				bestResume, haveResume = opt, true
			}
		} else {
			opt.score *= work // throughput gain weighted by remaining work
			if opt.score > 0 && (!haveGrow || opt.score > bestGrow.score) {
				bestGrow, haveGrow = opt, true
			}
		}
	}
	if haveResume {
		return bestResume, true
	}
	return bestGrow, haveGrow
}

// expandOption builds the expansion candidate for one job from the loaded
// aggregates, or reports false when the job cannot use more resources.
func expandOption(ctx *Context, sc *evalScratch, info *JobInfo, idle int) (fillOption, bool) {
	var c, B, servers int
	if i, ok := sc.idx[info.ID]; ok {
		a := &sc.aggs[i]
		c, B, servers = a.c, a.B, a.servers
	}
	if c == 0 {
		// Waiting job: resume on one GPU within its limit. Its added
		// utilization is its whole remaining footprint at that rate.
		batch := info.effLimit()
		if batch > info.MaxPerGPU {
			batch = info.MaxPerGPU
		}
		if batch < 1 {
			batch = 1
		}
		x := ctx.throughput(info.ID, batch, 1, 1)
		if x <= 0 {
			return fillOption{}, false
		}
		return fillOption{job: info.ID, gpus: 1, batch: batch, resume: true, score: 1 / x}, true
	}
	limit := info.effLimit()
	if B >= limit {
		return fillOption{}, false // already at the limit
	}
	// Running job: grow to R_j with ⌊R·c/B⌋ − c extra GPUs (Figure 7).
	newC := limit * c / B
	extra := newC - c
	if extra < 1 {
		return fillOption{}, false
	}
	if extra > idle {
		extra = idle
		newC = c + extra
	}
	newB := limit
	if maxB := newC * info.MaxPerGPU; newB > maxB {
		newB = maxB
	}
	srv := ctx.Topo.NumServers()
	if srv > 1 && newC <= ctx.Topo.MaxServerGPUs() {
		srv = 1
	}
	// Growth utility: absolute throughput gained per added GPU. Growth
	// that does not increase throughput is pointless — skip it.
	oldX := ctx.throughput(info.ID, B, c, servers)
	newX := ctx.throughput(info.ID, newB, newC, srv)
	if newX <= oldX || newX <= 0 {
		return fillOption{}, false
	}
	gain := (newX - oldX) / float64(extra)
	return fillOption{job: info.ID, gpus: extra, batch: newB, score: gain}, true
}

// cloneFunc produces the working copy an operator mutates. The engine
// substitutes a pool-backed clone that recycles retired candidates.
type cloneFunc func(*cluster.Schedule) *cluster.Schedule

func cloneSchedule(s *cluster.Schedule) *cluster.Schedule { return s.Clone() }

// Refresh applies the paper's refresh operation to a clone of s: clean up
// completed jobs, enforce limits, allocate new jobs preferentially (taking
// GPUs from the longest-running jobs if needed), then fill idle GPUs.
func Refresh(s *cluster.Schedule, ctx *Context) *cluster.Schedule {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	return refreshWith(s, ctx, cloneSchedule, sc)
}

func refreshWith(s *cluster.Schedule, ctx *Context, clone cloneFunc, sc *evalScratch) *cluster.Schedule {
	out := clone(s)
	normalize(out, ctx, sc)
	allocateNewJobs(out, ctx)
	fill(out, ctx, sc)
	return out
}

// allocateNewJobs gives each never-scheduled job one GPU (refresh step 3).
// When too few GPUs are idle, GPUs are taken from the jobs with the
// largest T_processed to avoid starving new arrivals.
func allocateNewJobs(s *cluster.Schedule, ctx *Context) {
	var pending []*JobInfo
	for _, id := range ctx.NewJobs {
		info, ok := ctx.Jobs[id]
		if !ok || s.IsRunning(id) {
			continue
		}
		pending = append(pending, info)
	}
	if len(pending) == 0 {
		return
	}
	need := len(pending) - s.NumIdle()
	for need > 0 {
		victim := longestRunning(s, ctx)
		if victim == cluster.NoJob {
			break
		}
		shrinkByOne(s, ctx, victim)
		need--
	}
	idle := s.IdleGPUs()
	for i, info := range pending {
		if i >= len(idle) {
			break
		}
		batch := info.effLimit()
		if batch > info.MaxPerGPU {
			batch = info.MaxPerGPU
		}
		assign(s, info, idle[i:i+1], batch)
	}
}

// longestRunning returns the running job with the largest processed time,
// or NoJob when the schedule is empty.
func longestRunning(s *cluster.Schedule, ctx *Context) cluster.JobID {
	best := cluster.NoJob
	var bestT float64 = -1
	for _, j := range s.RunningJobs() {
		info, ok := ctx.Jobs[j]
		if !ok {
			continue
		}
		if info.ProcessedTime > bestT {
			bestT = info.ProcessedTime
			best = j
		}
	}
	return best
}

// shrinkByOne removes one GPU from job j, re-spreading its batch; a
// single-GPU job is evicted entirely (it becomes waiting).
func shrinkByOne(s *cluster.Schedule, ctx *Context, j cluster.JobID) {
	gpus := s.GPUsOf(j)
	if len(gpus) <= 1 {
		s.Evict(j)
		return
	}
	info := ctx.Jobs[j]
	B := s.GlobalBatch(j)
	keep := gpus[:len(gpus)-1]
	s.Clear(gpus[len(gpus)-1])
	newB := B * len(keep) / len(gpus)
	assign(s, info, keep, newB)
}

// Crossover performs the uniform crossover of Figure 8 on clones of the
// parents: on each GPU, one child inherits parent A's gene and the other
// parent B's, with the orientation chosen by an independent fair coin.
// Children are normalized and filled so they remain feasible.
func Crossover(a, b *cluster.Schedule, ctx *Context) (*cluster.Schedule, *cluster.Schedule) {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	return crossoverWith(a, b, ctx, cloneSchedule, sc)
}

func crossoverWith(a, b *cluster.Schedule, ctx *Context, clone cloneFunc, sc *evalScratch) (*cluster.Schedule, *cluster.Schedule) {
	c1, c2 := clone(a), clone(b)
	for g := 0; g < c1.NumGPUs(); g++ {
		if ctx.Rng.Intn(2) == 0 {
			continue
		}
		ga := a.Slot(cluster.GPUID(g))
		gb := b.Slot(cluster.GPUID(g))
		c1.SetSlot(cluster.GPUID(g), gb.Job, gb.Batch)
		c2.SetSlot(cluster.GPUID(g), ga.Job, ga.Batch)
	}
	normalize(c1, ctx, sc)
	normalize(c2, ctx, sc)
	fill(c1, ctx, sc)
	fill(c2, ctx, sc)
	return c1, c2
}

// Mutate applies the uniform mutation of Figure 9 to a clone of s: every
// running job is preempted with probability theta and the freed GPUs are
// refilled with waiting or other running jobs.
func Mutate(s *cluster.Schedule, ctx *Context, theta float64) *cluster.Schedule {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	return mutateWith(s, ctx, theta, cloneSchedule, sc)
}

func mutateWith(s *cluster.Schedule, ctx *Context, theta float64, clone cloneFunc, sc *evalScratch) *cluster.Schedule {
	out := clone(s)
	sc.load(out, loadAggs)
	for i := range sc.aggs {
		if ctx.Rng.Float64() < theta {
			out.Evict(sc.aggs[i].id)
		}
	}
	normalize(out, ctx, sc)
	fill(out, ctx, sc)
	return out
}

// Engine runs the iterative evolution loop of Figure 5.
type Engine struct {
	// K is the population size; the paper suggests matching the cluster's
	// GPU count.
	K int
	// Theta is the per-job mutation (preemption) probability.
	Theta float64
	// Parallelism is the number of goroutines generating and scoring
	// candidates (≤1 ⇒ serial). Parallel iteration stays deterministic:
	// each candidate's randomness comes from a seed drawn serially from
	// the context RNG before the fan-out, and ties in the final ranking
	// break by candidate index.
	Parallelism int
	// DisableReorder turns off the reorder operator (ablation switch).
	DisableReorder bool
	// DisableSampling scores with distribution means instead of Beta
	// draws (ablation switch).
	DisableSampling bool
	// Cancel, when set, is polled between candidate tasks; once it
	// reports true Iterate stops generating and returns the incumbent
	// champion immediately. Cancellation must be monotonic (it never
	// reverts to false), which guarantees the partially filled candidate
	// set is never scored. Results under cancellation are stale, not
	// wrong — callers abandon the run anyway.
	Cancel func() bool

	// Generations / Candidates, when set, count Iterate rounds and the
	// candidates they generate (see internal/obs). Telemetry only — the
	// search is unaffected — and nil-safe, so untouched engines pay one
	// branch per round.
	Generations *obs.Counter
	Candidates  *obs.Counter

	pop []*cluster.Schedule

	// Per-Iterate working storage, reused across rounds.
	tasks  []genTask
	cands  []*cluster.Schedule
	scores []float64
	order  []int
	// clonePool recycles the genomes of candidates that lost selection as
	// the backing storage for the next round's clones. Only rejected
	// candidates enter the pool: the selected population — including the
	// returned champion — may be retained by callers and is never reused.
	clonePool sync.Pool
}

// genTask describes one pre-seeded candidate generation: the parent
// picks and a dedicated RNG seed are drawn serially from the master RNG,
// so the fan-out may execute the tasks in any order — or in parallel —
// without changing any output.
type genTask struct {
	kind int // 0 refresh, 1 crossover pair, 2 mutate
	a, b *cluster.Schedule
	seed int64
	outA int // candidate slot(s)
	outB int
}

// rngPool recycles the per-task *rand.Rand. Seed fully resets the source
// state, so a recycled generator re-seeded with t.seed yields exactly the
// stream rand.New(rand.NewSource(t.seed)) would.
var rngPool = sync.Pool{
	New: func() any { return rand.New(rand.NewSource(0)) },
}

// cancelled reports whether the optional cancellation probe fired.
func (e *Engine) cancelled() bool { return e.Cancel != nil && e.Cancel() }

// NewEngine returns an engine with population size k and mutation rate
// theta.
func NewEngine(k int, theta float64) *Engine {
	if k < 1 {
		k = 1
	}
	return &Engine{K: k, Theta: theta}
}

// Population exposes the current population (read-only use).
func (e *Engine) Population() []*cluster.Schedule { return e.pop }

// Init seeds the population with K refreshed-empty schedules. Because fill
// draws random progress samples, the initial population is diverse even
// though every member starts from the empty genome.
func (e *Engine) Init(ctx *Context) {
	e.pop = e.pop[:0]
	for i := 0; i < e.K; i++ {
		e.pop = append(e.pop, Refresh(cluster.NewSchedule(ctx.Topo), ctx))
	}
}

// clone returns a working copy of s for a new candidate, reusing a
// rejected candidate's storage when one is available.
func (e *Engine) clone(s *cluster.Schedule) *cluster.Schedule {
	if v := e.clonePool.Get(); v != nil {
		c := v.(*cluster.Schedule)
		c.CopyFrom(s)
		return c
	}
	return s.Clone()
}

// Iterate runs one evolution round: derive candidates from the current
// population with the four operators, select the best K by sampled score,
// and return the champion S*.
func (e *Engine) Iterate(ctx *Context) *cluster.Schedule {
	// A topology change (elastic capacity, node failure) invalidates the
	// whole population: its genomes are defined over the old GPU axis.
	// Restart the search from fresh genomes on the new topology.
	if len(e.pop) == 0 || !e.pop[0].Topology().Equal(ctx.Topo) {
		e.Init(ctx)
	}
	ctx.prepare()
	// Describe every candidate generation serially (parent choices and a
	// dedicated RNG seed come from the master RNG) so the fan-out below is
	// free to run in any order.
	nCand := len(e.pop) + 2*e.K + e.K
	e.Generations.Inc()
	e.Candidates.Add(uint64(nCand))
	tasks := e.tasks[:0]
	slot := 0
	for _, s := range e.pop {
		tasks = append(tasks, genTask{kind: 0, a: s, seed: ctx.Rng.Int63(), outA: slot})
		slot++
	}
	for i := 0; i < e.K; i++ {
		a := e.pop[ctx.Rng.Intn(len(e.pop))]
		b := e.pop[ctx.Rng.Intn(len(e.pop))]
		tasks = append(tasks, genTask{kind: 1, a: a, b: b, seed: ctx.Rng.Int63(), outA: slot, outB: slot + 1})
		slot += 2
	}
	for i := 0; i < e.K; i++ {
		a := e.pop[ctx.Rng.Intn(len(e.pop))]
		tasks = append(tasks, genTask{kind: 2, a: a, seed: ctx.Rng.Int63(), outA: slot})
		slot++
	}
	e.tasks = tasks
	if cap(e.cands) < nCand {
		e.cands = make([]*cluster.Schedule, nCand)
	}
	candidates := e.cands[:nCand]
	clone := e.clone
	runTask := func(t genTask) {
		rng := rngPool.Get().(*rand.Rand)
		rng.Seed(t.seed)
		sc := scratchPool.Get().(*evalScratch)
		sub := *ctx
		sub.Rng = rng
		switch t.kind {
		case 0:
			candidates[t.outA] = refreshWith(t.a, &sub, clone, sc)
		case 1:
			c1, c2 := crossoverWith(t.a, t.b, &sub, clone, sc)
			candidates[t.outA], candidates[t.outB] = c1, c2
		default:
			candidates[t.outA] = mutateWith(t.a, &sub, e.Theta, clone, sc)
		}
		if !e.DisableReorder {
			candidates[t.outA].Reorder()
			if t.kind == 1 {
				candidates[t.outB].Reorder()
			}
		}
		scratchPool.Put(sc)
		rngPool.Put(rng)
	}
	e.forEach(len(tasks), func(i int) { runTask(tasks[i]) })
	if e.cancelled() {
		// The probe is monotonic, so firing here proves some workers may
		// have skipped tasks: candidate slots can be stale and must not be
		// scored. Keep the population and return the incumbent champion.
		return e.pop[0]
	}

	// Selection: score all candidates against one set of progress draws,
	// keep the best K.
	rhos := e.progressDraws(ctx)
	if cap(e.scores) < nCand {
		e.scores = make([]float64, nCand)
	}
	scores := e.scores[:nCand]
	e.forEach(nCand, func(i int) { scores[i] = Score(candidates[i], ctx, rhos) })
	if e.cancelled() {
		return e.pop[0]
	}
	if cap(e.order) < nCand {
		e.order = make([]int, nCand)
	}
	order := e.order[:nCand]
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, k int) bool { return scores[order[i]] < scores[order[k]] })
	keep := e.K
	if keep > nCand {
		keep = nCand
	}
	next := make([]*cluster.Schedule, keep)
	for i := 0; i < keep; i++ {
		next[i] = candidates[order[i]]
	}
	// Retire the rejected candidates into the clone pool. They were all
	// created inside this round, so no caller can hold a reference.
	for i := keep; i < nCand; i++ {
		e.clonePool.Put(candidates[order[i]])
	}
	e.pop = next
	return e.pop[0]
}

// forEach runs fn over [0, n) — serially, or on Parallelism goroutines.
// The optional Cancel probe is polled before each call; tasks after it
// fires are skipped (callers must not consume their outputs).
func (e *Engine) forEach(n int, fn func(i int)) {
	if e.Parallelism <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if e.cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	workers := e.Parallelism
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if e.cancelled() {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// progressDraws returns ρ samples (or distribution means under the
// sampling ablation).
func (e *Engine) progressDraws(ctx *Context) map[cluster.JobID]float64 {
	if !e.DisableSampling {
		return SampleRhos(ctx)
	}
	rhos := make(map[cluster.JobID]float64, len(ctx.Jobs))
	for id, info := range ctx.Jobs {
		m := info.Dist.Mean()
		if m <= 0 {
			m = 1e-6
		} else if m >= 1 {
			m = 1 - 1e-6
		}
		rhos[id] = m
	}
	return rhos
}

// Best returns the current champion (lowest sampled score) without
// evolving, or nil for an empty population.
func (e *Engine) Best(ctx *Context) *cluster.Schedule {
	if len(e.pop) == 0 {
		return nil
	}
	rhos := e.progressDraws(ctx)
	best := e.pop[0]
	bestScore := Score(best, ctx, rhos)
	for _, s := range e.pop[1:] {
		if sc := Score(s, ctx, rhos); sc < bestScore {
			best, bestScore = s, sc
		}
	}
	return best
}
