package scenario

import (
	"errors"
	"fmt"
	"strings"
)

// ErrIncompatible is wrapped by Compose when two parts claim the same
// dimension of the world (two arrival processes, two failure processes,
// …); match it with errors.Is.
var ErrIncompatible = errors.New("scenario: incompatible composition")

// Compose merges registered scenarios into one combined world model, so
// a single cell can simulate e.g. a spot-market day: diurnal arrivals
// AND spot preemptions at once. The composed spec is named by joining
// the parts with "+" ("diurnal+spot"), the form the registry's Get also
// parses directly.
//
// Each dimension of the world may be claimed by at most one part:
//
//   - the arrival process (at most one part with a non-default Arrival),
//   - the node-failure process (FailMTBF),
//   - the spot-preemption process (PreemptMTBF).
//
// Planned capacity events concatenate (the simulator sorts them by
// time), MinServers takes the most conservative (largest) floor, and
// Horizon the longest non-zero value. Composition keeps determinism: the
// merged spec is a pure value, so trace caching (keyed by ArrivalSpec)
// and capacity-timeline seeding behave exactly as for built-in specs.
func Compose(names ...string) (Spec, error) {
	if len(names) == 0 {
		return Spec{}, fmt.Errorf("%w: no scenario names given", ErrIncompatible)
	}
	var (
		out    Spec
		parts  []string
		titles []string
	)
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			return Spec{}, fmt.Errorf("%w: empty scenario name in %v", ErrIncompatible, names)
		}
		s, ok := Lookup(name)
		if !ok {
			return Spec{}, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
		}
		parts = append(parts, s.Name)
		titles = append(titles, s.Title)
		if s.Arrival != (ArrivalSpec{}) {
			if out.Arrival != (ArrivalSpec{}) {
				return Spec{}, fmt.Errorf("%w: %v claim two arrival processes (%s and %s)",
					ErrIncompatible, parts, out.Arrival, s.Arrival)
			}
			out.Arrival = s.Arrival
		}
		c := s.Capacity
		if c.FailMTBF > 0 {
			if out.Capacity.FailMTBF > 0 {
				return Spec{}, fmt.Errorf("%w: %v claim two node-failure processes", ErrIncompatible, parts)
			}
			out.Capacity.FailMTBF = c.FailMTBF
			out.Capacity.FailRepair = c.FailRepair
		}
		if c.PreemptMTBF > 0 {
			if out.Capacity.PreemptMTBF > 0 {
				return Spec{}, fmt.Errorf("%w: %v claim two spot-preemption processes", ErrIncompatible, parts)
			}
			out.Capacity.PreemptMTBF = c.PreemptMTBF
			out.Capacity.PreemptRestock = c.PreemptRestock
		}
		out.Capacity.Planned = append(out.Capacity.Planned, c.Planned...)
		if c.MinServers > out.Capacity.MinServers {
			out.Capacity.MinServers = c.MinServers
		}
		if c.Horizon > out.Capacity.Horizon {
			out.Capacity.Horizon = c.Horizon
		}
	}
	out.Name = strings.Join(parts, "+")
	out.Title = strings.Join(titles, " + ")
	return out, nil
}
