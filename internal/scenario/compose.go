package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrIncompatible is wrapped by Compose when two parts claim the same
// dimension of the world (two arrival processes, two failure processes,
// two capacity timelines touching the same server-removal kind, …);
// match it with errors.Is.
var ErrIncompatible = errors.New("scenario: incompatible composition")

// capacityClaims returns the server-removal kinds a spec's capacity
// model touches — through planned events (removals and the restock
// joins that return them) or through its stochastic processes. Two
// composed parts claiming the same kind would cross-talk: the simulator
// pools removed servers per kind, so part A's "restock everything still
// out" join would silently return the servers part B drained. Compose
// therefore rejects such pairs instead of merging them.
func capacityClaims(c CapacitySpec) map[CapacityEventKind]bool {
	claims := make(map[CapacityEventKind]bool)
	if c.FailMTBF > 0 {
		claims[CapacityFail] = true
	}
	if c.PreemptMTBF > 0 {
		claims[CapacityPreempt] = true
	}
	if c.DrainMTBF > 0 {
		claims[CapacityRackDrain] = true
	}
	for _, ev := range c.Planned {
		switch ev.Kind {
		case CapacityLeave, CapacityFail, CapacityPreempt, CapacityRackDrain:
			claims[ev.Kind] = true
		}
		if ev.Restocks != "" {
			claims[ev.Restocks] = true
		}
	}
	return claims
}

// Compose merges registered scenarios into one combined world model, so
// a single cell can simulate e.g. a spot-market day: diurnal arrivals
// AND spot preemptions at once. The composed spec is named by joining
// the parts with "+" ("diurnal+spot"), the form the registry's Get also
// parses directly.
//
// Each dimension of the world may be claimed by at most one part:
//
//   - the arrival process (at most one part with a non-default Arrival),
//   - the node-failure process (FailMTBF),
//   - the spot-preemption process (PreemptMTBF),
//   - the stochastic rack-drain process (DrainMTBF),
//   - and, for capacity-bearing parts generally, each server-removal
//     kind ("leave", "fail", "preempt", "rackdrain") — whether claimed
//     by planned events, by the restock joins that return them, or by a
//     stochastic process. The simulator pools removed servers per kind,
//     so two parts sharing a kind would silently restock each other's
//     losses (one timeline shadowing the other); Compose rejects the
//     pair with ErrIncompatible instead.
//
// Planned capacity events of disjoint kinds concatenate (the simulator
// sorts them by time), MinServers takes the most conservative (largest)
// floor, and Horizon the longest non-zero value. Composition keeps
// determinism: the merged spec is a pure value, so trace caching (keyed
// by ArrivalSpec) and capacity-timeline seeding behave exactly as for
// built-in specs.
func Compose(names ...string) (Spec, error) {
	if len(names) == 0 {
		return Spec{}, fmt.Errorf("%w: no scenario names given", ErrIncompatible)
	}
	var (
		out     Spec
		parts   []string
		titles  []string
		claimed = make(map[CapacityEventKind]string) // kind → part that owns it
	)
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			return Spec{}, fmt.Errorf("%w: empty scenario name in %v", ErrIncompatible, names)
		}
		s, ok := Lookup(name)
		if !ok {
			return Spec{}, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
		}
		parts = append(parts, s.Name)
		titles = append(titles, s.Title)
		if s.Arrival != (ArrivalSpec{}) {
			if out.Arrival != (ArrivalSpec{}) {
				return Spec{}, fmt.Errorf("%w: %v claim two arrival processes (%s and %s)",
					ErrIncompatible, parts, out.Arrival, s.Arrival)
			}
			out.Arrival = s.Arrival
		}
		c := s.Capacity
		newClaims := capacityClaims(c)
		// Deterministic error text: report the lowest conflicting kind.
		kinds := make([]string, 0, len(newClaims))
		for k := range newClaims {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		for _, ks := range kinds {
			k := CapacityEventKind(ks)
			if owner, dup := claimed[k]; dup {
				return Spec{}, fmt.Errorf("%w: %q and %q both bear %q capacity events — their removals and restocks would cross-talk (one timeline silently restocking the other's losses); model the combined world as one registered scenario instead",
					ErrIncompatible, owner, s.Name, k)
			}
			claimed[k] = s.Name
		}
		if c.FailMTBF > 0 {
			out.Capacity.FailMTBF = c.FailMTBF
			out.Capacity.FailRepair = c.FailRepair
		}
		if c.PreemptMTBF > 0 {
			out.Capacity.PreemptMTBF = c.PreemptMTBF
			out.Capacity.PreemptRestock = c.PreemptRestock
		}
		if c.DrainMTBF > 0 {
			out.Capacity.DrainMTBF = c.DrainMTBF
			out.Capacity.DrainRestock = c.DrainRestock
		}
		out.Capacity.Planned = append(out.Capacity.Planned, c.Planned...)
		if c.MinServers > out.Capacity.MinServers {
			out.Capacity.MinServers = c.MinServers
		}
		if c.Horizon > out.Capacity.Horizon {
			out.Capacity.Horizon = c.Horizon
		}
	}
	out.Name = strings.Join(parts, "+")
	out.Title = strings.Join(titles, " + ")
	return out, nil
}
