// Package scenario describes how the world changes during a simulated
// run: the arrival process shaping a workload trace (steady Poisson,
// diurnal sinusoid, bursts, heavy-tail interarrival) and the capacity
// timeline mutating the cluster underneath it (elastic scale-up/down,
// maintenance drains, spot preemptions, node failures with repair).
//
// Everything is deterministic: arrival draws consume a caller-provided
// RNG in a fixed order, and capacity timelines are precomputed from a
// seed before the simulation starts, so a scenario cell produces
// byte-identical results at any worker count. Named Specs live in a
// registry (see scenario.go) so experiments and tools compose scenarios
// by name instead of hardcoding a fixed cluster.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// ArrivalKind selects the arrival process family.
type ArrivalKind string

// Arrival process kinds.
const (
	// ArrivalPoisson is the stationary Poisson process of the paper's
	// evaluation (exponential interarrival at a fixed rate).
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalDiurnal modulates the Poisson rate with a sinusoid —
	// compressed day/night load.
	ArrivalDiurnal ArrivalKind = "diurnal"
	// ArrivalBurst multiplies the Poisson rate inside periodic burst
	// windows — flash crowds over a quiet baseline.
	ArrivalBurst ArrivalKind = "burst"
	// ArrivalHeavyTail draws Pareto interarrival times — long quiet
	// stretches punctuated by clustered submissions.
	ArrivalHeavyTail ArrivalKind = "heavy-tail"
)

// ArrivalSpec parameterizes an arrival process. The zero value means
// "stationary Poisson at the trace's configured mean interarrival"; all
// fields are scalars so the spec is comparable and can key trace caches
// (two scenarios sharing an arrival spec replay the identical trace,
// preserving paired comparisons).
type ArrivalSpec struct {
	Kind ArrivalKind `json:"kind,omitempty"`
	// Mean is the base mean interarrival time in seconds (1/λ0).
	// Zero ⇒ the trace config's MeanInterarrival.
	Mean float64 `json:"mean,omitempty"`

	// Period and Amplitude shape the diurnal sinusoid:
	// λ(t) = λ0·(1 + Amplitude·sin(2πt/Period)).
	Period    float64 `json:"period,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`

	// A burst window of BurstLen seconds opens every BurstEvery seconds,
	// multiplying the rate by BurstFactor inside it.
	BurstEvery  float64 `json:"burst_every,omitempty"`
	BurstLen    float64 `json:"burst_len,omitempty"`
	BurstFactor float64 `json:"burst_factor,omitempty"`

	// Alpha is the Pareto shape for heavy-tail interarrivals (>1 so the
	// mean exists; smaller ⇒ heavier tail).
	Alpha float64 `json:"alpha,omitempty"`
}

// Normalize fills defaults against the given fallback mean interarrival
// and returns the completed spec.
func (a ArrivalSpec) Normalize(fallbackMean float64) ArrivalSpec {
	if a.Kind == "" {
		a.Kind = ArrivalPoisson
	}
	if a.Mean <= 0 {
		a.Mean = fallbackMean
	}
	switch a.Kind {
	case ArrivalDiurnal:
		if a.Period <= 0 {
			a.Period = 600
		}
		if a.Amplitude <= 0 {
			a.Amplitude = 0.8
		}
		if a.Amplitude > 0.95 {
			a.Amplitude = 0.95 // keep λ(t) bounded away from zero
		}
	case ArrivalBurst:
		if a.BurstEvery <= 0 {
			a.BurstEvery = 400
		}
		if a.BurstLen <= 0 || a.BurstLen > a.BurstEvery {
			a.BurstLen = a.BurstEvery / 8
		}
		if a.BurstFactor < 1 {
			a.BurstFactor = 5
		}
	case ArrivalHeavyTail:
		if a.Alpha <= 1.05 {
			a.Alpha = 1.5
		}
	}
	return a
}

// Validate reports whether the (normalized) spec is usable.
func (a ArrivalSpec) Validate() error {
	if a.Mean <= 0 {
		return fmt.Errorf("scenario: arrival mean interarrival %v", a.Mean)
	}
	switch a.Kind {
	case ArrivalPoisson, ArrivalDiurnal, ArrivalBurst, ArrivalHeavyTail:
		return nil
	default:
		return fmt.Errorf("scenario: unknown arrival kind %q", a.Kind)
	}
}

// Rate returns the instantaneous arrival rate λ(t) in jobs/second.
// (Heavy-tail is a renewal process, not rate-modulated; its Rate is the
// base rate, used only for reporting.)
func (a ArrivalSpec) Rate(t float64) float64 {
	base := 1 / a.Mean
	switch a.Kind {
	case ArrivalDiurnal:
		return base * (1 + a.Amplitude*math.Sin(2*math.Pi*t/a.Period))
	case ArrivalBurst:
		if math.Mod(t, a.BurstEvery) < a.BurstLen {
			return base * a.BurstFactor
		}
		return base
	default:
		return base
	}
}

// maxRate bounds λ(t) for thinning.
func (a ArrivalSpec) maxRate() float64 {
	base := 1 / a.Mean
	switch a.Kind {
	case ArrivalDiurnal:
		return base * (1 + a.Amplitude)
	case ArrivalBurst:
		return base * a.BurstFactor
	default:
		return base
	}
}

// Next draws the arrival time following `now`. The same RNG state always
// produces the same time; non-stationary processes use Lewis–Shedler
// thinning against the rate envelope so the draw order stays fixed.
func (a ArrivalSpec) Next(rng *rand.Rand, now float64) float64 {
	switch a.Kind {
	case ArrivalDiurnal, ArrivalBurst:
		max := a.maxRate()
		t := now
		for {
			t += rng.ExpFloat64() / max
			if rng.Float64()*max <= a.Rate(t) {
				return t
			}
		}
	case ArrivalHeavyTail:
		// Pareto(xm, α) scaled so the mean interarrival is Mean.
		xm := a.Mean * (a.Alpha - 1) / a.Alpha
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return now + xm*math.Pow(u, -1/a.Alpha)
	default:
		return now + rng.ExpFloat64()*a.Mean
	}
}

// Times draws n successive arrival times starting from zero.
func (a ArrivalSpec) Times(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	now := 0.0
	for i := range out {
		now = a.Next(rng, now)
		out[i] = now
	}
	return out
}

// String renders the spec for listings.
func (a ArrivalSpec) String() string {
	switch a.Kind {
	case ArrivalDiurnal:
		return fmt.Sprintf("diurnal (period %.0fs, amplitude %.2f)", a.Period, a.Amplitude)
	case ArrivalBurst:
		return fmt.Sprintf("burst (×%.0f for %.0fs every %.0fs)", a.BurstFactor, a.BurstLen, a.BurstEvery)
	case ArrivalHeavyTail:
		return fmt.Sprintf("heavy-tail (Pareto α=%.2f)", a.Alpha)
	default:
		return "poisson"
	}
}
