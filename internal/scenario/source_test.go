package scenario

import (
	"reflect"
	"testing"
)

func TestClusterViewSignals(t *testing.T) {
	v := ClusterView{TotalGPUs: 64, BusyGPUs: 48, PendingGPUs: 32}
	if got := v.Utilization(); got != 0.75 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	if got := v.Pressure(); got != 1.25 {
		t.Errorf("Pressure = %v, want 1.25", got)
	}
	var empty ClusterView
	if empty.Utilization() != 0 || empty.Pressure() != 0 {
		t.Error("empty view must report zero signals, not divide by zero")
	}
}

func TestTimelineSourceReplaysTimeline(t *testing.T) {
	events := []CapacityEvent{
		{Time: 10, Kind: CapacityLeave},
		{Time: 10, Kind: CapacityLeave, Pick: 0.5},
		{Time: 30, Kind: CapacityJoin, Servers: 2},
	}
	src := NewTimelineSource(events)
	if got := src.NextWake(-1); got != 10 {
		t.Fatalf("first wake = %v, want 10", got)
	}
	if got := src.Next(5, ClusterView{}); got != nil {
		t.Fatalf("events before their time: %+v", got)
	}
	due := src.Next(10, ClusterView{})
	if len(due) != 2 || due[0] != events[0] || due[1] != events[1] {
		t.Fatalf("Next(10) = %+v, want the two t=10 events in order", due)
	}
	if got := src.NextWake(10); got != 30 {
		t.Fatalf("wake after t=10 batch = %v, want 30", got)
	}
	if due := src.Next(30, ClusterView{}); len(due) != 1 || due[0].Servers != 2 {
		t.Fatalf("Next(30) = %+v", due)
	}
	if got := src.NextWake(30); got >= 0 {
		t.Fatalf("exhausted source wake = %v, want negative", got)
	}
}

func TestSourcesComposition(t *testing.T) {
	if Sources() != nil || Sources(nil, nil) != nil {
		t.Error("no live sources must compose to nil")
	}
	lone := NewTimelineSource(nil)
	if got := Sources(nil, lone); got != CapacitySource(lone) {
		t.Error("single live source must be returned as itself (fast-path identity)")
	}
	a := NewTimelineSource([]CapacityEvent{{Time: 20, Kind: CapacityLeave}})
	b := NewTimelineSource([]CapacityEvent{
		{Time: 10, Kind: CapacityFail},
		{Time: 20, Kind: CapacityJoin, Restocks: CapacityFail},
	})
	m := Sources(a, b)
	if got := m.NextWake(-1); got != 10 {
		t.Fatalf("composed wake = %v, want earliest child wake 10", got)
	}
	if due := m.Next(10, ClusterView{}); len(due) != 1 || due[0].Kind != CapacityFail {
		t.Fatalf("Next(10) = %+v", due)
	}
	// At t=20 both children are due; events arrive in child order.
	due := m.Next(20, ClusterView{})
	want := []CapacityEvent{
		{Time: 20, Kind: CapacityLeave},
		{Time: 20, Kind: CapacityJoin, Restocks: CapacityFail},
	}
	if !reflect.DeepEqual(due, want) {
		t.Fatalf("Next(20) = %+v, want %+v", due, want)
	}
	if got := m.NextWake(20); got >= 0 {
		t.Fatalf("exhausted composed wake = %v", got)
	}
}

func TestDrainMTBFSourceDeterministicAndStateDependent(t *testing.T) {
	spec := CapacitySpec{DrainMTBF: 500, DrainRestock: 300}
	expand := func() []CapacityEvent {
		src := NewDrainMTBFSource(spec, 7, 4000)
		view := ClusterView{LiveRacks: []int{0, 1, 2, 3}}
		var all []CapacityEvent
		for {
			wake := src.NextWake(-1)
			if wake < 0 {
				break
			}
			all = append(all, src.Next(wake, view)...)
		}
		return all
	}
	first := expand()
	if len(first) == 0 {
		t.Fatal("no drain events drawn over an 8×MTBF horizon")
	}
	var drains, restocks int
	last := -1.0
	for _, ev := range first {
		if ev.Time < last {
			t.Fatalf("events out of order: %+v", first)
		}
		last = ev.Time
		switch ev.Kind {
		case CapacityRackDrain:
			drains++
			if ev.Rack < 0 || ev.Rack > 3 {
				t.Errorf("drain picked rack %d outside the live set", ev.Rack)
			}
		case CapacityJoin:
			restocks++
			if ev.Restocks != CapacityRackDrain || ev.Servers != 0 {
				t.Errorf("restock join malformed: %+v", ev)
			}
		default:
			t.Errorf("unexpected kind %q", ev.Kind)
		}
	}
	if drains == 0 || restocks != drains {
		t.Errorf("drains = %d, restocks = %d; want equal and nonzero", drains, restocks)
	}
	if again := expand(); !reflect.DeepEqual(first, again) {
		t.Error("same (spec, seed) expanded to different event sequences")
	}

	// The pick resolves against racks alive *at apply time*: shrinking the
	// live set changes which rack a late drain hits — exactly what a
	// precomputed timeline cannot express.
	src := NewDrainMTBFSource(spec, 7, 4000)
	wake := src.NextWake(-1)
	ev := src.Next(wake, ClusterView{LiveRacks: []int{9}})
	if len(ev) == 0 || ev[0].Rack != 9 {
		t.Errorf("drain against a single live rack hit %+v, want rack 9", ev)
	}
	if out := src.Next(src.NextWake(wake), ClusterView{}); len(out) != 0 && out[0].Kind == CapacityRackDrain {
		t.Errorf("drain with no live racks should be skipped, got %+v", out)
	}
}

func TestDrainMTBFSourceZeroSpec(t *testing.T) {
	src := NewDrainMTBFSource(CapacitySpec{}, 1, 0)
	if src.NextWake(-1) >= 0 {
		t.Error("zero DrainMTBF must yield an exhausted source")
	}
}

func TestMTBFDrainScenarioRegistered(t *testing.T) {
	s, err := Get(MTBFDrain)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity.DrainMTBF != 1200 || s.Capacity.DrainRestock != 900 {
		t.Errorf("mtbf-drain spec = %+v", s.Capacity)
	}
	if s.Capacity.IsStatic() {
		t.Error("a drain process is capacity churn; IsStatic must be false")
	}
	// The drain process is state-dependent and must NOT leak into the
	// precomputed timeline (it runs as a DrainMTBFSource instead).
	if tl := s.Capacity.Timeline(1, 0); len(tl) != 0 {
		t.Errorf("Timeline expanded drain events: %+v", tl)
	}
}
