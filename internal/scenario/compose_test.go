package scenario

import (
	"errors"
	"strings"
	"testing"
)

func TestComposeMergesDisjointDimensions(t *testing.T) {
	s, err := Compose(Diurnal, Spot)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "diurnal+spot" {
		t.Errorf("Name = %q", s.Name)
	}
	if s.Arrival.Kind != ArrivalDiurnal {
		t.Errorf("arrival process not taken from diurnal: %+v", s.Arrival)
	}
	if s.Capacity.PreemptMTBF != 400 || s.Capacity.PreemptRestock != 800 {
		t.Errorf("preemption process not taken from spot: %+v", s.Capacity)
	}
	if s.Capacity.MinServers != 2 {
		t.Errorf("MinServers = %d, want spot's floor 2", s.Capacity.MinServers)
	}
	if s.Capacity.IsStatic() {
		t.Error("composed spec lost its capacity churn")
	}
}

func TestComposeThreeWay(t *testing.T) {
	s, err := Compose(Burst, NodeFailure, Elastic)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "burst+node-failure+elastic" {
		t.Errorf("Name = %q", s.Name)
	}
	if s.Arrival.Kind != ArrivalBurst {
		t.Errorf("arrival = %+v", s.Arrival)
	}
	if s.Capacity.FailMTBF != 300 {
		t.Errorf("failure process lost: %+v", s.Capacity)
	}
	if len(s.Capacity.Planned) == 0 {
		t.Error("planned elastic events lost")
	}
}

func TestComposeRejectsConflicts(t *testing.T) {
	cases := map[string][]string{
		"two arrival processes":  {Diurnal, Burst},
		"two failure processes":  {NodeFailure, NodeFailure},
		"two preempt processes":  {Spot, Spot},
		"two drain processes":    {MTBFDrain, MTBFDrain},
		"two planned timelines":  {Elastic, Elastic},
		"two rackdrain bearers":  {RackDrain, MTBFDrain},
		"planned rackdrain pair": {RackDrain, RackDrain},
	}
	for why, names := range cases {
		if _, err := Compose(names...); !errors.Is(err, ErrIncompatible) {
			t.Errorf("%s (%v): err = %v, want ErrIncompatible", why, names, err)
		}
	}
}

// Two capacity-bearing specs whose removal kinds cross-talk must be
// rejected with a message that says why, not silently merged with one
// timeline shadowing (or restocking) the other's losses.
func TestComposeCapacityCrossTalkMessage(t *testing.T) {
	_, err := Compose(RackDrain, MTBFDrain)
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
	msg := err.Error()
	for _, want := range []string{"rack-drain", "mtbf-drain", "rackdrain", "cross-talk"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// Capacity-bearing specs with disjoint removal kinds still merge: an
// elastic planned schedule (leave) composes with spot preemptions
// (preempt), node failures (fail), and stochastic rack drains
// (rackdrain) all at once.
func TestComposeDisjointCapacityBearers(t *testing.T) {
	s, err := Compose(Elastic, Spot, NodeFailure, MTBFDrain)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Capacity.Planned) == 0 {
		t.Error("elastic planned events lost")
	}
	if s.Capacity.PreemptMTBF != 400 || s.Capacity.FailMTBF != 300 {
		t.Errorf("stochastic processes lost: %+v", s.Capacity)
	}
	if s.Capacity.DrainMTBF != 1200 || s.Capacity.DrainRestock != 900 {
		t.Errorf("drain process lost: %+v", s.Capacity)
	}
	if _, err := Compose(Diurnal, MTBFDrain); err != nil {
		t.Errorf("diurnal+mtbf-drain should compose: %v", err)
	}
}

func TestComposeUnknownPart(t *testing.T) {
	_, err := Compose(Diurnal, "bogus")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
	if _, err := Compose(); !errors.Is(err, ErrIncompatible) {
		t.Errorf("empty Compose: %v", err)
	}
	if _, err := Compose(Diurnal, " "); !errors.Is(err, ErrIncompatible) {
		t.Errorf("blank part: %v", err)
	}
}

func TestGetParsesComposedNames(t *testing.T) {
	s, err := Get("diurnal+spot")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "diurnal+spot" || s.Arrival.Kind != ArrivalDiurnal || s.Capacity.PreemptMTBF != 400 {
		t.Errorf("Get composed the wrong spec: %+v", s)
	}
	// Composition is deterministic: same name, same value.
	again, err := Get("diurnal+spot")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arrival != again.Arrival || s.Capacity.PreemptMTBF != again.Capacity.PreemptMTBF {
		t.Error("repeated Get of a composed name differs")
	}
	if _, err := Get("diurnal+bogus"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Get with unknown part: %v", err)
	}
	if _, err := Get("diurnal+burst"); !errors.Is(err, ErrIncompatible) {
		t.Errorf("Get with incompatible parts: %v", err)
	}
}

func TestRegisterRejectsPlusInName(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("Register with '+' in the name did not panic")
		} else if !strings.Contains(r.(string), "Compose") {
			t.Errorf("panic message does not point at Compose: %v", r)
		}
	}()
	Register(Spec{Name: "a+b"})
}

func TestDuplicatePanicMessageIsActionable(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, Steady) || !strings.Contains(msg, "duplicate") {
			t.Errorf("panic message unclear: %q", msg)
		}
	}()
	Register(Spec{Name: Steady})
}
