package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknown is wrapped by Get for names absent from the registry; match
// it with errors.Is.
var ErrUnknown = errors.New("scenario: unknown scenario")

// Spec is a named description of how the world changes during a run:
// the arrival process a trace is generated from and the capacity
// timeline the cluster follows. Experiments compose scenarios by name —
// a simulation cell is (scheduler, capacity, trace seed, scenario).
type Spec struct {
	// Name is the flag-facing registry identifier ("steady", "diurnal", …).
	Name string
	// Title is a one-line description for listings.
	Title string
	// Arrival shapes the workload trace (zero ⇒ stationary Poisson at
	// the trace config's rate).
	Arrival ArrivalSpec
	// Capacity mutates the cluster during the run (zero ⇒ fixed).
	Capacity CapacitySpec
}

// Built-in scenario names.
const (
	Steady      = "steady"
	Diurnal     = "diurnal"
	Burst       = "burst"
	HeavyTail   = "heavy-tail"
	Elastic     = "elastic"
	Spot        = "spot"
	NodeFailure = "node-failure"
	RackDrain   = "rack-drain"
	MTBFDrain   = "mtbf-drain"
)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Spec)
)

// Register adds a named scenario. Re-registering a name panics: two
// world models silently shadowing each other would corrupt experiments.
func Register(s Spec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if strings.Contains(s.Name, "+") {
		panic(fmt.Sprintf("scenario: Register %q — %q is reserved for composition (see Compose); register the parts under plain names", s.Name, "+"))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q — two world models would silently shadow each other and corrupt experiments; pick a distinct name", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the named scenario.
func Lookup(name string) (Spec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Get returns the named scenario or an error listing the known names.
// Names containing "+" compose on the fly: Get("diurnal+spot") merges
// the two registered specs through Compose, so any registry consumer
// (experiment cells, tracegen flags, the public SDK) can model combined
// worlds without pre-registering every pairing.
func Get(name string) (Spec, error) {
	if strings.Contains(name, "+") {
		return Compose(strings.Split(name, "+")...)
	}
	if s, ok := Lookup(name); ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("%w %q (known: %v)", ErrUnknown, name, Names())
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered scenario sorted by name.
func Specs() []Spec {
	out := make([]Spec, 0)
	for _, n := range Names() {
		s, _ := Lookup(n)
		out = append(out, s)
	}
	return out
}

// init registers the built-in scenarios. Timescales follow the
// evaluation workload (interarrival ~12 s, JCTs of hundreds of seconds,
// makespans of a few thousand): each scenario perturbs the world several
// times within one run without making it unschedulable.
func init() {
	Register(Spec{
		Name:  Steady,
		Title: "fixed cluster, stationary Poisson arrivals (the paper's testbed)",
	})
	Register(Spec{
		Name:    Diurnal,
		Title:   "sinusoidal arrival rate — compressed day/night load",
		Arrival: ArrivalSpec{Kind: ArrivalDiurnal, Period: 600, Amplitude: 0.8},
	})
	Register(Spec{
		Name:    Burst,
		Title:   "5× arrival bursts of 60 s every 400 s over a quiet baseline",
		Arrival: ArrivalSpec{Kind: ArrivalBurst, BurstEvery: 400, BurstLen: 60, BurstFactor: 5},
	})
	Register(Spec{
		Name:    HeavyTail,
		Title:   "Pareto interarrival times — clustered submissions, long lulls",
		Arrival: ArrivalSpec{Kind: ArrivalHeavyTail, Alpha: 1.5},
	})
	Register(Spec{
		Name:  Elastic,
		Title: "planned autoscaling: drain a quarter of the servers, later overshoot back",
		Capacity: CapacitySpec{
			Planned: []CapacityEvent{
				{Time: 240, Kind: CapacityLeave, Servers: 4, Pick: 0.999},
				{Time: 720, Kind: CapacityJoin, Servers: 6},
				{Time: 1500, Kind: CapacityLeave, Servers: 2, Pick: 0.999},
			},
			MinServers: 2,
		},
	})
	Register(Spec{
		Name:  Spot,
		Title: "spot-instance preemptions every ~400 s, capacity restocked after 800 s",
		Capacity: CapacitySpec{
			PreemptMTBF:    400,
			PreemptRestock: 800,
			MinServers:     2,
		},
	})
	Register(Spec{
		Name:  NodeFailure,
		Title: "node failures every ~300 s, repaired after 900 s",
		Capacity: CapacitySpec{
			FailMTBF:   300,
			FailRepair: 900,
			MinServers: 2,
		},
	})
	Register(Spec{
		Name:  MTBFDrain,
		Title: "stochastic rack failures every ~1200 s, each drained rack repaired after 900 s",
		Capacity: CapacitySpec{
			DrainMTBF:    1200,
			DrainRestock: 900,
			MinServers:   2,
		},
	})
	Register(Spec{
		Name:  RackDrain,
		Title: "rack 1 drains whole at 600 s, powers back at 1800 s (no-op on single-rack clusters)",
		Capacity: CapacitySpec{
			Planned: []CapacityEvent{
				{Time: 600, Kind: CapacityRackDrain, Rack: 1},
				{Time: 1800, Kind: CapacityJoin, Restocks: CapacityRackDrain},
			},
			MinServers: 1,
		},
	})
}
