package scenario

import (
	"math/rand"
	"sort"
)

// CapacityEventKind classifies how the cluster changes.
type CapacityEventKind string

// Capacity event kinds. Join adds servers; the others remove them. The
// single-server removals differ only in provenance (reporting) — the
// simulator treats every removal as "the server's jobs are evicted and
// requeued". RackDrain removes a whole failure domain at once: every
// server whose ServerSpec.Rack matches the event's Rack id.
const (
	CapacityJoin    CapacityEventKind = "join"
	CapacityLeave   CapacityEventKind = "leave"   // planned scale-down / maintenance drain
	CapacityFail    CapacityEventKind = "fail"    // node failure
	CapacityPreempt CapacityEventKind = "preempt" // spot instance reclaimed
	// CapacityRackDrain drains one rack: a top-of-rack switch failure,
	// a PDU trip, or planned rack maintenance. Only meaningful on
	// topologies with more than one rack (draining a rack absent from
	// the live cluster is a no-op; the MinServers floor still applies,
	// so a drain can be partial).
	CapacityRackDrain CapacityEventKind = "rackdrain"
)

// CapacityEvent is one entry of a capacity timeline.
type CapacityEvent struct {
	Time float64           `json:"time"`
	Kind CapacityEventKind `json:"kind"`
	// Servers is how many servers join or leave (0 ⇒ 1 — except for
	// restock joins, where 0 means "everything still out": the whole
	// drained rack powers back up). Ignored by rack drains, which
	// remove the whole rack.
	Servers int `json:"servers,omitempty"`
	// Pick ∈ [0,1) selects which server a removal hits, scaled by the
	// live server count at apply time — precomputing the fraction rather
	// than an index keeps the timeline valid whatever the cluster size
	// has become by then.
	Pick float64 `json:"pick,omitempty"`
	// Rack is the rack id a rackdrain empties (matching
	// cluster.ServerSpec.Rack; ParseShape assigns group i to rack i).
	// Ignored by every other kind.
	Rack int `json:"rack,omitempty"`
	// GPUs sets the per-server GPU count of joined servers (0 ⇒ match
	// the cluster's first server — on a homogeneous fleet, more of the
	// same). Ignored by removals and by restock joins, which return the
	// exact servers that left.
	GPUs int `json:"gpus,omitempty"`
	// Restocks marks a join that returns capacity removed by an earlier
	// event of the given kind (a repaired node, restocked spot capacity,
	// a drained rack powering back up). The simulator returns the exact
	// servers that left — shapes and rack ids included — and skips the
	// join when the removal never actually happened (e.g. it was clamped
	// at the MinServers floor), so the cluster can never grow past its
	// physical size through repairs alone. Empty for planned joins,
	// which are deliberate growth.
	Restocks CapacityEventKind `json:"restocks,omitempty"`
	// Origin identifies what produced the event: empty for planned
	// timelines and chaos processes, OriginAutoscaler for events a
	// reactive controller emitted. The simulator uses it to count
	// controller-driven scaling separately; it never changes how the
	// event applies. Omitted from JSON when empty, so pre-source cached
	// results marshal exactly as before.
	Origin string `json:"origin,omitempty"`
}

// DefaultHorizon bounds stochastic timeline generation: past it the
// cluster stops churning. Two simulated hours — the paper's workload is
// tuned so jobs "basically finish within 2 hours".
const DefaultHorizon = 7200.0

// CapacitySpec describes how cluster capacity evolves: a deterministic
// planned schedule plus seeded stochastic failure/preemption processes.
type CapacitySpec struct {
	// Planned events fire at fixed times (elastic scale-up/down,
	// maintenance drains). Times are relative to simulation start.
	Planned []CapacityEvent `json:"planned,omitempty"`

	// FailMTBF is the cluster-wide mean time between node failures in
	// seconds (0 ⇒ no failures). A failed server rejoins FailRepair
	// seconds later (0 ⇒ lost for the rest of the run).
	FailMTBF   float64 `json:"fail_mtbf,omitempty"`
	FailRepair float64 `json:"fail_repair,omitempty"`

	// PreemptMTBF is the mean time between spot reclaims (0 ⇒ none);
	// reclaimed capacity is restocked PreemptRestock seconds later.
	PreemptMTBF    float64 `json:"preempt_mtbf,omitempty"`
	PreemptRestock float64 `json:"preempt_restock,omitempty"`

	// DrainMTBF is the mean time between whole-rack drains in seconds
	// (0 ⇒ none). Unlike the other stochastic processes each drain hits
	// a random *live* rack — a choice that depends on simulation state,
	// so the process runs as a DrainMTBFSource rather than a precomputed
	// timeline (see Timeline, which ignores these fields). The drained
	// rack powers back up DrainRestock seconds later (0 ⇒ lost).
	DrainMTBF    float64 `json:"drain_mtbf,omitempty"`
	DrainRestock float64 `json:"drain_restock,omitempty"`

	// MinServers floors the cluster: removals that would shrink it below
	// are skipped by the simulator (0 ⇒ 1).
	MinServers int `json:"min_servers,omitempty"`

	// Horizon stops stochastic event generation (0 ⇒ DefaultHorizon).
	Horizon float64 `json:"horizon,omitempty"`
}

// IsStatic reports whether the capacity never changes.
func (c CapacitySpec) IsStatic() bool {
	return len(c.Planned) == 0 && c.FailMTBF <= 0 && c.PreemptMTBF <= 0 && c.DrainMTBF <= 0
}

// Timeline expands the spec into a concrete, time-sorted event list. The
// stochastic draws depend only on (spec, seed), never on simulation
// state, so every scheduler facing the same scenario cell sees the
// identical sequence of cluster changes — the pairing that keeps
// cross-scheduler comparisons meaningful. maxHorizon (typically the
// simulator's MaxTime) additionally caps generation.
func (c CapacitySpec) Timeline(seed int64, maxHorizon float64) []CapacityEvent {
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	if maxHorizon > 0 && maxHorizon < horizon {
		horizon = maxHorizon
	}
	var events []CapacityEvent
	for _, ev := range c.Planned {
		if ev.Time <= horizon {
			events = append(events, ev)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	draw := func(mtbf, restock float64, kind CapacityEventKind) {
		if mtbf <= 0 {
			return
		}
		for t := rng.ExpFloat64() * mtbf; t <= horizon; t += rng.ExpFloat64() * mtbf {
			events = append(events, CapacityEvent{Time: t, Kind: kind, Servers: 1, Pick: rng.Float64()})
			if restock > 0 {
				events = append(events, CapacityEvent{Time: t + restock, Kind: CapacityJoin, Servers: 1, Restocks: kind})
			}
		}
	}
	draw(c.FailMTBF, c.FailRepair, CapacityFail)
	draw(c.PreemptMTBF, c.PreemptRestock, CapacityPreempt)
	// Stable sort: the pre-sort order (planned, failures, preemptions) is
	// deterministic, so ties at equal times resolve identically every run.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}
