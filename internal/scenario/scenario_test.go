package scenario

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestArrivalDefaultsToPoisson(t *testing.T) {
	a := ArrivalSpec{}.Normalize(12)
	if a.Kind != ArrivalPoisson || a.Mean != 12 {
		t.Fatalf("zero spec normalized to %+v, want poisson mean 12", a)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalValidateRejectsBadSpecs(t *testing.T) {
	if err := (ArrivalSpec{Kind: ArrivalPoisson}).Validate(); err == nil {
		t.Error("zero mean accepted")
	}
	if err := (ArrivalSpec{Kind: "bogus", Mean: 1}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestArrivalTimesDeterministicAndOrdered(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalPoisson, ArrivalDiurnal, ArrivalBurst, ArrivalHeavyTail} {
		a := ArrivalSpec{Kind: kind}.Normalize(10)
		t1 := a.Times(rand.New(rand.NewSource(3)), 200)
		t2 := a.Times(rand.New(rand.NewSource(3)), 200)
		if !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: same seed drew different times", kind)
		}
		if !sort.Float64sAreSorted(t1) {
			t.Errorf("%s: times not increasing", kind)
		}
		if t1[0] <= 0 {
			t.Errorf("%s: first arrival %v not positive", kind, t1[0])
		}
	}
}

func TestArrivalMeansRoughlyMatch(t *testing.T) {
	// Every process is tuned to a ~10 s mean interarrival; over many
	// draws the empirical mean should land in the right ballpark.
	// (Heavy-tail converges slowly, hence the loose band.)
	for _, kind := range []ArrivalKind{ArrivalPoisson, ArrivalDiurnal, ArrivalHeavyTail} {
		a := ArrivalSpec{Kind: kind}.Normalize(10)
		times := a.Times(rand.New(rand.NewSource(11)), 5000)
		mean := times[len(times)-1] / float64(len(times))
		if mean < 4 || mean > 25 {
			t.Errorf("%s: empirical mean interarrival %.2f, want ≈10", kind, mean)
		}
	}
}

func TestBurstRateProfile(t *testing.T) {
	a := ArrivalSpec{Kind: ArrivalBurst, BurstEvery: 100, BurstLen: 10, BurstFactor: 4}.Normalize(10)
	if got := a.Rate(5); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("in-burst rate %v, want 0.4", got)
	}
	if got := a.Rate(50); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("baseline rate %v, want 0.1", got)
	}
}

func TestDiurnalRateOscillatesAndStaysPositive(t *testing.T) {
	a := ArrivalSpec{Kind: ArrivalDiurnal, Period: 100, Amplitude: 0.9}.Normalize(10)
	lo, hi := math.Inf(1), math.Inf(-1)
	for x := 0.0; x < 200; x++ {
		r := a.Rate(x)
		if r <= 0 {
			t.Fatalf("rate at t=%v is %v", x, r)
		}
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi/lo < 2 {
		t.Errorf("diurnal modulation too flat: [%v, %v]", lo, hi)
	}
}

func TestTimelineDeterministicAndSorted(t *testing.T) {
	spec := CapacitySpec{FailMTBF: 300, FailRepair: 900, PreemptMTBF: 500, PreemptRestock: 400}
	a := spec.Timeline(42, 0)
	b := spec.Timeline(42, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed built different timelines")
	}
	if len(a) == 0 {
		t.Fatal("MTBF 300 over a 7200 s horizon drew no events")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Time < a[i-1].Time {
			t.Fatalf("timeline out of order at %d: %+v", i, a)
		}
	}
	if reflect.DeepEqual(a, spec.Timeline(43, 0)) {
		t.Error("different seeds built identical timelines")
	}
}

func TestTimelinePairsFailuresWithRepairs(t *testing.T) {
	spec := CapacitySpec{FailMTBF: 200, FailRepair: 500}
	events := spec.Timeline(7, 0)
	fails, joins := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case CapacityFail:
			fails++
			if ev.Pick < 0 || ev.Pick >= 1 {
				t.Errorf("fail Pick %v outside [0,1)", ev.Pick)
			}
		case CapacityJoin:
			joins++
			if ev.Restocks != CapacityFail {
				t.Errorf("repair join not marked as restocking a failure: %+v", ev)
			}
		}
	}
	if fails == 0 || fails != joins {
		t.Errorf("fails %d, repair joins %d — every failure should schedule a repair", fails, joins)
	}
}

func TestTimelineRespectsHorizon(t *testing.T) {
	spec := CapacitySpec{FailMTBF: 50, Horizon: 1000}
	for _, ev := range spec.Timeline(1, 0) {
		if ev.Kind == CapacityFail && ev.Time > 1000 {
			t.Fatalf("failure at %v past horizon 1000", ev.Time)
		}
	}
	// The caller's cap (e.g. the simulator MaxTime) tightens it further.
	for _, ev := range spec.Timeline(1, 200) {
		if ev.Kind == CapacityFail && ev.Time > 200 {
			t.Fatalf("failure at %v past cap 200", ev.Time)
		}
	}
}

func TestTimelineKeepsPlannedEvents(t *testing.T) {
	spec := CapacitySpec{Planned: []CapacityEvent{
		{Time: 100, Kind: CapacityLeave, Servers: 2, Pick: 0.9},
		{Time: 300, Kind: CapacityJoin, Servers: 2},
	}}
	got := spec.Timeline(1, 0)
	if !reflect.DeepEqual(got, spec.Planned) {
		t.Errorf("static planned spec expanded to %+v", got)
	}
	if spec.IsStatic() {
		t.Error("spec with planned events reported static")
	}
	if !(CapacitySpec{}).IsStatic() {
		t.Error("zero spec not static")
	}
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{Steady, Diurnal, Burst, HeavyTail, Elastic, Spot, NodeFailure} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("built-in %q missing", name)
		}
		if s.Title == "" {
			t.Errorf("%q untitled", name)
		}
		if err := s.Arrival.Normalize(12).Validate(); err != nil {
			t.Errorf("%q arrival: %v", name, err)
		}
	}
	steady, _ := Lookup(Steady)
	if !steady.Capacity.IsStatic() || steady.Arrival != (ArrivalSpec{}) {
		t.Error("steady scenario must be the zero world")
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("unknown scenario accepted")
	}
	names := Names()
	if !sort.StringsAreSorted(names) || len(names) < 7 {
		t.Errorf("Names() = %v", names)
	}
	if got := Specs(); len(got) != len(names) {
		t.Errorf("Specs() returned %d specs for %d names", len(got), len(names))
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() { Register(Spec{Name: Steady}) })
	mustPanic("empty name", func() { Register(Spec{}) })
}
