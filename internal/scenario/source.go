package scenario

import (
	"math/rand"
	"sort"
)

// OriginAutoscaler marks a CapacityEvent emitted by a reactive
// autoscaling controller (see internal/autoscale), as opposed to a
// pre-planned timeline or a seeded chaos process. The simulator counts
// applied autoscaler events separately (Result.ScaleUps/ScaleDowns/
// AutoscaleEvents) so a reactive run's controller activity is visible in
// the result.
const OriginAutoscaler = "autoscaler"

// ClusterView is the read-only cluster snapshot the simulator hands a
// CapacitySource at each decision boundary. It contains only observable
// quantities — no oracle knowledge of remaining work — so a reactive
// controller sees exactly what a production autoscaler watching cluster
// metrics would see.
type ClusterView struct {
	// Now is the simulated time of the snapshot, in seconds.
	Now float64
	// Servers is the number of live servers.
	Servers int
	// TotalGPUs is the live cluster capacity.
	TotalGPUs int
	// BusyGPUs is how many GPUs currently hold a job.
	BusyGPUs int
	// RunningJobs is the number of alive jobs holding at least one GPU.
	RunningJobs int
	// QueuedJobs is the number of alive jobs waiting without GPUs.
	QueuedJobs int
	// PendingGPUs sums the user-requested GPU counts of the queued jobs —
	// the demand the cluster is not currently serving.
	PendingGPUs int
	// LiveRacks lists the rack ids with at least one live server,
	// ascending.
	LiveRacks []int
}

// Utilization returns the busy fraction of the live capacity, in [0,1].
func (v ClusterView) Utilization() float64 {
	if v.TotalGPUs <= 0 {
		return 0
	}
	return float64(v.BusyGPUs) / float64(v.TotalGPUs)
}

// Pressure returns (busy + pending demand) / capacity: 1.0 means the
// cluster exactly fits current demand, above 1.0 jobs are queueing, well
// below 1.0 capacity is idle. The reactive controllers trigger on
// sustained pressure rather than raw utilization so queued demand —
// invisible to utilization, which saturates at 1 — still drives
// scale-up.
func (v ClusterView) Pressure() float64 {
	if v.TotalGPUs <= 0 {
		return 0
	}
	return float64(v.BusyGPUs+v.PendingGPUs) / float64(v.TotalGPUs)
}

// CapacitySource produces capacity events while a simulation runs. It
// generalizes the precomputed CapacitySpec timeline: planned schedules
// (TimelineSource), seeded chaos processes (DrainMTBFSource) and
// closed-loop reactive controllers (autoscale.Controller) are
// interchangeable behind it — the simulator neither knows nor cares
// whether the cluster's next change was scheduled in advance or decided
// by feedback.
//
// The simulator drives a source with two calls. NextWake(now) asks when
// the source next wants control (now = the time of the previous
// consultation, -1 before the first); the simulator schedules a decision
// boundary there. Next(now, view) is called at that boundary with a
// read-only ClusterView and returns the events to apply, in order, each
// applied at the current time (the event's own Time field is
// informational). Sources are consulted from the single-threaded
// simulation loop, with now nondecreasing across calls, so a
// deterministic source yields deterministic runs at any engine worker
// count or evolution parallelism.
type CapacitySource interface {
	// Next returns the capacity events to apply at now. A source polled
	// before its own next boundary (a sibling source's wake in a
	// composed run) returns nil.
	Next(now float64, view ClusterView) []CapacityEvent
	// NextWake returns the simulated time of the source's next decision
	// boundary strictly after now, or a negative value when the source
	// is exhausted. now is -1 before the first consultation.
	NextWake(now float64) float64
}

// TimelineSource adapts a precomputed, time-sorted capacity timeline
// (see CapacitySpec.Timeline) to the CapacitySource interface: it wakes
// at each event's exact time and returns the events that have come due.
// The simulator recognizes a bare *TimelineSource and replays it on the
// exact event-queue path pre-source builds used, so planned-timeline
// results are byte-identical to before the interface existed.
type TimelineSource struct {
	events []CapacityEvent
	idx    int
}

// NewTimelineSource wraps a time-sorted event list. The slice is
// retained, not copied.
func NewTimelineSource(events []CapacityEvent) *TimelineSource {
	return &TimelineSource{events: events}
}

// Events returns the underlying timeline.
func (s *TimelineSource) Events() []CapacityEvent { return s.events }

// NextWake implements CapacitySource: the time of the first event not
// yet delivered.
func (s *TimelineSource) NextWake(now float64) float64 {
	if s.idx >= len(s.events) {
		return -1
	}
	return s.events[s.idx].Time
}

// Next implements CapacitySource: every event with Time ≤ now, in
// timeline order.
func (s *TimelineSource) Next(now float64, _ ClusterView) []CapacityEvent {
	start := s.idx
	for s.idx < len(s.events) && s.events[s.idx].Time <= now {
		s.idx++
	}
	if s.idx == start {
		return nil
	}
	return s.events[start:s.idx]
}

// multiSource composes several capacity sources: it wakes at the
// earliest child wake and polls every child at each boundary (children
// not yet due return nil), delivering events in child order.
type multiSource struct {
	srcs []CapacitySource
}

// Sources composes capacity sources into one. Nil entries are dropped;
// zero live sources yield nil, a single source is returned as itself
// (preserving the simulator's exact-timeline fast path for a lone
// TimelineSource).
func Sources(srcs ...CapacitySource) CapacitySource {
	live := make([]CapacitySource, 0, len(srcs))
	for _, s := range srcs {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multiSource{srcs: live}
}

// NextWake implements CapacitySource: the earliest pending child wake.
func (m *multiSource) NextWake(now float64) float64 {
	next := -1.0
	for _, s := range m.srcs {
		if t := s.NextWake(now); t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	return next
}

// Next implements CapacitySource: concatenates the children's due
// events in child order.
func (m *multiSource) Next(now float64, view ClusterView) []CapacityEvent {
	var out []CapacityEvent
	for _, s := range m.srcs {
		out = append(out, s.Next(now, view)...)
	}
	return out
}

// DrainMTBFSource is a seeded stochastic rack-failure process: it draws
// drain times from an exponential distribution (mean CapacitySpec.
// DrainMTBF) and, at each, drains one *live* rack picked uniformly at
// random — something a precomputed timeline cannot express, since which
// racks are alive depends on simulation state. A drained rack powers
// back up DrainRestock seconds later (0 ⇒ lost for the run).
//
// Determinism: drain times and pick fractions are drawn up front from
// (spec, seed) only; the live-rack pick indexes the fraction into the
// rack list observed at apply time. The same seed against the same
// world therefore drains the same racks at the same times on every run,
// at any worker count.
type DrainMTBFSource struct {
	pending []CapacityEvent // time-sorted drains (Pick set) and restocks
	idx     int
}

// NewDrainMTBFSource expands the spec's DrainMTBF/DrainRestock process
// into a source. maxHorizon (typically the simulator's MaxTime)
// additionally caps generation, like CapacitySpec.Timeline.
func NewDrainMTBFSource(spec CapacitySpec, seed int64, maxHorizon float64) *DrainMTBFSource {
	src := &DrainMTBFSource{}
	if spec.DrainMTBF <= 0 {
		return src
	}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	if maxHorizon > 0 && maxHorizon < horizon {
		horizon = maxHorizon
	}
	rng := rand.New(rand.NewSource(seed))
	for t := rng.ExpFloat64() * spec.DrainMTBF; t <= horizon; t += rng.ExpFloat64() * spec.DrainMTBF {
		src.pending = append(src.pending, CapacityEvent{Time: t, Kind: CapacityRackDrain, Pick: rng.Float64()})
		if spec.DrainRestock > 0 {
			// Servers 0 on a restock join means "everything still out":
			// overlapping drains restock together at the earlier repair.
			src.pending = append(src.pending, CapacityEvent{Time: t + spec.DrainRestock, Kind: CapacityJoin, Restocks: CapacityRackDrain})
		}
	}
	sort.SliceStable(src.pending, func(i, j int) bool { return src.pending[i].Time < src.pending[j].Time })
	return src
}

// NextWake implements CapacitySource.
func (s *DrainMTBFSource) NextWake(now float64) float64 {
	if s.idx >= len(s.pending) {
		return -1
	}
	return s.pending[s.idx].Time
}

// Next implements CapacitySource: due drains resolve their Pick
// fraction against the racks currently alive; due restocks pass
// through.
func (s *DrainMTBFSource) Next(now float64, view ClusterView) []CapacityEvent {
	var out []CapacityEvent
	for s.idx < len(s.pending) && s.pending[s.idx].Time <= now {
		ev := s.pending[s.idx]
		s.idx++
		if ev.Kind == CapacityRackDrain {
			if len(view.LiveRacks) == 0 {
				continue // nothing to drain
			}
			i := int(ev.Pick * float64(len(view.LiveRacks)))
			if i >= len(view.LiveRacks) {
				i = len(view.LiveRacks) - 1
			}
			ev.Rack = view.LiveRacks[i]
		}
		out = append(out, ev)
	}
	return out
}
