package collective

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runGroup launches fn on every rank of a fresh group and waits.
func runGroup(t *testing.T, n int, fn func(c *Comm)) {
	t.Helper()
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		c, err := g.Comm(r)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Error("zero-size group accepted")
	}
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Comm(3); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := g.Comm(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if g.Size() != 3 {
		t.Errorf("Size = %d", g.Size())
	}
}

func TestAllReduceSumCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for _, ln := range []int{1, 3, 8, 17, 1024} {
			if ln < n && n > 1 {
				// Chunks may be empty; still must work.
			}
			inputs := make([][]float32, n)
			want := make([]float32, ln)
			rng := rand.New(rand.NewSource(int64(n*1000 + ln)))
			for r := 0; r < n; r++ {
				inputs[r] = make([]float32, ln)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += inputs[r][i]
				}
			}
			var mu sync.Mutex
			results := make(map[int][]float32)
			runGroup(t, n, func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				c.AllReduceSum(buf)
				mu.Lock()
				results[c.Rank()] = buf
				mu.Unlock()
			})
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(float64(results[r][i]-want[i])) > 1e-3 {
						t.Fatalf("n=%d ln=%d rank %d elem %d: got %v want %v",
							n, ln, r, i, results[r][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	const n = 4
	runGroup(t, n, func(c *Comm) {
		buf := []float32{float32(c.Rank()), 10}
		c.AllReduceMean(buf)
		if math.Abs(float64(buf[0]-1.5)) > 1e-6 { // mean of 0..3
			t.Errorf("rank %d mean[0] = %v, want 1.5", c.Rank(), buf[0])
		}
		if math.Abs(float64(buf[1]-10)) > 1e-6 {
			t.Errorf("rank %d mean[1] = %v, want 10", c.Rank(), buf[1])
		}
	})
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	const n = 5
	for root := 0; root < n; root++ {
		var mu sync.Mutex
		results := make(map[int][]float32)
		runGroup(t, n, func(c *Comm) {
			buf := make([]float32, 7)
			if c.Rank() == root {
				for i := range buf {
					buf[i] = float32(100*root + i)
				}
			}
			if err := c.Broadcast(buf, root); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			results[c.Rank()] = buf
			mu.Unlock()
		})
		for r := 0; r < n; r++ {
			for i := 0; i < 7; i++ {
				want := float32(100*root + i)
				if results[r][i] != want {
					t.Fatalf("root %d rank %d elem %d = %v, want %v", root, r, i, results[r][i], want)
				}
			}
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	g, _ := NewGroup(2)
	c, _ := g.Comm(0)
	if err := c.Broadcast([]float32{1}, 5); err == nil {
		t.Error("bad root accepted")
	}
}

func TestBarrierCompletes(t *testing.T) {
	var mu sync.Mutex
	after := 0
	runGroup(t, 6, func(c *Comm) {
		c.Barrier()
		mu.Lock()
		after++
		mu.Unlock()
	})
	if after != 6 {
		t.Errorf("barrier released %d ranks, want 6", after)
	}
}

func TestSingleRankOpsAreNoops(t *testing.T) {
	g, _ := NewGroup(1)
	c, _ := g.Comm(0)
	buf := []float32{1, 2, 3}
	c.AllReduceSum(buf)
	if buf[0] != 1 || buf[2] != 3 {
		t.Error("single-rank all-reduce changed data")
	}
	if err := c.Broadcast(buf, 0); err != nil {
		t.Error(err)
	}
	c.Barrier()
}

func TestEmptyBufferAllReduce(t *testing.T) {
	runGroup(t, 3, func(c *Comm) {
		c.AllReduceSum(nil) // must not hang or panic
		c.Barrier()
	})
}

func TestAllReduceSequenceOfOperations(t *testing.T) {
	// Repeated collectives on the same group must stay consistent (the
	// training loop does one per step).
	const n, ln, steps = 4, 33, 20
	var mu sync.Mutex
	finals := make(map[int]float32)
	runGroup(t, n, func(c *Comm) {
		buf := make([]float32, ln)
		for i := range buf {
			buf[i] = 1
		}
		for s := 0; s < steps; s++ {
			c.AllReduceMean(buf) // mean of equal values: unchanged
		}
		mu.Lock()
		finals[c.Rank()] = buf[ln-1]
		mu.Unlock()
	})
	for r, v := range finals {
		if math.Abs(float64(v-1)) > 1e-4 {
			t.Errorf("rank %d drifted to %v after %d collectives", r, v, steps)
		}
	}
}

func TestAllReducePropertyMatchesSerialSum(t *testing.T) {
	f := func(seed int64, rawN, rawLn uint8) bool {
		n := int(rawN)%6 + 1
		ln := int(rawLn)%64 + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float32, n)
		want := make([]float32, ln)
		for r := range inputs {
			inputs[r] = make([]float32, ln)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Intn(100))
				want[i] += inputs[r][i]
			}
		}
		g, err := NewGroup(n)
		if err != nil {
			return false
		}
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for r := 0; r < n; r++ {
			c, _ := g.Comm(r)
			buf := append([]float32(nil), inputs[r]...)
			wg.Add(1)
			go func(c *Comm, buf []float32) {
				defer wg.Done()
				c.AllReduceSum(buf)
				for i := range buf {
					if buf[i] != want[i] {
						mu.Lock()
						ok = false
						mu.Unlock()
						return
					}
				}
			}(c, buf)
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
