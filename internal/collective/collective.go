// Package collective implements the communication substrate ONES's elastic
// scaling mechanism relies on (the paper uses NCCL): ring all-reduce,
// broadcast and barrier among a group of workers. Workers here are
// goroutines connected by channels; the algorithms are the real ones —
// ring reduce-scatter + all-gather for all-reduce, ring rotation for
// broadcast — so the live runtime's "reconnect to the new topology and
// broadcast parameters" workflow (Figure 12) exercises genuine collective
// code paths rather than stubs.
package collective

import (
	"fmt"
)

// message is one hop on the ring.
type message struct {
	chunk []float32
}

// Group is a communicator over n ranks arranged in a ring. Build one with
// NewGroup; rank i sends to (i+1) mod n. A Group is immutable: elastic
// scaling creates a fresh Group for the new topology, exactly as the
// paper's workers "quit from the previous topology" and "connect to the
// new topology together".
type Group struct {
	size  int
	rings []chan message // rings[i]: channel from rank i to rank (i+1)%n
}

// NewGroup returns a communicator group for n ranks.
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collective: group size %d", n)
	}
	g := &Group{size: n, rings: make([]chan message, n)}
	for i := range g.rings {
		g.rings[i] = make(chan message, 1)
	}
	return g, nil
}

// Size returns the number of ranks.
func (g *Group) Size() int { return g.size }

// Comm binds a rank to the group; each worker goroutine holds its own.
func (g *Group) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= g.size {
		return nil, fmt.Errorf("collective: rank %d outside group of %d", rank, g.size)
	}
	return &Comm{g: g, rank: rank}, nil
}

// Comm is one rank's endpoint. All ranks of a group must call the same
// collective operations in the same order (standard SPMD contract); the
// implementation deadlocks otherwise, like a real collective library.
type Comm struct {
	g    *Comm0
	rank int
}

// Comm0 aliases Group internally (kept separate so the public surface
// stays small).
type Comm0 = Group

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.g.size }

// sendRight pushes a chunk to the clockwise neighbour.
func (c *Comm) sendRight(chunk []float32) { c.g.rings[c.rank] <- message{chunk: chunk} }

// recvLeft pops the chunk arriving from the counter-clockwise neighbour.
func (c *Comm) recvLeft() []float32 {
	left := (c.rank - 1 + c.g.size) % c.g.size
	return (<-c.g.rings[left]).chunk
}

// chunkBounds splits length ln into Size() contiguous chunks; chunk i is
// [lo, hi). Chunks differ in size by at most one element.
func (c *Comm) chunkBounds(ln, i int) (lo, hi int) {
	n := c.g.size
	base := ln / n
	rem := ln % n
	lo = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AllReduceSum sums buf element-wise across all ranks; on return every
// rank's buf holds the total. Single-rank groups return immediately.
//
// The algorithm is the bandwidth-optimal ring all-reduce: n−1 steps of
// reduce-scatter followed by n−1 steps of all-gather, moving 2(n−1)/n of
// the buffer per rank — the same traffic pattern the throughput model in
// perfmodel charges for.
func (c *Comm) AllReduceSum(buf []float32) {
	n := c.g.size
	if n == 1 || len(buf) == 0 {
		return
	}
	// Reduce-scatter: after step s, rank r owns the partial sum of chunk
	// (r − s + n) % n. Start by sending own chunk index = rank.
	for s := 0; s < n-1; s++ {
		sendIdx := (c.rank - s + n) % n
		lo, hi := c.chunkBounds(len(buf), sendIdx)
		out := make([]float32, hi-lo)
		copy(out, buf[lo:hi])
		c.sendRight(out)
		recvIdx := (c.rank - s - 1 + n) % n
		lo, hi = c.chunkBounds(len(buf), recvIdx)
		in := c.recvLeft()
		for i := lo; i < hi; i++ {
			buf[i] += in[i-lo]
		}
	}
	// All-gather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := (c.rank + 1 - s + n) % n
		lo, hi := c.chunkBounds(len(buf), sendIdx)
		out := make([]float32, hi-lo)
		copy(out, buf[lo:hi])
		c.sendRight(out)
		recvIdx := (c.rank - s + n) % n
		lo, hi = c.chunkBounds(len(buf), recvIdx)
		in := c.recvLeft()
		copy(buf[lo:hi], in)
	}
}

// AllReduceMean averages buf element-wise across all ranks (gradient
// averaging in data-parallel SGD).
func (c *Comm) AllReduceMean(buf []float32) {
	c.AllReduceSum(buf)
	inv := float32(1) / float32(c.g.size)
	for i := range buf {
		buf[i] *= inv
	}
}

// Broadcast copies root's buf to every rank (parameter distribution when
// new workers join, Figure 12's final step). Implemented as a ring
// rotation: each rank forwards once, so the root's data reaches everyone
// in n−1 hops.
func (c *Comm) Broadcast(buf []float32, root int) error {
	n := c.g.size
	if root < 0 || root >= n {
		return fmt.Errorf("collective: broadcast root %d outside group of %d", root, n)
	}
	if n == 1 {
		return nil
	}
	// distance from root along the ring
	dist := (c.rank - root + n) % n
	if dist == 0 {
		out := make([]float32, len(buf))
		copy(out, buf)
		c.sendRight(out)
		// Absorb the copy that comes all the way around.
		<-c.g.rings[(c.rank-1+n)%n]
		return nil
	}
	in := c.recvLeft()
	copy(buf, in)
	c.sendRight(in) // forward (the last hop is absorbed by the root)
	return nil
}

// Barrier blocks until every rank has entered it, by all-reducing a
// single scalar.
func (c *Comm) Barrier() {
	one := []float32{1}
	c.AllReduceSum(one)
}
