package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWilcoxonDetectsClearShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		base := 100 + rng.Float64()*400
		x[i] = base * 0.7 // x clearly smaller
		y[i] = base
	}
	two, err := Wilcoxon(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if two.P > 1e-4 {
		t.Errorf("two-sided p = %v, want tiny for a 30%% shift", two.P)
	}
	less, err := Wilcoxon(x, y, Less)
	if err != nil {
		t.Fatal(err)
	}
	if less.P > 1e-4 {
		t.Errorf("one-sided (less) p = %v, want tiny", less.P)
	}
	greater, err := Wilcoxon(x, y, Greater)
	if err != nil {
		t.Fatal(err)
	}
	if greater.P < 0.99 {
		t.Errorf("one-sided (greater) p = %v, want ~1", greater.P)
	}
}

func TestWilcoxonNullIsInsignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reject := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := Wilcoxon(x, y, TwoSided)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			reject++
		}
	}
	// Expect about 5% false rejections; 20% across 40 trials is already
	// suspicious.
	if reject > 8 {
		t.Errorf("null rejected %d/%d times at α=0.05", reject, trials)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := Wilcoxon([]float64{1, 2}, []float64{1}, TwoSided); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Wilcoxon([]float64{1, 2, 3}, []float64{1, 2, 3}, TwoSided); err == nil {
		t.Error("all-zero differences accepted")
	}
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 3, 4, 5, 6, 7}
	if _, err := Wilcoxon(x, y, Alternative(9)); err == nil {
		t.Error("bad alternative accepted")
	}
}

func TestWilcoxonDropsZeroDifferences(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 10, 10, 10}
	y := []float64{2, 3, 4, 5, 6, 7, 8, 10, 10, 10}
	res, err := Wilcoxon(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 7 {
		t.Errorf("effective n = %d, want 7 (zeros dropped)", res.N)
	}
}

func TestWilcoxonHandlesTies(t *testing.T) {
	// All absolute differences equal: heavily tied but not degenerate in
	// sign.
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	y := []float64{2, 0, 2, 0, 2, 0, 2, 0}
	res, err := Wilcoxon(x, y, TwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.TieCount != 8 {
		t.Errorf("tie count = %d, want 8", res.TieCount)
	}
	if res.P < 0.9 {
		t.Errorf("balanced signs should be insignificant, p = %v", res.P)
	}
}

func TestWilcoxonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		a, errA := Wilcoxon(x, y, Less)
		b, errB := Wilcoxon(y, x, Greater)
		if errA != nil || errB != nil {
			return true // degenerate draw
		}
		return math.Abs(a.P-b.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoxKnownValues(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 || b.Mean != 3 || b.N != 5 {
		t.Errorf("Box = %+v", b)
	}
	if got := Box(nil); got.N != 0 {
		t.Errorf("Box(nil) = %+v", got)
	}
}

func TestBoxDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Box(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Box mutated its input: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if got := Quantile(s, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(s, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(s, 0.5); got != 25 {
		t.Errorf("median = %v, want 25", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64() * 1000
		}
		// Quantile expects sorted input.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(s, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	data := []float64{1, 2, 2, 3}
	at := []float64{0.5, 1, 2, 3, 10}
	got := ECDF(data, at)
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("ECDF at %v = %v, want %v", at[i], got[i], want[i])
		}
	}
}

func TestFractionBelow(t *testing.T) {
	data := []float64{100, 150, 200, 300}
	if got := FractionBelow(data, 200); got != 0.75 {
		t.Errorf("FractionBelow = %v, want 0.75", got)
	}
	if got := FractionBelow(nil, 5); got != 0 {
		t.Errorf("empty FractionBelow = %v", got)
	}
}

func TestLogSpace(t *testing.T) {
	pts := LogSpace(10, 1000, 3)
	want := []float64{10, 100, 1000}
	if len(pts) != 3 {
		t.Fatalf("LogSpace len = %d", len(pts))
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if LogSpace(0, 10, 3) != nil {
		t.Error("LogSpace with lo=0 should be nil")
	}
	if LogSpace(10, 5, 3) != nil {
		t.Error("LogSpace with hi<lo should be nil")
	}
}
