// Package stats provides the statistical machinery of the paper's
// evaluation: the Wilcoxon signed-rank test used in Table 4 to establish
// that ONES's per-job completion times are significantly smaller than each
// baseline's, plus the box-plot summaries and empirical distribution
// curves behind Figure 15's panels.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
)

// Alternative selects the Wilcoxon test's alternative hypothesis.
type Alternative int

// Alternatives. The paper reports the two-sided test (are the schedulers
// equivalent?) and the one-sided "negative" test (is ONES's JCT smaller?).
const (
	TwoSided Alternative = iota
	Less                 // H1: x tends to be smaller than y
	Greater              // H1: x tends to be greater than y
)

// WilcoxonResult carries the test statistic and p-value.
type WilcoxonResult struct {
	W        float64 // signed-rank statistic (sum of positive-difference ranks)
	Z        float64 // normal approximation score
	P        float64 // p-value under the selected alternative
	N        int     // effective sample size (non-zero differences)
	TieCount int     // number of tied absolute differences
}

// Wilcoxon runs the paired signed-rank test on x vs y using the normal
// approximation with tie correction and continuity correction. Pairs with
// zero difference are dropped (Wilcoxon's original treatment).
func Wilcoxon(x, y []float64, alt Alternative) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(x), len(y))
	}
	type diff struct {
		abs  float64
		sign float64
	}
	var diffs []diff
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1.0
		}
		diffs = append(diffs, diff{abs: math.Abs(d), sign: s})
	}
	n := len(diffs)
	if n < 5 {
		return WilcoxonResult{}, fmt.Errorf("stats: too few non-zero differences (%d) for the normal approximation", n)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })

	// Average ranks over ties; accumulate the tie correction term Σ(t³−t).
	ranks := make([]float64, n)
	var tieTerm float64
	ties := 0
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		if t := j - i; t > 1 {
			ties += t
			ft := float64(t)
			tieTerm += ft*ft*ft - ft
		}
		i = j
	}

	var wPlus float64
	for i, d := range diffs {
		if d.sign > 0 {
			wPlus += ranks[i]
		}
	}
	fn := float64(n)
	mean := fn * (fn + 1) / 4
	variance := fn*(fn+1)*(2*fn+1)/24 - tieTerm/48
	if variance <= 0 {
		return WilcoxonResult{}, fmt.Errorf("stats: degenerate variance (all differences tied)")
	}
	sd := math.Sqrt(variance)

	// Continuity-corrected z.
	var z float64
	switch {
	case wPlus > mean:
		z = (wPlus - mean - 0.5) / sd
	case wPlus < mean:
		z = (wPlus - mean + 0.5) / sd
	}

	var p float64
	switch alt {
	case TwoSided:
		p = 2 * (1 - mathx.NormCDF(math.Abs(z)))
		if p > 1 {
			p = 1
		}
	case Less:
		// H1: x < y ⟺ positive ranks are scarce ⟺ small W+.
		p = mathx.NormCDF(z)
	case Greater:
		p = 1 - mathx.NormCDF(z)
	default:
		return WilcoxonResult{}, fmt.Errorf("stats: unknown alternative %d", alt)
	}
	return WilcoxonResult{W: wPlus, Z: z, P: p, N: n, TieCount: ties}, nil
}

// BoxStats is the five-number summary plus mean, as drawn in the paper's
// box plots (Figures 15d–f).
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes the summary of xs. It returns the zero value for an empty
// slice.
func Box(xs []float64) BoxStats {
	n := len(xs)
	if n == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return BoxStats{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[n-1],
		Mean:   mathx.Mean(s),
		N:      n,
	}
}

// Quantile returns the q-quantile of the ascending-sorted slice s using
// linear interpolation between order statistics.
func Quantile(s []float64, q float64) float64 {
	n := len(s)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return s[0]
	}
	q = mathx.Clamp(q, 0, 1)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF evaluates the empirical CDF of data at the given points: the
// fraction of observations ≤ x (the paper's cumulative-frequency curves,
// Figures 15g–i).
func ECDF(data, at []float64) []float64 {
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	out := make([]float64, len(at))
	for i, x := range at {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// FractionBelow returns the share of observations strictly at or below x.
func FractionBelow(data []float64, x float64) float64 {
	if len(data) == 0 {
		return 0
	}
	var n int
	for _, v := range data {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(data))
}

// LogSpace returns n points spaced logarithmically between lo and hi
// (inclusive), for the log-x axes of the CF plots.
func LogSpace(lo, hi float64, n int) []float64 {
	if n <= 0 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}
