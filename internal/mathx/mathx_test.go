package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLgammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, 0.5 * math.Log(math.Pi)},
	}
	for _, c := range cases {
		if got := Lgamma(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Lgamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const eulerMascheroni = 0.5772156649015329
	cases := []struct{ x, want float64 }{
		{1, -eulerMascheroni},
		{2, 1 - eulerMascheroni},
		{3, 1.5 - eulerMascheroni},
		{0.5, -eulerMascheroni - 2*math.Log(2)},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrenceProperty(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x for any positive x.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		x = math.Mod(x, 50) + 0.1
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return almostEqual(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrigammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, math.Pi * math.Pi / 6},
		{2, math.Pi*math.Pi/6 - 1},
		{0.5, math.Pi * math.Pi / 2},
	}
	for _, c := range cases {
		if got := Trigamma(c.x); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("Trigamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTrigammaRecurrenceProperty(t *testing.T) {
	// ψ′(x+1) = ψ′(x) − 1/x².
	f := func(raw float64) bool {
		x := math.Abs(raw)
		x = math.Mod(x, 40) + 0.2
		return almostEqual(Trigamma(x+1), Trigamma(x)-1/(x*x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBetaSymmetry(t *testing.T) {
	f := func(ra, rb float64) bool {
		a := math.Mod(math.Abs(ra), 20) + 0.1
		b := math.Mod(math.Abs(rb), 20) + 0.1
		return almostEqual(LogBeta(a, b), LogBeta(b, a), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetaLogPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integral of exp(logpdf) over (0,1) should be ~1.
	for _, ab := range [][2]float64{{2, 3}, {5, 1.5}, {1.2, 8}, {3, 3}} {
		a, b := ab[0], ab[1]
		const n = 20000
		var sum float64
		for i := 1; i < n; i++ {
			x := float64(i) / n
			sum += math.Exp(BetaLogPDF(x, a, b))
		}
		sum /= n
		if !almostEqual(sum, 1, 1e-3) {
			t.Errorf("Beta(%v,%v) pdf integrates to %v, want 1", a, b, sum)
		}
	}
}

func TestBetaLogPDFOutOfSupport(t *testing.T) {
	for _, x := range []float64{-0.5, 0, 1, 1.5} {
		if got := BetaLogPDF(x, 2, 2); !math.IsInf(got, -1) {
			t.Errorf("BetaLogPDF(%v, 2, 2) = %v, want -Inf", x, got)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(0, 2, 3); got != 0 {
		t.Errorf("RegIncBeta(0,...) = %v, want 0", got)
	}
	if got := RegIncBeta(1, 2, 3); got != 1 {
		t.Errorf("RegIncBeta(1,...) = %v, want 1", got)
	}
}

func TestRegIncBetaUniformCase(t *testing.T) {
	// Beta(1,1) is the uniform distribution: CDF(x) = x.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(x, 1, 1); !almostEqual(got, x, 1e-10) {
			t.Errorf("RegIncBeta(%v,1,1) = %v, want %v", x, got, x)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 − I_{1−x}(b,a).
	f := func(rx, ra, rb float64) bool {
		x := math.Mod(math.Abs(rx), 1)
		if x == 0 {
			x = 0.5
		}
		a := math.Mod(math.Abs(ra), 10) + 0.2
		b := math.Mod(math.Abs(rb), 10) + 0.2
		return almostEqual(RegIncBeta(x, a, b), 1-RegIncBeta(1-x, b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		v := RegIncBeta(x, 2.5, 4.0)
		if v < prev-1e-12 {
			t.Fatalf("RegIncBeta not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestBetaQuantileRoundTrip(t *testing.T) {
	for _, ab := range [][2]float64{{2, 5}, {7, 3}, {1.5, 1.5}} {
		for _, p := range []float64{0.05, 0.5, 0.95} {
			q := BetaQuantile(p, ab[0], ab[1])
			back := RegIncBeta(q, ab[0], ab[1])
			if !almostEqual(back, p, 1e-6) {
				t.Errorf("quantile round trip Beta(%v,%v) p=%v: got %v", ab[0], ab[1], p, back)
			}
		}
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormCDF(c.z); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestSampleGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		const n = 60000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := SampleGamma(rng, shape)
			if v < 0 {
				t.Fatalf("negative gamma sample %v for shape %v", v, shape)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if !almostEqual(mean, shape, 0.08*shape+0.02) {
			t.Errorf("Gamma(%v) sample mean %v, want ~%v", shape, mean, shape)
		}
		if !almostEqual(variance, shape, 0.15*shape+0.05) {
			t.Errorf("Gamma(%v) sample variance %v, want ~%v", shape, variance, shape)
		}
	}
}

func TestSampleBetaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ab := range [][2]float64{{2, 3}, {8, 2}, {1, 1}} {
		a, b := ab[0], ab[1]
		const n = 60000
		var sum float64
		for i := 0; i < n; i++ {
			v := SampleBeta(rng, a, b)
			if v < 0 || v > 1 {
				t.Fatalf("beta sample %v out of [0,1]", v)
			}
			sum += v
		}
		mean := sum / n
		if !almostEqual(mean, BetaMean(a, b), 0.01) {
			t.Errorf("Beta(%v,%v) sample mean %v, want ~%v", a, b, mean, BetaMean(a, b))
		}
	}
}

func TestSampleBetaDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := SampleBeta(rng, 0, 0)
		if v < 0 || v > 1 {
			t.Fatalf("degenerate beta sample %v out of range", v)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := ClampInt(9, 1, 4); got != 4 {
		t.Errorf("ClampInt high = %v", got)
	}
	if got := ClampInt(0, 1, 4); got != 1 {
		t.Errorf("ClampInt low = %v", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic dataset is 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/short-slice guards failed")
	}
}

func TestVariancePropertyShiftInvariant(t *testing.T) {
	f := func(a, b, c float64, shift float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(shift) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		c = math.Mod(c, 1e6)
		shift = math.Mod(shift, 1e6)
		xs := []float64{a, b, c}
		ys := []float64{a + shift, b + shift, c + shift}
		return almostEqual(Variance(xs), Variance(ys), 1e-4*(1+math.Abs(Variance(xs))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
