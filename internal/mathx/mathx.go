// Package mathx provides the special functions and random-variate
// generators needed by the ONES predictor and statistics modules:
// log-gamma, digamma, trigamma, the regularized incomplete beta function,
// the standard normal CDF, and Beta/Gamma samplers.
//
// Everything is implemented from scratch on top of math so the module has
// no dependencies outside the standard library.
package mathx

import (
	"math"
	"math/rand"
)

// Lgamma returns the natural logarithm of the absolute value of the Gamma
// function at x. It is a thin wrapper over math.Lgamma that discards the
// sign, which is always +1 for the positive arguments used in this module.
func Lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Digamma returns the digamma function ψ(x) = d/dx ln Γ(x) for x > 0.
//
// The implementation uses the standard recurrence ψ(x) = ψ(x+1) − 1/x to
// shift the argument above 6 and then applies the asymptotic expansion
// ψ(x) ≈ ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶).
func Digamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	var result float64
	for x < 10 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12.0-inv2*(1.0/120.0-inv2*(1.0/252.0-inv2/240.0)))
	return result
}

// Trigamma returns ψ′(x), the derivative of the digamma function, for x > 0.
// Used by Newton steps when fitting Beta distributions.
func Trigamma(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	var result float64
	for x < 6 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic expansion: 1/x + 1/(2x²) + 1/(6x³) − 1/(30x⁵) + 1/(42x⁷).
	result += inv * (1 + inv*(0.5+inv*(1.0/6.0-inv2*(1.0/30.0-inv2/42.0))))
	return result
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
func LogBeta(a, b float64) float64 {
	return Lgamma(a) + Lgamma(b) - Lgamma(a+b)
}

// BetaLogPDF returns the log-density of the Beta(a, b) distribution at x.
// It returns -Inf outside the open interval (0, 1).
func BetaLogPDF(x, a, b float64) float64 {
	if x <= 0 || x >= 1 {
		return math.Inf(-1)
	}
	return (a-1)*math.Log(x) + (b-1)*math.Log(1-x) - LogBeta(a, b)
}

// BetaMean returns the mean a/(a+b) of a Beta(a, b) distribution.
func BetaMean(a, b float64) float64 { return a / (a + b) }

// BetaVariance returns the variance of a Beta(a, b) distribution.
func BetaVariance(a, b float64) float64 {
	s := a + b
	return a * b / (s * s * (s + 1))
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// which is the CDF of the Beta(a, b) distribution at x. It uses the
// continued-fraction expansion from Numerical Recipes (betacf).
func RegIncBeta(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(x, a, b) / a
	}
	return 1 - front*betaCF(1-x, b, a)/b
}

// betaCF evaluates the continued fraction for RegIncBeta using the
// modified Lentz algorithm.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaQuantile returns the p-quantile of a Beta(a, b) distribution via
// bisection on RegIncBeta. p must be in [0, 1].
func BetaQuantile(p, a, b float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(mid, a, b) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// NormCDF returns the CDF of the standard normal distribution at z.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SampleGamma draws a Gamma(shape, 1) variate using the Marsaglia–Tsang
// method for shape >= 1 and the boost trick for shape < 1.
func SampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return SampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SampleBeta draws a Beta(a, b) variate as Ga/(Ga+Gb) with independent
// Gamma variates. Degenerate parameters are clamped to a tiny positive
// value so the sampler never divides by zero.
func SampleBeta(rng *rand.Rand, a, b float64) float64 {
	const tiny = 1e-9
	if a < tiny {
		a = tiny
	}
	if b < tiny {
		b = tiny
	}
	ga := SampleGamma(rng, a)
	gb := SampleGamma(rng, b)
	if ga+gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer
// than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
