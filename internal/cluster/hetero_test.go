package cluster

import (
	"testing"
)

func TestParseShape(t *testing.T) {
	topo, err := ParseShape("4x8,2x4")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumServers() != 6 || topo.TotalGPUs() != 40 {
		t.Fatalf("4x8,2x4 = %d servers / %d GPUs, want 6/40", topo.NumServers(), topo.TotalGPUs())
	}
	for i := 0; i < 4; i++ {
		if topo.Servers[i] != (ServerSpec{GPUs: 8, Rack: 0}) {
			t.Errorf("server %d = %+v, want 8 GPUs rack 0", i, topo.Servers[i])
		}
	}
	for i := 4; i < 6; i++ {
		if topo.Servers[i] != (ServerSpec{GPUs: 4, Rack: 1}) {
			t.Errorf("server %d = %+v, want 4 GPUs rack 1", i, topo.Servers[i])
		}
	}
	if got := topo.Shape(); got != "4x8,2x4" {
		t.Errorf("Shape roundtrip = %q", got)
	}
	if got := topo.MaxServerGPUs(); got != 8 {
		t.Errorf("MaxServerGPUs = %d, want 8", got)
	}
	if _, ok := topo.Homogeneous(); ok {
		t.Error("mixed shape reported homogeneous")
	}
}

func TestParseShapeHomogeneousMatchesUniform(t *testing.T) {
	topo, err := ParseShape("16x4")
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Equal(Longhorn()) {
		t.Errorf("ParseShape(16x4) = %v, want the Longhorn testbed", topo)
	}
	if per, ok := topo.Homogeneous(); !ok || per != 4 {
		t.Errorf("Homogeneous = (%d, %v), want (4, true)", per, ok)
	}
}

func TestParseShapeErrors(t *testing.T) {
	for _, bad := range []string{"", "x", "4x", "x8", "0x4", "4x0", "-1x4", "4x8,", "4x8,,2x4", "axb", "4x8junk", "4x8x2"} {
		if _, err := ParseShape(bad); err == nil {
			t.Errorf("ParseShape(%q) succeeded, want error", bad)
		}
	}
}

func TestShapeOrderIsSignificant(t *testing.T) {
	a, _ := ParseShape("4x8,2x4")
	b, _ := ParseShape("2x4,4x8")
	if a.Equal(b) {
		t.Error("4x8,2x4 and 2x4,4x8 reported Equal — group order fixes the GPU axis")
	}
}

func TestServerOfRagged(t *testing.T) {
	topo, _ := ParseShape("2x2,1x4") // GPU axis: [0 1][2 3][4 5 6 7]
	wants := []struct {
		g   GPUID
		srv int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}}
	for _, w := range wants {
		if got := topo.ServerOf(w.g); got != w.srv {
			t.Errorf("ServerOf(%d) = %d, want %d", w.g, got, w.srv)
		}
	}
	if lo, hi := topo.ServerRange(2); lo != 4 || hi != 8 {
		t.Errorf("ServerRange(2) = [%d,%d), want [4,8)", lo, hi)
	}
}

func TestRackHelpers(t *testing.T) {
	topo, _ := ParseShape("4x8,2x4")
	racks := topo.Racks()
	if len(racks) != 2 || racks[0] != 0 || racks[1] != 1 {
		t.Fatalf("Racks = %v, want [0 1]", racks)
	}
	if got := topo.RackServers(1); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("RackServers(1) = %v, want [4 5]", got)
	}
	if got := topo.RackServers(9); got != nil {
		t.Errorf("RackServers(absent) = %v, want nil", got)
	}
	sum := topo.RackSummary()
	if len(sum) != 2 || sum[0] != (RackCapacity{Rack: 0, Servers: 4, GPUs: 32}) ||
		sum[1] != (RackCapacity{Rack: 1, Servers: 2, GPUs: 8}) {
		t.Errorf("RackSummary = %+v", sum)
	}
	if got := topo.NextRack(); got != 2 {
		t.Errorf("NextRack = %d, want 2", got)
	}
}

func TestMinServersFor(t *testing.T) {
	homo := Uniform(4, 4)
	for c, want := range map[int]int{0: 1, 1: 1, 4: 1, 5: 2, 8: 2, 16: 4, 99: 4} {
		if got := homo.MinServersFor(c); got != want {
			t.Errorf("homogeneous MinServersFor(%d) = %d, want %d", c, got, want)
		}
	}
	mixed, _ := ParseShape("4x8,2x4")
	// Largest-first packing: 8, 16, ... so 9 GPUs need two 8-boxes.
	for c, want := range map[int]int{1: 1, 8: 1, 9: 2, 32: 4, 33: 5, 36: 5, 37: 6, 40: 6} {
		if got := mixed.MinServersFor(c); got != want {
			t.Errorf("mixed MinServersFor(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestRemoveLastServerOfRack(t *testing.T) {
	topo, _ := ParseShape("2x4,1x8") // rack 1 has exactly one server (index 2)
	s := NewSchedule(topo)
	s.SetSlot(8, 7, 16) // job 7 on the rack-1 server
	victims := s.RemoveServer(2)
	if len(victims) != 1 || victims[0] != 7 {
		t.Fatalf("victims = %v, want [7]", victims)
	}
	got := s.Topology()
	if racks := got.Racks(); len(racks) != 1 || racks[0] != 0 {
		t.Errorf("racks after removing rack 1's last server = %v, want [0]", racks)
	}
	if got.NumServers() != 2 || got.TotalGPUs() != 8 {
		t.Errorf("topology = %v", got)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// The rack id stays free for a restock: re-adding the exact spec
	// brings rack 1 back.
	s.AddServerSpecs(ServerSpec{GPUs: 8, Rack: 1})
	if racks := s.Topology().Racks(); len(racks) != 2 || racks[1] != 1 {
		t.Errorf("racks after restock = %v, want [0 1]", racks)
	}
}

func TestAddServerSpecsDoesNotAliasSharedTopology(t *testing.T) {
	topo, _ := ParseShape("2x4,2x4")
	a := NewSchedule(topo)
	b := a.Clone() // shares the topology value (and its slice header)
	a.RemoveServer(3)
	a.AddServerSpecs(ServerSpec{GPUs: 2, Rack: 5})
	if !b.Topology().Equal(topo) {
		t.Errorf("mutating one schedule changed another's topology: %v", b.Topology())
	}
	if b.NumGPUs() != 16 {
		t.Errorf("clone slot count changed: %d", b.NumGPUs())
	}
}

func TestRaggedScheduleStringAndServersOf(t *testing.T) {
	topo, _ := ParseShape("1x2,1x3")
	s := NewSchedule(topo)
	s.SetSlot(0, 1, 8)
	s.SetSlot(2, 1, 8)
	s.SetSlot(3, 2, 4)
	if got, want := s.String(), "[1:8 -] [1:8 2:4 -]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := s.ServersOf(1); got != 2 {
		t.Errorf("ServersOf(1) = %d, want 2", got)
	}
	if got := s.ServersOf(2); got != 1 {
		t.Errorf("ServersOf(2) = %d, want 1", got)
	}
}
