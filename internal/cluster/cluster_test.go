package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologyBasics(t *testing.T) {
	topo := Longhorn()
	if got := topo.TotalGPUs(); got != 64 {
		t.Fatalf("Longhorn TotalGPUs = %d, want 64", got)
	}
	if got := topo.ServerOf(0); got != 0 {
		t.Errorf("ServerOf(0) = %d", got)
	}
	if got := topo.ServerOf(4); got != 1 {
		t.Errorf("ServerOf(4) = %d, want 1", got)
	}
	if got := topo.ServerOf(63); got != 15 {
		t.Errorf("ServerOf(63) = %d, want 15", got)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Uniform(0, 4)).Validate(); err == nil {
		t.Error("expected error for zero servers")
	}
}

func TestNewScheduleAllIdle(t *testing.T) {
	s := NewSchedule(Uniform(2, 2))
	if s.NumIdle() != 4 {
		t.Fatalf("NumIdle = %d, want 4", s.NumIdle())
	}
	if len(s.RunningJobs()) != 0 {
		t.Error("fresh schedule should have no running jobs")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSetSlotAndDerivedQuantities(t *testing.T) {
	s := NewSchedule(Uniform(2, 4))
	s.SetSlot(0, 1, 128)
	s.SetSlot(1, 1, 128)
	s.SetSlot(2, 2, 64)
	s.SetSlot(5, 1, 256)

	if got := s.GlobalBatch(1); got != 512 {
		t.Errorf("GlobalBatch(1) = %d, want 512", got)
	}
	if got := s.GPUCount(1); got != 3 {
		t.Errorf("GPUCount(1) = %d, want 3", got)
	}
	if got := s.GPUCount(2); got != 1 {
		t.Errorf("GPUCount(2) = %d, want 1", got)
	}
	if got := s.GlobalBatch(99); got != 0 {
		t.Errorf("GlobalBatch(unknown) = %d, want 0", got)
	}
	if got := s.NumIdle(); got != 4 {
		t.Errorf("NumIdle = %d, want 4", got)
	}
	if !s.IsRunning(1) || s.IsRunning(99) {
		t.Error("IsRunning wrong")
	}
	gpus := s.GPUsOf(1)
	if len(gpus) != 3 || gpus[0] != 0 || gpus[1] != 1 || gpus[2] != 5 {
		t.Errorf("GPUsOf(1) = %v", gpus)
	}
}

func TestSetSlotClearsOnNoJobOrZeroBatch(t *testing.T) {
	s := NewSchedule(Uniform(1, 2))
	s.SetSlot(0, 3, 32)
	s.SetSlot(0, NoJob, 10)
	if !s.Slot(0).Idle() {
		t.Error("SetSlot(NoJob) should clear")
	}
	s.SetSlot(1, 3, 0)
	if !s.Slot(1).Idle() {
		t.Error("SetSlot batch=0 should clear")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRunningJobsOrderOfFirstAppearance(t *testing.T) {
	s := NewSchedule(Uniform(1, 6))
	s.SetSlot(0, 7, 1)
	s.SetSlot(1, 3, 1)
	s.SetSlot(2, 7, 1)
	s.SetSlot(4, 5, 1)
	jobs := s.RunningJobs()
	want := []JobID{7, 3, 5}
	if len(jobs) != len(want) {
		t.Fatalf("RunningJobs = %v, want %v", jobs, want)
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Fatalf("RunningJobs = %v, want %v", jobs, want)
		}
	}
}

func TestEvict(t *testing.T) {
	s := NewSchedule(Uniform(1, 4))
	s.SetSlot(0, 1, 8)
	s.SetSlot(1, 1, 8)
	s.SetSlot(2, 2, 8)
	if n := s.Evict(1); n != 2 {
		t.Errorf("Evict freed %d, want 2", n)
	}
	if s.IsRunning(1) {
		t.Error("job 1 still running after eviction")
	}
	if !s.IsRunning(2) {
		t.Error("job 2 disappeared")
	}
	if n := s.Evict(42); n != 0 {
		t.Errorf("Evict(absent) freed %d, want 0", n)
	}
}

func TestAddServersAppendsIdleCapacity(t *testing.T) {
	s := NewSchedule(Uniform(2, 4))
	s.SetSlot(0, 1, 8)
	s.AddServers(2)
	got := s.Topology()
	if got.NumServers() != 4 || got.TotalGPUs() != 16 {
		t.Fatalf("topology after AddServers(2) = %+v", got)
	}
	// Joined servers match the first server's GPU count and open a fresh
	// rack — new capacity is a new failure domain.
	for _, idx := range []int{2, 3} {
		if got.Servers[idx] != (ServerSpec{GPUs: 4, Rack: 1}) {
			t.Errorf("joined server %d = %+v, want 4 GPUs in rack 1", idx, got.Servers[idx])
		}
	}
	if s.NumGPUs() != 16 || s.NumIdle() != 15 {
		t.Errorf("GPUs %d idle %d, want 16/15", s.NumGPUs(), s.NumIdle())
	}
	if s.Slot(0).Job != 1 {
		t.Error("existing assignment lost on scale-up")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	s.AddServers(0)
	s.AddServers(-3)
	if s.Topology().NumServers() != 4 {
		t.Error("non-positive AddServers changed the topology")
	}
}

func TestRemoveServerEvictsOnlyItsJobsAndShifts(t *testing.T) {
	s := NewSchedule(Uniform(3, 2))
	s.SetSlot(0, 1, 8) // job 1 entirely on server 0
	s.SetSlot(1, 1, 8)
	s.SetSlot(2, 2, 4) // job 2 spans servers 1 and 2
	s.SetSlot(4, 2, 4)
	s.SetSlot(5, 3, 16) // job 3 on server 2 only

	victims := s.RemoveServer(1)
	if len(victims) != 1 || victims[0] != 2 {
		t.Fatalf("RemoveServer(1) victims = %v, want [2]", victims)
	}
	if got := s.Topology(); !got.Equal(Uniform(2, 2)) {
		t.Fatalf("topology = %+v", got)
	}
	// Job 1 untouched; job 3 shifted down one server but intact; job 2
	// keeps its surviving slot (the caller evicts the remainder).
	if s.GPUCount(1) != 2 || s.GlobalBatch(1) != 16 {
		t.Errorf("job 1 disturbed: c=%d B=%d", s.GPUCount(1), s.GlobalBatch(1))
	}
	if s.GPUCount(3) != 1 || s.ServersOf(3) != 1 {
		t.Errorf("job 3 lost slots: c=%d", s.GPUCount(3))
	}
	if s.GPUCount(2) != 1 {
		t.Errorf("job 2 surviving slots = %d, want 1", s.GPUCount(2))
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRemoveServerBounds(t *testing.T) {
	s := NewSchedule(Uniform(2, 2))
	if v := s.RemoveServer(-1); v != nil {
		t.Errorf("RemoveServer(-1) = %v", v)
	}
	if v := s.RemoveServer(2); v != nil {
		t.Errorf("RemoveServer(out of range) = %v", v)
	}
	s.RemoveServer(0)
	if v := s.RemoveServer(0); v != nil || s.Topology().NumServers() != 1 {
		t.Error("the last server must never be removable")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSchedule(Uniform(1, 2))
	s.SetSlot(0, 1, 8)
	c := s.Clone()
	c.SetSlot(0, 2, 16)
	if s.Slot(0).Job != 1 {
		t.Error("Clone shares slot storage with original")
	}
	if !s.Clone().Equal(s) {
		t.Error("Clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := NewSchedule(Uniform(1, 2))
	b := NewSchedule(Uniform(1, 2))
	if !a.Equal(b) {
		t.Error("two empty schedules should be equal")
	}
	b.SetSlot(0, 1, 4)
	if a.Equal(b) {
		t.Error("different schedules reported equal")
	}
	c := NewSchedule(Uniform(2, 1))
	if a.Equal(c) {
		t.Error("different topologies reported equal")
	}
}

func TestFragmentsAndServers(t *testing.T) {
	s := NewSchedule(Uniform(2, 4))
	// Job 1 on GPUs 0,1 (one fragment, one server).
	s.SetSlot(0, 1, 1)
	s.SetSlot(1, 1, 1)
	// Job 2 on GPUs 3 and 5 (two fragments, two servers).
	s.SetSlot(3, 2, 1)
	s.SetSlot(5, 2, 1)
	if got := s.Fragments(1); got != 1 {
		t.Errorf("Fragments(1) = %d, want 1", got)
	}
	if got := s.Fragments(2); got != 2 {
		t.Errorf("Fragments(2) = %d, want 2", got)
	}
	if got := s.ServersOf(1); got != 1 {
		t.Errorf("ServersOf(1) = %d, want 1", got)
	}
	if got := s.ServersOf(2); got != 2 {
		t.Errorf("ServersOf(2) = %d, want 2", got)
	}
}

func TestReorderPacksByFirstOccurrence(t *testing.T) {
	// Mirrors Figure 10: [3 1 2 2 2 1] reorders to [3 1 1 2 2 2].
	s := NewSchedule(Uniform(1, 6))
	vals := []struct {
		j JobID
		b int
	}{{3, 4}, {1, 8}, {2, 2}, {2, 2}, {2, 2}, {1, 8}}
	for i, v := range vals {
		s.SetSlot(GPUID(i), v.j, v.b)
	}
	s.Reorder()
	wantJobs := []JobID{3, 1, 1, 2, 2, 2}
	for i, w := range wantJobs {
		if got := s.Slot(GPUID(i)).Job; got != w {
			t.Fatalf("after Reorder slot %d = job %d, want %d (%v)", i, got, w, s)
		}
	}
	for _, j := range []JobID{1, 2, 3} {
		if got := s.Fragments(j); got != 1 {
			t.Errorf("after Reorder Fragments(%d) = %d, want 1", j, got)
		}
	}
}

// randomSchedule builds a valid random schedule for property tests.
func randomSchedule(rng *rand.Rand) *Schedule {
	topo := Uniform(1+rng.Intn(4), 1+rng.Intn(6))
	s := NewSchedule(topo)
	for g := 0; g < s.NumGPUs(); g++ {
		if rng.Float64() < 0.3 {
			continue // leave idle
		}
		s.SetSlot(GPUID(g), JobID(rng.Intn(5)), 1<<uint(rng.Intn(8)))
	}
	return s
}

func TestReorderPreservesPerJobTotalsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		before := make(map[JobID][2]int)
		for _, j := range s.RunningJobs() {
			before[j] = [2]int{s.GlobalBatch(j), s.GPUCount(j)}
		}
		idleBefore := s.NumIdle()
		s.Reorder()
		if s.Validate() != nil || s.NumIdle() != idleBefore {
			return false
		}
		for j, w := range before {
			if s.GlobalBatch(j) != w[0] || s.GPUCount(j) != w[1] {
				return false
			}
		}
		// Every running job must be contiguous after reorder.
		for _, j := range s.RunningJobs() {
			if s.Fragments(j) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGlobalBatchEqualsSumOfSlotsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng)
		// Sum of per-job global batches equals sum over all slots.
		var total int
		for _, j := range s.RunningJobs() {
			total += s.GlobalBatch(j)
		}
		var slotSum int
		for g := 0; g < s.NumGPUs(); g++ {
			slotSum += s.Slot(GPUID(g)).Batch
		}
		// And GPU counts partition the non-idle slots.
		var cSum int
		for _, j := range s.RunningJobs() {
			cSum += s.GPUCount(j)
		}
		return total == slotSum && cSum == s.NumGPUs()-s.NumIdle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewSchedule(Uniform(2, 2))
	s.SetSlot(0, 1, 32)
	got := s.String()
	want := "[1:32 -] [- -]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAllocations(t *testing.T) {
	s := NewSchedule(Uniform(2, 2))
	s.SetSlot(0, 5, 16)
	s.SetSlot(1, 5, 16)
	s.SetSlot(2, 9, 64)
	as := s.Allocations()
	if len(as) != 2 {
		t.Fatalf("Allocations len = %d, want 2", len(as))
	}
	if as[0].Job != 5 || as[0].GPUs != 2 || as[0].GlobalBatch != 32 || as[0].Servers != 1 {
		t.Errorf("Allocations[0] = %+v", as[0])
	}
	if as[1].Job != 9 || as[1].GPUs != 1 || as[1].GlobalBatch != 64 {
		t.Errorf("Allocations[1] = %+v", as[1])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := NewSchedule(Uniform(1, 2))
	s.slots[0] = Slot{Job: 1, Batch: 0} // corrupt directly
	if err := s.Validate(); err == nil {
		t.Error("Validate missed assigned slot with zero batch")
	}
	s2 := NewSchedule(Uniform(1, 2))
	s2.slots[1] = Slot{Job: NoJob, Batch: 5}
	if err := s2.Validate(); err == nil {
		t.Error("Validate missed idle slot with nonzero batch")
	}
}
