// Package cluster models the shared GPU cluster and the schedule genome at
// the heart of ONES.
//
// Following the paper's Equation (1), a schedule is a mapping
//
//	S : J × C → {b_j^i}
//
// that assigns every GPU i a job j and a per-GPU (local) batch size b_j^i.
// Equation (2) derives the global batch size B_j = Σ_i b_j^i and the GPU
// count c_j = Σ_i min(1, b_j^i), and Equation (4) enforces that at most one
// job runs per GPU (no GPU sharing due to interference).
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// JobID identifies a job. NoJob marks an idle GPU.
type JobID int

// NoJob is the JobID of an unassigned GPU slot.
const NoJob JobID = -1

// GPUID indexes a GPU within a cluster topology, in [0, TotalGPUs).
// GPUs are numbered server by server in topology order.
type GPUID int

// ServerSpec describes one physical server: how many GPUs it carries and
// which rack (failure domain) it lives in. A rack drain removes every
// server sharing a Rack id at once.
type ServerSpec struct {
	GPUs int `json:"gpus"`
	Rack int `json:"rack"`
}

// Topology describes the physical shape of the cluster as an ordered
// list of servers, each with its own GPU count and rack. The GPU axis a
// Schedule is defined over is the concatenation of the servers' GPUs in
// this order — a ragged axis when the fleet is mixed.
//
// Topology values are immutable by convention: constructors and the
// Schedule mutators always build fresh Servers slices, so copying a
// Topology (it travels by value through configs and views) never aliases
// a slice that later changes. Compare with Equal, not ==.
type Topology struct {
	Servers []ServerSpec
}

// Uniform returns the homogeneous topology of the paper's model —
// servers identical multi-GPU machines of gpusPerServer GPUs, all in
// rack 0 (one failure domain, as on a single-rack testbed).
func Uniform(servers, gpusPerServer int) Topology {
	specs := make([]ServerSpec, servers)
	for i := range specs {
		specs[i] = ServerSpec{GPUs: gpusPerServer}
	}
	return Topology{Servers: specs}
}

// Longhorn returns the paper's evaluation topology: 16 servers × 4 GPUs.
func Longhorn() Topology { return Uniform(16, 4) }

// ParseShape parses a cluster shape like "4x8,2x4": comma-separated
// COUNTxGPUS groups, where group i's servers all land in rack i. A
// single group ("16x4") therefore describes a homogeneous single-rack
// cluster identical to Uniform(16, 4). Group order is significant — it
// fixes the GPU axis and the rack ids — so "4x8,2x4" and "2x4,4x8" are
// distinct topologies.
func ParseShape(shape string) (Topology, error) {
	var specs []ServerSpec
	for rack, group := range strings.Split(shape, ",") {
		var count, gpus int
		g := strings.TrimSpace(group)
		if n, err := fmt.Sscanf(g, "%dx%d", &count, &gpus); n != 2 || err != nil ||
			g != fmt.Sprintf("%dx%d", count, gpus) {
			return Topology{}, fmt.Errorf("cluster: bad shape group %q in %q (want COUNTxGPUS, e.g. 4x8)", group, shape)
		}
		if count <= 0 || gpus <= 0 {
			return Topology{}, fmt.Errorf("cluster: bad shape group %q in %q: counts must be positive", group, shape)
		}
		for i := 0; i < count; i++ {
			specs = append(specs, ServerSpec{GPUs: gpus, Rack: rack})
		}
	}
	if len(specs) == 0 {
		return Topology{}, fmt.Errorf("cluster: empty shape %q", shape)
	}
	return Topology{Servers: specs}, nil
}

// Shape renders the topology in ParseShape syntax, one COUNTxGPUS group
// per run of consecutive servers sharing a GPU count and rack
// ("16x4", "4x8,2x4"). ParseShape(t.Shape()) reproduces t up to rack
// renumbering; for ParseShape-built topologies it is the identity.
func (t Topology) Shape() string {
	var b strings.Builder
	for i := 0; i < len(t.Servers); {
		j := i
		for j < len(t.Servers) && t.Servers[j] == t.Servers[i] {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dx%d", j-i, t.Servers[i].GPUs)
		i = j
	}
	return b.String()
}

// String renders the topology as its shape.
func (t Topology) String() string { return t.Shape() }

// NumServers returns the number of servers.
func (t Topology) NumServers() int { return len(t.Servers) }

// TotalGPUs returns the number of GPUs in the cluster.
func (t Topology) TotalGPUs() int {
	var n int
	for _, s := range t.Servers {
		n += s.GPUs
	}
	return n
}

// ServerOf returns the server index hosting GPU g.
func (t Topology) ServerOf(g GPUID) int {
	rem := int(g)
	for i, s := range t.Servers {
		if rem < s.GPUs {
			return i
		}
		rem -= s.GPUs
	}
	return len(t.Servers) - 1
}

// ServerRange returns the half-open GPU index range [lo, hi) of server
// idx.
func (t Topology) ServerRange(idx int) (lo, hi GPUID) {
	var off int
	for i := 0; i < idx; i++ {
		off += t.Servers[i].GPUs
	}
	return GPUID(off), GPUID(off + t.Servers[idx].GPUs)
}

// MaxServerGPUs returns the largest per-server GPU count — the biggest
// single-server span a job can occupy without crossing machines.
func (t Topology) MaxServerGPUs() int {
	var m int
	for _, s := range t.Servers {
		if s.GPUs > m {
			m = s.GPUs
		}
	}
	return m
}

// MinServersFor returns the fewest servers that can hold c GPUs, packing
// the largest servers first. On a homogeneous cluster this is
// ⌈c / gpusPerServer⌉ (computed allocation-free — this sits on scheduler
// hot paths); mixed fleets pack greedily. Returns at least 1.
func (t Topology) MinServersFor(c int) int {
	if per, ok := t.Homogeneous(); ok {
		n := (c + per - 1) / per
		if n < 1 {
			n = 1
		}
		if n > len(t.Servers) {
			n = len(t.Servers)
		}
		return n
	}
	sizes := make([]int, 0, len(t.Servers))
	for _, s := range t.Servers {
		sizes = append(sizes, s.GPUs)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	n := 0
	for _, sz := range sizes {
		if c <= 0 {
			break
		}
		c -= sz
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Homogeneous reports whether every server carries the same GPU count,
// returning that count when so.
func (t Topology) Homogeneous() (gpusPerServer int, ok bool) {
	if len(t.Servers) == 0 {
		return 0, false
	}
	per := t.Servers[0].GPUs
	for _, s := range t.Servers[1:] {
		if s.GPUs != per {
			return 0, false
		}
	}
	return per, true
}

// Equal reports whether two topologies list identical servers (GPU
// counts and racks) in identical order. Topology carries a slice, so ==
// does not compile; Equal is the comparison.
func (t Topology) Equal(o Topology) bool {
	if len(t.Servers) != len(o.Servers) {
		return false
	}
	for i := range t.Servers {
		if t.Servers[i] != o.Servers[i] {
			return false
		}
	}
	return true
}

// Racks returns the distinct rack ids present, ascending.
func (t Topology) Racks() []int {
	seen := make(map[int]bool)
	var racks []int
	for _, s := range t.Servers {
		if !seen[s.Rack] {
			seen[s.Rack] = true
			racks = append(racks, s.Rack)
		}
	}
	sort.Ints(racks)
	return racks
}

// RackServers returns the server indices in rack, ascending.
func (t Topology) RackServers(rack int) []int {
	var idxs []int
	for i, s := range t.Servers {
		if s.Rack == rack {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// RackCapacity summarizes one rack's share of the cluster.
type RackCapacity struct {
	Rack    int `json:"rack"`
	Servers int `json:"servers"`
	GPUs    int `json:"gpus"`
}

// RackSummary returns per-rack capacity, ascending by rack id.
func (t Topology) RackSummary() []RackCapacity {
	out := make([]RackCapacity, 0, 1)
	for _, rack := range t.Racks() {
		rc := RackCapacity{Rack: rack}
		for _, s := range t.Servers {
			if s.Rack == rack {
				rc.Servers++
				rc.GPUs += s.GPUs
			}
		}
		out = append(out, rc)
	}
	return out
}

// NextRack returns the rack id a fresh scale-up batch lands in: one past
// the largest rack id present (0 for an empty topology). New capacity is
// new hardware, physically elsewhere — it must not silently join an
// existing failure domain.
func (t Topology) NextRack() int {
	m := -1
	for _, s := range t.Servers {
		if s.Rack > m {
			m = s.Rack
		}
	}
	return m + 1
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if len(t.Servers) == 0 {
		return fmt.Errorf("cluster: topology has no servers")
	}
	for i, s := range t.Servers {
		if s.GPUs <= 0 {
			return fmt.Errorf("cluster: server %d has %d GPUs", i, s.GPUs)
		}
		if s.Rack < 0 {
			return fmt.Errorf("cluster: server %d has negative rack %d", i, s.Rack)
		}
	}
	return nil
}

// Slot is one gene of the schedule genome: the job occupying a GPU and the
// local batch size it runs there. An idle GPU has Job == NoJob and Batch 0.
type Slot struct {
	Job   JobID
	Batch int
}

// Idle reports whether the slot is unassigned.
func (s Slot) Idle() bool { return s.Job == NoJob }

// Schedule is the genome: one Slot per GPU. The zero value is unusable;
// construct with NewSchedule.
type Schedule struct {
	topo  Topology
	slots []Slot
}

// NewSchedule returns an empty (all idle) schedule over topo.
func NewSchedule(topo Topology) *Schedule {
	s := &Schedule{topo: topo, slots: make([]Slot, topo.TotalGPUs())}
	for i := range s.slots {
		s.slots[i] = Slot{Job: NoJob}
	}
	return s
}

// Topology returns the cluster topology the schedule is defined over.
func (s *Schedule) Topology() Topology { return s.topo }

// NumGPUs returns the number of GPUs (genes) in the schedule.
func (s *Schedule) NumGPUs() int { return len(s.slots) }

// Slot returns the gene for GPU g.
func (s *Schedule) Slot(g GPUID) Slot { return s.slots[g] }

// Slots returns the genome's backing slice, one Slot per GPU in axis
// order. Callers must treat it as read-only and must not retain it across
// mutations; it exists so hot paths (the evolution scorer) can make one
// pass over the genome without per-GPU method calls or copies.
func (s *Schedule) Slots() []Slot { return s.slots }

// SetSlot assigns GPU g to job j with local batch b. Passing NoJob (or a
// non-positive batch) clears the slot.
func (s *Schedule) SetSlot(g GPUID, j JobID, b int) {
	if j == NoJob || b <= 0 {
		s.slots[g] = Slot{Job: NoJob}
		return
	}
	s.slots[g] = Slot{Job: j, Batch: b}
}

// Clear marks GPU g idle.
func (s *Schedule) Clear(g GPUID) { s.slots[g] = Slot{Job: NoJob} }

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{topo: s.topo, slots: make([]Slot, len(s.slots))}
	copy(c.slots, s.slots)
	return c
}

// CopyFrom overwrites s with o's topology and slots, reusing s's slot
// storage when it is large enough. The allocation-free counterpart of
// Clone for hot paths that maintain a long-lived schedule buffer.
func (s *Schedule) CopyFrom(o *Schedule) {
	s.topo = o.topo
	if cap(s.slots) < len(o.slots) {
		s.slots = make([]Slot, len(o.slots))
	}
	s.slots = s.slots[:len(o.slots)]
	copy(s.slots, o.slots)
}

// Equal reports whether two schedules assign identical slots over the same
// topology.
func (s *Schedule) Equal(o *Schedule) bool {
	if !s.topo.Equal(o.topo) || len(s.slots) != len(o.slots) {
		return false
	}
	for i := range s.slots {
		if s.slots[i] != o.slots[i] {
			return false
		}
	}
	return true
}

// GlobalBatch returns B_j = Σ_i b_j^i (Equation 2).
func (s *Schedule) GlobalBatch(j JobID) int {
	var b int
	for _, sl := range s.slots {
		if sl.Job == j {
			b += sl.Batch
		}
	}
	return b
}

// GPUCount returns c_j = Σ_i min(1, b_j^i) (Equation 2).
func (s *Schedule) GPUCount(j JobID) int {
	var c int
	for _, sl := range s.slots {
		if sl.Job == j {
			c++
		}
	}
	return c
}

// GPUsOf returns the GPUs currently assigned to job j, in index order.
func (s *Schedule) GPUsOf(j JobID) []GPUID {
	var gs []GPUID
	for i, sl := range s.slots {
		if sl.Job == j {
			gs = append(gs, GPUID(i))
		}
	}
	return gs
}

// RunningJobs returns the set of jobs with at least one GPU, in order of
// first appearance on the GPU axis.
func (s *Schedule) RunningJobs() []JobID {
	seen := make(map[JobID]bool)
	var jobs []JobID
	for _, sl := range s.slots {
		if sl.Idle() || seen[sl.Job] {
			continue
		}
		seen[sl.Job] = true
		jobs = append(jobs, sl.Job)
	}
	return jobs
}

// IsRunning reports whether job j holds at least one GPU.
func (s *Schedule) IsRunning(j JobID) bool {
	for _, sl := range s.slots {
		if sl.Job == j {
			return true
		}
	}
	return false
}

// IdleGPUs returns the unassigned GPUs in index order.
func (s *Schedule) IdleGPUs() []GPUID {
	var gs []GPUID
	for i, sl := range s.slots {
		if sl.Idle() {
			gs = append(gs, GPUID(i))
		}
	}
	return gs
}

// NumIdle returns the number of unassigned GPUs.
func (s *Schedule) NumIdle() int {
	var n int
	for _, sl := range s.slots {
		if sl.Idle() {
			n++
		}
	}
	return n
}

// AddServers grows the topology by n idle servers appended at the tail —
// elastic scale-up, a repaired node rejoining, spot capacity restocked.
// The new servers match the first server's GPU count and open a fresh
// rack (they are new capacity, physically elsewhere). Existing
// assignments are untouched. For explicit shapes use AddServerSpecs.
func (s *Schedule) AddServers(n int) {
	if n <= 0 {
		return
	}
	spec := ServerSpec{GPUs: s.topo.Servers[0].GPUs, Rack: s.topo.NextRack()}
	specs := make([]ServerSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	s.AddServerSpecs(specs...)
}

// AddServerSpecs appends idle servers with the given shapes and racks at
// the tail of the GPU axis — mixed-fleet scale-up, or a drained rack's
// exact servers restocked. Existing assignments are untouched.
func (s *Schedule) AddServerSpecs(specs ...ServerSpec) {
	if len(specs) == 0 {
		return
	}
	// Rebuild rather than append in place: Topology values are shared
	// across Schedule copies, so the backing array must never mutate.
	next := make([]ServerSpec, 0, len(s.topo.Servers)+len(specs))
	next = append(next, s.topo.Servers...)
	next = append(next, specs...)
	s.topo = Topology{Servers: next}
	for _, sp := range specs {
		for i := 0; i < sp.GPUs; i++ {
			s.slots = append(s.slots, Slot{Job: NoJob})
		}
	}
}

// RemoveServer deletes server idx from the topology — a failure, spot
// preemption or maintenance drain. Its slots vanish (later servers shift
// down one index) and the jobs that held at least one GPU on it are
// returned in slot order; the caller decides their fate (typically a full
// eviction, since losing any worker stops a gang). Jobs entirely on other
// servers keep their GPU counts, batch totals and server spans.
func (s *Schedule) RemoveServer(idx int) []JobID {
	if idx < 0 || idx >= len(s.topo.Servers) || len(s.topo.Servers) <= 1 {
		return nil
	}
	lo, hi := s.topo.ServerRange(idx)
	seen := make(map[JobID]bool)
	var victims []JobID
	for _, sl := range s.slots[lo:hi] {
		if !sl.Idle() && !seen[sl.Job] {
			seen[sl.Job] = true
			victims = append(victims, sl.Job)
		}
	}
	s.slots = append(s.slots[:lo], s.slots[hi:]...)
	next := make([]ServerSpec, 0, len(s.topo.Servers)-1)
	next = append(next, s.topo.Servers[:idx]...)
	next = append(next, s.topo.Servers[idx+1:]...)
	s.topo = Topology{Servers: next}
	return victims
}

// Evict removes job j from every GPU it occupies and returns the number of
// slots freed.
func (s *Schedule) Evict(j JobID) int {
	var n int
	for i, sl := range s.slots {
		if sl.Job == j {
			s.slots[i] = Slot{Job: NoJob}
			n++
		}
	}
	return n
}

// Validate checks genome invariants: every slot either idle with zero batch
// or assigned with a positive batch (Equation 4 exclusivity is structural:
// a slot holds exactly one job).
func (s *Schedule) Validate() error {
	if err := s.topo.Validate(); err != nil {
		return err
	}
	if len(s.slots) != s.topo.TotalGPUs() {
		return fmt.Errorf("cluster: %d slots for %d GPUs", len(s.slots), s.topo.TotalGPUs())
	}
	for i, sl := range s.slots {
		if sl.Idle() && sl.Batch != 0 {
			return fmt.Errorf("cluster: idle GPU %d has batch %d", i, sl.Batch)
		}
		if !sl.Idle() && sl.Batch <= 0 {
			return fmt.Errorf("cluster: GPU %d runs job %d with batch %d", i, sl.Job, sl.Batch)
		}
	}
	return nil
}

// Fragments returns the number of contiguous GPU spans occupied by job j.
// A perfectly packed job has one fragment; the paper's reorder operator
// exists to drive this number down (better locality, less cross-server
// communication).
func (s *Schedule) Fragments(j JobID) int {
	var frags int
	inRun := false
	for _, sl := range s.slots {
		if sl.Job == j {
			if !inRun {
				frags++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	return frags
}

// ServersOf returns the number of distinct servers hosting job j. Jobs
// spanning more servers pay higher communication cost in the performance
// model.
func (s *Schedule) ServersOf(j JobID) int {
	n, idx := 0, 0
	for _, spec := range s.topo.Servers {
		for k := 0; k < spec.GPUs; k++ {
			if s.slots[idx+k].Job == j {
				n++
				break
			}
		}
		idx += spec.GPUs
	}
	return n
}

// reorderScratch carries Reorder's working storage between calls. Reorder
// runs once per evolution candidate, so the map and the slot copy used to
// dominate the engine's allocation profile; a pool caps them at one live
// set per concurrent caller.
type reorderScratch struct {
	slots []Slot        // pre-reorder copy of the genome
	next  map[JobID]int // job → next write index during the packing pass
	order []JobID       // jobs in first-occurrence order
}

var reorderPool = sync.Pool{
	New: func() any { return &reorderScratch{next: make(map[JobID]int)} },
}

// Reorder packs the workers of each job contiguously, in order of each
// job's first occurrence, preserving every job's multiset of local batch
// sizes (the paper's reorder operation, Figure 10). Idle slots are pushed
// to the tail.
func (s *Schedule) Reorder() {
	sc := reorderPool.Get().(*reorderScratch)
	defer reorderPool.Put(sc)
	clear(sc.next)
	sc.order = sc.order[:0]
	// Pass 1: count each job's slots in first-occurrence order.
	for _, sl := range s.slots {
		if sl.Idle() {
			continue
		}
		if _, ok := sc.next[sl.Job]; !ok {
			sc.order = append(sc.order, sl.Job)
		}
		sc.next[sl.Job]++
	}
	// Turn counts into write cursors: each job packs into one contiguous
	// span starting where the previous job's span ends.
	idx := 0
	for _, j := range sc.order {
		n := sc.next[j]
		sc.next[j] = idx
		idx += n
	}
	// Pass 2: replay the old genome, placing each slot at its job's cursor
	// so every job keeps its batch multiset in slot order.
	sc.slots = append(sc.slots[:0], s.slots...)
	for _, sl := range sc.slots {
		if sl.Idle() {
			continue
		}
		p := sc.next[sl.Job]
		s.slots[p] = sl
		sc.next[sl.Job] = p + 1
	}
	for ; idx < len(s.slots); idx++ {
		s.slots[idx] = Slot{Job: NoJob}
	}
}

// String renders the genome like Figure 1: one bracketed group per server,
// each GPU shown as "job:batch" or "-" when idle.
func (s *Schedule) String() string {
	var b strings.Builder
	idx := 0
	for srv, spec := range s.topo.Servers {
		if srv > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for k := 0; k < spec.GPUs; k++ {
			if k > 0 {
				b.WriteByte(' ')
			}
			sl := s.slots[idx+k]
			if sl.Idle() {
				b.WriteByte('-')
			} else {
				fmt.Fprintf(&b, "%d:%d", sl.Job, sl.Batch)
			}
		}
		b.WriteByte(']')
		idx += spec.GPUs
	}
	return b.String()
}

// Allocation summarizes one job's share of a schedule.
type Allocation struct {
	Job         JobID
	GPUs        int // c_j
	GlobalBatch int // B_j
	Servers     int
	Fragments   int
}

// Allocations returns per-job summaries for all running jobs in first-
// occurrence order.
func (s *Schedule) Allocations() []Allocation {
	jobs := s.RunningJobs()
	as := make([]Allocation, 0, len(jobs))
	for _, j := range jobs {
		as = append(as, Allocation{
			Job:         j,
			GPUs:        s.GPUCount(j),
			GlobalBatch: s.GlobalBatch(j),
			Servers:     s.ServersOf(j),
			Fragments:   s.Fragments(j),
		})
	}
	return as
}
