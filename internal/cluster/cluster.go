// Package cluster models the shared GPU cluster and the schedule genome at
// the heart of ONES.
//
// Following the paper's Equation (1), a schedule is a mapping
//
//	S : J × C → {b_j^i}
//
// that assigns every GPU i a job j and a per-GPU (local) batch size b_j^i.
// Equation (2) derives the global batch size B_j = Σ_i b_j^i and the GPU
// count c_j = Σ_i min(1, b_j^i), and Equation (4) enforces that at most one
// job runs per GPU (no GPU sharing due to interference).
package cluster

import (
	"fmt"
	"strings"
)

// JobID identifies a job. NoJob marks an idle GPU.
type JobID int

// NoJob is the JobID of an unassigned GPU slot.
const NoJob JobID = -1

// GPUID indexes a GPU within a cluster topology, in [0, TotalGPUs).
type GPUID int

// Topology describes the physical shape of the cluster: a number of
// identical multi-GPU servers. The paper's testbed is 16 servers with
// 4 V100 GPUs each (64 GPUs total).
type Topology struct {
	Servers       int // number of GPU servers
	GPUsPerServer int // GPUs on each server
}

// Longhorn returns the paper's evaluation topology: 16 servers × 4 GPUs.
func Longhorn() Topology { return Topology{Servers: 16, GPUsPerServer: 4} }

// TotalGPUs returns the number of GPUs in the cluster.
func (t Topology) TotalGPUs() int { return t.Servers * t.GPUsPerServer }

// ServerOf returns the server index hosting GPU g.
func (t Topology) ServerOf(g GPUID) int { return int(g) / t.GPUsPerServer }

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.Servers <= 0 || t.GPUsPerServer <= 0 {
		return fmt.Errorf("cluster: invalid topology %+v", t)
	}
	return nil
}

// Slot is one gene of the schedule genome: the job occupying a GPU and the
// local batch size it runs there. An idle GPU has Job == NoJob and Batch 0.
type Slot struct {
	Job   JobID
	Batch int
}

// Idle reports whether the slot is unassigned.
func (s Slot) Idle() bool { return s.Job == NoJob }

// Schedule is the genome: one Slot per GPU. The zero value is unusable;
// construct with NewSchedule.
type Schedule struct {
	topo  Topology
	slots []Slot
}

// NewSchedule returns an empty (all idle) schedule over topo.
func NewSchedule(topo Topology) *Schedule {
	s := &Schedule{topo: topo, slots: make([]Slot, topo.TotalGPUs())}
	for i := range s.slots {
		s.slots[i] = Slot{Job: NoJob}
	}
	return s
}

// Topology returns the cluster topology the schedule is defined over.
func (s *Schedule) Topology() Topology { return s.topo }

// NumGPUs returns the number of GPUs (genes) in the schedule.
func (s *Schedule) NumGPUs() int { return len(s.slots) }

// Slot returns the gene for GPU g.
func (s *Schedule) Slot(g GPUID) Slot { return s.slots[g] }

// SetSlot assigns GPU g to job j with local batch b. Passing NoJob (or a
// non-positive batch) clears the slot.
func (s *Schedule) SetSlot(g GPUID, j JobID, b int) {
	if j == NoJob || b <= 0 {
		s.slots[g] = Slot{Job: NoJob}
		return
	}
	s.slots[g] = Slot{Job: j, Batch: b}
}

// Clear marks GPU g idle.
func (s *Schedule) Clear(g GPUID) { s.slots[g] = Slot{Job: NoJob} }

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{topo: s.topo, slots: make([]Slot, len(s.slots))}
	copy(c.slots, s.slots)
	return c
}

// CopyFrom overwrites s with o's topology and slots, reusing s's slot
// storage when it is large enough. The allocation-free counterpart of
// Clone for hot paths that maintain a long-lived schedule buffer.
func (s *Schedule) CopyFrom(o *Schedule) {
	s.topo = o.topo
	if cap(s.slots) < len(o.slots) {
		s.slots = make([]Slot, len(o.slots))
	}
	s.slots = s.slots[:len(o.slots)]
	copy(s.slots, o.slots)
}

// Equal reports whether two schedules assign identical slots over the same
// topology.
func (s *Schedule) Equal(o *Schedule) bool {
	if s.topo != o.topo || len(s.slots) != len(o.slots) {
		return false
	}
	for i := range s.slots {
		if s.slots[i] != o.slots[i] {
			return false
		}
	}
	return true
}

// GlobalBatch returns B_j = Σ_i b_j^i (Equation 2).
func (s *Schedule) GlobalBatch(j JobID) int {
	var b int
	for _, sl := range s.slots {
		if sl.Job == j {
			b += sl.Batch
		}
	}
	return b
}

// GPUCount returns c_j = Σ_i min(1, b_j^i) (Equation 2).
func (s *Schedule) GPUCount(j JobID) int {
	var c int
	for _, sl := range s.slots {
		if sl.Job == j {
			c++
		}
	}
	return c
}

// GPUsOf returns the GPUs currently assigned to job j, in index order.
func (s *Schedule) GPUsOf(j JobID) []GPUID {
	var gs []GPUID
	for i, sl := range s.slots {
		if sl.Job == j {
			gs = append(gs, GPUID(i))
		}
	}
	return gs
}

// RunningJobs returns the set of jobs with at least one GPU, in order of
// first appearance on the GPU axis.
func (s *Schedule) RunningJobs() []JobID {
	seen := make(map[JobID]bool)
	var jobs []JobID
	for _, sl := range s.slots {
		if sl.Idle() || seen[sl.Job] {
			continue
		}
		seen[sl.Job] = true
		jobs = append(jobs, sl.Job)
	}
	return jobs
}

// IsRunning reports whether job j holds at least one GPU.
func (s *Schedule) IsRunning(j JobID) bool {
	for _, sl := range s.slots {
		if sl.Job == j {
			return true
		}
	}
	return false
}

// IdleGPUs returns the unassigned GPUs in index order.
func (s *Schedule) IdleGPUs() []GPUID {
	var gs []GPUID
	for i, sl := range s.slots {
		if sl.Idle() {
			gs = append(gs, GPUID(i))
		}
	}
	return gs
}

// NumIdle returns the number of unassigned GPUs.
func (s *Schedule) NumIdle() int {
	var n int
	for _, sl := range s.slots {
		if sl.Idle() {
			n++
		}
	}
	return n
}

// AddServers grows the topology by n idle servers appended at the tail —
// elastic scale-up, a repaired node rejoining, spot capacity restocked.
// Existing assignments are untouched.
func (s *Schedule) AddServers(n int) {
	if n <= 0 {
		return
	}
	s.topo.Servers += n
	for i := 0; i < n*s.topo.GPUsPerServer; i++ {
		s.slots = append(s.slots, Slot{Job: NoJob})
	}
}

// RemoveServer deletes server idx from the topology — a failure, spot
// preemption or maintenance drain. Its slots vanish (later servers shift
// down one index) and the jobs that held at least one GPU on it are
// returned in slot order; the caller decides their fate (typically a full
// eviction, since losing any worker stops a gang). Jobs entirely on other
// servers keep their GPU counts, batch totals and server spans.
func (s *Schedule) RemoveServer(idx int) []JobID {
	if idx < 0 || idx >= s.topo.Servers || s.topo.Servers <= 1 {
		return nil
	}
	gps := s.topo.GPUsPerServer
	lo, hi := idx*gps, (idx+1)*gps
	seen := make(map[JobID]bool)
	var victims []JobID
	for _, sl := range s.slots[lo:hi] {
		if !sl.Idle() && !seen[sl.Job] {
			seen[sl.Job] = true
			victims = append(victims, sl.Job)
		}
	}
	s.slots = append(s.slots[:lo], s.slots[hi:]...)
	s.topo.Servers--
	return victims
}

// Evict removes job j from every GPU it occupies and returns the number of
// slots freed.
func (s *Schedule) Evict(j JobID) int {
	var n int
	for i, sl := range s.slots {
		if sl.Job == j {
			s.slots[i] = Slot{Job: NoJob}
			n++
		}
	}
	return n
}

// Validate checks genome invariants: every slot either idle with zero batch
// or assigned with a positive batch (Equation 4 exclusivity is structural:
// a slot holds exactly one job).
func (s *Schedule) Validate() error {
	if err := s.topo.Validate(); err != nil {
		return err
	}
	if len(s.slots) != s.topo.TotalGPUs() {
		return fmt.Errorf("cluster: %d slots for %d GPUs", len(s.slots), s.topo.TotalGPUs())
	}
	for i, sl := range s.slots {
		if sl.Idle() && sl.Batch != 0 {
			return fmt.Errorf("cluster: idle GPU %d has batch %d", i, sl.Batch)
		}
		if !sl.Idle() && sl.Batch <= 0 {
			return fmt.Errorf("cluster: GPU %d runs job %d with batch %d", i, sl.Job, sl.Batch)
		}
	}
	return nil
}

// Fragments returns the number of contiguous GPU spans occupied by job j.
// A perfectly packed job has one fragment; the paper's reorder operator
// exists to drive this number down (better locality, less cross-server
// communication).
func (s *Schedule) Fragments(j JobID) int {
	var frags int
	inRun := false
	for _, sl := range s.slots {
		if sl.Job == j {
			if !inRun {
				frags++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	return frags
}

// ServersOf returns the number of distinct servers hosting job j. Jobs
// spanning more servers pay higher communication cost in the performance
// model.
func (s *Schedule) ServersOf(j JobID) int {
	seen := make(map[int]bool)
	for i, sl := range s.slots {
		if sl.Job == j {
			seen[s.topo.ServerOf(GPUID(i))] = true
		}
	}
	return len(seen)
}

// Reorder packs the workers of each job contiguously, in order of each
// job's first occurrence, preserving every job's multiset of local batch
// sizes (the paper's reorder operation, Figure 10). Idle slots are pushed
// to the tail.
func (s *Schedule) Reorder() {
	order := s.RunningJobs()
	batches := make(map[JobID][]int, len(order))
	for _, sl := range s.slots {
		if !sl.Idle() {
			batches[sl.Job] = append(batches[sl.Job], sl.Batch)
		}
	}
	idx := 0
	for _, j := range order {
		for _, b := range batches[j] {
			s.slots[idx] = Slot{Job: j, Batch: b}
			idx++
		}
	}
	for ; idx < len(s.slots); idx++ {
		s.slots[idx] = Slot{Job: NoJob}
	}
}

// String renders the genome like Figure 1: one bracketed group per server,
// each GPU shown as "job:batch" or "-" when idle.
func (s *Schedule) String() string {
	var b strings.Builder
	for srv := 0; srv < s.topo.Servers; srv++ {
		if srv > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for k := 0; k < s.topo.GPUsPerServer; k++ {
			if k > 0 {
				b.WriteByte(' ')
			}
			sl := s.slots[srv*s.topo.GPUsPerServer+k]
			if sl.Idle() {
				b.WriteByte('-')
			} else {
				fmt.Fprintf(&b, "%d:%d", sl.Job, sl.Batch)
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Allocation summarizes one job's share of a schedule.
type Allocation struct {
	Job         JobID
	GPUs        int // c_j
	GlobalBatch int // B_j
	Servers     int
	Fragments   int
}

// Allocations returns per-job summaries for all running jobs in first-
// occurrence order.
func (s *Schedule) Allocations() []Allocation {
	jobs := s.RunningJobs()
	as := make([]Allocation, 0, len(jobs))
	for _, j := range jobs {
		as = append(as, Allocation{
			Job:         j,
			GPUs:        s.GPUCount(j),
			GlobalBatch: s.GlobalBatch(j),
			Servers:     s.ServersOf(j),
			Fragments:   s.Fragments(j),
		})
	}
	return as
}
