// Package scaling implements the paper's training-performance control
// (§3.3.2) — the dynamic batch-size limit R_j each job must respect — and
// the cost model for executing a rescale, contrasting ONES's elastic
// batch-size scaling with conventional checkpoint-based migration
// (§4.3 / Figure 16).
package scaling

import (
	"math"

	"repro/internal/perfmodel"
)

// MinBatch is the smallest schedulable batch quantum. Limits and
// allocations are kept at multiples of it.
const MinBatch = 32

// Limiter applies the four R_j policies. The zero value is not usable;
// construct with NewLimiter.
type Limiter struct {
	// Sigma is the convoy-effect penalty factor σ. The paper suggests
	// σ = λ (the average job arrival rate) so that jobs running longer
	// than the mean interarrival time get progressively squeezed.
	Sigma float64
}

// NewLimiter returns a limiter with σ set to the workload arrival rate.
func NewLimiter(arrivalRate float64) *Limiter {
	if arrivalRate < 0 {
		arrivalRate = 0
	}
	return &Limiter{Sigma: arrivalRate}
}

// Start returns the initial limit for a newly arrived job: it must fit in
// a single GPU until its warm-up steps complete ("Start" policy).
func (l *Limiter) Start(p perfmodel.Profile) int {
	r := p.RefBatch
	if r > p.MaxPerGPU {
		r = p.MaxPerGPU
	}
	if r < MinBatch {
		r = MinBatch
	}
	return r
}

// ScaleUp doubles the limit after a completed training epoch ("Scale-up"
// policy): gradual growth keeps each step within the abrupt-rescale bound.
// The limit is capped at maxGlobal (the cluster-wide ceiling: MaxPerGPU ×
// total GPUs, possibly tightened by the caller).
func (l *Limiter) ScaleUp(r, maxGlobal int) int {
	r *= 2
	if maxGlobal > 0 && r > maxGlobal {
		r = maxGlobal
	}
	if r < MinBatch {
		r = MinBatch
	}
	return r
}

// Reject halves the limit of a job that requested resumption and was left
// waiting ("Resume" policy): progressively smaller requests reduce queuing
// time and prevent starvation.
func (l *Limiter) Reject(r int) int {
	r /= 2
	if r < MinBatch {
		r = MinBatch
	}
	return r
}

// Update applies the per-epoch limit transition combining the Scale-up and
// Scale-down policies: while the job is short (σ·T ≤ 1) the limit doubles;
// once its executed time makes it a convoy risk, the penalized formula
// takes over and the limit shrinks. maxGlobal caps the result (0 ⇒ no cap).
func (l *Limiter) Update(r int, processedSeconds float64, maxGlobal int) int {
	if l.Sigma*processedSeconds <= 1 {
		return l.ScaleUp(r, maxGlobal)
	}
	nr := l.ScaleDown(r, processedSeconds)
	if maxGlobal > 0 && nr > maxGlobal {
		nr = maxGlobal
	}
	return nr
}

// ScaleDown penalizes a long-running job to prevent the convoy effect
// ("Scale-down" policy):
//
//	R′ = ⌈2R / ⌈σ·T_processed + 1⌉⌉
//
// where T_processed is the job's executed time in seconds. For jobs shorter
// than the mean interarrival interval the factor is 1 and the limit doubles
// (no penalty); beyond it the limit shrinks.
func (l *Limiter) ScaleDown(r int, processedSeconds float64) int {
	denom := math.Ceil(l.Sigma*processedSeconds + 1)
	if denom < 1 {
		denom = 1
	}
	nr := int(math.Ceil(2 * float64(r) / denom))
	if nr < MinBatch {
		nr = MinBatch
	}
	return nr
}

// CostModel prices a reconfiguration. Calibrated against Figure 16:
// elastic scaling costs a fixed coordination overhead plus a parameter
// broadcast, totalling ~0.3–1.2 s; checkpoint-based migration pays process
// restart + data preparation + serialized model I/O, totalling ~10–22 s.
type CostModel struct {
	ElasticBase float64 // pause + topology reconnection (s)
	BroadcastBW float64 // parameter broadcast bandwidth (bytes/s)

	CheckpointBase float64 // stop, restart process, CUDA init, data prep (s)
	SerializeBW    float64 // checkpoint write+read bandwidth (bytes/s)
}

// DefaultCostModel returns the Figure 16 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		ElasticBase:    0.2,
		BroadcastBW:    5e8,
		CheckpointBase: 9.0,
		SerializeBW:    5e7,
	}
}

// Elastic returns the seconds to execute an elastic batch-size rescale of
// a job with the given profile. Shrinking (no new workers) skips the
// parameter broadcast.
func (c CostModel) Elastic(p perfmodel.Profile, oldWorkers, newWorkers int) float64 {
	cost := c.ElasticBase
	if newWorkers > oldWorkers && c.BroadcastBW > 0 {
		cost += p.GradBytes / c.BroadcastBW
	}
	return cost
}

// Checkpoint returns the seconds for checkpoint-based migration of a job
// with the given profile (save, stop, restart, reload).
func (c CostModel) Checkpoint(p perfmodel.Profile) float64 {
	cost := c.CheckpointBase
	if c.SerializeBW > 0 {
		cost += p.GradBytes / c.SerializeBW
	}
	return cost
}
