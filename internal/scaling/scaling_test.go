package scaling

import (
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
)

func TestStartFitsSingleGPU(t *testing.T) {
	l := NewLimiter(1.0 / 30)
	p, err := perfmodel.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	r := l.Start(p)
	if r > p.MaxPerGPU {
		t.Errorf("Start limit %d exceeds MaxPerGPU %d", r, p.MaxPerGPU)
	}
	if r < MinBatch {
		t.Errorf("Start limit %d below MinBatch", r)
	}
	// A model whose reference batch exceeds GPU memory is clamped.
	small := p
	small.MaxPerGPU = 64
	if got := l.Start(small); got != 64 {
		t.Errorf("Start with tight memory = %d, want 64", got)
	}
}

func TestScaleUpDoubles(t *testing.T) {
	l := NewLimiter(0)
	if got := l.ScaleUp(256, 0); got != 512 {
		t.Errorf("ScaleUp(256) = %d, want 512", got)
	}
	if got := l.ScaleUp(256, 300); got != 300 {
		t.Errorf("ScaleUp capped = %d, want 300", got)
	}
	if got := l.ScaleUp(8, 0); got != MinBatch {
		t.Errorf("ScaleUp floor = %d, want %d", got, MinBatch)
	}
}

func TestRejectHalves(t *testing.T) {
	l := NewLimiter(0)
	if got := l.Reject(512); got != 256 {
		t.Errorf("Reject(512) = %d, want 256", got)
	}
	if got := l.Reject(MinBatch); got != MinBatch {
		t.Errorf("Reject at floor = %d, want %d", got, MinBatch)
	}
}

func TestScaleDownShortJobUnpenalized(t *testing.T) {
	// σ = 1/30 (mean interarrival 30 s): a job that has run 10 s has
	// ⌈σT+1⌉ = ⌈1.33⌉ = 2, so R' = R — no effective penalty yet.
	l := NewLimiter(1.0 / 30)
	if got := l.ScaleDown(512, 10); got != 512 {
		t.Errorf("ScaleDown(512, 10s) = %d, want 512", got)
	}
}

func TestScaleDownLongJobPenalized(t *testing.T) {
	l := NewLimiter(1.0 / 30)
	// After 300 s: ⌈10+1⌉ = 11; R' = ⌈1024/11⌉... with 2R: ⌈2048/11⌉ = 187.
	got := l.ScaleDown(1024, 300)
	if got >= 1024 {
		t.Errorf("long job not penalized: %d", got)
	}
	if got < MinBatch {
		t.Errorf("penalty broke the floor: %d", got)
	}
}

func TestScaleDownMonotoneInProcessedTimeProperty(t *testing.T) {
	l := NewLimiter(1.0 / 30)
	f := func(r16 uint16, t1, t2 float64) bool {
		r := int(r16)%4096 + MinBatch
		a, b := t1, t2
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return l.ScaleDown(r, a) >= l.ScaleDown(r, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleDownNeverBelowFloorProperty(t *testing.T) {
	l := NewLimiter(0.5)
	f := func(r16 uint16, secs float64) bool {
		if secs < 0 {
			secs = -secs
		}
		r := int(r16) + 1
		return l.ScaleDown(r, secs) >= MinBatch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewLimiterNegativeRateClamped(t *testing.T) {
	l := NewLimiter(-3)
	if l.Sigma != 0 {
		t.Errorf("Sigma = %v, want 0", l.Sigma)
	}
}

func TestCostModelFigure16Shape(t *testing.T) {
	cm := DefaultCostModel()
	models := []string{"alexnet", "resnet18", "resnet50", "vgg16", "googlenet", "inceptionv3", "lstm"}
	for _, name := range models {
		p, err := perfmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		el := cm.Elastic(p, 2, 4)
		ck := cm.Checkpoint(p)
		if el <= 0 || ck <= 0 {
			t.Fatalf("%s: nonpositive costs %v %v", name, el, ck)
		}
		// The paper's headline: elastic ≈ 1 s, checkpoint ≈ tens of seconds.
		if el > 2.0 {
			t.Errorf("%s elastic cost %v too high (paper: ~0.3–1.2 s)", name, el)
		}
		if ck < 8 || ck > 25 {
			t.Errorf("%s checkpoint cost %v outside paper's 10–22 s band", name, ck)
		}
		if ck < 5*el {
			t.Errorf("%s: checkpoint (%v) should dwarf elastic (%v)", name, ck, el)
		}
	}
}

func TestElasticShrinkSkipsBroadcast(t *testing.T) {
	cm := DefaultCostModel()
	p, _ := perfmodel.ByName("vgg16")
	grow := cm.Elastic(p, 2, 4)
	shrink := cm.Elastic(p, 4, 2)
	if shrink >= grow {
		t.Errorf("shrink (%v) should be cheaper than grow (%v): no parameter broadcast", shrink, grow)
	}
	if shrink != cm.ElasticBase {
		t.Errorf("shrink cost = %v, want base %v", shrink, cm.ElasticBase)
	}
}

func TestCheckpointScalesWithModelSize(t *testing.T) {
	cm := DefaultCostModel()
	vgg, _ := perfmodel.ByName("vgg16")      // 138M params
	gnet, _ := perfmodel.ByName("googlenet") // 6.8M params
	if cm.Checkpoint(vgg) <= cm.Checkpoint(gnet) {
		t.Error("bigger model should checkpoint slower")
	}
}
