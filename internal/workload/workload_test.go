package workload

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/scenario"
)

func TestCatalogHasFiftyTaskTypes(t *testing.T) {
	cat := Catalog()
	if len(cat) != 50 {
		t.Fatalf("catalog has %d task types, Table 2 lists 50", len(cat))
	}
	byClass := map[TaskClass]int{}
	for _, task := range cat {
		byClass[task.Class]++
		if err := task.Profile.Validate(); err != nil {
			t.Errorf("task %s: %v", task.Name, err)
		}
		if task.DatasetSize <= 0 || task.Classes <= 0 {
			t.Errorf("task %s has degenerate sizes: %+v", task.Name, task)
		}
	}
	if byClass[ClassCVImageNet] != 24 {
		t.Errorf("ImageNet tasks = %d, want 24", byClass[ClassCVImageNet])
	}
	if byClass[ClassCVCIFAR] != 15 {
		t.Errorf("CIFAR tasks = %d, want 15", byClass[ClassCVCIFAR])
	}
	if byClass[ClassNLP] != 11 {
		t.Errorf("NLP tasks = %d, want 11", byClass[ClassNLP])
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, task := range Catalog() {
		if seen[task.Name] {
			t.Errorf("duplicate task name %q", task.Name)
		}
		seen[task.Name] = true
	}
	if got := len(TaskNames()); got != 50 {
		t.Errorf("TaskNames returned %d names", got)
	}
}

func TestCIFARProfilesAreFasterPerSample(t *testing.T) {
	var imagenetVGG, cifarVGG float64
	for _, task := range Catalog() {
		if task.Model != "vgg16" {
			continue
		}
		switch task.Class {
		case ClassCVImageNet:
			imagenetVGG = task.Profile.SampleTime
		case ClassCVCIFAR:
			cifarVGG = task.Profile.SampleTime
		}
	}
	if imagenetVGG == 0 || cifarVGG == 0 {
		t.Fatal("missing vgg16 tasks")
	}
	if cifarVGG >= imagenetVGG {
		t.Errorf("CIFAR vgg16 sample time %v should be below ImageNet %v", cifarVGG, imagenetVGG)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("nondeterministic length: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i].Submit != b.Jobs[i].Submit || a.Jobs[i].Task.Name != b.Jobs[i].Task.Name {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Generate(cfg)
	cfg.Seed = 99
	b, _ := Generate(cfg)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Task.Name != b.Jobs[i].Task.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical job sequences")
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Config{NumJobs: 0, MeanInterarrival: 30}); err == nil {
		t.Error("NumJobs=0 accepted")
	}
	if _, err := Generate(Config{NumJobs: 5, MeanInterarrival: 0}); err == nil {
		t.Error("MeanInterarrival=0 accepted")
	}
}

func TestGeneratedTraceIsValid(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != DefaultConfig().NumJobs {
		t.Errorf("trace has %d jobs", len(tr.Jobs))
	}
}

func TestGenerateRespectsMaxReqGPUs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxReqGPUs = 2
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.ReqGPUs > 2 {
			t.Fatalf("job %d requests %d GPUs, cap was 2", j.ID, j.ReqGPUs)
		}
	}
}

func TestGenerateBatchMatchesGPURequest(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.ReqBatch != j.Task.Profile.RefBatch*j.ReqGPUs {
			t.Fatalf("job %d batch %d != RefBatch %d × GPUs %d",
				j.ID, j.ReqBatch, j.Task.Profile.RefBatch, j.ReqGPUs)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, err := Generate(Config{Seed: 7, NumJobs: 10, MeanInterarrival: 20})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) || back.Seed != tr.Seed {
		t.Fatal("round trip lost jobs")
	}
	for i := range tr.Jobs {
		if back.Jobs[i] != tr.Jobs[i] {
			t.Fatalf("job %d changed in round trip:\n%+v\n%+v", i, tr.Jobs[i], back.Jobs[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestSummarize(t *testing.T) {
	tr, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Jobs != len(tr.Jobs) {
		t.Errorf("summary jobs %d", s.Jobs)
	}
	var total int
	for _, n := range s.ByClass {
		total += n
	}
	if total != s.Jobs {
		t.Errorf("class counts sum to %d, want %d", total, s.Jobs)
	}
	if s.MeanGPUReq < 1 || s.MeanGPUReq > 8 {
		t.Errorf("MeanGPUReq %v out of range", s.MeanGPUReq)
	}
	if s.Makespan <= 0 {
		t.Errorf("Makespan %v", s.Makespan)
	}
}

func TestArrivalRate(t *testing.T) {
	c := Config{MeanInterarrival: 20}
	if got := c.ArrivalRate(); got != 0.05 {
		t.Errorf("ArrivalRate = %v, want 0.05", got)
	}
	if got := (Config{}).ArrivalRate(); got != 0 {
		t.Errorf("zero config ArrivalRate = %v", got)
	}
}

func TestGeneratePropertySubmitTimesOrdered(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cfg := Config{Seed: seed, NumJobs: int(n)%40 + 1, MeanInterarrival: 15}
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		prev := 0.0
		for _, j := range tr.Jobs {
			if j.Submit < prev {
				return false
			}
			prev = j.Submit
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenerateSteadyMatchesZeroArrivalSpec(t *testing.T) {
	// The zero Arrival spec must reproduce the historical Poisson trace
	// byte-for-byte: same RNG draw order, same submit times and job mix.
	base, err := Generate(Config{Seed: 5, NumJobs: 40, MeanInterarrival: 12})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Generate(Config{Seed: 5, NumJobs: 40, MeanInterarrival: 12,
		Arrival: scenario.ArrivalSpec{Kind: scenario.ArrivalPoisson}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Jobs, explicit.Jobs) {
		t.Error("explicit poisson spec diverged from the zero-value default")
	}
}

func TestGenerateNonStationaryArrivals(t *testing.T) {
	for _, kind := range []scenario.ArrivalKind{scenario.ArrivalDiurnal, scenario.ArrivalBurst, scenario.ArrivalHeavyTail} {
		cfg := Config{Seed: 5, NumJobs: 60, MeanInterarrival: 12,
			Arrival: scenario.ArrivalSpec{Kind: kind}}
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		again, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Jobs, again.Jobs) {
			t.Errorf("%s: same seed generated different traces", kind)
		}
		steady, _ := Generate(Config{Seed: 5, NumJobs: 60, MeanInterarrival: 12})
		same := true
		for i := range tr.Jobs {
			if tr.Jobs[i].Submit != steady.Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: submit times identical to the steady trace", kind)
		}
	}
}

func TestGenerateRejectsBadArrival(t *testing.T) {
	_, err := Generate(Config{Seed: 1, NumJobs: 5, MeanInterarrival: 12,
		Arrival: scenario.ArrivalSpec{Kind: "bogus"}})
	if err == nil {
		t.Error("unknown arrival kind accepted")
	}
}
