// Package workload builds the paper's evaluation trace (Table 2): 50 task
// types spanning CV models on ImageNet subsets and CIFAR10, and BERT
// fine-tuning on GLUE datasets, submitted with Poisson arrivals.
//
// The paper trains on reduced dataset sizes "so that all jobs can basically
// finish within 2 hours"; the profiles here are tuned the same way — a job
// given reasonable resources completes in minutes, matching the paper's
// average-JCT scale of a few hundred seconds.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/scenario"
)

// TaskClass distinguishes the workload families of Table 2.
type TaskClass string

// Task classes.
const (
	ClassCVImageNet TaskClass = "cv-imagenet"
	ClassCVCIFAR    TaskClass = "cv-cifar10"
	ClassNLP        TaskClass = "nlp"
)

// Task is one row-instance of Table 2: a model bound to a dataset subset.
type Task struct {
	Name        string            `json:"name"`
	Class       TaskClass         `json:"class"`
	Model       string            `json:"model"`
	Dataset     string            `json:"dataset"`
	DatasetSize int               `json:"dataset_size"` // samples per epoch (‖D‖)
	Classes     int               `json:"classes"`
	Profile     perfmodel.Profile `json:"profile"`
}

// Catalog returns the 50 task types of Table 2:
//
//	4 ImageNet models × 6 subset sizes      = 24
//	3 CIFAR10 models × 5 subset sizes       = 15
//	BERT × (4 COLA + 1 MRPC + 6 SST-2)      = 11
func Catalog() []Task {
	var tasks []Task

	adjust := func(model string, class TaskClass, epochs float64) perfmodel.Profile {
		p, err := perfmodel.ByName(model)
		if err != nil {
			panic(err) // catalog names are static; a miss is a programming error
		}
		p.BaseEpochs = epochs
		switch class {
		case ClassCVCIFAR:
			p.SampleTime *= 0.1 // 32×32 images vs 224×224
		case ClassNLP:
			// BERT profile already tuned in perfmodel.
		}
		return p
	}

	// CV on ImageNet subsets: 10k..20k samples, 10..20 classes.
	for _, model := range []string{"alexnet", "resnet50", "vgg16", "inceptionv3"} {
		for k := 0; k < 6; k++ {
			size := 10000 + 2000*k
			classes := 10 + 2*k
			tasks = append(tasks, Task{
				Name:        fmt.Sprintf("%s-imagenet-%dk", model, size/1000),
				Class:       ClassCVImageNet,
				Model:       model,
				Dataset:     "imagenet",
				DatasetSize: size,
				Classes:     classes,
				Profile:     adjust(model, ClassCVImageNet, 8),
			})
		}
	}

	// CV on CIFAR10 subsets: 20k..40k samples.
	for _, model := range []string{"resnet18", "vgg16", "googlenet"} {
		for k := 0; k < 5; k++ {
			size := 20000 + 5000*k
			tasks = append(tasks, Task{
				Name:        fmt.Sprintf("%s-cifar10-%dk", model, size/1000),
				Class:       ClassCVCIFAR,
				Model:       model,
				Dataset:     "cifar10",
				DatasetSize: size,
				Classes:     10,
				Profile:     adjust(model, ClassCVCIFAR, 10),
			})
		}
	}

	// BERT fine-tuning on GLUE.
	addBERT := func(dataset string, size int) {
		tasks = append(tasks, Task{
			Name:        fmt.Sprintf("bert-%s-%.1fk", dataset, float64(size)/1000),
			Class:       ClassNLP,
			Model:       "bert",
			Dataset:     dataset,
			DatasetSize: size,
			Classes:     2,
			Profile:     adjust("bert", ClassNLP, 3),
		})
	}
	for k := 0; k < 4; k++ {
		addBERT("cola", 5000+1000*k)
	}
	addBERT("mrpc", 3600)
	for k := 0; k < 6; k++ {
		addBERT("sst2", 10000+2000*k)
	}

	return tasks
}

// Job is one submission in a trace.
type Job struct {
	ID       int     `json:"id"`
	Submit   float64 `json:"submit"`    // seconds since trace start
	Task     Task    `json:"task"`      //
	ReqGPUs  int     `json:"req_gpus"`  // user-requested workers (fixed-size baselines honor this)
	ReqBatch int     `json:"req_batch"` // user-requested global batch size
}

// Trace is a submission sequence ordered by submit time.
type Trace struct {
	Seed int64 `json:"seed"`
	Jobs []Job `json:"jobs"`
}

// Config controls trace generation.
type Config struct {
	Seed             int64   // RNG seed; same seed ⇒ identical trace
	NumJobs          int     // number of submissions
	MeanInterarrival float64 // mean seconds between arrivals (1/λ0)
	MaxReqGPUs       int     // cap on the user-requested worker count (0 ⇒ 8)
	// Arrival selects the arrival process shaping the submit times. The
	// zero value is the paper's stationary Poisson process at
	// MeanInterarrival; a scenario's spec layers diurnal modulation,
	// bursts or heavy-tail interarrivals on top of the same job mix.
	Arrival scenario.ArrivalSpec
}

// DefaultConfig returns the trace configuration used by the Figure 15
// experiments: arrivals brisk enough that fixed-size gang schedulers see
// real queueing on 64 GPUs, as in the paper's evaluation.
func DefaultConfig() Config {
	return Config{Seed: 1, NumJobs: 120, MeanInterarrival: 12, MaxReqGPUs: 8}
}

// ArrivalRate returns λ, the average job arrival rate in jobs/second.
func (c Config) ArrivalRate() float64 {
	if c.MeanInterarrival <= 0 {
		return 0
	}
	return 1 / c.MeanInterarrival
}

// Generate builds a deterministic Poisson trace over the Table 2 catalog.
func Generate(cfg Config) (*Trace, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("workload: NumJobs %d", cfg.NumJobs)
	}
	if cfg.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: MeanInterarrival %v", cfg.MeanInterarrival)
	}
	maxGPUs := cfg.MaxReqGPUs
	if maxGPUs <= 0 {
		maxGPUs = 8
	}
	arrival := cfg.Arrival.Normalize(cfg.MeanInterarrival)
	if err := arrival.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	catalog := Catalog()
	tr := &Trace{Seed: cfg.Seed, Jobs: make([]Job, 0, cfg.NumJobs)}
	now := 0.0
	for i := 0; i < cfg.NumJobs; i++ {
		now = arrival.Next(rng, now)
		task := catalog[rng.Intn(len(catalog))]
		gpus := requestGPUs(rng, maxGPUs)
		// Users request one reference batch per worker — the "fixed local
		// batch" convention §2.2 describes as common practice.
		batch := task.Profile.RefBatch * gpus
		tr.Jobs = append(tr.Jobs, Job{
			ID:       i,
			Submit:   now,
			Task:     task,
			ReqGPUs:  gpus,
			ReqBatch: batch,
		})
	}
	return tr, nil
}

// requestGPUs draws a user GPU request. Users size distributed jobs
// generously (the §2.1 observation that people over-request to train
// faster), so multi-GPU gangs dominate: under fixed-size gang scheduling
// these requests fragment the cluster and queue, which is precisely the
// inefficiency elastic batch sizing removes.
func requestGPUs(rng *rand.Rand, maxGPUs int) int {
	r := rng.Float64()
	var g int
	switch {
	case r < 0.35:
		g = 1
	case r < 0.70:
		g = 2
	case r < 0.90:
		g = 4
	default:
		g = 8
	}
	if g > maxGPUs {
		g = maxGPUs
	}
	return g
}

// MarshalJSON-friendly round trip helpers.

// Encode serializes the trace to JSON.
func (t *Trace) Encode() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Decode parses a trace from JSON.
func Decode(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return &t, nil
}

// Validate checks trace invariants: ordered submissions, positive requests,
// usable profiles.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, j := range t.Jobs {
		if j.Submit < prev {
			return fmt.Errorf("workload: job %d submitted at %v before predecessor %v", j.ID, j.Submit, prev)
		}
		prev = j.Submit
		if j.ReqGPUs <= 0 || j.ReqBatch <= 0 {
			return fmt.Errorf("workload: job %d requests %d GPUs batch %d", j.ID, j.ReqGPUs, j.ReqBatch)
		}
		if j.Task.DatasetSize <= 0 {
			return fmt.Errorf("workload: job %d dataset size %d", j.ID, j.Task.DatasetSize)
		}
		if err := j.Task.Profile.Validate(); err != nil {
			return fmt.Errorf("workload: job %d: %w", i, err)
		}
	}
	return nil
}

// Summary aggregates a trace for reporting (the Table 2 view).
type Summary struct {
	Jobs       int
	ByClass    map[TaskClass]int
	ByModel    map[string]int
	MeanGPUReq float64
	Makespan   float64 // submit time of the last job
}

// Summarize computes trace composition statistics.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Jobs:    len(t.Jobs),
		ByClass: make(map[TaskClass]int),
		ByModel: make(map[string]int),
	}
	var gpuSum int
	for _, j := range t.Jobs {
		s.ByClass[j.Task.Class]++
		s.ByModel[j.Task.Model]++
		gpuSum += j.ReqGPUs
		if j.Submit > s.Makespan {
			s.Makespan = j.Submit
		}
	}
	if s.Jobs > 0 {
		s.MeanGPUReq = float64(gpuSum) / float64(s.Jobs)
	}
	return s
}

// TaskNames returns the catalog names sorted, for table rendering.
func TaskNames() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, t := range cat {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
