// Package predictor implements the paper's online training-progress
// predictor (§3.2.1): the progress ρ ∈ (0, 1) of a job is modeled as a Beta
// random variable
//
//	ρ ~ Be(α, β),   α = Y_processed/‖D‖,   β = max(A·x + b, 1)
//
// where α approximates the processed epochs and β the epochs still to
// process. The regression parameters (A, b) are fitted by maximizing the
// Beta log marginal likelihood over a bounded, uniformly-sampled reservoir
// of data points harvested from completed jobs.
//
// The input features are the paper's x = {‖D‖, L_initial, Y_processed,
// r_loss, accuracy}.
package predictor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/mathx"
)

// NumFeatures is the dimensionality of the regression input.
const NumFeatures = 5

// Features is the predictor input x for one observation of one job.
type Features struct {
	DatasetSize float64 // ‖D‖, samples per epoch
	InitLoss    float64 // loss before training
	Processed   float64 // Y_processed, samples processed so far
	LossRatio   float64 // r_loss = 1 − current/initial loss
	Accuracy    float64 // current validation accuracy
}

// vector flattens the features for the linear model.
func (f Features) vector() [NumFeatures]float64 {
	return [NumFeatures]float64{f.DatasetSize, f.InitLoss, f.Processed, f.LossRatio, f.Accuracy}
}

// Sample is one training point: features observed at some moment of a
// (now completed) job, labeled with the true progress at that moment.
type Sample struct {
	X        Features
	Progress float64 // true ρ ∈ (0, 1)
}

// Dist is a fitted Beta progress distribution for one job.
type Dist struct {
	Alpha, Beta float64
}

// Mean returns E[ρ].
func (d Dist) Mean() float64 { return mathx.BetaMean(d.Alpha, d.Beta) }

// CI returns the central confidence interval covering `level` (e.g. 0.9)
// of the distribution's mass.
func (d Dist) CI(level float64) (lo, hi float64) {
	tail := (1 - level) / 2
	return mathx.BetaQuantile(tail, d.Alpha, d.Beta),
		mathx.BetaQuantile(1-tail, d.Alpha, d.Beta)
}

// Sample draws one ρ from the distribution (Algorithm 1, line 2).
func (d Dist) Sample(rng *rand.Rand) float64 {
	rho := mathx.SampleBeta(rng, d.Alpha, d.Beta)
	// Keep the draw strictly inside (0, 1): downstream scores divide by ρ.
	return mathx.Clamp(rho, 1e-6, 1-1e-6)
}

// Config tunes the predictor.
type Config struct {
	ReservoirCap int     // max retained training samples (paper: limited size)
	LearnRate    float64 // gradient-ascent step
	FitIters     int     // gradient iterations per refit
	PriorEpochs  float64 // initial bias: epochs-to-process guess before any data
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{ReservoirCap: 2048, LearnRate: 0.05, FitIters: 200, PriorEpochs: 12}
}

// Predictor is the online Beta-regression model. It is safe for concurrent
// use.
type Predictor struct {
	mu sync.Mutex

	cfg Config
	rng *rand.Rand

	weights [NumFeatures]float64
	bias    float64

	// Feature standardization, recomputed at each fit.
	mean, std [NumFeatures]float64

	reservoir []Sample
	seen      int // total samples offered (for reservoir sampling)
	fits      int // number of refits performed

	fitScratch []fitSample // reused per-fit cache of weight-independent terms
}

// fitSample caches the per-sample terms of the likelihood gradient that do
// not depend on the weights: the standardized feature vector, α and
// ln(1−ρ). They are constant across one fit's gradient iterations.
type fitSample struct {
	z           [NumFeatures]float64
	alpha       float64
	logOneMinus float64
}

// New returns a predictor seeded deterministically.
func New(seed int64, cfg Config) *Predictor {
	if cfg.ReservoirCap <= 0 {
		cfg.ReservoirCap = DefaultConfig().ReservoirCap
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = DefaultConfig().LearnRate
	}
	if cfg.FitIters <= 0 {
		cfg.FitIters = DefaultConfig().FitIters
	}
	if cfg.PriorEpochs <= 0 {
		cfg.PriorEpochs = DefaultConfig().PriorEpochs
	}
	p := &Predictor{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	p.bias = cfg.PriorEpochs
	for i := range p.std {
		p.std[i] = 1
	}
	return p
}

// TrainingSize returns the current reservoir occupancy.
func (p *Predictor) TrainingSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.reservoir)
}

// Fits returns how many refits have run (one per completed job).
func (p *Predictor) Fits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fits
}

// AddCompletedJob ingests the per-epoch log of a finished job (paper: "each
// time when a job is completed, we train the model") and refits. Samples
// are reservoir-sampled so the training set stays bounded and approximately
// uniform over history.
func (p *Predictor) AddCompletedJob(logs []Sample) error {
	for _, s := range logs {
		if s.Progress <= 0 || s.Progress >= 1 {
			return fmt.Errorf("predictor: progress %v outside (0,1)", s.Progress)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range logs {
		p.seen++
		if len(p.reservoir) < p.cfg.ReservoirCap {
			p.reservoir = append(p.reservoir, s)
		} else if k := p.rng.Intn(p.seen); k < p.cfg.ReservoirCap {
			p.reservoir[k] = s
		}
	}
	p.fitLocked()
	return nil
}

// fitLocked runs gradient ascent on the Beta log marginal likelihood.
// Only β = max(A·z + b, 1) depends on the parameters (z is the
// standardized feature vector), so
//
//	∂ℓ/∂β = ln(1−ρ) − ψ(β) + ψ(α+β)
//
// and the chain rule through the max gives a zero gradient whenever the
// linear response is clamped at 1.
func (p *Predictor) fitLocked() {
	if len(p.reservoir) == 0 {
		return
	}
	p.standardizeLocked()

	// Per-sample quantities that do not depend on the weights — the
	// standardized features, α and ln(1−ρ) — are invariant across the
	// gradient iterations (mean/std are fixed for this fit), so hoist
	// them out of the loop instead of recomputing them FitIters times.
	if cap(p.fitScratch) < len(p.reservoir) {
		p.fitScratch = make([]fitSample, len(p.reservoir))
	}
	cached := p.fitScratch[:len(p.reservoir)]
	for i, s := range p.reservoir {
		cached[i] = fitSample{
			z:           p.normalizeLocked(s.X.vector()),
			alpha:       alphaOf(s.X),
			logOneMinus: math.Log(1 - s.Progress),
		}
	}

	n := float64(len(p.reservoir))
	for iter := 0; iter < p.cfg.FitIters; iter++ {
		var gradW [NumFeatures]float64
		var gradB float64
		for i := range cached {
			s := &cached[i]
			lin := p.bias
			for i, zi := range s.z {
				lin += p.weights[i] * zi
			}
			if lin < 1 {
				continue // clamped: zero gradient
			}
			beta := lin
			g := s.logOneMinus - mathx.Digamma(beta) + mathx.Digamma(s.alpha+beta)
			for i, zi := range s.z {
				gradW[i] += g * zi
			}
			gradB += g
		}
		step := p.cfg.LearnRate
		for i := range p.weights {
			p.weights[i] += step * gradW[i] / n
		}
		p.bias += step * gradB / n
	}
	p.fits++
}

// standardizeLocked recomputes per-feature mean/std over the reservoir.
func (p *Predictor) standardizeLocked() {
	var sum, sumsq [NumFeatures]float64
	for _, s := range p.reservoir {
		v := s.X.vector()
		for i, x := range v {
			sum[i] += x
			sumsq[i] += x * x
		}
	}
	n := float64(len(p.reservoir))
	for i := range sum {
		m := sum[i] / n
		variance := sumsq[i]/n - m*m
		if variance < 1e-12 {
			variance = 1
		}
		p.mean[i] = m
		p.std[i] = math.Sqrt(variance)
	}
}

func (p *Predictor) normalizeLocked(v [NumFeatures]float64) [NumFeatures]float64 {
	var z [NumFeatures]float64
	for i := range v {
		z[i] = (v[i] - p.mean[i]) / p.std[i]
	}
	return z
}

// alphaOf returns α = Y_processed/‖D‖ thresholded at 1 (the paper applies
// a threshold to both α and β to keep the Beta unimodal).
func alphaOf(x Features) float64 {
	if x.DatasetSize <= 0 {
		return 1
	}
	a := x.Processed / x.DatasetSize
	if a < 1 {
		a = 1
	}
	return a
}

// Predict returns the progress distribution for a job with the given
// current features.
func (p *Predictor) Predict(x Features) Dist {
	p.mu.Lock()
	defer p.mu.Unlock()
	lin := p.bias
	z := p.normalizeLocked(x.vector())
	for i, zi := range z {
		lin += p.weights[i] * zi
	}
	beta := lin
	if beta < 1 {
		beta = 1
	}
	return Dist{Alpha: alphaOf(x), Beta: beta}
}

// LogLikelihood evaluates the mean Beta log-likelihood of the current model
// over the reservoir — used by tests and the fit-quality report.
func (p *Predictor) LogLikelihood() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.reservoir) == 0 {
		return 0
	}
	var ll float64
	for _, s := range p.reservoir {
		z := p.normalizeLocked(s.X.vector())
		lin := p.bias
		for i, zi := range z {
			lin += p.weights[i] * zi
		}
		if lin < 1 {
			lin = 1
		}
		ll += mathx.BetaLogPDF(s.Progress, alphaOf(s.X), lin)
	}
	return ll / float64(len(p.reservoir))
}
