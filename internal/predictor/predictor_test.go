package predictor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticJob builds per-epoch log samples for a job with the given total
// epochs and dataset size: progress at epoch e is e/total.
func syntheticJob(datasetSize float64, totalEpochs int) []Sample {
	logs := make([]Sample, 0, totalEpochs-1)
	for e := 1; e < totalEpochs; e++ {
		progress := float64(e) / float64(totalEpochs)
		logs = append(logs, Sample{
			X: Features{
				DatasetSize: datasetSize,
				InitLoss:    2.3,
				Processed:   float64(e) * datasetSize,
				LossRatio:   progress * 0.9,
				Accuracy:    progress * 0.85,
			},
			Progress: progress,
		})
	}
	return logs
}

func TestPredictDefaultPrior(t *testing.T) {
	p := New(1, DefaultConfig())
	d := p.Predict(Features{DatasetSize: 1000, Processed: 3000})
	if d.Alpha != 3 {
		t.Errorf("alpha = %v, want 3 (processed epochs)", d.Alpha)
	}
	if d.Beta != DefaultConfig().PriorEpochs {
		t.Errorf("beta = %v, want prior %v", d.Beta, DefaultConfig().PriorEpochs)
	}
}

func TestAlphaThresholdedAtOne(t *testing.T) {
	p := New(1, DefaultConfig())
	d := p.Predict(Features{DatasetSize: 1000, Processed: 10}) // 0.01 epochs
	if d.Alpha != 1 {
		t.Errorf("alpha = %v, want clamp at 1", d.Alpha)
	}
	d = p.Predict(Features{DatasetSize: 0, Processed: 10})
	if d.Alpha != 1 {
		t.Errorf("alpha with zero dataset = %v, want 1", d.Alpha)
	}
}

func TestAddCompletedJobRejectsBadProgress(t *testing.T) {
	p := New(1, DefaultConfig())
	if err := p.AddCompletedJob([]Sample{{Progress: 0}}); err == nil {
		t.Error("progress 0 accepted")
	}
	if err := p.AddCompletedJob([]Sample{{Progress: 1}}); err == nil {
		t.Error("progress 1 accepted")
	}
	if err := p.AddCompletedJob([]Sample{{Progress: 1.5}}); err == nil {
		t.Error("progress 1.5 accepted")
	}
}

func TestFitImprovesLikelihood(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FitIters = 0 // delay fitting so we can measure before/after
	p := New(1, cfg)
	// Bypassing iterations: insert data with zero fit, record LL, then fit.
	jobs := [][]Sample{
		syntheticJob(10000, 12),
		syntheticJob(20000, 20),
		syntheticJob(5000, 8),
		syntheticJob(40000, 30),
	}
	for _, j := range jobs {
		if err := p.AddCompletedJob(j); err != nil {
			t.Fatal(err)
		}
	}
	before := p.LogLikelihood()
	p.mu.Lock()
	p.cfg.FitIters = 400
	p.cfg.LearnRate = 0.05
	p.fitLocked()
	p.mu.Unlock()
	after := p.LogLikelihood()
	if after <= before {
		t.Errorf("fit did not improve likelihood: %v -> %v", before, after)
	}
}

func TestPredictionTracksTrueProgress(t *testing.T) {
	p := New(1, DefaultConfig())
	// Train on many jobs whose remaining epochs correlate with features.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		total := 8 + rng.Intn(25)
		size := float64(5000 + rng.Intn(35000))
		if err := p.AddCompletedJob(syntheticJob(size, total)); err != nil {
			t.Fatal(err)
		}
	}
	// Held-out job: 20 epochs over 15k samples. The predictive mean at
	// epoch e should increase with e and be correlated with truth.
	var prevMean float64 = -1
	var sumErr float64
	logs := syntheticJob(15000, 20)
	for _, s := range logs {
		d := p.Predict(s.X)
		m := d.Mean()
		if m <= 0 || m >= 1 {
			t.Fatalf("predictive mean %v outside (0,1)", m)
		}
		if m < prevMean-0.05 {
			t.Errorf("predictive mean regressed badly: %v after %v", m, prevMean)
		}
		prevMean = m
		sumErr += math.Abs(m - s.Progress)
	}
	if mae := sumErr / float64(len(logs)); mae > 0.25 {
		t.Errorf("mean absolute error %v too large — predictor not learning", mae)
	}
}

func TestReservoirBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReservoirCap = 50
	cfg.FitIters = 1
	p := New(1, cfg)
	for i := 0; i < 40; i++ {
		if err := p.AddCompletedJob(syntheticJob(10000, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.TrainingSize(); got != 50 {
		t.Errorf("reservoir size = %d, want cap 50", got)
	}
	if p.Fits() != 40 {
		t.Errorf("fits = %d, want 40", p.Fits())
	}
}

func TestBetaAlwaysAtLeastOneProperty(t *testing.T) {
	p := New(3, DefaultConfig())
	for i := 0; i < 10; i++ {
		_ = p.AddCompletedJob(syntheticJob(float64(1000*(i+1)), 10+i))
	}
	f := func(size, processed, lossRatio, acc float64) bool {
		x := Features{
			DatasetSize: math.Abs(math.Mod(size, 1e6)),
			InitLoss:    2.3,
			Processed:   math.Abs(math.Mod(processed, 1e8)),
			LossRatio:   math.Mod(math.Abs(lossRatio), 1),
			Accuracy:    math.Mod(math.Abs(acc), 1),
		}
		d := p.Predict(x)
		return d.Alpha >= 1 && d.Beta >= 1 &&
			!math.IsNaN(d.Alpha) && !math.IsNaN(d.Beta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistCI(t *testing.T) {
	d := Dist{Alpha: 5, Beta: 10}
	lo, hi := d.CI(0.9)
	if !(0 < lo && lo < d.Mean() && d.Mean() < hi && hi < 1) {
		t.Errorf("CI (%v, %v) should bracket mean %v", lo, hi, d.Mean())
	}
	loW, hiW := d.CI(0.5)
	if hiW-loW >= hi-lo {
		t.Errorf("50%% CI (%v) should be narrower than 90%% CI (%v)", hiW-loW, hi-lo)
	}
}

func TestDistSampleInOpenInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Dist{Alpha: 1, Beta: 1}
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v <= 0 || v >= 1 {
			t.Fatalf("sample %v outside open interval", v)
		}
	}
}

func TestPredictorDeterministicAcrossRuns(t *testing.T) {
	run := func() Dist {
		p := New(42, DefaultConfig())
		for i := 0; i < 5; i++ {
			_ = p.AddCompletedJob(syntheticJob(10000, 12+i))
		}
		return p.Predict(Features{DatasetSize: 12000, InitLoss: 2.3, Processed: 36000, LossRatio: 0.4, Accuracy: 0.5})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed predictors disagree: %+v vs %+v", a, b)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	p := New(1, Config{}) // all zero: defaults must kick in
	if p.cfg.ReservoirCap != DefaultConfig().ReservoirCap {
		t.Errorf("ReservoirCap default not applied: %d", p.cfg.ReservoirCap)
	}
	if p.bias != DefaultConfig().PriorEpochs {
		t.Errorf("PriorEpochs default not applied: %v", p.bias)
	}
}
