// Package perfmodel is the analytic substitute for real distributed DL
// training. The paper evaluates ONES on 64 V100 GPUs training PyTorch
// models; this repository has no GPUs, so every quantity the scheduler
// observes — throughput, loss, validation accuracy, convergence — is
// produced by the models in this package instead.
//
// The models capture exactly the phenomena the paper's scheduling argument
// rests on:
//
//   - Data-parallel throughput X(B, c): per-step time is per-GPU compute
//     (linear in the local batch b = B/c plus a fixed kernel overhead) plus
//     ring all-reduce communication that grows with the worker count and
//     worsens when the job spans servers. With a fixed global batch the
//     throughput peaks at a small worker count and then drops (Figure 2,
//     "Fixed batch size"); growing B with c keeps per-GPU utilization high
//     and throughput rising (Figure 2, "Elastic batch size").
//
//   - Convergence vs batch size: without learning-rate scaling, larger
//     global batches need more epochs and plateau at lower accuracy
//     (Figure 3). With linear LR scaling the penalty is mild until a
//     critical batch size (§3.3.2).
//
//   - Abrupt batch-size explosion injects gradient/momentum noise: the
//     training loss spikes and needs many epochs to recover (Figure 13),
//     whereas gradual growth stays smooth (Figure 14).
package perfmodel

import (
	"fmt"
	"math"
)

// Network holds the communication-substrate parameters used by the
// throughput model. Values are calibrated so the shapes of the paper's
// Figure 2 reproduce on the CIFAR10/ResNet50 profile; they stand in for
// NVLink / InfiniBand EDR plus the per-step framework overheads of
// PyTorch DDP.
type Network struct {
	IntraBW      float64 // bytes/s effective all-reduce bandwidth within a server
	CrossBW      float64 // bytes/s effective bandwidth when spanning servers
	LatPerWorker float64 // seconds of per-step synchronization cost per worker
}

// DefaultNetwork returns the calibrated network parameters.
func DefaultNetwork() Network {
	return Network{IntraBW: 25e9, CrossBW: 3e9, LatPerWorker: 0.015}
}

// Profile describes one trainable task: a model architecture bound to a
// dataset. Profiles drive both the throughput and the convergence models.
type Profile struct {
	Name string

	// Throughput parameters.
	GradBytes      float64 // gradient volume all-reduced per step (4 bytes/param)
	SampleTime     float64 // seconds of GPU compute per sample
	KernelOverhead float64 // fixed seconds per step (kernel launches etc.)
	MaxPerGPU      int     // largest local batch that fits in GPU memory

	// Convergence parameters.
	RefBatch     int     // batch size the task was tuned for
	BaseEpochs   float64 // epochs to target accuracy at RefBatch
	AccMax       float64 // accuracy ceiling at RefBatch
	TargetAcc    float64 // validation accuracy that ends the job
	InitLoss     float64 // loss before training
	FloorLoss    float64 // asymptotic loss
	Penalty      float64 // epoch-penalty coefficient without LR scaling
	PenaltyExp   float64 // exponent on log2(B/RefBatch)
	ScaledCrit   int     // critical batch: no penalty below this with LR scaling
	ScaledCoeff  float64 // mild penalty coefficient beyond ScaledCrit
	AccLossPerX  float64 // accuracy-ceiling loss per batch doubling (no LR scaling)
	SpikeCoeff   float64 // loss-spike magnitude per doubling on abrupt rescale
	RegressCoeff float64 // effective epochs lost per squared doubling on abrupt rescale
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.SampleTime <= 0:
		return fmt.Errorf("perfmodel: %s: SampleTime %v", p.Name, p.SampleTime)
	case p.MaxPerGPU <= 0:
		return fmt.Errorf("perfmodel: %s: MaxPerGPU %d", p.Name, p.MaxPerGPU)
	case p.RefBatch <= 0:
		return fmt.Errorf("perfmodel: %s: RefBatch %d", p.Name, p.RefBatch)
	case p.BaseEpochs <= 0:
		return fmt.Errorf("perfmodel: %s: BaseEpochs %v", p.Name, p.BaseEpochs)
	case p.TargetAcc <= 0 || p.TargetAcc >= p.AccMax:
		return fmt.Errorf("perfmodel: %s: TargetAcc %v vs AccMax %v", p.Name, p.TargetAcc, p.AccMax)
	}
	return nil
}

// StepTime returns the seconds per training step for global batch B spread
// over c workers on `servers` distinct servers.
func StepTime(p Profile, net Network, B, c, servers int) float64 {
	if B <= 0 || c <= 0 {
		return math.Inf(1)
	}
	local := float64(B) / float64(c)
	compute := p.KernelOverhead + local*p.SampleTime
	if c == 1 {
		return compute
	}
	bw := net.IntraBW
	if servers > 1 {
		bw = net.CrossBW
	}
	ring := 2 * float64(c-1) / float64(c) * p.GradBytes / bw
	return compute + ring + net.LatPerWorker*float64(c)
}

// Throughput returns samples/second for global batch B over c workers on
// `servers` servers (Figure 2's y-axis).
func Throughput(p Profile, net Network, B, c, servers int) float64 {
	st := StepTime(p, net, B, c, servers)
	if math.IsInf(st, 1) {
		return 0
	}
	return float64(B) / st
}

// serversNeeded returns the minimum number of servers for c workers given
// gpusPerServer, assuming packed placement. Scheduling code passes the real
// span; helpers like Figure 2 use the packed value.
func serversNeeded(c, gpusPerServer int) int {
	if gpusPerServer <= 0 {
		return 1
	}
	return (c + gpusPerServer - 1) / gpusPerServer
}

// PackedThroughput is Throughput with packed placement on servers of the
// given width.
func PackedThroughput(p Profile, net Network, B, c, gpusPerServer int) float64 {
	return Throughput(p, net, B, c, serversNeeded(c, gpusPerServer))
}

// EpochPenalty returns the multiplicative factor on epochs-to-target for
// training with global batch B. lrScaled selects the §3.3.2 regime where
// the learning rate is scaled linearly with the batch size.
func EpochPenalty(p Profile, B int, lrScaled bool) float64 {
	if B <= 0 {
		return math.Inf(1)
	}
	if lrScaled {
		crit := p.ScaledCrit
		if crit <= 0 {
			crit = 8 * p.RefBatch
		}
		if B <= crit {
			return 1
		}
		d := math.Log2(float64(B) / float64(crit))
		return 1 + p.ScaledCoeff*d*d
	}
	if B <= p.RefBatch {
		return 1
	}
	d := math.Log2(float64(B) / float64(p.RefBatch))
	return 1 + p.Penalty*math.Pow(d, p.PenaltyExp)
}

// AccCeiling returns the accuracy the task converges toward when trained
// at global batch B. Without LR scaling, large batches reduce the ceiling
// (Figure 3's 8-GPU curve plateauing low).
func AccCeiling(p Profile, B int, lrScaled bool) float64 {
	if lrScaled || B <= p.RefBatch {
		return p.AccMax
	}
	d := math.Log2(float64(B) / float64(p.RefBatch))
	ceil := p.AccMax - p.AccLossPerX*d
	if ceil < p.TargetAcc*0.5 {
		ceil = p.TargetAcc * 0.5
	}
	return ceil
}

// accRate is the exponential approach rate: accuracy reaches ~95% of its
// ceiling after BaseEpochs effective epochs.
const accRate = 3.0

// AccuracyAt returns the validation accuracy after `effEpochs` effective
// epochs of training toward the ceiling for batch B.
func AccuracyAt(p Profile, effEpochs float64, B int, lrScaled bool) float64 {
	if effEpochs <= 0 {
		return 0
	}
	ceil := AccCeiling(p, B, lrScaled)
	return ceil * (1 - math.Exp(-accRate*effEpochs/p.BaseEpochs))
}

// LossAt returns the training loss after effEpochs effective epochs, plus
// the given transient spike.
func LossAt(p Profile, effEpochs, spike float64) float64 {
	base := p.FloorLoss + (p.InitLoss-p.FloorLoss)*math.Exp(-accRate*effEpochs/p.BaseEpochs)
	return base + spike
}

// EffectiveEpochsToTarget returns the effective epochs needed for the
// accuracy to reach the target given batch B. Returns +Inf when the target
// exceeds the ceiling (the job would never converge at this batch).
func EffectiveEpochsToTarget(p Profile, B int, lrScaled bool) float64 {
	ceil := AccCeiling(p, B, lrScaled)
	if p.TargetAcc >= ceil {
		return math.Inf(1)
	}
	return -p.BaseEpochs / accRate * math.Log(1-p.TargetAcc/ceil)
}

// EpochsToTarget returns real (wall) epochs to target at constant batch B:
// effective epochs multiplied by the epoch penalty.
func EpochsToTarget(p Profile, B int, lrScaled bool) float64 {
	return EffectiveEpochsToTarget(p, B, lrScaled) * EpochPenalty(p, B, lrScaled)
}

// AbruptFactor is the single-step batch-growth factor beyond which the
// rescale injects noise into gradients/momentum (Figure 13). The paper's
// scale-up policy doubles the limit per epoch precisely to stay under it.
const AbruptFactor = 4.0

// Catalog returns the base profiles for every model in the paper's
// workload (Table 2) plus the LSTM used in the Figure 16 overhead study.
// SampleTime values approximate V100 per-sample times on the models'
// native datasets; workload generation rescales them per dataset.
func Catalog() []Profile {
	base := func(name string, params int64, st float64, maxB int, epochs, accMax float64) Profile {
		return Profile{
			Name:           name,
			GradBytes:      4 * float64(params),
			SampleTime:     st,
			KernelOverhead: 0.008,
			MaxPerGPU:      maxB,
			RefBatch:       256,
			BaseEpochs:     epochs,
			AccMax:         accMax,
			TargetAcc:      0.9 * accMax,
			InitLoss:       2.3,
			FloorLoss:      0.05,
			Penalty:        0.35,
			PenaltyExp:     1.5,
			ScaledCrit:     2048,
			ScaledCoeff:    0.15,
			AccLossPerX:    0.025,
			SpikeCoeff:     0.35,
			RegressCoeff:   1.2,
		}
	}
	ps := []Profile{
		base("alexnet", 61_000_000, 0.0006, 1024, 40, 0.80),
		base("resnet18", 11_700_000, 0.0012, 1024, 50, 0.92),
		base("resnet50", 25_600_000, 0.0040, 512, 60, 0.93),
		base("vgg16", 138_000_000, 0.0050, 256, 55, 0.90),
		base("googlenet", 6_800_000, 0.0020, 1024, 50, 0.91),
		base("inceptionv3", 23_900_000, 0.0045, 512, 65, 0.92),
		base("bert", 110_000_000, 0.0080, 64, 12, 0.88),
		base("lstm", 20_000_000, 0.0030, 512, 30, 0.85),
	}
	// NLP fine-tuning uses smaller reference batches.
	for i := range ps {
		if ps[i].Name == "bert" {
			ps[i].RefBatch = 32
			ps[i].ScaledCrit = 256
			ps[i].InitLoss = 0.9
			ps[i].FloorLoss = 0.02
		}
	}
	return ps
}

// ByName returns the catalog profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("perfmodel: unknown model %q", name)
}

// CIFARResNet50 returns the profile used throughout the paper's motivating
// figures: ResNet50 on CIFAR10 (tiny images, so per-sample compute is an
// order of magnitude below ImageNet).
func CIFARResNet50() Profile {
	p, err := ByName("resnet50")
	if err != nil {
		panic(err)
	}
	p.Name = "resnet50-cifar10"
	p.SampleTime = 0.0004
	return p
}
