package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d models, want 8", len(cat))
	}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "resnet50" {
		t.Errorf("ByName returned %q", p.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestStepTimeSingleGPUHasNoComm(t *testing.T) {
	p := CIFARResNet50()
	net := DefaultNetwork()
	got := StepTime(p, net, 256, 1, 1)
	want := p.KernelOverhead + 256*p.SampleTime
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StepTime single GPU = %v, want %v", got, want)
	}
}

func TestStepTimeGrowsWithWorkersAtFixedLocalBatch(t *testing.T) {
	p := CIFARResNet50()
	net := DefaultNetwork()
	prev := StepTime(p, net, 256, 1, 1)
	for c := 2; c <= 8; c *= 2 {
		st := StepTime(p, net, 256*c, c, (c+3)/4)
		if st <= prev {
			t.Errorf("StepTime c=%d (%v) should exceed c=%d (%v)", c, st, c/2, prev)
		}
		prev = st
	}
}

func TestStepTimeCrossServerSlower(t *testing.T) {
	p := CIFARResNet50()
	net := DefaultNetwork()
	same := StepTime(p, net, 1024, 4, 1)
	cross := StepTime(p, net, 1024, 4, 2)
	if cross <= same {
		t.Errorf("cross-server step %v should exceed same-server %v", cross, same)
	}
}

func TestStepTimeDegenerate(t *testing.T) {
	p := CIFARResNet50()
	net := DefaultNetwork()
	if !math.IsInf(StepTime(p, net, 0, 1, 1), 1) {
		t.Error("zero batch should give +Inf step time")
	}
	if Throughput(p, net, 0, 1, 1) != 0 {
		t.Error("zero batch should give zero throughput")
	}
}

// TestFigure2Shape is the calibration check for Figure 2: with a fixed
// global batch of 256, throughput peaks at 2 workers and drops by 8; with
// an elastic batch (256 per worker), throughput rises monotonically and
// exceeds the fixed-batch peak substantially at 8 workers.
func TestFigure2Shape(t *testing.T) {
	p := CIFARResNet50()
	net := DefaultNetwork()
	fixed := make([]float64, 9)
	elastic := make([]float64, 9)
	for c := 1; c <= 8; c++ {
		fixed[c] = PackedThroughput(p, net, 256, c, 4)
		elastic[c] = PackedThroughput(p, net, 256*c, c, 4)
	}
	if !(fixed[2] > fixed[1]) {
		t.Errorf("fixed batch should improve 1→2 workers: %v vs %v", fixed[1], fixed[2])
	}
	if !(fixed[8] < fixed[2]) {
		t.Errorf("fixed batch should degrade at 8 workers: c2=%v c8=%v", fixed[2], fixed[8])
	}
	// Monotone rise at the powers of two (between 4 and 5 workers the job
	// starts spanning two servers, which can cause a small local dip).
	for _, c := range []int{2, 4, 8} {
		if elastic[c] <= elastic[c/2] {
			t.Errorf("elastic throughput should rise: c=%d %v <= c=%d %v", c, elastic[c], c/2, elastic[c/2])
		}
	}
	if elastic[8] < 2*fixed[2] {
		t.Errorf("elastic at 8 workers (%v) should be well above fixed peak (%v)", elastic[8], fixed[2])
	}
	// Sanity: absolute range roughly matches the paper's 2000–8000 img/s axis.
	if elastic[8] < 4000 || elastic[8] > 12000 {
		t.Errorf("elastic c=8 throughput %v out of plausible range", elastic[8])
	}
}

// TestFigure3Shape checks the convergence model: fixed local batch 256 and
// more GPUs (bigger global batch, no LR scaling) converges slower and
// plateaus lower.
func TestFigure3Shape(t *testing.T) {
	p := CIFARResNet50()
	const epochs = 200.0
	accAt := func(c int) float64 {
		B := 256 * c
		eff := epochs / EpochPenalty(p, B, false)
		return AccuracyAt(p, eff, B, false)
	}
	prev := math.Inf(1)
	for _, c := range []int{1, 2, 4, 8} {
		a := accAt(c)
		if a >= prev {
			t.Errorf("accuracy with %d GPUs (%v) should be below fewer GPUs (%v)", c, a, prev)
		}
		prev = a
	}
	if gap := accAt(1) - accAt(8); gap < 0.05 {
		t.Errorf("1 vs 8 GPU accuracy gap %v too small to reproduce Figure 3", gap)
	}
}

func TestEpochPenaltyProperties(t *testing.T) {
	p := CIFARResNet50()
	if got := EpochPenalty(p, p.RefBatch, false); got != 1 {
		t.Errorf("penalty at ref batch = %v, want 1", got)
	}
	if got := EpochPenalty(p, p.RefBatch/2, false); got != 1 {
		t.Errorf("penalty below ref batch = %v, want 1", got)
	}
	f := func(rb uint16) bool {
		b := int(rb)%8192 + 1
		unscaled := EpochPenalty(p, b, false)
		scaled := EpochPenalty(p, b, true)
		return scaled <= unscaled && scaled >= 1 && unscaled >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(EpochPenalty(p, 0, false), 1) {
		t.Error("penalty at zero batch should be +Inf")
	}
}

func TestLRScalingRemovesPenaltyUpToCritical(t *testing.T) {
	p := CIFARResNet50()
	if got := EpochPenalty(p, p.ScaledCrit, true); got != 1 {
		t.Errorf("penalty at critical batch with LR scaling = %v, want 1", got)
	}
	if got := EpochPenalty(p, 4*p.ScaledCrit, true); got <= 1 {
		t.Errorf("penalty beyond critical batch = %v, want > 1", got)
	}
}

func TestAccCeiling(t *testing.T) {
	p := CIFARResNet50()
	if got := AccCeiling(p, p.RefBatch, false); got != p.AccMax {
		t.Errorf("ceiling at ref batch = %v", got)
	}
	if got := AccCeiling(p, 16*p.RefBatch, false); got >= p.AccMax {
		t.Errorf("large-batch ceiling %v should drop below %v", got, p.AccMax)
	}
	if got := AccCeiling(p, 16*p.RefBatch, true); got != p.AccMax {
		t.Errorf("LR-scaled ceiling = %v, want %v", got, p.AccMax)
	}
	// Ceiling is floored so it never collapses to zero.
	if got := AccCeiling(p, 1<<30, false); got < p.TargetAcc*0.5-1e-9 {
		t.Errorf("ceiling floor violated: %v", got)
	}
}

func TestEpochsToTargetFiniteAndOrdered(t *testing.T) {
	p := CIFARResNet50()
	e1 := EpochsToTarget(p, 256, true)
	e2 := EpochsToTarget(p, 8192, true)
	if math.IsInf(e1, 1) || e1 <= 0 {
		t.Fatalf("EpochsToTarget(256) = %v", e1)
	}
	if e2 <= e1 {
		t.Errorf("huge batch should need more epochs: %v vs %v", e2, e1)
	}
	// Without LR scaling a 16× batch cannot reach the target (ceiling drops
	// below it) — EpochsToTarget must be +Inf.
	if got := EpochsToTarget(p, 16*256, false); !math.IsInf(got, 1) {
		// Only expected when the ceiling actually fell below target.
		if AccCeiling(p, 16*256, false) < p.TargetAcc {
			t.Errorf("expected +Inf epochs, got %v", got)
		}
	}
}

func TestServersNeeded(t *testing.T) {
	cases := []struct{ c, per, want int }{
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}, {3, 0, 1},
	}
	for _, c := range cases {
		if got := serversNeeded(c.c, c.per); got != c.want {
			t.Errorf("serversNeeded(%d,%d) = %d, want %d", c.c, c.per, got, c.want)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := CIFARResNet50()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SampleTime = 0
	if bad.Validate() == nil {
		t.Error("zero SampleTime accepted")
	}
	bad = good
	bad.TargetAcc = bad.AccMax + 0.1
	if bad.Validate() == nil {
		t.Error("target above ceiling accepted")
	}
}
