package perfmodel

import (
	"fmt"
	"math"
)

// ConvergedEpochs is the paper's stopping rule: a job ends after this many
// consecutive epochs with validation accuracy at or above the target (§4.1).
const ConvergedEpochs = 10

// Trainer simulates one job's training trajectory under a (possibly
// changing) global batch size. It is fully deterministic: the same sequence
// of batch sizes and sample counts always yields the same loss/accuracy
// trajectory, which keeps scheduler comparisons paired (as required by the
// paper's Wilcoxon analysis).
type Trainer struct {
	prof        Profile
	datasetSize int  // samples per epoch (‖D‖)
	lrScaled    bool // linear LR scaling engaged (ONES does this; Fig 3 does not)

	batch       int     // current global batch size B
	effEpochs   float64 // accumulated effective epochs
	wallEpochs  float64 // accumulated real epochs (can be fractional)
	processed   int64   // total samples processed (Y_processed)
	spike       float64 // transient loss spike from an abrupt rescale
	consecAbove int     // consecutive epoch-ends with accuracy >= target
	converged   bool
}

// NewTrainer returns a Trainer for the profile with the given dataset size
// and initial global batch.
func NewTrainer(prof Profile, datasetSize, initialBatch int, lrScaled bool) (*Trainer, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if datasetSize <= 0 {
		return nil, fmt.Errorf("perfmodel: dataset size %d", datasetSize)
	}
	if initialBatch <= 0 {
		return nil, fmt.Errorf("perfmodel: initial batch %d", initialBatch)
	}
	return &Trainer{prof: prof, datasetSize: datasetSize, batch: initialBatch, lrScaled: lrScaled}, nil
}

// Profile returns the trainer's task profile.
func (t *Trainer) Profile() Profile { return t.prof }

// DatasetSize returns ‖D‖, the samples per epoch.
func (t *Trainer) DatasetSize() int { return t.datasetSize }

// Batch returns the current global batch size.
func (t *Trainer) Batch() int { return t.batch }

// Processed returns Y_processed, the total samples consumed so far.
func (t *Trainer) Processed() int64 { return t.processed }

// WallEpochs returns the number of (possibly fractional) epochs trained.
func (t *Trainer) WallEpochs() float64 { return t.wallEpochs }

// EffEpochs returns the accumulated effective epochs of progress.
func (t *Trainer) EffEpochs() float64 { return t.effEpochs }

// Converged reports whether the stopping rule has fired.
func (t *Trainer) Converged() bool { return t.converged }

// Loss returns the current training loss.
func (t *Trainer) Loss() float64 { return LossAt(t.prof, t.effEpochs, t.spike) }

// Accuracy returns the current validation accuracy.
func (t *Trainer) Accuracy() float64 {
	a := AccuracyAt(t.prof, t.effEpochs, t.batch, t.lrScaled)
	// The rescale spike also transiently depresses accuracy.
	a -= 0.2 * t.spike
	if a < 0 {
		a = 0
	}
	return a
}

// LossRatio returns r_loss = 1 − current/initial, one of the predictor's
// input features.
func (t *Trainer) LossRatio() float64 {
	r := 1 - t.Loss()/t.prof.InitLoss
	if r < 0 {
		r = 0
	}
	return r
}

// SetBatch changes the global batch size. Growing by more than
// AbruptFactor in one step injects gradient/momentum noise: the loss spikes
// and several effective epochs of progress are lost (Figure 13). Gradual
// growth — the only kind ONES's scale-up policy produces — is free
// (Figure 14).
func (t *Trainer) SetBatch(b int) {
	if b <= 0 || b == t.batch {
		return
	}
	factor := float64(b) / float64(t.batch)
	if factor > AbruptFactor {
		doublings := math.Log2(factor)
		t.spike += t.prof.SpikeCoeff * doublings
		t.effEpochs -= t.prof.RegressCoeff * doublings
		if t.effEpochs < 0 {
			t.effEpochs = 0
		}
	}
	t.batch = b
}

// AdvanceEpoch trains exactly one epoch at the current batch size.
func (t *Trainer) AdvanceEpoch() { t.AdvanceSamples(int64(t.datasetSize)) }

// AdvanceSamples trains through n samples at the current batch size,
// handling epoch crossings: the spike decays and the stopping rule is
// evaluated at each epoch boundary. Sample accounting is integer-exact so
// epoch boundaries never drift.
func (t *Trainer) AdvanceSamples(n int64) {
	if t.converged || n <= 0 {
		return
	}
	penalty := EpochPenalty(t.prof, t.batch, t.lrScaled)
	ds := int64(t.datasetSize)
	for n > 0 && !t.converged {
		toBoundary := ds - t.processed%ds
		step := n
		if step > toBoundary {
			step = toBoundary
		}
		t.processed += step
		frac := float64(step) / float64(ds)
		t.effEpochs += frac / penalty
		t.wallEpochs += frac
		n -= step
		if step == toBoundary { // crossed an epoch boundary
			t.wallEpochs = math.Round(t.wallEpochs) // kill float drift
			t.endOfEpoch()
		}
	}
}

// endOfEpoch applies the per-epoch bookkeeping: spike decay and the
// 10-consecutive-epochs-above-target stopping rule.
func (t *Trainer) endOfEpoch() {
	t.spike *= 0.6
	if t.spike < 1e-3 {
		t.spike = 0
	}
	if t.Accuracy() >= t.prof.TargetAcc {
		t.consecAbove++
	} else {
		t.consecAbove = 0
	}
	if t.consecAbove >= ConvergedEpochs {
		t.converged = true
	}
}

// RemainingSamples returns the oracle estimate of samples still needed to
// converge if training continues at batch B. Schedulers do NOT see this —
// they rely on the online predictor — but the simulator, the Optimus
// baseline's fitted speed model, and tests use it as ground truth.
// Returns +Inf when the job cannot converge at batch B.
func (t *Trainer) RemainingSamples(B int) float64 {
	if t.converged {
		return 0
	}
	effTarget := EffectiveEpochsToTarget(t.prof, B, t.lrScaled)
	if math.IsInf(effTarget, 1) {
		return math.Inf(1)
	}
	penalty := EpochPenalty(t.prof, B, t.lrScaled)
	effRemaining := effTarget - t.effEpochs
	var epochs float64
	if effRemaining > 0 {
		epochs = effRemaining * penalty
	}
	// Plus the confirmation epochs of the stopping rule.
	epochs += float64(ConvergedEpochs - t.consecAbove)
	if epochs < 0 {
		epochs = 0
	}
	return epochs * float64(t.datasetSize)
}

// TrueProgress returns the oracle training progress ρ ∈ (0, 1]: processed
// samples over processed-plus-remaining. This is the quantity the online
// Beta predictor estimates.
func (t *Trainer) TrueProgress() float64 {
	if t.converged {
		return 1
	}
	rem := t.RemainingSamples(t.batch)
	if math.IsInf(rem, 1) {
		return 0
	}
	total := float64(t.processed) + rem
	if total <= 0 {
		return 0
	}
	return float64(t.processed) / total
}
