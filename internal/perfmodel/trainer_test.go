package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestTrainer(t *testing.T, batch int, lrScaled bool) *Trainer {
	t.Helper()
	tr, err := NewTrainer(CIFARResNet50(), 40000, batch, lrScaled)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrainerValidation(t *testing.T) {
	p := CIFARResNet50()
	if _, err := NewTrainer(p, 0, 256, true); err == nil {
		t.Error("zero dataset accepted")
	}
	if _, err := NewTrainer(p, 1000, 0, true); err == nil {
		t.Error("zero batch accepted")
	}
	bad := p
	bad.MaxPerGPU = 0
	if _, err := NewTrainer(bad, 1000, 256, true); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestTrainerConvergesNearPredictedEpochs(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	want := EpochsToTarget(tr.Profile(), 256, true) + ConvergedEpochs
	var epochs int
	for !tr.Converged() && epochs < 10000 {
		tr.AdvanceEpoch()
		epochs++
	}
	if !tr.Converged() {
		t.Fatal("trainer never converged")
	}
	if math.Abs(float64(epochs)-want) > 2 {
		t.Errorf("converged after %d epochs, analytic prediction %v", epochs, want)
	}
}

func TestTrainerMonotoneProgress(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	prevLoss := math.Inf(1)
	prevAcc := -1.0
	for i := 0; i < 30; i++ {
		tr.AdvanceEpoch()
		if l := tr.Loss(); l >= prevLoss {
			t.Fatalf("loss should decrease monotonically without rescale: %v -> %v", prevLoss, l)
		} else {
			prevLoss = l
		}
		if a := tr.Accuracy(); a <= prevAcc {
			t.Fatalf("accuracy should increase monotonically: %v -> %v", prevAcc, a)
		} else {
			prevAcc = a
		}
	}
}

func TestTrainerAbruptRescaleSpikesLoss(t *testing.T) {
	// Figure 13: scale 256 -> 4096 at epoch 30 causes a loss spike that
	// takes several epochs to recover.
	tr := newTestTrainer(t, 256, true)
	for i := 0; i < 30; i++ {
		tr.AdvanceEpoch()
	}
	before := tr.Loss()
	tr.SetBatch(4096)
	after := tr.Loss()
	if after <= before+0.2 {
		t.Fatalf("abrupt 16x rescale should spike loss: %v -> %v", before, after)
	}
	// Recovery takes more than a couple of epochs.
	tr.AdvanceEpoch()
	tr.AdvanceEpoch()
	if tr.Loss() <= before {
		t.Errorf("loss recovered suspiciously fast after spike")
	}
	// But eventually decays back below the pre-spike level.
	for i := 0; i < 40; i++ {
		tr.AdvanceEpoch()
	}
	if tr.Loss() >= before {
		t.Errorf("loss never recovered: %v >= %v", tr.Loss(), before)
	}
}

func TestTrainerGradualRescaleIsSmooth(t *testing.T) {
	// Figure 14: 256 -> 1024 -> 4096 in steps of 4x stays smooth.
	tr := newTestTrainer(t, 256, true)
	for i := 0; i < 30; i++ {
		tr.AdvanceEpoch()
	}
	before := tr.Loss()
	tr.SetBatch(1024) // 4x = AbruptFactor boundary, still gradual
	if got := tr.Loss(); got > before+1e-9 {
		t.Errorf("gradual rescale spiked loss: %v -> %v", before, got)
	}
	for i := 0; i < 30; i++ {
		tr.AdvanceEpoch()
	}
	before = tr.Loss()
	tr.SetBatch(4096)
	if got := tr.Loss(); got > before+1e-9 {
		t.Errorf("second gradual rescale spiked loss: %v -> %v", before, got)
	}
}

func TestTrainerAbruptRescaleDelaysConvergence(t *testing.T) {
	run := func(abrupt bool) int {
		tr := newTestTrainer(t, 256, true)
		epochs := 0
		for !tr.Converged() && epochs < 10000 {
			if abrupt && epochs == 10 {
				tr.SetBatch(8192)
				tr.SetBatch(256) // bounce back: progress was lost either way
			}
			tr.AdvanceEpoch()
			epochs++
		}
		return epochs
	}
	smooth := run(false)
	spiked := run(true)
	if spiked <= smooth {
		t.Errorf("abrupt rescale should delay convergence: smooth=%d spiked=%d", smooth, spiked)
	}
}

func TestTrainerProcessedAccounting(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	tr.AdvanceSamples(100)
	if got := tr.Processed(); got != 100 {
		t.Errorf("Processed = %d, want 100", got)
	}
	tr.AdvanceSamples(int64(tr.DatasetSize()))
	if got := tr.Processed(); got != int64(tr.DatasetSize())+100 {
		t.Errorf("Processed = %d, want %d", got, tr.DatasetSize()+100)
	}
	wantEpochs := float64(tr.Processed()) / float64(tr.DatasetSize())
	if math.Abs(tr.WallEpochs()-wantEpochs) > 1e-6 {
		t.Errorf("WallEpochs = %v, want %v", tr.WallEpochs(), wantEpochs)
	}
}

func TestTrainerPartialEpochsCrossBoundaries(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	third := int64(tr.DatasetSize() / 4)
	for i := 0; i < 8; i++ { // two full epochs in quarters
		tr.AdvanceSamples(third)
	}
	if math.Abs(tr.WallEpochs()-2) > 1e-9 {
		t.Errorf("WallEpochs = %v, want 2", tr.WallEpochs())
	}
}

func TestTrainerRemainingSamplesShrinks(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	prev := tr.RemainingSamples(256)
	for i := 0; i < 20; i++ {
		tr.AdvanceEpoch()
		cur := tr.RemainingSamples(256)
		if cur >= prev {
			t.Fatalf("remaining samples should shrink: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestTrainerRemainingSamplesZeroAfterConvergence(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	for !tr.Converged() {
		tr.AdvanceEpoch()
	}
	if got := tr.RemainingSamples(256); got != 0 {
		t.Errorf("RemainingSamples after convergence = %v, want 0", got)
	}
	if got := tr.TrueProgress(); got != 1 {
		t.Errorf("TrueProgress after convergence = %v, want 1", got)
	}
}

func TestTrainerTrueProgressInUnitInterval(t *testing.T) {
	f := func(seed uint8) bool {
		tr, err := NewTrainer(CIFARResNet50(), 40000, 256, true)
		if err != nil {
			return false
		}
		steps := int(seed)%50 + 1
		for i := 0; i < steps && !tr.Converged(); i++ {
			tr.AdvanceEpoch()
			p := tr.TrueProgress()
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTrainerSetBatchIgnoresDegenerate(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	tr.SetBatch(0)
	if tr.Batch() != 256 {
		t.Error("SetBatch(0) changed batch")
	}
	tr.SetBatch(-5)
	if tr.Batch() != 256 {
		t.Error("SetBatch(-5) changed batch")
	}
	tr.SetBatch(256) // no-op must not spike
	if tr.Loss() != LossAt(tr.Profile(), 0, 0) {
		t.Error("no-op SetBatch affected loss")
	}
}

func TestTrainerLossRatioBounds(t *testing.T) {
	tr := newTestTrainer(t, 256, true)
	if got := tr.LossRatio(); got != 0 {
		t.Errorf("initial LossRatio = %v, want 0", got)
	}
	for i := 0; i < 50; i++ {
		tr.AdvanceEpoch()
	}
	r := tr.LossRatio()
	if r <= 0 || r >= 1 {
		t.Errorf("LossRatio after training = %v, want in (0,1)", r)
	}
}

func TestTrainerLargerBatchConvergesInFewerWallClockSteps(t *testing.T) {
	// The point of elastic batching: at batch 2048 with LR scaling the job
	// needs roughly the same number of epochs, i.e. far fewer steps, so a
	// well-placed large-batch job finishes faster in wall-clock.
	small := newTestTrainer(t, 256, true)
	large := newTestTrainer(t, 2048, true)
	epochsSmall, epochsLarge := 0, 0
	for !small.Converged() {
		small.AdvanceEpoch()
		epochsSmall++
	}
	for !large.Converged() {
		large.AdvanceEpoch()
		epochsLarge++
	}
	if diff := math.Abs(float64(epochsSmall - epochsLarge)); diff > 3 {
		t.Errorf("LR-scaled epochs should match: small=%d large=%d", epochsSmall, epochsLarge)
	}
}
