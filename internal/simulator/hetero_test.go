package simulator

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

// mixedConfig builds a small mixed-fleet config: rack 0 = two 4-GPU
// servers, rack 1 = two 2-GPU servers (12 GPUs).
func mixedConfig(t *testing.T, n int) Config {
	t.Helper()
	topo, err := cluster.ParseShape("2x4,2x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(smallTrace(t, n))
	cfg.Topo = topo
	return cfg
}

func TestMixedFleetCompletesAllJobs(t *testing.T) {
	cfg := mixedConfig(t, 10)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("truncated with %d unfinished", res.Unfinished)
	}
	if res.TotalGPUs != 12 {
		t.Errorf("TotalGPUs = %d, want 12", res.TotalGPUs)
	}
}

func TestRackDrainEvictsWholeRack(t *testing.T) {
	cfg := mixedConfig(t, 10)
	cfg.RecordEvents = true
	// Drain rack 0 (8 of 12 GPUs) early, while jobs are running, and
	// power it back later.
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 40, Kind: scenario.CapacityRackDrain, Rack: 0},
		{Time: 400, Kind: scenario.CapacityJoin, Restocks: scenario.CapacityRackDrain},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents != 2 {
		t.Errorf("CapacityEvents = %d, want 2 (drain + restock)", res.CapacityEvents)
	}
	if res.Evictions == 0 || res.RackDrainEvictions == 0 {
		t.Errorf("rack drain evicted nothing (evictions=%d rack=%d)", res.Evictions, res.RackDrainEvictions)
	}
	if res.RackDrainEvictions > res.Evictions {
		t.Errorf("RackDrainEvictions %d exceeds Evictions %d", res.RackDrainEvictions, res.Evictions)
	}
	// The capacity event log must show 12 → 4 → 12.
	var caps []int
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity {
			caps = append(caps, ev.GPUs)
		}
	}
	if len(caps) != 2 || caps[0] != 4 || caps[1] != 12 {
		t.Errorf("capacity trajectory = %v, want [4 12]", caps)
	}
	if res.Truncated {
		t.Errorf("run truncated with %d unfinished", res.Unfinished)
	}
}

func TestRackDrainOfAbsentRackIsNoOp(t *testing.T) {
	cfg := mixedConfig(t, 6)
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 40, Kind: scenario.CapacityRackDrain, Rack: 9},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents != 0 || res.Evictions != 0 {
		t.Errorf("absent-rack drain changed the world: events=%d evictions=%d",
			res.CapacityEvents, res.Evictions)
	}
}

func TestRackDrainClampsAtMinServersFloor(t *testing.T) {
	cfg := mixedConfig(t, 6)
	cfg.MinServers = 3
	cfg.RecordEvents = true
	// Rack 0 has servers 0 and 1; the floor allows removing only one.
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 40, Kind: scenario.CapacityRackDrain, Rack: 0},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity && ev.GPUs != 8 {
			t.Errorf("clamped drain left %d GPUs, want 8 (one 4-GPU server removed)", ev.GPUs)
		}
	}
	if res.CapacityEvents != 1 {
		t.Errorf("CapacityEvents = %d, want 1", res.CapacityEvents)
	}
}

func TestRackDrainDuringElasticScaleUp(t *testing.T) {
	cfg := mixedConfig(t, 10)
	cfg.RecordEvents = true
	// A scale-up of two 4-GPU servers lands (in a fresh rack 2) just
	// before rack 1 drains; the drain must hit only rack 1's servers and
	// the restock must return exactly rack 1's two 2-GPU machines.
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 30, Kind: scenario.CapacityJoin, Servers: 2, GPUs: 4},
		{Time: 60, Kind: scenario.CapacityRackDrain, Rack: 1},
		{Time: 300, Kind: scenario.CapacityJoin, Restocks: scenario.CapacityRackDrain},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	var caps []int
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity {
			caps = append(caps, ev.GPUs)
		}
	}
	// 12 → +8 join = 20 → −4 drain = 16 → +4 restock = 20.
	want := []int{20, 16, 20}
	if len(caps) != len(want) {
		t.Fatalf("capacity trajectory = %v, want %v", caps, want)
	}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("capacity trajectory = %v, want %v", caps, want)
		}
	}
	if res.Truncated {
		t.Errorf("run truncated with %d unfinished", res.Unfinished)
	}
}

func TestPlannedJoinWithExplicitGPUs(t *testing.T) {
	cfg := mixedConfig(t, 6)
	cfg.RecordEvents = true
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 40, Kind: scenario.CapacityJoin, Servers: 1, GPUs: 16},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity && ev.GPUs != 28 {
			t.Errorf("join grew to %d GPUs, want 28 (12 + one 16-GPU box)", ev.GPUs)
		}
	}
}

// TestMixedDeterminism pins that a mixed-fleet run with a rack drain is
// reproducible event for event.
func TestMixedDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := mixedConfig(t, 8)
		cfg.RecordEvents = true
		cfg.Capacity = []scenario.CapacityEvent{
			{Time: 50, Kind: scenario.CapacityRackDrain, Rack: 0},
			{Time: 500, Kind: scenario.CapacityJoin, Restocks: scenario.CapacityRackDrain},
		}
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || len(a.Events) != len(b.Events) ||
		a.RackDrainEvictions != b.RackDrainEvictions {
		t.Fatalf("mixed-fleet run not deterministic: %v/%d/%d vs %v/%d/%d",
			a.Makespan, len(a.Events), a.RackDrainEvictions,
			b.Makespan, len(b.Events), b.RackDrainEvictions)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
