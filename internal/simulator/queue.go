package simulator

import "sync"

// eventLess orders the simulation timeline: time, then kind, then job,
// then sequence. The order is a strict total order over every event a run
// can enqueue — arrivals are unique per job, epoch ends unique per
// (job, seq), ticks form a single chain, capacity events are unique per
// timeline index, and source wakes (seq -1) form a single chain like
// ticks (at most one in flight; a run uses either the timeline path or
// the source path, never both) — so any correct priority queue pops the
// identical sequence and the queue implementation can never change
// results.
func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.job != b.job {
		return a.job < b.job
	}
	// Same-time capacity events must apply in timeline index order.
	return a.seq < b.seq
}

// eventQueue is the simulator's priority queue: an index-based 4-ary
// min-heap over a flat event slice. Compared to container/heap it trades
// the interface indirection (an allocation per Push/Pop to box the event,
// plus dynamic dispatch per comparison) for direct sift loops, and the
// wider fan-out halves the tree depth — pops touch fewer cache lines on
// the simulation-length queues a long trace builds.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts e, sifting it up from the tail.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(q.ev[i], q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev = q.ev[:n]
	// Sift the relocated tail element down: swap with the smallest child
	// while any child is smaller.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(q.ev[c], q.ev[min]) {
				min = c
			}
		}
		if !eventLess(q.ev[min], q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}

// eventQueuePool recycles queue backing arrays across runs: a parallel
// experiment sweep multiplies allocation pressure, and the queue is the
// one simulation-length buffer every run needs.
var eventQueuePool = sync.Pool{New: func() any { return new(eventQueue) }}
