package simulator

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// fifoTest is a minimal FIFO gang scheduler local to the test package so
// the simulator can be exercised without importing internal/schedulers
// (which imports this package).
type fifoTest struct{ cost CostKind }

func (f *fifoTest) Name() string          { return "fifo-test" }
func (f *fifoTest) TickInterval() float64 { return 0 }
func (f *fifoTest) CostKind() CostKind    { return f.cost }
func (f *fifoTest) ManagesLR() bool       { return true }
func (f *fifoTest) Decide(tr Trigger, v *View) *cluster.Schedule {
	s := v.Current.Clone()
	changed := false
	for _, j := range v.Jobs {
		if j.Running {
			continue
		}
		idle := s.IdleGPUs()
		if len(idle) < j.ReqGPUs {
			break
		}
		per := j.ReqBatch / j.ReqGPUs
		if per > j.Task.Profile.MaxPerGPU {
			per = j.Task.Profile.MaxPerGPU
		}
		if per < 1 {
			per = 1
		}
		for i := 0; i < j.ReqGPUs; i++ {
			s.SetSlot(idle[i], j.ID, per)
		}
		changed = true
	}
	if !changed {
		return nil
	}
	return s
}

func smallTrace(t *testing.T, n int) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.Config{Seed: 3, NumJobs: n, MeanInterarrival: 20, MaxReqGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallConfig(t *testing.T, n int) Config {
	t.Helper()
	cfg := DefaultConfig(smallTrace(t, n))
	cfg.Topo = cluster.Uniform(4, 4)
	return cfg
}

func TestRunCompletesAllJobs(t *testing.T) {
	cfg := smallConfig(t, 12)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("simulation truncated with %d unfinished jobs", res.Unfinished)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("completed %d jobs, want 12", len(res.Jobs))
	}
}

func TestMetricsConsistency(t *testing.T) {
	cfg := smallConfig(t, 10)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Jobs {
		if m.Done < m.Submit {
			t.Errorf("job %d done %v before submit %v", m.ID, m.Done, m.Submit)
		}
		if math.Abs(m.JCT-(m.Done-m.Submit)) > 1e-6 {
			t.Errorf("job %d JCT %v != done-submit %v", m.ID, m.JCT, m.Done-m.Submit)
		}
		if m.Exec < 0 || m.Queue < -1e-6 {
			t.Errorf("job %d negative components: exec %v queue %v", m.ID, m.Exec, m.Queue)
		}
		if math.Abs(m.JCT-(m.Exec+m.Queue)) > 1e-6 {
			t.Errorf("job %d JCT %v != exec %v + queue %v", m.ID, m.JCT, m.Exec, m.Queue)
		}
		if m.Start < m.Submit {
			t.Errorf("job %d started %v before submit %v", m.ID, m.Start, m.Submit)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t, 8)
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanJCT() != b.MeanJCT() || a.Makespan != b.Makespan {
		t.Errorf("nondeterministic: JCT %v vs %v, makespan %v vs %v",
			a.MeanJCT(), b.MeanJCT(), a.Makespan, b.Makespan)
	}
}

func TestCheckpointCostsSlowJobsDown(t *testing.T) {
	cfg := smallConfig(t, 8)
	cheap, err := Run(cfg, &fifoTest{cost: CostElastic})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(cfg, &fifoTest{cost: CostCheckpoint})
	if err != nil {
		t.Fatal(err)
	}
	if costly.MeanJCT() <= cheap.MeanJCT() {
		t.Errorf("checkpoint-mode mean JCT (%v) should exceed elastic (%v)",
			costly.MeanJCT(), cheap.MeanJCT())
	}
}

func TestRejectsEmptyTrace(t *testing.T) {
	cfg := DefaultConfig(&workload.Trace{})
	if _, err := Run(cfg, &fifoTest{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRejectsScheduleWithUnknownJob(t *testing.T) {
	cfg := smallConfig(t, 3)
	bad := &badScheduler{}
	if _, err := Run(cfg, bad); err == nil {
		t.Error("schedule referencing unknown job accepted")
	}
}

type badScheduler struct{}

func (b *badScheduler) Name() string          { return "bad" }
func (b *badScheduler) TickInterval() float64 { return 0 }
func (b *badScheduler) CostKind() CostKind    { return CostElastic }
func (b *badScheduler) ManagesLR() bool       { return true }
func (b *badScheduler) Decide(tr Trigger, v *View) *cluster.Schedule {
	s := v.Current.Clone()
	s.SetSlot(0, 9999, 64) // job 9999 does not exist
	return s
}

func TestRejectsOverMemoryBatch(t *testing.T) {
	cfg := smallConfig(t, 3)
	if _, err := Run(cfg, &overMemScheduler{}); err == nil {
		t.Error("schedule with over-memory local batch accepted")
	}
}

type overMemScheduler struct{}

func (o *overMemScheduler) Name() string          { return "overmem" }
func (o *overMemScheduler) TickInterval() float64 { return 0 }
func (o *overMemScheduler) CostKind() CostKind    { return CostElastic }
func (o *overMemScheduler) ManagesLR() bool       { return true }
func (o *overMemScheduler) Decide(tr Trigger, v *View) *cluster.Schedule {
	for _, j := range v.Jobs {
		if !j.Running {
			s := v.Current.Clone()
			s.SetSlot(0, j.ID, j.Task.Profile.MaxPerGPU*10)
			return s
		}
	}
	return nil
}

func TestIdleSchedulerTruncates(t *testing.T) {
	// A scheduler that never allocates leaves all jobs unfinished.
	cfg := smallConfig(t, 4)
	res, err := Run(cfg, &nilScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Unfinished != 4 {
		t.Errorf("expected 4 unfinished jobs, got truncated=%v unfinished=%d", res.Truncated, res.Unfinished)
	}
}

type nilScheduler struct{}

func (n *nilScheduler) Name() string                                 { return "nil" }
func (n *nilScheduler) TickInterval() float64                        { return 0 }
func (n *nilScheduler) CostKind() CostKind                           { return CostElastic }
func (n *nilScheduler) ManagesLR() bool                              { return true }
func (n *nilScheduler) Decide(tr Trigger, v *View) *cluster.Schedule { return nil }

func TestTickSchedulerGetsPeriodicCalls(t *testing.T) {
	cfg := smallConfig(t, 6)
	ts := &tickCounter{fifoTest: fifoTest{}}
	res, err := Run(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated")
	}
	if ts.ticks == 0 {
		t.Error("tick scheduler never received a tick")
	}
}

type tickCounter struct {
	fifoTest
	ticks int
}

func (tc *tickCounter) TickInterval() float64 { return 60 }
func (tc *tickCounter) Decide(tr Trigger, v *View) *cluster.Schedule {
	if tr == TriggerTick {
		tc.ticks++
	}
	return tc.fifoTest.Decide(tr, v)
}

func TestViewJobOf(t *testing.T) {
	v := &View{Jobs: []JobView{{ID: 3}, {ID: 7}}}
	if v.JobOf(7) == nil || v.JobOf(7).ID != 7 {
		t.Error("JobOf(7) failed")
	}
	if v.JobOf(99) != nil {
		t.Error("JobOf(absent) should be nil")
	}
}

func TestTriggerString(t *testing.T) {
	names := map[Trigger]string{
		TriggerArrival:    "arrival",
		TriggerEpochEnd:   "epoch-end",
		TriggerCompletion: "completion",
		TriggerTick:       "tick",
		Trigger(42):       "unknown",
	}
	for tr, want := range names {
		if got := tr.String(); got != want {
			t.Errorf("Trigger(%d).String() = %q, want %q", tr, got, want)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Jobs: []JobMetric{
		{JCT: 10, Exec: 6, Queue: 4},
		{JCT: 20, Exec: 12, Queue: 8},
	}}
	if got := r.MeanJCT(); got != 15 {
		t.Errorf("MeanJCT = %v", got)
	}
	if got := r.MeanExec(); got != 9 {
		t.Errorf("MeanExec = %v", got)
	}
	if got := r.MeanQueue(); got != 6 {
		t.Errorf("MeanQueue = %v", got)
	}
	if got := r.JCTs(); len(got) != 2 || got[0] != 10 {
		t.Errorf("JCTs = %v", got)
	}
	empty := &Result{}
	if empty.MeanJCT() != 0 {
		t.Error("empty result mean should be 0")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cfg := smallConfig(t, 8)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v outside (0,1]", u)
	}
	// Busy GPU-seconds must equal the sum over jobs of exec × GPUs held;
	// with fixed-size FIFO each job holds ReqGPUs for its whole exec time.
	var want float64
	byID := map[int]int{}
	for _, j := range cfg.Trace.Jobs {
		byID[j.ID] = j.ReqGPUs
	}
	for _, m := range res.Jobs {
		want += m.Exec * float64(byID[int(m.ID)])
	}
	if math.Abs(res.BusyGPUSeconds-want)/want > 1e-6 {
		t.Errorf("BusyGPUSeconds = %v, want %v", res.BusyGPUSeconds, want)
	}
	if (&Result{}).Utilization() != 0 {
		t.Error("empty result utilization should be 0")
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	cfg := smallConfig(t, 4)
	cfg.RecordEvents = true
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events recorded")
	}
	counts := map[EventKind]int{}
	prev := -1.0
	for _, ev := range res.Events {
		counts[ev.Kind]++
		if ev.Time < prev {
			t.Fatalf("event log out of order: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
	if counts[EventArrive] != 4 || counts[EventComplete] != 4 {
		t.Errorf("lifecycle counts wrong: %+v", counts)
	}
	if counts[EventStart] < 4 {
		t.Errorf("every job must start at least once: %+v", counts)
	}
	// Default config must not record.
	cfg2 := smallConfig(t, 2)
	res2, err := Run(cfg2, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Events) != 0 {
		t.Error("events recorded without RecordEvents")
	}
}

// failureTimeline removes one server shortly into the run and repairs it
// later — early enough that jobs are guaranteed to be holding GPUs.
func failureTimeline(fail, repair float64) []scenario.CapacityEvent {
	return []scenario.CapacityEvent{
		{Time: fail, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.1},
		{Time: repair, Kind: scenario.CapacityJoin, Servers: 1, Restocks: scenario.CapacityFail},
	}
}

func TestNodeFailureEvictsAndRequeues(t *testing.T) {
	cfg := smallConfig(t, 12)
	cfg.RecordEvents = true
	// Three failures spread across the run, each repaired: jobs must be
	// evicted but every one of them still completes.
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 30, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.0},
		{Time: 200, Kind: scenario.CapacityJoin, Servers: 1},
		{Time: 260, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.5},
		{Time: 500, Kind: scenario.CapacityJoin, Servers: 1},
		{Time: 560, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.9},
		{Time: 900, Kind: scenario.CapacityJoin, Servers: 1},
	}
	cfg.MinServers = 2
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Error("node failures under a loaded cluster must evict at least one job")
	}
	if res.Truncated || len(res.Jobs) != 12 {
		t.Fatalf("evicted jobs must requeue and complete: %d done, truncated=%v",
			len(res.Jobs), res.Truncated)
	}
	if res.CapacityEvents != 6 {
		t.Errorf("CapacityEvents = %d, want 6", res.CapacityEvents)
	}
	evicts, capEvents := 0, 0
	for _, ev := range res.Events {
		switch ev.Kind {
		case EventEvict:
			evicts++
		case EventCapacity:
			capEvents++
			if ev.GPUs <= 0 {
				t.Errorf("capacity event with nonpositive GPU total: %+v", ev)
			}
		}
	}
	if evicts != res.Evictions || capEvents != res.CapacityEvents {
		t.Errorf("event log (%d evicts, %d capacity) disagrees with counters (%d, %d)",
			evicts, capEvents, res.Evictions, res.CapacityEvents)
	}
}

func TestCapacityJoinGrowsCluster(t *testing.T) {
	// Start with 1 server: the trace's 4-GPU gangs can't run until the
	// join doubles the cluster.
	cfg := smallConfig(t, 6)
	cfg.Topo = cluster.Uniform(1, 4)
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 100, Kind: scenario.CapacityJoin, Servers: 3},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("join never reached the scheduler: %d unfinished", res.Unfinished)
	}
	if res.TotalGPUs != 4 {
		t.Errorf("TotalGPUs should report the initial capacity, got %d", res.TotalGPUs)
	}
	// The capacity integral must exceed the initial-capacity baseline:
	// 12 extra GPUs were online from t=100 to the makespan.
	base := res.Makespan * 4
	if res.CapacityGPUSeconds <= base {
		t.Errorf("CapacityGPUSeconds %v not above fixed-capacity baseline %v",
			res.CapacityGPUSeconds, base)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v outside (0,1]", u)
	}
}

func TestCapacityRemovalRespectsMinServers(t *testing.T) {
	cfg := smallConfig(t, 4)
	cfg.MinServers = 4 // equal to the starting size: removals are no-ops
	cfg.Capacity = failureTimeline(20, 40)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 0 {
		t.Errorf("removal below MinServers must be skipped, got %d evictions", res.Evictions)
	}
	if res.Truncated {
		t.Error("run truncated")
	}
	// The skipped failure's repair must be skipped too: a server that
	// never left cannot rejoin, so the world never actually changed.
	if res.CapacityEvents != 0 {
		t.Errorf("clamped timeline applied %d capacity events, want 0", res.CapacityEvents)
	}
	if want := res.Makespan * 16; math.Abs(res.CapacityGPUSeconds-want) > 1e-6 {
		t.Errorf("capacity integral %v, want fixed-size %v — phantom repair grew the cluster",
			res.CapacityGPUSeconds, want)
	}
}

func TestSameTimeCapacityEventsApplyInTimelineOrder(t *testing.T) {
	// A leave and a join at the identical timestamp: the validated
	// timeline order (leave first) must hold, so the capacity log reads
	// 12 GPUs then 20 — never 20 then 16.
	cfg := smallConfig(t, 3)
	cfg.RecordEvents = true
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 100, Kind: scenario.CapacityLeave, Servers: 1, Pick: 0.999},
		{Time: 100, Kind: scenario.CapacityJoin, Servers: 2},
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	var gpus []int
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity {
			gpus = append(gpus, ev.GPUs)
		}
	}
	if len(gpus) != 2 || gpus[0] != 12 || gpus[1] != 20 {
		t.Errorf("capacity sequence %v, want [12 20]", gpus)
	}
}

func TestRestockNeverExceedsWhatWasRemoved(t *testing.T) {
	// Two failures but only one can be removed (floor at 3 of 4
	// servers); both repairs fire, yet the cluster must end back at its
	// original size, not above it.
	cfg := smallConfig(t, 3)
	cfg.RecordEvents = true
	cfg.MinServers = 3
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 20, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.1},
		{Time: 30, Kind: scenario.CapacityFail, Servers: 1, Pick: 0.1}, // clamped
		{Time: 60, Kind: scenario.CapacityJoin, Servers: 1, Restocks: scenario.CapacityFail},
		{Time: 70, Kind: scenario.CapacityJoin, Servers: 1, Restocks: scenario.CapacityFail}, // phantom
	}
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for _, ev := range res.Events {
		if ev.Kind == EventCapacity {
			last = ev.GPUs
		}
	}
	if last != 16 {
		t.Errorf("cluster ended at %d GPUs, want the original 16", last)
	}
	if res.CapacityEvents != 2 {
		t.Errorf("CapacityEvents = %d, want 2 (one real failure, one real repair)", res.CapacityEvents)
	}
}

func TestCapacityScenarioDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t, 8)
		cfg.Capacity = failureTimeline(25, 300)
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanJCT() != b.MeanJCT() || a.Makespan != b.Makespan || a.Evictions != b.Evictions {
		t.Errorf("nondeterministic under capacity events: JCT %v vs %v, evictions %d vs %d",
			a.MeanJCT(), b.MeanJCT(), a.Evictions, b.Evictions)
	}
}

func TestCapacityTimelineMustBeSorted(t *testing.T) {
	cfg := smallConfig(t, 2)
	cfg.Capacity = []scenario.CapacityEvent{
		{Time: 50, Kind: scenario.CapacityJoin},
		{Time: 10, Kind: scenario.CapacityFail},
	}
	if _, err := Run(cfg, &fifoTest{}); err == nil {
		t.Error("unsorted capacity timeline accepted")
	}
}

func TestEvictedJobAccruesQueueNotExec(t *testing.T) {
	cfg := smallConfig(t, 3)
	cfg.RecordEvents = true
	cfg.Capacity = failureTimeline(15, 600)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Jobs {
		if math.Abs(m.JCT-(m.Exec+m.Queue)) > 1e-6 {
			t.Errorf("job %d JCT %v != exec %v + queue %v after eviction",
				m.ID, m.JCT, m.Exec, m.Queue)
		}
	}
}
