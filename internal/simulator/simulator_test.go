package simulator

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// fifoTest is a minimal FIFO gang scheduler local to the test package so
// the simulator can be exercised without importing internal/schedulers
// (which imports this package).
type fifoTest struct{ cost CostKind }

func (f *fifoTest) Name() string          { return "fifo-test" }
func (f *fifoTest) TickInterval() float64 { return 0 }
func (f *fifoTest) CostKind() CostKind    { return f.cost }
func (f *fifoTest) ManagesLR() bool       { return true }
func (f *fifoTest) Decide(tr Trigger, v *View) *cluster.Schedule {
	s := v.Current.Clone()
	changed := false
	for _, j := range v.Jobs {
		if j.Running {
			continue
		}
		idle := s.IdleGPUs()
		if len(idle) < j.ReqGPUs {
			break
		}
		per := j.ReqBatch / j.ReqGPUs
		if per > j.Task.Profile.MaxPerGPU {
			per = j.Task.Profile.MaxPerGPU
		}
		if per < 1 {
			per = 1
		}
		for i := 0; i < j.ReqGPUs; i++ {
			s.SetSlot(idle[i], j.ID, per)
		}
		changed = true
	}
	if !changed {
		return nil
	}
	return s
}

func smallTrace(t *testing.T, n int) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.Config{Seed: 3, NumJobs: n, MeanInterarrival: 20, MaxReqGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallConfig(t *testing.T, n int) Config {
	t.Helper()
	cfg := DefaultConfig(smallTrace(t, n))
	cfg.Topo = cluster.Topology{Servers: 4, GPUsPerServer: 4}
	return cfg
}

func TestRunCompletesAllJobs(t *testing.T) {
	cfg := smallConfig(t, 12)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("simulation truncated with %d unfinished jobs", res.Unfinished)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("completed %d jobs, want 12", len(res.Jobs))
	}
}

func TestMetricsConsistency(t *testing.T) {
	cfg := smallConfig(t, 10)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Jobs {
		if m.Done < m.Submit {
			t.Errorf("job %d done %v before submit %v", m.ID, m.Done, m.Submit)
		}
		if math.Abs(m.JCT-(m.Done-m.Submit)) > 1e-6 {
			t.Errorf("job %d JCT %v != done-submit %v", m.ID, m.JCT, m.Done-m.Submit)
		}
		if m.Exec < 0 || m.Queue < -1e-6 {
			t.Errorf("job %d negative components: exec %v queue %v", m.ID, m.Exec, m.Queue)
		}
		if math.Abs(m.JCT-(m.Exec+m.Queue)) > 1e-6 {
			t.Errorf("job %d JCT %v != exec %v + queue %v", m.ID, m.JCT, m.Exec, m.Queue)
		}
		if m.Start < m.Submit {
			t.Errorf("job %d started %v before submit %v", m.ID, m.Start, m.Submit)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := smallConfig(t, 8)
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanJCT() != b.MeanJCT() || a.Makespan != b.Makespan {
		t.Errorf("nondeterministic: JCT %v vs %v, makespan %v vs %v",
			a.MeanJCT(), b.MeanJCT(), a.Makespan, b.Makespan)
	}
}

func TestCheckpointCostsSlowJobsDown(t *testing.T) {
	cfg := smallConfig(t, 8)
	cheap, err := Run(cfg, &fifoTest{cost: CostElastic})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(cfg, &fifoTest{cost: CostCheckpoint})
	if err != nil {
		t.Fatal(err)
	}
	if costly.MeanJCT() <= cheap.MeanJCT() {
		t.Errorf("checkpoint-mode mean JCT (%v) should exceed elastic (%v)",
			costly.MeanJCT(), cheap.MeanJCT())
	}
}

func TestRejectsEmptyTrace(t *testing.T) {
	cfg := DefaultConfig(&workload.Trace{})
	if _, err := Run(cfg, &fifoTest{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRejectsScheduleWithUnknownJob(t *testing.T) {
	cfg := smallConfig(t, 3)
	bad := &badScheduler{}
	if _, err := Run(cfg, bad); err == nil {
		t.Error("schedule referencing unknown job accepted")
	}
}

type badScheduler struct{}

func (b *badScheduler) Name() string          { return "bad" }
func (b *badScheduler) TickInterval() float64 { return 0 }
func (b *badScheduler) CostKind() CostKind    { return CostElastic }
func (b *badScheduler) ManagesLR() bool       { return true }
func (b *badScheduler) Decide(tr Trigger, v *View) *cluster.Schedule {
	s := v.Current.Clone()
	s.SetSlot(0, 9999, 64) // job 9999 does not exist
	return s
}

func TestRejectsOverMemoryBatch(t *testing.T) {
	cfg := smallConfig(t, 3)
	if _, err := Run(cfg, &overMemScheduler{}); err == nil {
		t.Error("schedule with over-memory local batch accepted")
	}
}

type overMemScheduler struct{}

func (o *overMemScheduler) Name() string          { return "overmem" }
func (o *overMemScheduler) TickInterval() float64 { return 0 }
func (o *overMemScheduler) CostKind() CostKind    { return CostElastic }
func (o *overMemScheduler) ManagesLR() bool       { return true }
func (o *overMemScheduler) Decide(tr Trigger, v *View) *cluster.Schedule {
	for _, j := range v.Jobs {
		if !j.Running {
			s := v.Current.Clone()
			s.SetSlot(0, j.ID, j.Task.Profile.MaxPerGPU*10)
			return s
		}
	}
	return nil
}

func TestIdleSchedulerTruncates(t *testing.T) {
	// A scheduler that never allocates leaves all jobs unfinished.
	cfg := smallConfig(t, 4)
	res, err := Run(cfg, &nilScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Unfinished != 4 {
		t.Errorf("expected 4 unfinished jobs, got truncated=%v unfinished=%d", res.Truncated, res.Unfinished)
	}
}

type nilScheduler struct{}

func (n *nilScheduler) Name() string                                 { return "nil" }
func (n *nilScheduler) TickInterval() float64                        { return 0 }
func (n *nilScheduler) CostKind() CostKind                           { return CostElastic }
func (n *nilScheduler) ManagesLR() bool                              { return true }
func (n *nilScheduler) Decide(tr Trigger, v *View) *cluster.Schedule { return nil }

func TestTickSchedulerGetsPeriodicCalls(t *testing.T) {
	cfg := smallConfig(t, 6)
	ts := &tickCounter{fifoTest: fifoTest{}}
	res, err := Run(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("truncated")
	}
	if ts.ticks == 0 {
		t.Error("tick scheduler never received a tick")
	}
}

type tickCounter struct {
	fifoTest
	ticks int
}

func (tc *tickCounter) TickInterval() float64 { return 60 }
func (tc *tickCounter) Decide(tr Trigger, v *View) *cluster.Schedule {
	if tr == TriggerTick {
		tc.ticks++
	}
	return tc.fifoTest.Decide(tr, v)
}

func TestViewJobOf(t *testing.T) {
	v := &View{Jobs: []JobView{{ID: 3}, {ID: 7}}}
	if v.JobOf(7) == nil || v.JobOf(7).ID != 7 {
		t.Error("JobOf(7) failed")
	}
	if v.JobOf(99) != nil {
		t.Error("JobOf(absent) should be nil")
	}
}

func TestTriggerString(t *testing.T) {
	names := map[Trigger]string{
		TriggerArrival:    "arrival",
		TriggerEpochEnd:   "epoch-end",
		TriggerCompletion: "completion",
		TriggerTick:       "tick",
		Trigger(42):       "unknown",
	}
	for tr, want := range names {
		if got := tr.String(); got != want {
			t.Errorf("Trigger(%d).String() = %q, want %q", tr, got, want)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Jobs: []JobMetric{
		{JCT: 10, Exec: 6, Queue: 4},
		{JCT: 20, Exec: 12, Queue: 8},
	}}
	if got := r.MeanJCT(); got != 15 {
		t.Errorf("MeanJCT = %v", got)
	}
	if got := r.MeanExec(); got != 9 {
		t.Errorf("MeanExec = %v", got)
	}
	if got := r.MeanQueue(); got != 6 {
		t.Errorf("MeanQueue = %v", got)
	}
	if got := r.JCTs(); len(got) != 2 || got[0] != 10 {
		t.Errorf("JCTs = %v", got)
	}
	empty := &Result{}
	if empty.MeanJCT() != 0 {
		t.Error("empty result mean should be 0")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	cfg := smallConfig(t, 8)
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v outside (0,1]", u)
	}
	// Busy GPU-seconds must equal the sum over jobs of exec × GPUs held;
	// with fixed-size FIFO each job holds ReqGPUs for its whole exec time.
	var want float64
	byID := map[int]int{}
	for _, j := range cfg.Trace.Jobs {
		byID[j.ID] = j.ReqGPUs
	}
	for _, m := range res.Jobs {
		want += m.Exec * float64(byID[int(m.ID)])
	}
	if math.Abs(res.BusyGPUSeconds-want)/want > 1e-6 {
		t.Errorf("BusyGPUSeconds = %v, want %v", res.BusyGPUSeconds, want)
	}
	if (&Result{}).Utilization() != 0 {
		t.Error("empty result utilization should be 0")
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	cfg := smallConfig(t, 4)
	cfg.RecordEvents = true
	res, err := Run(cfg, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events recorded")
	}
	counts := map[EventKind]int{}
	prev := -1.0
	for _, ev := range res.Events {
		counts[ev.Kind]++
		if ev.Time < prev {
			t.Fatalf("event log out of order: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
	if counts[EventArrive] != 4 || counts[EventComplete] != 4 {
		t.Errorf("lifecycle counts wrong: %+v", counts)
	}
	if counts[EventStart] < 4 {
		t.Errorf("every job must start at least once: %+v", counts)
	}
	// Default config must not record.
	cfg2 := smallConfig(t, 2)
	res2, err := Run(cfg2, &fifoTest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Events) != 0 {
		t.Error("events recorded without RecordEvents")
	}
}
