// Package simulator is the discrete-event substitute for the paper's
// 64-GPU testbed. It replays a workload trace against a pluggable
// scheduler: jobs arrive, train (through perfmodel trainers), report at
// epoch boundaries, get rescaled or preempted when the scheduler deploys a
// new schedule, pay the appropriate reconfiguration cost (elastic batch
// scaling vs checkpoint-based migration), and complete when their model
// converges. Per-job completion, execution and queuing times come out the
// other end — the raw material of Figures 15, 17 and 18.
package simulator

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/scaling"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// CostKind selects how a scheduler pays for reconfigurations.
type CostKind int

// Reconfiguration cost modes.
const (
	// CostElastic is ONES's checkpoint-free scaling (§3.3).
	CostElastic CostKind = iota
	// CostCheckpoint is conventional stop-save-restart migration.
	CostCheckpoint
)

// JobView is the scheduler-visible state of one alive job. It contains
// only observable quantities — no oracle knowledge of remaining work.
type JobView struct {
	ID       cluster.JobID
	Submit   float64
	Task     workload.Task
	ReqGPUs  int
	ReqBatch int

	Running    bool
	GPUs       int
	Batch      int
	Processed  int64
	WallEpochs float64
	Loss       float64
	Accuracy   float64
	ExecTime   float64 // accumulated seconds holding GPUs
	QueueTime  float64 // accumulated seconds waiting without GPUs
}

// View is the cluster snapshot handed to a scheduler at each decision
// point. The View and everything reachable from it (Jobs, Current) are
// only valid for the duration of the Decide call: the engine reuses the
// backing storage across decision points, so a scheduler must copy (e.g.
// Current.Clone()) anything it mutates or retains.
type View struct {
	Now     float64
	Topo    cluster.Topology
	Jobs    []JobView         // alive jobs, ascending ID
	Current *cluster.Schedule // deployed schedule (snapshot; mutations ignored)

	// Throughput is the measured-throughput oracle: schedulers in the
	// paper profile real-time throughput on the workers, which amounts to
	// evaluating the true performance model.
	Throughput func(id cluster.JobID, B, c, servers int) float64
}

// JobOf returns the view of the given job, or nil.
func (v *View) JobOf(id cluster.JobID) *JobView {
	for i := range v.Jobs {
		if v.Jobs[i].ID == id {
			return &v.Jobs[i]
		}
	}
	return nil
}

// Trigger describes why the scheduler is being consulted.
type Trigger int

// Decision-point triggers.
const (
	TriggerArrival Trigger = iota
	TriggerEpochEnd
	TriggerCompletion
	TriggerTick
	// TriggerCapacity fires after the cluster topology changed (servers
	// joined or left); evicted jobs are already back in the queue.
	TriggerCapacity
)

// String renders the trigger name.
func (t Trigger) String() string {
	switch t {
	case TriggerArrival:
		return "arrival"
	case TriggerEpochEnd:
		return "epoch-end"
	case TriggerCompletion:
		return "completion"
	case TriggerTick:
		return "tick"
	case TriggerCapacity:
		return "capacity"
	default:
		return "unknown"
	}
}

// CancelAware schedulers accept a cancellation probe before a run
// starts. A scheduler whose Decide can run long (ONES's evolutionary
// search) polls the probe and returns early — with whatever stale
// champion it has — once it reports true, so RunContext cancellation
// aborts mid-decision instead of waiting out the search. Early returns
// under cancellation may be nondeterministic; that is safe because a
// cancelled run's result is discarded, never cached.
type CancelAware interface {
	SetCancel(cancelled func() bool)
}

// Scheduler is the policy under test.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Decide is invoked at every decision point. Returning nil keeps the
	// current deployment; returning a schedule deploys it (with
	// reconfiguration costs charged to every job whose allocation
	// changed).
	Decide(trigger Trigger, view *View) *cluster.Schedule
	// TickInterval returns the scheduler's periodic rescheduling
	// interval in seconds, or 0 for purely event-driven operation.
	TickInterval() float64
	// CostKind reports how this scheduler executes reconfigurations.
	CostKind() CostKind
	// ManagesLR reports whether the scheduler jointly manages the
	// learning rate with the batch size (§3.3.2). ONES does; the
	// baselines treat jobs as black boxes, so their jobs train with the
	// user's LR — tuned for the reference batch — and pay the large-batch
	// convergence penalty of Figure 3 whenever the configured batch is
	// bigger.
	ManagesLR() bool
}

// JobMetric is the per-job outcome of a simulation.
type JobMetric struct {
	ID     cluster.JobID
	Name   string
	Submit float64
	Start  float64 // first time the job held a GPU (-1 if never ran)
	Done   float64
	JCT    float64 // Done − Submit
	Exec   float64 // seconds holding GPUs
	Queue  float64 // JCT − Exec
}

// EventKind classifies entries of the scheduling event log.
type EventKind string

// Event kinds.
const (
	EventArrive   EventKind = "arrive"
	EventStart    EventKind = "start"
	EventRescale  EventKind = "rescale"
	EventPreempt  EventKind = "preempt"
	EventComplete EventKind = "complete"
	// EventEvict marks a job forced off its GPUs by a server loss (as
	// opposed to a scheduler-chosen preemption). The job requeues.
	EventEvict EventKind = "evict"
	// EventCapacity marks a cluster size change; GPUs carries the new
	// total capacity.
	EventCapacity EventKind = "capacity"
)

// Event is one entry of the optional scheduling event log.
type Event struct {
	Time  float64
	Kind  EventKind
	Job   cluster.JobID
	GPUs  int // allocation after the event
	Batch int // global batch after the event
}

// Result aggregates a simulation run.
type Result struct {
	Scheduler string
	Jobs      []JobMetric
	Makespan  float64
	// Truncated is true when MaxTime elapsed with jobs still unfinished;
	// their metrics are absent.
	Truncated  bool
	Unfinished int
	// Reconfigs counts deployed allocation changes (rescale/preempt/start).
	Reconfigs int
	// Evictions counts jobs forced off their GPUs by server losses (the
	// scenario's failures, preemptions and drains), each later requeued.
	Evictions int
	// RackDrainEvictions is the subset of Evictions caused by rack-level
	// drains (scenario.CapacityRackDrain) — whole failure domains going
	// away at once, as opposed to single-server losses. The json tag
	// omits the zero so results from rack-free scenarios marshal exactly
	// as they did before racks existed (cached cells stay valid).
	RackDrainEvictions int `json:"RackDrainEvictions,omitempty"`
	// CapacityEvents counts applied cluster topology changes.
	CapacityEvents int
	// ScaleUps counts applied cluster growth events emitted by a reactive
	// autoscaler (scenario.OriginAutoscaler), ScaleDowns the removals, and
	// AutoscaleEvents their total. Planned timelines and chaos processes
	// never contribute. The json tags omit zeros so results from
	// controller-free runs marshal exactly as before (cached cells stay
	// valid).
	ScaleUps        int `json:"ScaleUps,omitempty"`
	ScaleDowns      int `json:"ScaleDowns,omitempty"`
	AutoscaleEvents int `json:"AutoscaleEvents,omitempty"`
	// BusyGPUSeconds accumulates Σ (seconds × GPUs held) over all jobs.
	BusyGPUSeconds float64
	// TotalGPUs is the initial cluster capacity, for reporting.
	TotalGPUs int
	// CapacityGPUSeconds integrates the (possibly elastic) capacity over
	// the run: ∫ totalGPUs(t) dt from zero to the makespan.
	CapacityGPUSeconds float64
	// Events is the scheduling event log (only when Config.RecordEvents).
	Events []Event
}

// Utilization returns the average fraction of the cluster busy between
// time zero and the makespan, against the capacity actually available at
// each instant (an elastic scenario shrinks the denominator while
// servers are away).
func (r *Result) Utilization() float64 {
	if r.CapacityGPUSeconds > 0 {
		return r.BusyGPUSeconds / r.CapacityGPUSeconds
	}
	if r.Makespan <= 0 || r.TotalGPUs <= 0 {
		return 0
	}
	return r.BusyGPUSeconds / (r.Makespan * float64(r.TotalGPUs))
}

// MeanJCT returns the average job completion time.
func (r *Result) MeanJCT() float64 { return meanOf(r.Jobs, func(m JobMetric) float64 { return m.JCT }) }

// MeanExec returns the average execution time.
func (r *Result) MeanExec() float64 {
	return meanOf(r.Jobs, func(m JobMetric) float64 { return m.Exec })
}

// MeanQueue returns the average queuing time.
func (r *Result) MeanQueue() float64 {
	return meanOf(r.Jobs, func(m JobMetric) float64 { return m.Queue })
}

func meanOf(jobs []JobMetric, f func(JobMetric) float64) float64 {
	if len(jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range jobs {
		s += f(j)
	}
	return s / float64(len(jobs))
}

// JCTs returns the per-job completion times ordered by job ID.
func (r *Result) JCTs() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.JCT
	}
	return out
}

// Config parameterizes a simulation run.
type Config struct {
	Topo      cluster.Topology
	Trace     *workload.Trace
	Net       perfmodel.Network
	Costs     scaling.CostModel
	MaxTime   float64 // simulated-seconds safety cap (0 ⇒ 1e7)
	WarmupSec float64 // seconds before a fresh job's throughput stabilizes (informational)
	// RecordEvents retains a per-job scheduling event log in the Result.
	RecordEvents bool
	// Capacity is the scenario's capacity timeline: servers joining and
	// leaving while the trace replays. Jobs holding GPUs on a removed
	// server are evicted and requeued. Empty ⇒ the cluster is fixed.
	Capacity []scenario.CapacityEvent
	// Source generalizes Capacity to state-dependent event producers
	// (reactive autoscalers, stochastic rack drains): the simulator
	// consults it at its requested wake times with a read-only
	// ClusterView and applies whatever events it returns. At most one of
	// Capacity and Source may be set. A bare *scenario.TimelineSource is
	// unwrapped onto the exact precomputed-timeline path, so wrapping a
	// timeline changes nothing about the run.
	Source scenario.CapacitySource
	// MinServers floors the cluster size; removals that would shrink it
	// below are skipped (0 ⇒ 1).
	MinServers int
}

// DefaultConfig returns a 64-GPU Longhorn-like configuration for the given
// trace.
func DefaultConfig(trace *workload.Trace) Config {
	return Config{
		Topo:    cluster.Longhorn(),
		Trace:   trace,
		Net:     perfmodel.DefaultNetwork(),
		Costs:   scaling.DefaultCostModel(),
		MaxTime: 1e7,
	}
}

// jobState tracks one job inside the engine.
type jobState struct {
	spec    workload.Job
	trainer *perfmodel.Trainer

	arrived bool
	done    bool

	gpus    int
	batch   int
	servers int

	firstStart  float64
	doneAt      float64
	exec        float64
	segStart    float64 // time the current accounting segment began
	pausedUntil float64 // reconfiguration pause
	fracSamples float64 // sub-sample progress carry
	seq         int     // epoch-event validity sequence
}

func (j *jobState) running() bool { return j.arrived && !j.done && j.gpus > 0 }

// event kinds.
type eventKind int

const (
	evArrival eventKind = iota
	evEpochEnd
	evTick
	evCapacity
)

type event struct {
	t    float64
	kind eventKind
	job  cluster.JobID
	seq  int // epoch-event validity sequence, or capacity-timeline index
}

// ctxPollEvery is how many simulation events pass between context
// checks in the main loop. Polling every event would also be correct,
// but a stride keeps the check invisible on the hot path while still
// bounding cancellation latency to ~1k cheap events (the expensive
// per-event work, ONES's evolution, polls its own probe and collapses
// to near-zero cost once cancelled, so the stride passes quickly).
const ctxPollEvery = 1024

// engine is the running simulation.
type engine struct {
	cfg   Config
	sched Scheduler
	ctx   context.Context
	polls int // events since the last ctx check

	now     float64
	topo    cluster.Topology // live topology (capacity events mutate it)
	jobs    map[cluster.JobID]*jobState
	order   []cluster.JobID // arrival order of alive job IDs
	current *cluster.Schedule
	events  *eventQueue

	// Decide-path buffers, reused across decision points so the hot loop
	// does not re-allocate a View, job slice and schedule clone per event.
	view         View
	viewSched    *cluster.Schedule
	throughputFn func(id cluster.JobID, B, c, servers int) float64

	// source, when set, produces capacity events at its own wake times
	// (reactive autoscaling, stochastic drains); wake events carry seq -1
	// to distinguish them from precomputed-timeline indices.
	source scenario.CapacitySource

	reconfigs          int
	evictions          int
	rackDrainEvictions int
	capacityEvents     int
	scaleUps           int
	scaleDowns         int
	autoscaleEvents    int
	busyGPUSeconds     float64
	capGPUSeconds      float64 // ∫ capacity dt, closed at each topology change
	capSegStart        float64 // when the current capacity segment began
	// restockable holds the exact servers removed per provenance kind and
	// not yet returned, in removal order: a restock join re-adds them —
	// shapes and rack ids included — so a removal clamped at the
	// MinServers floor never produces a phantom repair, and a mixed
	// fleet's repaired capacity comes back with the shape that left.
	restockable map[scenario.CapacityEventKind][]cluster.ServerSpec
	metrics     []JobMetric
	eventLog    []Event
}

// Run simulates the trace under the scheduler and returns per-job metrics.
func Run(cfg Config, sched Scheduler) (*Result, error) {
	return RunContext(context.Background(), cfg, sched)
}

// RunContext is Run with mid-run cancellation: the event loop polls ctx
// every ctxPollEvery events (and CancelAware schedulers poll it inside
// long decisions), so cancellation aborts the simulation within
// sub-second latency and returns ctx.Err(). An aborted run yields no
// Result — partial metrics would be misleading and must never be cached.
func RunContext(ctx context.Context, cfg Config, sched Scheduler) (*Result, error) {
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Trace == nil || len(cfg.Trace.Jobs) == 0 {
		return nil, fmt.Errorf("simulator: empty trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 1e7
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ca, ok := sched.(CancelAware); ok {
		ca.SetCancel(func() bool { return ctx.Err() != nil })
	}
	q := eventQueuePool.Get().(*eventQueue)
	q.ev = q.ev[:0]
	e := &engine{
		cfg:     cfg,
		sched:   sched,
		ctx:     ctx,
		topo:    cfg.Topo,
		jobs:    make(map[cluster.JobID]*jobState, len(cfg.Trace.Jobs)),
		current: cluster.NewSchedule(cfg.Topo),
		events:  q,
		metrics: make([]JobMetric, 0, len(cfg.Trace.Jobs)),
	}
	defer func() {
		q.ev = q.ev[:0]
		eventQueuePool.Put(q)
	}()
	for _, j := range cfg.Trace.Jobs {
		id := cluster.JobID(j.ID)
		if _, dup := e.jobs[id]; dup {
			return nil, fmt.Errorf("simulator: duplicate job id %d", j.ID)
		}
		prof := j.Task.Profile
		if !sched.ManagesLR() && j.ReqBatch > prof.RefBatch {
			// Black-box schedulers run the user's configuration verbatim,
			// and the user tuned the learning rate for the batch size they
			// requested — so that batch is the job's reference point. The
			// baseline's rigidity (it can never reshape the batch), not
			// user miscalibration, is what ONES exploits.
			prof.RefBatch = j.ReqBatch
		}
		tr, err := perfmodel.NewTrainer(prof, j.Task.DatasetSize, j.ReqBatch, sched.ManagesLR())
		if err != nil {
			return nil, fmt.Errorf("simulator: job %d: %w", j.ID, err)
		}
		e.jobs[id] = &jobState{spec: j, trainer: tr, firstStart: -1}
		e.events.push(event{t: j.Submit, kind: evArrival, job: id})
	}
	if iv := sched.TickInterval(); iv > 0 {
		e.events.push(event{t: iv, kind: evTick})
	}
	if cfg.Source != nil {
		if len(cfg.Capacity) > 0 {
			return nil, fmt.Errorf("simulator: both Capacity and Source set; wrap the timeline in a scenario.TimelineSource and compose with scenario.Sources instead")
		}
		if ts, ok := cfg.Source.(*scenario.TimelineSource); ok {
			// A bare timeline replays on the exact precomputed path below,
			// keeping pre-source results byte-identical.
			e.cfg.Capacity = ts.Events()
		} else {
			e.source = cfg.Source
			e.restockable = make(map[scenario.CapacityEventKind][]cluster.ServerSpec)
			if wake := e.source.NextWake(-1); wake >= 0 && wake <= cfg.MaxTime {
				e.events.push(event{t: wake, kind: evCapacity, seq: -1})
			}
		}
	}
	if len(e.cfg.Capacity) > 0 {
		e.restockable = make(map[scenario.CapacityEventKind][]cluster.ServerSpec)
	}
	for i, cev := range e.cfg.Capacity {
		if i > 0 && cev.Time < e.cfg.Capacity[i-1].Time {
			return nil, fmt.Errorf("simulator: capacity timeline out of order at %d (%v after %v)",
				i, cev.Time, e.cfg.Capacity[i-1].Time)
		}
		if cev.Time <= cfg.MaxTime {
			e.events.push(event{t: cev.Time, kind: evCapacity, seq: i})
		}
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	// A run that drains its events under a cancelled context must still
	// fail: a CancelAware scheduler may have short-circuited its last
	// decisions, so the metrics are not the uncancelled run's — returning
	// them would let a caller (or the engine's cache) keep a result no
	// live-context run would ever produce.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.capGPUSeconds += (e.now - e.capSegStart) * float64(e.topo.TotalGPUs())
	res := &Result{
		Scheduler:          sched.Name(),
		Jobs:               e.metrics,
		Makespan:           e.now,
		Reconfigs:          e.reconfigs,
		ScaleUps:           e.scaleUps,
		ScaleDowns:         e.scaleDowns,
		AutoscaleEvents:    e.autoscaleEvents,
		Evictions:          e.evictions,
		RackDrainEvictions: e.rackDrainEvictions,
		CapacityEvents:     e.capacityEvents,
		BusyGPUSeconds:     e.busyGPUSeconds,
		TotalGPUs:          cfg.Topo.TotalGPUs(),
		CapacityGPUSeconds: e.capGPUSeconds,
		Events:             e.eventLog,
	}
	for _, js := range e.jobs {
		if !js.done {
			res.Truncated = true
			res.Unfinished++
		}
	}
	return res, nil
}

func (e *engine) loop() error {
	for e.events.len() > 0 {
		if e.polls++; e.polls >= ctxPollEvery {
			e.polls = 0
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		ev := e.events.pop()
		if ev.t > e.cfg.MaxTime {
			return nil
		}
		if ev.t < e.now-1e-9 {
			return fmt.Errorf("simulator: time went backwards: %v -> %v", e.now, ev.t)
		}
		e.now = math.Max(e.now, ev.t)
		switch ev.kind {
		case evArrival:
			js := e.jobs[ev.job]
			js.arrived = true
			js.segStart = e.now
			e.order = append(e.order, ev.job)
			e.logEvent(Event{Time: e.now, Kind: EventArrive, Job: ev.job})
			if err := e.decide(TriggerArrival); err != nil {
				return err
			}
		case evEpochEnd:
			js := e.jobs[ev.job]
			if js == nil || js.done || js.seq != ev.seq || !js.running() {
				continue // stale event
			}
			e.advance(js)
			if js.trainer.Converged() {
				e.complete(ev.job)
				if err := e.decide(TriggerCompletion); err != nil {
					return err
				}
			} else {
				e.scheduleEpochEnd(ev.job)
				if err := e.decide(TriggerEpochEnd); err != nil {
					return err
				}
			}
		case evTick:
			if err := e.decide(TriggerTick); err != nil {
				return err
			}
			if alive := e.aliveCount(); alive > 0 || e.pendingArrivals() {
				e.events.push(event{t: e.now + e.sched.TickInterval(), kind: evTick})
			}
		case evCapacity:
			if ev.seq >= 0 {
				if e.applyCapacity(e.cfg.Capacity[ev.seq]) {
					if err := e.decide(TriggerCapacity); err != nil {
						return err
					}
				}
				continue
			}
			// Source wake (seq -1): consult the source with a fresh cluster
			// view, apply what it returns one event at a time — the
			// scheduler reacts after each applied change, exactly as on the
			// timeline path — then schedule the next wake.
			for _, cev := range e.source.Next(e.now, e.clusterView()) {
				applied := e.applyCapacity(cev)
				if applied && cev.Origin == scenario.OriginAutoscaler {
					e.autoscaleEvents++
					if cev.Kind == scenario.CapacityJoin {
						e.scaleUps++
					} else {
						e.scaleDowns++
					}
				}
				if applied {
					if err := e.decide(TriggerCapacity); err != nil {
						return err
					}
				}
			}
			if wake := e.source.NextWake(e.now); wake > e.now && wake <= e.cfg.MaxTime {
				e.events.push(event{t: wake, kind: evCapacity, seq: -1})
			}
		}
		if e.allDone() {
			return nil
		}
	}
	return nil
}

func (e *engine) aliveCount() int {
	n := 0
	for _, js := range e.jobs {
		if js.arrived && !js.done {
			n++
		}
	}
	return n
}

func (e *engine) pendingArrivals() bool {
	for _, js := range e.jobs {
		if !js.arrived {
			return true
		}
	}
	return false
}

func (e *engine) allDone() bool {
	for _, js := range e.jobs {
		if !js.done {
			return false
		}
	}
	return true
}

// throughput returns job j's current samples/second.
func (e *engine) throughput(js *jobState) float64 {
	if !js.running() {
		return 0
	}
	return perfmodel.Throughput(js.spec.Task.Profile, e.cfg.Net, js.batch, js.gpus, js.servers)
}

// advance brings a job's accounting and training progress up to e.now.
func (e *engine) advance(js *jobState) {
	if js.done || !js.arrived {
		return
	}
	dt := e.now - js.segStart
	if dt <= 0 {
		return
	}
	if js.running() {
		js.exec += dt
		e.busyGPUSeconds += dt * float64(js.gpus)
		effStart := math.Max(js.segStart, math.Min(js.pausedUntil, e.now))
		eff := e.now - effStart
		if eff > 0 {
			x := e.throughput(js)
			total := eff*x + js.fracSamples
			// Absorb float error so a job that should land exactly on an
			// epoch boundary is not left an ε-fraction short forever.
			whole := math.Floor(total + 1e-6)
			js.fracSamples = total - whole
			if js.fracSamples < 0 {
				js.fracSamples = 0
			}
			if whole > 0 {
				js.trainer.AdvanceSamples(int64(whole))
			}
		}
	}
	js.segStart = e.now
}

// scheduleEpochEnd pushes the event for job j's next epoch boundary.
func (e *engine) scheduleEpochEnd(id cluster.JobID) {
	js := e.jobs[id]
	if !js.running() || js.done {
		return
	}
	x := e.throughput(js)
	if x <= 0 {
		return
	}
	ds := int64(js.trainer.DatasetSize())
	rem := ds - js.trainer.Processed()%ds
	// A job exactly at a boundary still has a full epoch ahead.
	if rem == 0 {
		rem = ds
	}
	start := math.Max(e.now, js.pausedUntil)
	t := start + (float64(rem)-js.fracSamples)/x
	// Guarantee forward progress even under pathological float rounding.
	if t <= start {
		t = start + 1e-6
	}
	js.seq++
	e.events.push(event{t: t, kind: evEpochEnd, job: id, seq: js.seq})
}

// applyCapacity mutates the live topology per one scenario event:
// joining servers appear idle at the tail; a removal deletes the picked
// server (a rack drain deletes every server of the rack) and fully
// evicts every job that held a GPU on a removed server (losing any
// worker stops a gang), requeuing them for the scheduler's next decision.
// Returns whether the topology actually changed — an event clamped to a
// no-op (MinServers floor, phantom restock, absent rack) must not wake
// the scheduler.
func (e *engine) applyCapacity(cev scenario.CapacityEvent) bool {
	// Settle accounting and training progress at the old capacity.
	for _, id := range e.order {
		e.advance(e.jobs[id])
	}
	e.capGPUSeconds += (e.now - e.capSegStart) * float64(e.topo.TotalGPUs())
	e.capSegStart = e.now
	n := cev.Servers
	if n <= 0 {
		n = 1
	}
	min := e.cfg.MinServers
	if min < 1 {
		min = 1
	}
	switch cev.Kind {
	case scenario.CapacityJoin:
		if cev.Restocks != "" {
			// A repair only returns capacity that actually left: if the
			// paired removal was clamped at the MinServers floor, there
			// is nothing to restock. What left is what comes back —
			// shapes and rack ids included. An unset Servers count means
			// "everything still out" (the whole drained rack powering
			// back up); stochastic repairs set Servers explicitly.
			stock := e.restockable[cev.Restocks]
			if cev.Servers <= 0 || n > len(stock) {
				n = len(stock)
			}
			e.current.AddServerSpecs(stock[:n]...)
			e.restockable[cev.Restocks] = stock[n:]
		} else {
			topo := e.current.Topology()
			gpus := cev.GPUs
			if gpus <= 0 {
				gpus = topo.Servers[0].GPUs
			}
			specs := make([]cluster.ServerSpec, n)
			for i := range specs {
				specs[i] = cluster.ServerSpec{GPUs: gpus, Rack: topo.NextRack()}
			}
			e.current.AddServerSpecs(specs...)
		}
	case scenario.CapacityRackDrain:
		// Remove the rack's servers highest index first, so the earlier
		// indices stay valid; clamping at the MinServers floor leaves the
		// rack's lowest-indexed servers alive (a partial drain).
		idxs := e.current.Topology().RackServers(cev.Rack)
		var removed []cluster.ServerSpec
		for i := len(idxs) - 1; i >= 0; i-- {
			topo := e.current.Topology()
			if topo.NumServers() <= min {
				break
			}
			removed = append(removed, topo.Servers[idxs[i]])
			for _, id := range e.current.RemoveServer(idxs[i]) {
				if e.evictJob(id) {
					e.rackDrainEvictions++
				}
			}
		}
		// Reverse so a restock re-adds the servers in their original
		// axis order.
		for i, j := 0, len(removed)-1; i < j; i, j = i+1, j-1 {
			removed[i], removed[j] = removed[j], removed[i]
		}
		e.restockable[cev.Kind] = append(e.restockable[cev.Kind], removed...)
	default: // single-server removals: leave, fail, preempt
		for i := 0; i < n && e.current.Topology().NumServers() > min; i++ {
			topo := e.current.Topology()
			servers := topo.NumServers()
			idx := int(cev.Pick * float64(servers))
			if idx >= servers {
				idx = servers - 1
			}
			if idx < 0 {
				idx = 0
			}
			e.restockable[cev.Kind] = append(e.restockable[cev.Kind], topo.Servers[idx])
			for _, id := range e.current.RemoveServer(idx) {
				e.evictJob(id)
			}
		}
	}
	next := e.current.Topology()
	if next.Equal(e.topo) {
		return false // clamped to a no-op: the world did not change
	}
	e.topo = next
	e.capacityEvents++
	e.logEvent(Event{Time: e.now, Kind: EventCapacity, GPUs: e.topo.TotalGPUs()})
	return true
}

// clusterView snapshots the observable cluster state for a capacity
// source. Like the scheduler's View it contains no oracle knowledge:
// queue depth and pending GPU demand are what a production autoscaler
// would see on its dashboards.
func (e *engine) clusterView() scenario.ClusterView {
	v := scenario.ClusterView{
		Now:       e.now,
		Servers:   e.topo.NumServers(),
		TotalGPUs: e.topo.TotalGPUs(),
		BusyGPUs:  e.topo.TotalGPUs() - e.current.NumIdle(),
		LiveRacks: e.topo.Racks(),
	}
	for _, id := range e.order {
		js := e.jobs[id]
		if js.running() {
			v.RunningJobs++
		} else {
			v.QueuedJobs++
			v.PendingGPUs += js.spec.ReqGPUs
		}
	}
	return v
}

// evictJob forces a job off its GPUs after a server loss, reporting
// whether the job actually held GPUs. Unlike a scheduler preemption
// nothing is saved gracefully: the job keeps its training progress
// (epoch-boundary semantics) but goes back to the queue until the next
// deployment readmits it.
func (e *engine) evictJob(id cluster.JobID) bool {
	js := e.jobs[id]
	if js == nil || js.done || !js.arrived || js.gpus == 0 {
		return false
	}
	e.current.Evict(id) // slots surviving on other servers
	js.gpus, js.batch, js.servers = 0, 0, 0
	js.pausedUntil = e.now
	js.seq++ // invalidate any outstanding epoch event
	e.evictions++
	e.logEvent(Event{Time: e.now, Kind: EventEvict, Job: id})
	return true
}

// logEvent appends to the event log when recording is enabled.
func (e *engine) logEvent(ev Event) {
	if e.cfg.RecordEvents {
		e.eventLog = append(e.eventLog, ev)
	}
}

// complete finalizes a converged job.
func (e *engine) complete(id cluster.JobID) {
	js := e.jobs[id]
	js.done = true
	js.doneAt = e.now
	e.logEvent(Event{Time: e.now, Kind: EventComplete, Job: id})
	e.current.Evict(id)
	js.gpus, js.batch, js.servers = 0, 0, 0
	jct := js.doneAt - js.spec.Submit
	e.metrics = append(e.metrics, JobMetric{
		ID:     id,
		Name:   js.spec.Task.Name,
		Submit: js.spec.Submit,
		Start:  js.firstStart,
		Done:   js.doneAt,
		JCT:    jct,
		Exec:   js.exec,
		Queue:  jct - js.exec,
	})
	// Remove from arrival order.
	for i, oid := range e.order {
		if oid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// decide snapshots the cluster, consults the scheduler and applies any new
// deployment.
func (e *engine) decide(tr Trigger) error {
	view := e.snapshot()
	next := e.sched.Decide(tr, view)
	if next == nil {
		return nil
	}
	return e.apply(next)
}

// snapshot builds the scheduler view into the engine's reusable buffers
// (see the View lifetime contract).
func (e *engine) snapshot() *View {
	if e.viewSched == nil {
		e.viewSched = cluster.NewSchedule(e.topo)
	}
	e.viewSched.CopyFrom(e.current)
	if e.throughputFn == nil {
		e.throughputFn = func(id cluster.JobID, B, c, servers int) float64 {
			js, ok := e.jobs[id]
			if !ok {
				return 0
			}
			return perfmodel.Throughput(js.spec.Task.Profile, e.cfg.Net, B, c, servers)
		}
	}
	v := &e.view
	v.Now = e.now
	v.Topo = e.topo
	v.Current = e.viewSched
	v.Throughput = e.throughputFn
	v.Jobs = v.Jobs[:0]
	for _, id := range e.order {
		js := e.jobs[id]
		e.advance(js) // bring observables up to date
		jct := e.now - js.spec.Submit
		v.Jobs = append(v.Jobs, JobView{
			ID:         id,
			Submit:     js.spec.Submit,
			Task:       js.spec.Task,
			ReqGPUs:    js.spec.ReqGPUs,
			ReqBatch:   js.spec.ReqBatch,
			Running:    js.running(),
			GPUs:       js.gpus,
			Batch:      js.batch,
			Processed:  js.trainer.Processed(),
			WallEpochs: js.trainer.WallEpochs(),
			Loss:       js.trainer.Loss(),
			Accuracy:   js.trainer.Accuracy(),
			ExecTime:   js.exec,
			QueueTime:  jct - js.exec,
		})
	}
	// Sort ascending by ID for determinism.
	for i := 1; i < len(v.Jobs); i++ {
		for k := i; k > 0 && v.Jobs[k].ID < v.Jobs[k-1].ID; k-- {
			v.Jobs[k], v.Jobs[k-1] = v.Jobs[k-1], v.Jobs[k]
		}
	}
	return v
}

// apply validates and deploys a new schedule, charging reconfiguration
// costs to every job whose allocation changed.
func (e *engine) apply(next *cluster.Schedule) error {
	if !next.Topology().Equal(e.topo) {
		return fmt.Errorf("simulator: schedule topology %v != cluster %v", next.Topology(), e.topo)
	}
	if err := next.Validate(); err != nil {
		return err
	}
	for _, id := range next.RunningJobs() {
		js, ok := e.jobs[id]
		if !ok || !js.arrived || js.done {
			return fmt.Errorf("simulator: schedule references job %d which is not alive", id)
		}
		prof := js.spec.Task.Profile
		for _, g := range next.GPUsOf(id) {
			if b := next.Slot(g).Batch; b > prof.MaxPerGPU {
				return fmt.Errorf("simulator: job %d local batch %d exceeds GPU memory %d", id, b, prof.MaxPerGPU)
			}
		}
	}
	// Bring every alive job up to date before the allocation flips.
	for _, id := range e.order {
		e.advance(e.jobs[id])
	}
	changed := false
	for _, id := range e.order {
		js := e.jobs[id]
		newGPUs := next.GPUCount(id)
		newBatch := next.GlobalBatch(id)
		newServers := next.ServersOf(id)
		if newGPUs == js.gpus && newBatch == js.batch && newServers == js.servers {
			continue
		}
		changed = true
		cost := e.reconfigCost(js, newGPUs)
		oldGPUs := js.gpus
		js.gpus, js.batch, js.servers = newGPUs, newBatch, newServers
		if newGPUs > 0 {
			kind := EventRescale
			if js.firstStart < 0 {
				js.firstStart = e.now
				kind = EventStart
			} else if oldGPUs == 0 {
				kind = EventStart
			}
			e.logEvent(Event{Time: e.now, Kind: kind, Job: id, GPUs: newGPUs, Batch: newBatch})
			js.trainer.SetBatch(newBatch)
			js.pausedUntil = e.now + cost
		} else if oldGPUs > 0 {
			// Preempted: no pause bookkeeping needed while queued.
			e.logEvent(Event{Time: e.now, Kind: EventPreempt, Job: id})
			js.pausedUntil = e.now
		}
		js.seq++ // invalidate any outstanding epoch event
	}
	if changed {
		e.reconfigs++
	}
	// Copy rather than alias: the scheduler may retain `next` (ONES keeps
	// its champion in the population), and copying into the engine's own
	// schedule avoids a fresh allocation per deployment.
	e.current.CopyFrom(next)
	// Reschedule epoch events for all running jobs.
	for _, id := range e.order {
		if e.jobs[id].running() {
			e.scheduleEpochEnd(id)
		}
	}
	return nil
}

// reconfigCost prices one job's allocation change.
func (e *engine) reconfigCost(js *jobState, newGPUs int) float64 {
	if newGPUs == 0 {
		return 0
	}
	prof := js.spec.Task.Profile
	switch e.sched.CostKind() {
	case CostElastic:
		return e.cfg.Costs.Elastic(prof, js.gpus, newGPUs)
	default:
		return e.cfg.Costs.Checkpoint(prof)
	}
}
