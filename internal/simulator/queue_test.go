package simulator

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

// refHeap is a container/heap reference implementation over the same
// ordering, standing in for the pre-flat-queue event heap.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h refHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func randomEvents(rng *rand.Rand, n int) []event {
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{
			// Coarse times force plenty of ties so the kind/job/seq
			// tiebreakers are exercised, not just t.
			t:    float64(rng.Intn(50)),
			kind: eventKind(rng.Intn(4)),
			job:  cluster.JobID(rng.Intn(30)),
			seq:  rng.Intn(10),
		}
	}
	return evs
}

// TestEventQueueMatchesReferenceHeap drives the flat 4-ary queue and a
// container/heap reference through identical interleaved push/pop
// workloads: every pop must match. The simulator's real event streams
// have a strict total order, so matching the reference on arbitrary
// (tie-heavy) streams is strictly stronger than what determinism needs.
func TestEventQueueMatchesReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		var q eventQueue
		var ref refHeap
		pending := randomEvents(rng, 200)
		pops := 0
		for len(pending) > 0 || ref.Len() > 0 {
			if len(pending) > 0 && (ref.Len() == 0 || rng.Intn(2) == 0) {
				e := pending[0]
				pending = pending[1:]
				q.push(e)
				heap.Push(&ref, e)
				continue
			}
			got := q.pop()
			want := heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("round %d pop %d: flat queue popped %+v, reference %+v", round, pops, got, want)
			}
			pops++
		}
		if q.len() != 0 {
			t.Fatalf("round %d: queue not drained: %d left", round, q.len())
		}
	}
}

// BenchmarkEventQueue measures a push-all/pop-all cycle at simulation
// scale. allocs/op should be ~0: the flat queue boxes nothing and the
// backing array is reused across iterations.
func BenchmarkEventQueue(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	evs := randomEvents(rng, 4096)
	var q eventQueue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range evs {
			q.push(e)
		}
		for q.len() > 0 {
			q.pop()
		}
	}
}
