package simulator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// slowSched is a CancelAware scheduler whose Decide is expensive until
// the cancellation probe fires — the shape of ONES's evolutionary
// search, without dragging the real scheduler (an import cycle) into
// this package's tests.
type slowSched struct {
	perDecide time.Duration
	cancelled func() bool
	decides   atomic.Int64
	shortcut  atomic.Int64 // decides cut short by the probe
}

func (s *slowSched) Name() string          { return "slow" }
func (s *slowSched) TickInterval() float64 { return 0 }
func (s *slowSched) CostKind() CostKind    { return CostElastic }
func (s *slowSched) ManagesLR() bool       { return true }

func (s *slowSched) SetCancel(cancelled func() bool) { s.cancelled = cancelled }

func (s *slowSched) Decide(Trigger, *View) *cluster.Schedule {
	s.decides.Add(1)
	const slices = 20
	for i := 0; i < slices; i++ {
		if s.cancelled != nil && s.cancelled() {
			s.shortcut.Add(1)
			return nil
		}
		time.Sleep(s.perDecide / slices)
	}
	return nil
}

func cancelTrace(t *testing.T, jobs int) *workload.Trace {
	t.Helper()
	trace, err := workload.Generate(workload.Config{Seed: 5, NumJobs: jobs, MeanInterarrival: 10, MaxReqGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestRunContextAbortsMidCell: cancelling mid-run returns context.Canceled
// well before the uncancelled run would have finished, because the
// CancelAware scheduler short-circuits its in-flight decision and the
// event loop's poll surfaces the error.
func TestRunContextAbortsMidCell(t *testing.T) {
	// 12 arrivals × 100ms per honest decision ≈ 1.2s uncancelled.
	sched := &slowSched{perDecide: 100 * time.Millisecond}
	cfg := DefaultConfig(cancelTrace(t, 12))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, cfg, sched)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, %v; want context.Canceled", res, err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %v to surface, want well under the ~1.2s full run", elapsed)
	}
	if sched.shortcut.Load() == 0 && sched.decides.Load() > 1 {
		t.Error("no decision was short-circuited by the cancellation probe")
	}
}

// TestRunContextCancelledBeforeStart: a dead context simulates nothing.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	sched := &slowSched{perDecide: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, DefaultConfig(cancelTrace(t, 4)), sched); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := sched.decides.Load(); n != 0 {
		t.Errorf("%d decisions ran under a pre-cancelled context, want 0", n)
	}
}

// TestRunContextNeverReturnsResultUnderCancel: even when every event
// drains before the poll stride hits (a short cell), a cancelled run
// must fail rather than hand back metrics a short-circuited scheduler
// may have skewed — that error is what keeps the engine cache unpoisoned.
func TestRunContextNeverReturnsResultUnderCancel(t *testing.T) {
	sched := &slowSched{perDecide: 20 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// 3 jobs ⇒ a handful of events, far under one poll stride.
	res, err := RunContext(ctx, DefaultConfig(cancelTrace(t, 3)), sched)
	if err == nil {
		t.Fatalf("cancelled run returned a result (%d jobs) instead of an error", len(res.Jobs))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunBackwardCompatible: the ctx-free entry point still works and is
// what the determinism suite pins elsewhere.
func TestRunBackwardCompatible(t *testing.T) {
	sched := &slowSched{perDecide: 0}
	res, err := Run(DefaultConfig(cancelTrace(t, 4)), sched)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result from uncancelled run")
	}
}
