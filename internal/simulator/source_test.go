package simulator

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// elasticTimeline is a small planned schedule with same-time events, the
// case where wake-batch semantics could diverge from the per-index path.
func elasticTimeline() []scenario.CapacityEvent {
	return []scenario.CapacityEvent{
		{Time: 60, Kind: scenario.CapacityLeave, Pick: 0.999},
		{Time: 60, Kind: scenario.CapacityLeave, Pick: 0.5},
		{Time: 300, Kind: scenario.CapacityJoin, Servers: 2},
		{Time: 500, Kind: scenario.CapacityFail, Pick: 0.1},
		{Time: 900, Kind: scenario.CapacityJoin, Servers: 1, Restocks: scenario.CapacityFail},
	}
}

// The three ways of feeding the same timeline — the Capacity slice, a
// bare TimelineSource (unwrapped onto the slice path), and a TimelineSource
// forced through the generic wake path by composing it with a second
// (empty) source — must yield identical Results, or the CapacitySource
// refactor changed planned-scenario physics.
func TestSourcePathsEquivalent(t *testing.T) {
	run := func(mutate func(*Config)) *Result {
		cfg := smallConfig(t, 10)
		cfg.MinServers = 1
		mutate(&cfg)
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	viaSlice := run(func(c *Config) { c.Capacity = elasticTimeline() })
	viaSource := run(func(c *Config) { c.Source = scenario.NewTimelineSource(elasticTimeline()) })
	viaWake := run(func(c *Config) {
		c.Source = scenario.Sources(
			scenario.NewTimelineSource(elasticTimeline()),
			scenario.NewTimelineSource(nil), // forces the multi-source wake path
		)
	})
	if viaSlice.CapacityEvents == 0 || viaSlice.Evictions == 0 {
		t.Fatalf("timeline had no effect (events=%d evictions=%d) — equivalence would be vacuous",
			viaSlice.CapacityEvents, viaSlice.Evictions)
	}
	if !reflect.DeepEqual(viaSlice, viaSource) {
		t.Errorf("bare TimelineSource diverged from Capacity slice:\n%+v\nvs\n%+v", viaSource, viaSlice)
	}
	if !reflect.DeepEqual(viaSlice, viaWake) {
		t.Errorf("wake-path source diverged from Capacity slice:\n%+v\nvs\n%+v", viaWake, viaSlice)
	}
	if viaWake.ScaleUps != 0 || viaWake.ScaleDowns != 0 || viaWake.AutoscaleEvents != 0 {
		t.Errorf("timeline events counted as autoscaler activity: %+v", viaWake)
	}
}

func TestCapacityAndSourceMutuallyExclusive(t *testing.T) {
	cfg := smallConfig(t, 4)
	cfg.Capacity = elasticTimeline()
	cfg.Source = scenario.NewTimelineSource(nil)
	_, err := Run(cfg, &fifoTest{})
	if err == nil || !strings.Contains(err.Error(), "both Capacity and Source") {
		t.Fatalf("err = %v, want rejection of double capacity feed", err)
	}
}

func TestDrainMTBFSourceEndToEnd(t *testing.T) {
	spec := scenario.CapacitySpec{DrainMTBF: 150, DrainRestock: 200, MinServers: 1}
	run := func() *Result {
		cfg := mixedConfig(t, 10)
		cfg.MinServers = spec.MinServers
		cfg.Source = scenario.NewDrainMTBFSource(spec, 11, cfg.MaxTime)
		res, err := Run(cfg, &fifoTest{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.CapacityEvents == 0 {
		t.Fatal("stochastic drain process produced no topology changes")
	}
	if res.RackDrainEvictions == 0 {
		t.Error("drains over a busy multi-rack cluster evicted nothing")
	}
	if res.ScaleUps != 0 || res.ScaleDowns != 0 {
		t.Errorf("chaos drains counted as autoscaler activity: %+v", res)
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Error("same (spec, seed) drain run is not deterministic")
	}
}
