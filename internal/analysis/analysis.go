// Package analysis is the repo's static-analysis driver: a
// dependency-free (stdlib go/ast + go/parser + go/types only) loader and
// analyzer suite that machine-checks the invariants every result in this
// reproduction rests on — determinism of the simulation path, cache-key
// completeness, nil-safe telemetry handles, and lock-discipline naming —
// at build time instead of discovering violations in runtime golden
// tests.
//
// The suite is driven by cmd/oneslint. Each analyzer reports findings as
// "file:line: [analyzer] message" and the driver exits nonzero when any
// survive the //ones:allow escape hatch:
//
//	//ones:allow <analyzer> <reason>
//
// placed on the offending line or on the line directly above suppresses
// that analyzer's findings there; the reason is mandatory, so every
// exemption documents itself. See DESIGN.md ("Static analysis") for the
// analyzer catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package: the unit an analyzer runs
// over. Test files (_test.go) are excluded — the invariants the suite
// pins govern shipped code, and tests are a blanket-exempt domain.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short lowercase id, used in reports and //ones:allow
	Doc  string // one-line description for -list
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, CellKey, NilObs, LockedConv}
}

// byName resolves analyzer names; unknown names return nil.
func byName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to every package, filters the findings
// through the packages' //ones:allow directives, and returns the
// survivors sorted by position. Malformed directives are themselves
// findings — a typo'd analyzer name or a missing reason must not
// silently disable a check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg)
		all = append(all, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !allows.covers(d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}
