package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks module packages with nothing but the
// standard library: module-internal imports are resolved against the
// module tree on disk, everything else through the stdlib source
// importer (which type-checks $GOROOT/src — no export data, no
// golang.org/x/tools, no module dependencies).
type Loader struct {
	ModulePath string
	Root       string

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package // by import path
	checking map[string]bool     // import-cycle guard
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod (root itself must hold it).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		Root:       root,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves package patterns to loaded packages. A pattern is a
// directory path relative to the loader root (or absolute), optionally
// ending in "/..." for a recursive walk. Walks skip testdata, hidden and
// underscore directories — but an explicit non-recursive pattern loads
// its directory even inside testdata, which is how the CI guard-the-
// guard step points oneslint at a deliberately violating fixture.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			recursive, pat = true, ""
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = l.Root
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.Root, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir holds at least one non-test .go file.
func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir parses and type-checks the non-test .go files of one directory
// as the package importPath. The import path need not match the
// directory's real module position — analyzer tests use this to load a
// testdata fixture under a determinism-critical path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// importPkg resolves one import: module-internal paths load from the
// module tree, everything else from $GOROOT source.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
