package analysis

import (
	"go/ast"
)

// NilObs pins the telemetry contract "an uninstrumented process pays one
// nil check": every instrument-handle type marked
//
//	//ones:nilsafe
//
// in its doc comment (the internal/obs handles — Counter, Gauge,
// Histogram, the *Vec resolvers, Span, Tracer — and the autoscale
// counter bundle) must keep every pointer-receiver method safe to call
// on a nil receiver. Instrumented packages hold these handles
// unconditionally and call them on every hot-path event; when no
// registry is wired in the handles are nil, and one missing guard turns
// "telemetry off" into a panic in the middle of a simulation.
//
// A method satisfies the contract when its body either begins with a
// nil-receiver guard (`if h == nil { … }` or `if h != nil { … }` as the
// first statement) or consists of a single delegation to another method
// of the same type (e.g. Gauge.Inc calling g.Add(1)), which is itself
// checked.
var NilObs = &Analyzer{
	Name: "nilobs",
	Doc:  "methods on //ones:nilsafe handle types must begin with a nil-receiver guard",
	Run:  runNilObs,
}

const nilsafePrefix = "//ones:nilsafe"

func runNilObs(pass *Pass) {
	marked := make(map[string]bool) // type name -> marked
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if directiveLine(doc, nilsafePrefix) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	if len(marked) == 0 {
		return
	}

	// Methods per marked type, so delegation targets can be validated.
	methods := make(map[string]map[string]bool) // type -> method names
	var decls []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tname, ptr := recvType(fd)
			if !marked[tname] {
				continue
			}
			if !ptr {
				continue // value receivers cannot be nil
			}
			if methods[tname] == nil {
				methods[tname] = make(map[string]bool)
			}
			methods[tname][fd.Name.Name] = true
			decls = append(decls, fd)
		}
	}
	for _, fd := range decls {
		tname, _ := recvType(fd)
		if fd.Body == nil {
			continue
		}
		recv := recvName(fd)
		if recv == "" {
			pass.Reportf(fd.Pos(), "method %s.%s on a //ones:nilsafe type has an unnamed receiver — it cannot guard against nil", tname, fd.Name.Name)
			continue
		}
		if beginsWithNilGuard(fd.Body, recv) || delegatesToSibling(fd.Body, recv, methods[tname]) {
			continue
		}
		pass.Reportf(fd.Pos(), "method %s.%s must begin with a nil-receiver guard: //ones:nilsafe types promise that an uninstrumented process pays one nil check, never a panic", tname, fd.Name.Name)
	}
}

// recvType returns the receiver's type name and whether it is a pointer
// receiver.
func recvType(fd *ast.FuncDecl) (name string, ptr bool) {
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	// Strip generic instantiations (T[P]) down to the base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	return name, ptr
}

// recvName returns the receiver variable's name, or "" when anonymous.
func recvName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// beginsWithNilGuard reports whether the body's first statement is an if
// whose condition compares the receiver against nil.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if isIdent(be.X, recv) && isIdent(be.Y, "nil") || isIdent(be.X, "nil") && isIdent(be.Y, recv) {
			found = true
			return false
		}
		return true
	})
	return found
}

// delegatesToSibling reports whether the body is a single statement that
// only touches the receiver through one call to a sibling method of the
// same (checked) type — Gauge.Inc() { g.Add(1) } is nil-safe because
// Add is.
func delegatesToSibling(body *ast.BlockStmt, recv string, siblings map[string]bool) bool {
	if len(body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(st.Results) == 1 {
			call, _ = st.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isIdent(sel.X, recv) || !siblings[sel.Sel.Name] {
		return false
	}
	// The receiver must not appear anywhere else in the statement (an
	// argument like recv.field would dereference it before the sibling's
	// guard runs).
	uses := 0
	ast.Inspect(body.List[0], func(n ast.Node) bool {
		if isIdent(n, recv) {
			uses++
		}
		return true
	})
	return uses == 1
}

// isIdent reports whether n is the identifier name.
func isIdent(n ast.Node, name string) bool {
	id, ok := n.(*ast.Ident)
	return ok && id.Name == name
}
