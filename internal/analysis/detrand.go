package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrand forbids the three nondeterminism vectors that have bitten (or
// nearly bitten) this repo's byte-identical-results contract, inside the
// determinism-critical packages:
//
//   - wall-clock reads (time.Now, time.Since, …) — simulated time is the
//     only clock a simulation path may consult;
//   - the process-global math/rand source (rand.Intn, rand.Float64, …,
//     and rand.Seed) — every draw must come from a *rand.Rand seeded off
//     the cell key;
//   - map-range iteration that feeds slice appends or floating-point
//     accumulators with loop-derived values — Go randomizes map order,
//     so such loops change results run to run unless the appended slice
//     is sorted afterwards in the same function.
//
// Packages outside the critical list — notably internal/obs and
// internal/runtime, whose whole point is wall time — are exempt, as are
// all _test.go files (never loaded). Intentional uses inside the
// critical list (an obs-only wall-time measurement, say) carry
// //ones:allow detrand <reason>.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock, global math/rand and order-dependent map iteration in determinism-critical packages",
	Run:  runDetrand,
}

// detrandCritical lists the import-path suffixes of the packages whose
// code runs inside (or derives inputs for) the deterministic simulation
// path. internal/obs and internal/runtime are deliberately absent: obs
// measures wall time by design and the live mini-cluster runs real
// goroutines against the real clock.
var detrandCritical = []string{
	"internal/simulator",
	"internal/evolution",
	"internal/engine",
	"internal/scenario",
	"internal/autoscale",
	"internal/schedulers",
	"internal/cluster",
	"internal/workload",
}

// wallClockFuncs are the time package functions that read or schedule
// off the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// seededRandFuncs are the math/rand constructors that are fine to call:
// they build an explicitly seeded source instead of drawing from the
// process-global one.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runDetrand(pass *Pass) {
	critical := false
	for _, suffix := range detrandCritical {
		if strings.HasSuffix(pass.Pkg.ImportPath, suffix) {
			critical = true
			break
		}
	}
	if !critical {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenSelector(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				return true
			}
			return true
		})
	}
}

// pkgOf resolves the package an ident qualifies, or "" when the ident is
// not a package name.
func pkgOf(pass *Pass, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// checkForbiddenSelector flags wall-clock and global-math/rand selector
// uses (calls and function values alike).
func checkForbiddenSelector(pass *Pass, sel *ast.SelectorExpr) {
	switch pkgOf(pass, sel.X) {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a determinism-critical package; use simulated time (or //ones:allow detrand for obs-only measurement)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if _, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && !seededRandFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; draw from a *rand.Rand seeded off the cell key instead", sel.Sel.Name)
		}
	}
}

// checkMapRanges walks a function body looking for map-range loops whose
// bodies feed loop-derived values into outer slices or floating-point
// accumulators.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	// sortedIdents collects every object passed to a sort.* / slices.*
	// call anywhere in the function: appending map keys to a slice and
	// sorting it afterwards is THE deterministic iteration idiom and must
	// not be flagged.
	sorted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgOf(pass, sel.X) {
		case "sort", "slices":
			for _, arg := range call.Args {
				for _, id := range identsIn(arg) {
					if obj := pass.Pkg.Info.Uses[id]; obj != nil {
						sorted[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sorted)
		return true
	})
}

// checkMapRangeBody flags order-dependent sinks inside one map-range
// loop. A sink is order-dependent when it writes a loop-derived value
// (one that references the range variables or anything declared inside
// the loop) into state that outlives the loop.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	info := pass.Pkg.Info
	// loopLocal: objects declared within the range statement — the range
	// key/value and any body-local derivations of them.
	loopLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	derived := func(e ast.Expr) bool {
		for _, id := range identsIn(e) {
			if obj := info.Uses[id]; loopLocal(obj) {
				return true
			}
		}
		return false
	}
	outer := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && !loopLocal(obj)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			// Field, element and pointer targets outlive the loop unless
			// their root is loop-local.
			return !derived(rootExpr(e))
		}
		return false
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			// s = append(s, v) with v loop-derived and s outer.
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || len(call.Args) < 2 {
					continue
				}
				loopArgs := false
				for _, a := range call.Args[1:] {
					if derived(a) {
						loopArgs = true
						break
					}
				}
				if !loopArgs || i >= len(as.Lhs) || !outer(as.Lhs[i]) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					if sorted[obj] {
						continue // appended slice is sorted afterwards
					}
				}
				pass.Reportf(as.Pos(), "append inside a map range feeds loop values into a slice that outlives the loop: map order is random — collect keys, sort, then iterate (or sort this slice before use)")
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// x += f(k, v) on an outer float: float arithmetic is not
			// associative, so accumulation order changes the result.
			lhs := as.Lhs[0]
			t := info.TypeOf(lhs)
			if t == nil {
				return true
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			if derived(as.Rhs[0]) && outer(lhs) {
				pass.Reportf(as.Pos(), "floating-point accumulation inside a map range is order-dependent (float addition is not associative); iterate sorted keys instead")
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// identsIn returns every identifier in the expression tree.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// rootExpr peels selectors, indexes and derefs down to the base
// expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}
