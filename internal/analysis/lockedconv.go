package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockedConv pins the repo's lock-discipline naming convention: a
// function or method whose name ends in "Locked" (predictor.fitLocked,
// runtime.pauseAllLocked, …) runs under a mutex its CALLER already
// holds. Two checks follow:
//
//   - the *Locked body must not acquire a lock reachable from its own
//     receiver — doing so either deadlocks (sync.Mutex does not nest) or
//     reveals the name is a lie;
//   - every same-package caller must visibly hold a lock: it either is
//     itself a *Locked function, or it acquires some lock (.Lock /
//     .RLock / .TryLock, the usual `mu.Lock(); defer mu.Unlock()`
//     prelude) before the call in the same function literal.
//
// The check is deliberately syntactic about WHICH mutex is held — Go
// cannot express "the lock guarding p" — but the naming convention plus
// these two checks catch the real regressions: a fitLocked that starts
// locking, and a new caller that forgets to.
var LockedConv = &Analyzer{
	Name: "lockedconv",
	Doc:  "*Locked functions must not lock their receiver; same-package callers must hold a lock",
	Run:  runLockedConv,
}

// lockAcquireNames are the sync method names that take a lock.
var lockAcquireNames = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func runLockedConv(pass *Pass) {
	info := pass.Pkg.Info

	// lockedFuncs: objects of every *Locked func/method in this package.
	lockedFuncs := make(map[types.Object]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isLockedName(fd.Name.Name) {
				continue
			}
			if obj := info.Defs[fd.Name]; obj != nil {
				lockedFuncs[obj] = true
			}
			checkLockedBody(pass, fd)
		}
	}
	if len(lockedFuncs) == 0 {
		return
	}

	// Caller check: walk every function (decl or literal) as its own
	// scope — a closure runs later, so a lock held by the enclosing
	// function when the closure was BUILT proves nothing about when it
	// runs.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCallers(pass, fd.Name.Name, isLockedName(fd.Name.Name), fd.Body, lockedFuncs)
		}
	}
}

// isLockedName reports whether name follows the *Locked convention.
func isLockedName(name string) bool {
	return len(name) > len("Locked") && strings.HasSuffix(name, "Locked")
}

// checkLockedBody flags lock acquisitions on paths rooted at the
// receiver inside a *Locked method (and, for plain functions, on
// package-level variables).
func checkLockedBody(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockAcquireNames[sel.Sel.Name] {
			return true
		}
		root := rootExpr(sel.X)
		id, ok := root.(*ast.Ident)
		if !ok {
			return true
		}
		guarding := recv != "" && id.Name == recv
		if !guarding {
			// Plain *Locked functions: a package-level mutex is the
			// guarding lock.
			if obj := info.Uses[id]; obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
				guarding = true
			}
		}
		if guarding {
			pass.Reportf(call.Pos(), "%s acquires %s.%s inside a *Locked function: *Locked code runs under its caller's lock — acquiring it again deadlocks or belies the name", fd.Name.Name, id.Name, sel.Sel.Name)
		}
		return true
	})
}

// checkCallers walks one function scope (skipping nested literals, which
// recurse as their own scopes) and flags calls to same-package *Locked
// functions from scopes that neither are *Locked themselves nor acquire
// a lock before the call. A literal nested in a *Locked scope inherits
// its locked status: comparators and visitors built inside fitLocked run
// while the lock is held.
func checkCallers(pass *Pass, name string, locked bool, body *ast.BlockStmt, lockedFuncs map[types.Object]bool) {
	info := pass.Pkg.Info

	// First pass over this scope only: positions of lock acquisitions.
	var lockPositions []token.Pos
	var lockedCalls []*ast.CallExpr
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkCallers(pass, name+" (func literal)", locked, lit.Body, lockedFuncs)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && lockAcquireNames[sel.Sel.Name] {
				lockPositions = append(lockPositions, call.Pos())
			}
			var callee *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = fun
			case *ast.SelectorExpr:
				callee = fun.Sel
			}
			if callee != nil && lockedFuncs[info.Uses[callee]] {
				lockedCalls = append(lockedCalls, call)
			}
			return true
		})
	}
	walk(body)

	if len(lockedCalls) == 0 || locked {
		return
	}
	for _, call := range lockedCalls {
		held := false
		for _, pos := range lockPositions {
			if pos < call.Pos() {
				held = true
				break
			}
		}
		if held {
			continue
		}
		callee := "a *Locked function"
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			callee = sel.Sel.Name
		} else if id, ok := call.Fun.(*ast.Ident); ok {
			callee = id.Name
		}
		pass.Reportf(call.Pos(), "%s calls %s without holding a lock: *Locked functions run under their caller's mutex — acquire it first (or rename if the convention does not apply)", name, callee)
	}
}
