package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the escape hatch:
//
//	//ones:allow <analyzer> <reason>
//
// on the offending line, or on the line directly above it, suppresses
// that analyzer's findings there. The reason is mandatory: every
// exemption must say why the invariant deliberately bends.
const allowPrefix = "//ones:allow"

// allowSet maps (file, analyzer) to the set of source lines carrying an
// allow directive.
type allowSet map[string]map[string]map[int]bool

// covers reports whether d is suppressed by a directive on its line or
// the line above.
func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename][d.Analyzer]
	return lines[d.Pos.Line] || lines[d.Pos.Line-1]
}

// collectAllows scans every comment of the package for allow directives.
// Malformed directives — an unknown analyzer name or a missing reason —
// are returned as findings under the "allow" pseudo-analyzer: a typo
// must fail the build, not silently disable a check.
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	set := make(allowSet)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "allow", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// "//ones:allowX" is some other (future) directive only if
				// the next rune isn't a space; require a space here.
				if text != "" && !strings.HasPrefix(text, " ") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c.Pos(), "//ones:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if byName(name) == nil {
					report(c.Pos(), "//ones:allow names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "//ones:allow "+name+" needs a reason — say why the invariant bends here")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byAnalyzer := set[pos.Filename]
				if byAnalyzer == nil {
					byAnalyzer = make(map[string]map[int]bool)
					set[pos.Filename] = byAnalyzer
				}
				lines := byAnalyzer[name]
				if lines == nil {
					lines = make(map[int]bool)
					byAnalyzer[name] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return set, bad
}

// directiveLine reports whether a comment group contains a line starting
// with the given directive prefix (e.g. "//ones:nilsafe"), used by the
// marker-driven analyzers.
func directiveLine(cg *ast.CommentGroup, prefix string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
			return true
		}
	}
	return false
}
