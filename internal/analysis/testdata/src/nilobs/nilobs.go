// Package nilobsfix exercises the nil-receiver-guard contract for
// instrument-handle types marked //ones:nilsafe.
package nilobsfix

// Handle is a marked instrument handle: every pointer-receiver method
// must begin with a nil guard or delegate to a sibling that does.
//
//ones:nilsafe
type Handle struct {
	n float64
}

// Add guards first: the canonical shape.
func (h *Handle) Add(v float64) {
	if h == nil {
		return
	}
	h.n += v
}

// Inc is a pure delegation to Add, whose guard covers it.
func (h *Handle) Inc() {
	h.Add(1)
}

// Value guards with the inverted comparison.
func (h *Handle) Value() float64 {
	if h != nil {
		return h.n
	}
	return 0
}

// Reset forgets the guard.
func (h *Handle) Reset() { // want "Handle.Reset must begin with a nil-receiver guard"
	h.n = 0
}

// BadInc delegates but dereferences the receiver in an argument, which
// panics before Add's guard can run.
func (h *Handle) BadInc() { // want "Handle.BadInc must begin with a nil-receiver guard"
	h.Add(h.n)
}

// Anonymous cannot guard a receiver it cannot name.
func (*Handle) Anonymous() {} // want "unnamed receiver"

// Snapshot has a value receiver: a copy can never be nil.
func (h Handle) Snapshot() float64 {
	return h.n
}

// Unmarked is not //ones:nilsafe, so no guards are required.
type Unmarked struct{ n int }

// Bump may dereference freely.
func (u *Unmarked) Bump() { u.n++ }
