// Package exemptfix holds wall-clock and global-rand uses that are fine
// OUTSIDE the determinism-critical packages — the test loads it under a
// non-critical import path and expects zero findings.
package exemptfix

import (
	"math/rand"
	"time"
)

// WallTime measures real elapsed time, as an obs-domain package may.
func WallTime() (time.Time, int) {
	return time.Now(), rand.Intn(10)
}
