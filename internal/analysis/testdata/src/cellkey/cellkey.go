// Package cellkeyfix exercises the cache-key completeness rules against
// a miniature engine: a Cell with an injected field missing from the
// key, a Params mixing keyed, exempted and forgotten knobs, plus a
// stale and a reasonless exemption.
package cellkeyfix

import "fmt"

// Cell mirrors engine.Cell with one result-affecting field missing from
// the key.
type Cell struct {
	Scheduler  string
	Capacity   int
	SneakyKnob int // want "Cell.SneakyKnob is not read in CellKey"
}

// Params mirrors engine.Params.
type Params struct {
	Seed int64
	//ones:nokey pure throughput knob
	Workers   int
	Forgotten float64 // want "Params.Forgotten is not read in CellKey"
	//ones:nokey stale: this IS in the key
	Keyed int // want "Params.Keyed carries //ones:nokey but IS read in CellKey"
	//ones:nokey
	Reasonless int // want "needs a reason"
}

// CellKey renders the cache key.
func CellKey(p Params, c Cell) string {
	return fmt.Sprintf("cell|seed=%d|keyed=%d|sched=%s|cap=%d",
		p.Seed, p.Keyed, c.Scheduler, c.Capacity)
}
