// Package allowbadfix holds malformed //ones:allow directives. Each one
// must surface as a finding under the "allow" pseudo-analyzer: a typo'd
// escape hatch has to fail the build, not silently disable a check.
package allowbadfix

//ones:allow
var empty = 0

//ones:allow bogus because reasons
var unknownName = 0

//ones:allow detrand
var reasonless = 0
