// Package lockedfix exercises the *Locked naming-convention checks:
// bodies must not take the lock they run under, callers must hold one.
package lockedfix

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// bumpLocked follows the convention: the caller holds s.mu.
func (s *store) bumpLocked() {
	s.n++
}

// selfLockLocked belies its name by taking the receiver's own lock.
func (s *store) selfLockLocked() {
	s.mu.Lock() // want "acquires s.Lock inside a"
	s.n++
	s.mu.Unlock()
}

// localLocked may use a private lock: it is not the caller's.
func (s *store) localLocked() {
	var mu sync.Mutex
	mu.Lock()
	s.n++
	mu.Unlock()
}

// Bump holds the lock across the call: the canonical caller.
func (s *store) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

// BadBump forgets the lock.
func (s *store) BadBump() {
	s.bumpLocked() // want "BadBump calls bumpLocked without holding a lock"
}

// chainLocked may call a sibling *Locked function freely: one lock
// covers the whole chain.
func (s *store) chainLocked() {
	s.bumpLocked()
}

// applyLocked runs fn under the caller's lock; the literal built inside
// doubleLocked inherits that locked status.
func (s *store) applyLocked(fn func(*store)) {
	fn(s)
}

func (s *store) doubleLocked() {
	s.applyLocked(func(st *store) {
		st.bumpLocked()
	})
}

// Deferred builds a closure under the lock but the closure runs after
// release: the literal is its own scope and must lock for itself.
func (s *store) Deferred() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.bumpLocked() // want "calls bumpLocked without holding a lock"
	}
}

var globalMu sync.Mutex
var counter int

// resetLocked must not take the package-level lock it runs under.
func resetLocked() {
	globalMu.Lock() // want "acquires globalMu.Lock inside a"
	counter = 0
	globalMu.Unlock()
}

// Reset is the sanctioned caller of resetLocked.
func Reset() {
	globalMu.Lock()
	defer globalMu.Unlock()
	resetLocked()
}

// use keeps the otherwise-unreferenced helpers alive for the checker.
var use = []any{
	(*store).selfLockLocked, (*store).localLocked, (*store).chainLocked,
	(*store).doubleLocked, (*store).Deferred, Reset,
}
