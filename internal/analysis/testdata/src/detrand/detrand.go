// Package detrandfix exercises every detrand rule. The test loads it
// under a determinism-critical import path.
package detrandfix

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock trips the wall-clock read rules.
func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// sleepToo schedules off the wall clock, which is just as forbidden.
func sleepToo() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

// globalRand trips the process-global source rules.
func globalRand() float64 {
	n := rand.Intn(10)                 // want "rand.Intn draws from the process-global source"
	return rand.Float64() + float64(n) // want "rand.Float64 draws from the process-global source"
}

// seededRand is the sanctioned pattern: an explicit source.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// allowedWallClock demonstrates the escape hatch.
func allowedWallClock() time.Time {
	//ones:allow detrand fixture: obs-only measurement
	return time.Now()
}

// mapAppendUnsorted feeds loop values into an outer slice: flagged.
func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside a map range"
	}
	return keys
}

// mapAppendSorted is THE deterministic idiom: collect then sort.
func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapAppendDerived catches values derived from the key through a body
// local, not just the key itself.
func mapAppendDerived(m map[string]int) []int {
	var vals []int
	for k := range m {
		v := m[k] * 2
		vals = append(vals, v) // want "append inside a map range"
	}
	return vals
}

// mapAppendConstant appends nothing loop-derived: order cannot matter.
func mapAppendConstant(m map[string]int) []int {
	var ones []int
	for range m {
		ones = append(ones, 1)
	}
	return ones
}

// mapFloatAccum is order-dependent: float addition is not associative.
func mapFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation inside a map range"
	}
	return sum
}

// mapIntAccum is order-independent: integer addition commutes exactly.
func mapIntAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceRange is not a map: never flagged.
func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
