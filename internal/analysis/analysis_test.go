package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture directory under the given import
// path. Criticality (detrand) is derived from the import path, so each
// test picks the path matching the scenario it exercises.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// wantRe extracts expected-diagnostic annotations of the form
//
//	// want "substring of the expected message"
//
// from fixture comments. An annotation binds to the line it sits on.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// checkWants runs the analyzers over pkg and matches every finding
// against the fixture's annotations, both ways: a finding on a line
// without a matching annotation fails, and so does an annotation no
// finding satisfied.
func checkWants(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	type want struct {
		substr string
		hit    bool
	}
	wants := make(map[int][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					line := pkg.Fset.Position(c.Pos()).Line
					wants[line] = append(wants[line], &want{substr: m[1]})
				}
			}
		}
	}
	for _, d := range Run([]*Package{pkg}, analyzers) {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.hit && strings.Contains(d.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("line %d: want a finding containing %q, got none", line, w.substr)
			}
		}
	}
}

func TestDetrandFixture(t *testing.T) {
	// Loaded under a determinism-critical import path so the analyzer
	// engages; the fixture covers wall clock, global rand, the seeded
	// escape, the //ones:allow hatch and the map-range heuristics.
	pkg := loadFixture(t, "testdata/src/detrand", "repro/internal/simulator")
	checkWants(t, pkg, []*Analyzer{Detrand})
}

func TestDetrandSkipsNonCriticalPackages(t *testing.T) {
	// The same forbidden calls under an obs-domain import path must
	// produce nothing: wall time is that package's whole point.
	pkg := loadFixture(t, "testdata/src/detrand_exempt", "repro/internal/obs")
	if diags := Run([]*Package{pkg}, []*Analyzer{Detrand}); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("finding in non-critical package: %s", d)
		}
	}
}

func TestCellKeyFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/cellkey", "repro/internal/cellkeyfix")
	checkWants(t, pkg, []*Analyzer{CellKey})
}

func TestNilObsFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/nilobs", "repro/internal/nilobsfix")
	checkWants(t, pkg, []*Analyzer{NilObs})
}

func TestLockedConvFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/lockedconv", "repro/internal/lockedfix")
	checkWants(t, pkg, []*Analyzer{LockedConv})
}

func TestMalformedAllowDirectives(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/allowbad", "repro/internal/allowbadfix")
	diags := Run([]*Package{pkg}, All())
	wantSubstrs := []string{
		"needs an analyzer name",
		"unknown analyzer bogus",
		"needs a reason",
	}
	if len(diags) != len(wantSubstrs) {
		t.Errorf("got %d findings, want %d:", len(diags), len(wantSubstrs))
		for _, d := range diags {
			t.Errorf("  %s", d)
		}
	}
	for _, substr := range wantSubstrs {
		found := false
		for _, d := range diags {
			if d.Analyzer == "allow" && strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no [allow] finding containing %q", substr)
		}
	}
}

// TestCellKeyCatchesInjectedField is the end-to-end guard the suite
// exists for: copy the real internal/engine sources, inject a new Cell
// field that does not feed CellKey, and assert cellkey reports exactly
// that field — and nothing on the unmodified remainder.
func TestCellKeyCatchesInjectedField(t *testing.T) {
	src := filepath.Join("..", "engine")
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading %s: %v", src, err)
	}
	injected := false
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if !injected {
			const anchor = "type Cell struct {"
			if i := strings.Index(string(data), anchor); i >= 0 {
				patched := string(data[:i+len(anchor)]) +
					"\n\tSneakyKnob int // injected: affects results, absent from CellKey" +
					string(data[i+len(anchor):])
				data = []byte(patched)
				injected = true
			}
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !injected {
		t.Fatal("no `type Cell struct {` found in internal/engine")
	}
	// A non-critical import path keeps detrand quiet; cellkey keys off
	// the Cell+CellKey declarations, not the path.
	pkg := loadFixture(t, dst, "repro/internal/engineinjected")
	diags := Run([]*Package{pkg}, []*Analyzer{CellKey})
	caught := false
	for _, d := range diags {
		if strings.Contains(d.Message, "Cell.SneakyKnob is not read in CellKey") {
			caught = true
			continue
		}
		t.Errorf("unexpected finding on unmodified engine code: %s", d)
	}
	if !caught {
		t.Error("cellkey missed the injected Cell.SneakyKnob field")
	}
}
