package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CellKey pins the cache-key completeness invariant: in any package that
// declares both a `Cell` struct and a `CellKey` function (in this repo,
// internal/engine), every field of Cell and every field of Params must
// either be read inside CellKey's body — i.e. contribute a cache-key
// dimension — or carry an explicit exemption on the field:
//
//	//ones:nokey <reason>
//
// A result-affecting knob missing from the key is the cache-poisoning
// bug class PRs 6 and 8 each had to guard by hand with golden tests:
// two cells that compute different results would share one cache entry,
// and whichever ran first would silently serve the other's answer
// forever. The exemption is for pure-throughput knobs (Workers,
// EvolutionParallelism) and experiment-rendering parameters (Capacities,
// ParamScale, CFPoints) whose exclusion is the point — the annotation
// forces that argument into the source next to the field.
var CellKey = &Analyzer{
	Name: "cellkey",
	Doc:  "every Cell/Params field must feed CellKey or carry //ones:nokey <reason>",
	Run:  runCellKey,
}

const nokeyPrefix = "//ones:nokey"

func runCellKey(pass *Pass) {
	cell := findStruct(pass.Pkg, "Cell")
	params := findStruct(pass.Pkg, "Params")
	keyFn := findFunc(pass.Pkg, "CellKey")
	if cell == nil || keyFn == nil || keyFn.Body == nil {
		return // not a cache-key-bearing package
	}

	// Fields read in CellKey's body, per receiver struct type: any
	// selector expression resolving to a field of Cell or Params counts
	// as a key dimension (the body renders them into the key string).
	read := make(map[types.Object]bool)
	ast.Inspect(keyFn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			read[s.Obj()] = true
		}
		return true
	})

	check := func(name string, st *ast.StructType) {
		for _, field := range st.Fields.List {
			exempt, hasReason := nokeyDirective(field)
			if exempt && !hasReason {
				pass.Reportf(field.Pos(), "//ones:nokey needs a reason — say why this %s field may stay out of the cache key", name)
			}
			for _, id := range field.Names {
				obj := pass.Pkg.Info.Defs[id]
				if obj == nil {
					continue
				}
				if read[obj] {
					if exempt {
						pass.Reportf(id.Pos(), "%s.%s carries //ones:nokey but IS read in CellKey — drop the stale exemption", name, id.Name)
					}
					continue
				}
				if exempt {
					continue
				}
				pass.Reportf(id.Pos(), "%s.%s is not read in CellKey and carries no //ones:nokey exemption: a result-affecting dimension missing from the cache key poisons the cache", name, id.Name)
			}
		}
	}
	check("Cell", cell)
	if params != nil {
		check("Params", params)
	}
}

// nokeyDirective scans a field's doc and trailing comments for the
// //ones:nokey directive, returning whether it is present and whether
// it carries a reason.
func nokeyDirective(field *ast.Field) (present, hasReason bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, nokeyPrefix)
			if !ok {
				continue
			}
			if rest != "" && !strings.HasPrefix(rest, " ") {
				continue
			}
			return true, strings.TrimSpace(rest) != ""
		}
	}
	return false, false
}

// findStruct returns the struct type declared under name, or nil.
func findStruct(pkg *Package, name string) *ast.StructType {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// findFunc returns the top-level (non-method) function declared under
// name, or nil.
func findFunc(pkg *Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}
