package ones

import (
	"time"

	"repro/internal/runtime"
)

// LiveSpec describes a job for the live goroutine mini-cluster — the
// in-process data-parallel trainer (real ring all-reduce, real
// checkpoints) behind the paper's Figure 16 elastic-scaling
// measurements.
type LiveSpec struct {
	Name        string
	ParamCount  int     // model parameters (floats)
	GlobalBatch int     // samples per step across all workers
	LR          float64 // SGD learning rate
	Momentum    float64 // SGD momentum coefficient
	DatasetSize int     // synthetic samples regenerated on checkpoint restart
}

// LiveJob is a running live-cluster training job.
type LiveJob struct {
	job *runtime.Job
}

// StartLiveJob launches the job on n live workers.
func StartLiveJob(spec LiveSpec, n int) (*LiveJob, error) {
	j, err := runtime.Start(runtime.Spec{
		Name:        spec.Name,
		ParamCount:  spec.ParamCount,
		GlobalBatch: spec.GlobalBatch,
		LR:          float32(spec.LR),
		Momentum:    float32(spec.Momentum),
		DatasetSize: spec.DatasetSize,
	}, n)
	if err != nil {
		return nil, err
	}
	return &LiveJob{job: j}, nil
}

// Workers returns the current worker count.
func (l *LiveJob) Workers() int { return l.job.Workers() }

// Steps returns the number of optimizer steps completed.
func (l *LiveJob) Steps() int64 { return l.job.Steps() }

// Loss returns the current training loss.
func (l *LiveJob) Loss() float64 { return l.job.Loss() }

// Pause stops the workers at the next step boundary.
func (l *LiveJob) Pause() { l.job.Pause() }

// Resume restarts paused workers.
func (l *LiveJob) Resume() error { return l.job.Resume() }

// ParamsDigest returns one replica-parameter digest per worker; after
// any rescale the digests must agree (the all-reduce kept replicas in
// sync).
func (l *LiveJob) ParamsDigest() []float64 { return l.job.ParamsDigest() }

// RescaleElastic grows or shrinks the job to newWorkers with global
// batch newGlobalBatch through ONES's checkpoint-free elastic path,
// returning the training interruption it cost.
func (l *LiveJob) RescaleElastic(newWorkers, newGlobalBatch int) (time.Duration, error) {
	return l.job.RescaleElastic(newWorkers, newGlobalBatch)
}

// RescaleCheckpoint performs the same rescale through the conventional
// save–stop–restart–reload path, returning the (much longer)
// interruption it cost.
func (l *LiveJob) RescaleCheckpoint(newWorkers, newGlobalBatch int) (time.Duration, error) {
	return l.job.RescaleCheckpoint(newWorkers, newGlobalBatch)
}

// Stop terminates the job's workers.
func (l *LiveJob) Stop() { l.job.Stop() }
