package ones

import (
	"repro/internal/cluster"
)

// ShapeSummary describes a parsed heterogeneous cluster shape (see
// WithShape for the syntax) without running anything: total capacity,
// the largest single server, and the per-rack failure domains.
type ShapeSummary struct {
	Shape         string         `json:"shape"`
	Servers       int            `json:"servers"`
	TotalGPUs     int            `json:"total_gpus"`
	MaxServerGPUs int            `json:"max_server_gpus"`
	Racks         []RackCapacity `json:"racks"`
}

// ParseShape validates a cluster shape string like "4x8,2x4" and
// returns its capacity summary. Use it to sanity-check a shape — e.g.
// whether a trace's largest GPU request still fits on one server —
// before committing a Session (WithShape) or a daemon run spec to it.
func ParseShape(shape string) (ShapeSummary, error) {
	topo, err := cluster.ParseShape(shape)
	if err != nil {
		return ShapeSummary{}, err
	}
	out := ShapeSummary{
		Shape:         shape,
		Servers:       topo.NumServers(),
		TotalGPUs:     topo.TotalGPUs(),
		MaxServerGPUs: topo.MaxServerGPUs(),
	}
	for _, rc := range topo.RackSummary() {
		out.Racks = append(out.Racks, RackCapacity{Rack: rc.Rack, Servers: rc.Servers, GPUs: rc.GPUs})
	}
	return out, nil
}
