package ones_test

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/ones"
)

// Example is the SDK's front-page path: configure a Session once with
// functional options, then run a simulation under a context. (Compiled
// by go test; not executed, since a full run takes seconds.)
func Example() {
	s, err := ones.New(
		ones.WithScheduler("ones"),
		ones.WithScenario("diurnal+spot"),
		ones.WithTopology(4, 4),
		ones.WithTrace(ones.Trace{Jobs: 12, MeanInterarrival: 30, MaxGPUs: 4}),
		ones.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean JCT %.1f s over %d jobs\n", res.MeanJCT, len(res.Jobs))
}

// ExampleWithShape simulates a heterogeneous fleet — four dense 8-GPU
// boxes in rack 0, two small 4-GPU boxes in rack 1 — under the
// rack-drain scenario, and reads the rack-level outcome off the Result.
func ExampleWithShape() {
	s, err := ones.New(
		ones.WithScheduler("ones"),
		ones.WithShape("4x8,2x4"),
		ones.WithScenario("rack-drain"),
		ones.WithQuickScale(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, rack := range res.Racks {
		fmt.Printf("rack %d: %d servers, %d GPUs\n", rack.Rack, rack.Servers, rack.GPUs)
	}
	fmt.Printf("evictions from rack drains: %d\n", res.RackDrainEvictions)
}

// ExampleSession_Compare pairs every paper scheduler against the same
// trace and capacity timeline — the comparison the Wilcoxon analysis
// requires.
func ExampleSession_Compare() {
	s, err := ones.New(ones.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	results, err := s.Compare(context.Background(), "ones", "tiresias")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-10s mean JCT %.1f s\n", r.Scheduler, r.MeanJCT)
	}
}

// ExampleParseShape validates a cluster shape without running anything.
// Group order is significant: it fixes the GPU axis and the rack ids.
func ExampleParseShape() {
	sh, err := ones.ParseShape("4x8,2x4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d servers, %d GPUs, largest server %d GPUs\n", sh.Servers, sh.TotalGPUs, sh.MaxServerGPUs)
	for _, r := range sh.Racks {
		fmt.Printf("rack %d: %d servers, %d GPUs\n", r.Rack, r.Servers, r.GPUs)
	}
	// Output:
	// 6 servers, 40 GPUs, largest server 8 GPUs
	// rack 0: 4 servers, 32 GPUs
	// rack 1: 2 servers, 8 GPUs
}

// ExampleGenerateTrace builds a deterministic workload trace and
// inspects its composition — the Table 2 view.
func ExampleGenerateTrace() {
	trace, err := ones.GenerateTrace(ones.Trace{Jobs: 30, MeanInterarrival: 12, Seed: 1}, "steady")
	if err != nil {
		log.Fatal(err)
	}
	s := trace.Summary()
	fmt.Printf("jobs: %d\n", s.Jobs)
	fmt.Printf("largest request: %d GPUs\n", s.MaxGPUReq)
	// Output:
	// jobs: 30
	// largest request: 8 GPUs
}

// ExampleNewCache shares one persistent result cache across sessions:
// any cell one session computed — in this process or a previous one —
// is recalled instead of resimulated.
func ExampleNewCache() {
	cache, err := ones.NewCache("/tmp/ones-cache", nil)
	if err != nil {
		log.Fatal(err)
	}
	s, err := ones.New(ones.WithCache(cache), ones.WithQuickScale())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println(cache.Stats().Computes) // 1 on a cold cache, 0 on a warm rerun
}
