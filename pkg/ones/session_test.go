package ones

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// quickSession builds a small, fast session; extra options append.
func quickSession(t *testing.T, extra ...Option) *Session {
	t.Helper()
	opts := append([]Option{
		WithScheduler("fifo"),
		WithTopology(4, 4),
		WithTrace(Trace{Jobs: 10, MeanInterarrival: 25, MaxGPUs: 4}),
		WithSeed(3),
		WithPopulation(6),
	}, extra...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsUnknownScheduler(t *testing.T) {
	_, err := New(WithScheduler("no-such-policy"))
	if !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
	if !strings.Contains(err.Error(), "ones") || !strings.Contains(err.Error(), "tiresias") {
		t.Errorf("error does not list known schedulers: %v", err)
	}
}

func TestNewRejectsUnknownScenario(t *testing.T) {
	for _, name := range []string{"no-such-world", "diurnal+no-such-world"} {
		_, err := New(WithScenario(name))
		if !errors.Is(err, ErrUnknownScenario) {
			t.Fatalf("WithScenario(%q): err = %v, want ErrUnknownScenario", name, err)
		}
	}
}

func TestNewRejectsIncompatibleComposition(t *testing.T) {
	// Two arrival processes cannot merge.
	_, err := New(WithScenario("diurnal+burst"))
	if !errors.Is(err, ErrIncompatibleScenarios) {
		t.Fatalf("err = %v, want ErrIncompatibleScenarios", err)
	}
}

func TestNewRejectsBadOptionValues(t *testing.T) {
	for name, opt := range map[string]Option{
		"negative workers":  WithWorkers(-1),
		"zero topology":     WithTopology(0, 4),
		"negative trace":    WithTrace(Trace{Jobs: -1}),
		"mutation rate > 1": WithMutationRate(1.5),
		"zero capacity":     WithCapacities(16, 0),
		"negative populace": WithPopulation(-2),
	} {
		if _, err := New(opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := quickSession(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "FIFO" || res.Scenario != "steady" || res.Capacity != 16 {
		t.Errorf("result coordinates wrong: %s/%s/%d", res.Scheduler, res.Scenario, res.Capacity)
	}
	if len(res.Jobs) != 10 || res.Truncated {
		t.Fatalf("run incomplete: %d jobs, truncated %v", len(res.Jobs), res.Truncated)
	}
	if res.MeanJCT <= 0 || res.Makespan <= 0 || res.Utilization <= 0 {
		t.Errorf("summary metrics empty: %+v", res)
	}
	if res.JCT.Max < res.JCT.Median || res.JCT.Median < res.JCT.Min {
		t.Errorf("JCT distribution disordered: %+v", res.JCT)
	}
	if len(res.Events) != 0 {
		t.Errorf("event log recorded without WithEventLog")
	}
}

func TestRunRecordsEventLog(t *testing.T) {
	res, err := quickSession(t, WithEventLog(true)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events recorded under WithEventLog(true)")
	}
	kinds := map[string]bool{}
	for _, ev := range res.Events {
		kinds[ev.Kind] = true
	}
	if !kinds["arrive"] || !kinds["complete"] {
		t.Errorf("event log missing basic kinds: %v", kinds)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res, err := quickSession(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scheduler != res.Scheduler || len(back.Jobs) != len(res.Jobs) || back.MeanJCT != res.MeanJCT {
		t.Errorf("JSON round trip lost data: %+v vs %+v", back, res)
	}
	if !strings.Contains(string(data), `"mean_jct_s"`) {
		t.Errorf("JSON field names unstable: %s", data)
	}
}

func TestCompareIsPairedAndOrdered(t *testing.T) {
	s := quickSession(t)
	results, err := s.Compare(context.Background(), "sjf", "fifo")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Scheduler != "SJF" || results[1].Scheduler != "FIFO" {
		t.Fatalf("results out of argument order: %v", results)
	}
	if len(results[0].Jobs) != len(results[1].Jobs) {
		t.Error("job counts differ across paired runs")
	}
	if _, err := s.Compare(context.Background(), "fifo", "bogus"); !errors.Is(err, ErrUnknownScheduler) {
		t.Errorf("Compare with unknown scheduler: %v, want ErrUnknownScheduler", err)
	}
}

func TestRunMemoizes(t *testing.T) {
	s := quickSession(t)
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.SimulatedCells(); got != 1 {
		t.Errorf("SimulatedCells = %d after two identical Runs, want 1", got)
	}
}

func TestRunExperimentUnknownName(t *testing.T) {
	s := quickSession(t)
	_, err := s.RunExperiment(context.Background(), "fig999")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
}

func TestRunExperimentRenders(t *testing.T) {
	s, err := New(WithQuickScale(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.RunExperiment(context.Background(), "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 2") {
		t.Errorf("fig2 output malformed:\n%s", out)
	}
}

func TestEnumerations(t *testing.T) {
	scheds := Schedulers()
	if len(scheds) < 6 {
		t.Errorf("Schedulers() = %v", scheds)
	}
	if got := PaperSchedulers(); len(got) != 4 || got[0] != "ones" {
		t.Errorf("PaperSchedulers() = %v", got)
	}
	scens := Scenarios()
	if len(scens) < 7 {
		t.Errorf("Scenarios() = %v", scens)
	}
	sawElastic := false
	for _, sc := range scens {
		if sc.Name == "" || sc.Title == "" || sc.Arrival == "" {
			t.Errorf("scenario info incomplete: %+v", sc)
		}
		sawElastic = sawElastic || sc.ElasticCapacity
	}
	if !sawElastic {
		t.Error("no scenario reports elastic capacity")
	}
	exps := Experiments()
	if len(exps) < 13 || exps[0].Name != "fig2" {
		t.Errorf("Experiments() = %v", exps)
	}
}

func TestScenarioRunThroughSDK(t *testing.T) {
	s := quickSession(t, WithScenario("node-failure"))
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "node-failure" {
		t.Errorf("Scenario = %q", res.Scenario)
	}
	if res.CapacityEvents == 0 {
		t.Error("node-failure scenario applied no capacity events")
	}
}

func TestGenerateTraceAndDecode(t *testing.T) {
	tr, err := GenerateTrace(Trace{Jobs: 25, Seed: 9}, "burst")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs() != 25 {
		t.Fatalf("Jobs = %d", tr.Jobs())
	}
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	sum := back.Summary()
	if sum.Jobs != 25 || sum.MeanGPUReq <= 0 || len(sum.ByClass) == 0 {
		t.Errorf("summary incomplete: %+v", sum)
	}
	if _, err := GenerateTrace(Trace{Jobs: 5}, "bogus"); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("GenerateTrace with unknown scenario: %v", err)
	}
}
