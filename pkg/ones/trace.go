package ones

import (
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Trace shapes the generated workload (the paper's Table 2 job mix).
// The zero value is the paper-scale default: 120 jobs, 12 s mean
// interarrival, requests capped at 8 GPUs, trace seed = the session's
// master seed.
type Trace struct {
	// Jobs is the number of submissions (0 ⇒ 120).
	Jobs int
	// MeanInterarrival is the mean seconds between arrivals, 1/λ0
	// (0 ⇒ 12). Non-stationary scenarios modulate this base rate.
	MeanInterarrival float64
	// MaxGPUs caps the user-requested worker count (0 ⇒ 8).
	MaxGPUs int
	// Seed generates the job stream (0 ⇒ the session's master seed).
	// Sessions sharing a trace seed replay the identical submissions —
	// the pairing cross-scheduler comparisons rely on.
	Seed int64
}

// config expands the public trace shape into the internal generator
// config, with defaults resolved.
func (t Trace) config() workload.Config {
	cfg := workload.Config{
		Seed:             t.Seed,
		NumJobs:          t.Jobs,
		MeanInterarrival: t.MeanInterarrival,
		MaxReqGPUs:       t.MaxGPUs,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NumJobs <= 0 {
		cfg.NumJobs = 120
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = 12
	}
	if cfg.MaxReqGPUs <= 0 {
		cfg.MaxReqGPUs = 8
	}
	return cfg
}

// TraceData is a generated (or decoded) workload trace: an opaque,
// validated job stream that can be summarized or serialized for later
// replay. The JSON form is stable across versions.
type TraceData struct {
	trace *workload.Trace
}

// GenerateTrace builds the deterministic job stream the given trace
// shape describes, under the named scenario's arrival process ("" or
// "steady" ⇒ the paper's stationary Poisson arrivals). Composed names
// ("diurnal+spot") are accepted; unknown names fail wrapping
// ErrUnknownScenario.
func GenerateTrace(t Trace, scenarioName string) (*TraceData, error) {
	cfg := t.config()
	if scenarioName != "" {
		spec, err := scenario.Get(scenarioName)
		if err != nil {
			return nil, err
		}
		cfg.Arrival = spec.Arrival
	}
	tr, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceData{trace: tr}, nil
}

// DecodeTrace parses and validates a trace previously serialized with
// JSON.
func DecodeTrace(data []byte) (*TraceData, error) {
	tr, err := workload.Decode(data)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceData{trace: tr}, nil
}

// JSON serializes the trace for storage or replay.
func (d *TraceData) JSON() ([]byte, error) { return d.trace.Encode() }

// Jobs returns the number of submissions in the trace.
func (d *TraceData) Jobs() int { return len(d.trace.Jobs) }

// TraceSummary aggregates a trace's composition (the Table 2 view).
type TraceSummary struct {
	Jobs       int            `json:"jobs"`
	Makespan   float64        `json:"makespan_s"` // submit time of the last job
	MeanGPUReq float64        `json:"mean_gpu_req"`
	MaxGPUReq  int            `json:"max_gpu_req"` // largest single job request
	ByClass    map[string]int `json:"by_class"`
	ByModel    map[string]int `json:"by_model"`
}

// Summary computes the trace's composition statistics.
func (d *TraceData) Summary() TraceSummary {
	s := d.trace.Summarize()
	out := TraceSummary{
		Jobs:       s.Jobs,
		Makespan:   s.Makespan,
		MeanGPUReq: s.MeanGPUReq,
		ByClass:    make(map[string]int, len(s.ByClass)),
		ByModel:    make(map[string]int, len(s.ByModel)),
	}
	for class, n := range s.ByClass {
		out.ByClass[string(class)] = n
	}
	for model, n := range s.ByModel {
		out.ByModel[model] = n
	}
	for _, j := range d.trace.Jobs {
		if j.ReqGPUs > out.MaxGPUReq {
			out.MaxGPUReq = j.ReqGPUs
		}
	}
	return out
}
