package ones

import (
	"context"
	"errors"
	"testing"
)

func TestWithShapeValidation(t *testing.T) {
	if _, err := New(WithShape("not-a-shape")); err == nil {
		t.Fatal("New accepted an invalid shape")
	}
	if _, err := New(WithShape("4x8,2x4"), WithQuickScale()); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
}

func TestParseShapeSummary(t *testing.T) {
	sh, err := ParseShape("4x8,2x4")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Servers != 6 || sh.TotalGPUs != 40 || sh.MaxServerGPUs != 8 {
		t.Fatalf("summary = %+v", sh)
	}
	if len(sh.Racks) != 2 || sh.Racks[0].GPUs != 32 || sh.Racks[1].GPUs != 8 {
		t.Fatalf("racks = %+v", sh.Racks)
	}
	if _, err := ParseShape("4x"); err == nil {
		t.Fatal("bad shape parsed")
	}
}

func TestRunOnMixedShapeReportsRacks(t *testing.T) {
	s, err := New(
		WithScheduler("fifo"),
		WithShape("2x4,1x8"),
		WithScenario("rack-drain"),
		WithTrace(Trace{Jobs: 12, MeanInterarrival: 20}),
		WithQuickScale(),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Shape != "2x4,1x8" {
		t.Errorf("Shape = %q", res.Shape)
	}
	if res.Capacity != 16 {
		t.Errorf("Capacity = %d, want 16", res.Capacity)
	}
	if len(res.Racks) != 2 ||
		res.Racks[0] != (RackCapacity{Rack: 0, Servers: 2, GPUs: 8}) ||
		res.Racks[1] != (RackCapacity{Rack: 1, Servers: 1, GPUs: 8}) {
		t.Errorf("Racks = %+v", res.Racks)
	}
	if res.RackDrainEvictions > res.Evictions {
		t.Errorf("RackDrainEvictions %d > Evictions %d", res.RackDrainEvictions, res.Evictions)
	}
}

func TestHomogeneousRunReportsSingleRack(t *testing.T) {
	s, err := New(WithScheduler("fifo"), WithTopology(4, 4),
		WithTrace(Trace{Jobs: 8, MeanInterarrival: 25}), WithQuickScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Shape != "" {
		t.Errorf("homogeneous run has Shape %q", res.Shape)
	}
	if len(res.Racks) != 1 || res.Racks[0] != (RackCapacity{Rack: 0, Servers: 4, GPUs: 16}) {
		t.Errorf("Racks = %+v", res.Racks)
	}
}

func TestShapeOrderingsAreDistinctSessions(t *testing.T) {
	run := func(shape string) *Result {
		s, err := New(WithScheduler("fifo"), WithShape(shape), WithScenario("rack-drain"),
			WithTrace(Trace{Jobs: 12, MeanInterarrival: 20}), WithQuickScale())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run("2x4,1x8"), run("1x8,2x4")
	// Same total capacity, same trace — but the rack drain takes out
	// different hardware, so the runs must not be conflated.
	if a.Shape == b.Shape {
		t.Fatal("distinct orderings reported the same shape")
	}
	if a.Capacity != b.Capacity {
		t.Fatalf("capacities differ: %d vs %d", a.Capacity, b.Capacity)
	}
}

func TestWithShapeErrorIsFirstFailure(t *testing.T) {
	_, err := New(WithShape("zzz"), WithScheduler("nope"))
	if err == nil {
		t.Fatal("want error")
	}
	if errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("option-validation error should win over scheduler lookup: %v", err)
	}
}
