package ones

import (
	"context"
	"fmt"
	"repro/internal/simulator"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/engine"
	_ "repro/internal/experiments" // populate the experiment registry
	"repro/internal/scenario"
	"repro/internal/schedulers"
)

// Session is a configured front door to the scheduler and experiment
// suite: one worker pool, one memoized result cache, one deterministic
// master seed. Sessions are safe for concurrent use; every distinct
// simulation cell runs at most once per session however many calls
// request it.
type Session struct {
	params     engine.Params
	scheduler  string
	scenario   string
	autoscaler string
	servers    int
	gpusPer    int
	shape      string
	traceSeed  int64
	obs        Observer
	metrics    *Metrics
	runner     *engine.Runner

	progress struct {
		sync.Mutex
		done  int
		total int
	}
}

// New builds a Session from functional options (see the With… Option
// constructors). Scheduler, scenario and autoscaler names are validated
// eagerly: unknown names fail here with errors wrapping
// ErrUnknownScheduler / ErrUnknownScenario / ErrUnknownAutoscaler rather
// than on first Run.
func New(opts ...Option) (*Session, error) {
	st := settings{scheduler: "ones", scenario: scenario.Steady}
	for _, o := range opts {
		o(&st)
	}
	if st.err != nil {
		return nil, st.err
	}
	if !schedulers.Has(st.scheduler) {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownScheduler, st.scheduler, Schedulers())
	}
	if _, err := scenario.Get(st.scenario); err != nil {
		return nil, err
	}
	if st.autoscaler != "" {
		if _, err := autoscale.Get(st.autoscaler); err != nil {
			return nil, err
		}
	}
	p := st.params
	if st.trace.Jobs > 0 {
		p.Jobs = st.trace.Jobs
	}
	if st.trace.MeanInterarrival > 0 {
		p.Interarrival = st.trace.MeanInterarrival
	}
	if st.trace.MaxGPUs > 0 {
		p.MaxGPUs = st.trace.MaxGPUs
	}
	s := &Session{
		scheduler:  st.scheduler,
		scenario:   st.scenario,
		autoscaler: st.autoscaler,
		servers:    st.servers,
		gpusPer:    st.gpusPer,
		shape:      st.shape,
		traceSeed:  st.trace.Seed,
		obs:        st.observer,
		metrics:    st.metrics,
		runner:     engine.NewRunner(p),
	}
	if st.cache != nil {
		s.runner.Persist = st.cache.impl
	}
	if st.metrics != nil {
		s.runner.Obs = st.metrics.reg
		if st.cache != nil {
			st.cache.impl.Instrument(st.metrics.reg)
		}
	}
	s.params = s.runner.Params()
	if s.obs != nil {
		s.runner.OnCellStart = func(cell engine.Cell) {
			s.emit(s.cellProgress(KindCellStart, cell, 0, nil))
		}
		s.runner.OnCell = func(cell engine.Cell, res *simulator.Result, elapsed time.Duration) {
			s.progress.Lock()
			s.progress.done++
			s.progress.Unlock()
			s.emit(s.cellProgress(KindCellDone, cell, elapsed, newResult(cell, s.params, res)))
		}
	}
	return s, nil
}

// Workers returns the effective worker-pool size.
func (s *Session) Workers() int { return s.runner.Workers() }

// Seed returns the session's master RNG seed.
func (s *Session) Seed() int64 { return s.params.Seed }

// SimulatedCells reports how many distinct simulation cells the
// session's cache holds.
func (s *Session) SimulatedCells() int { return s.runner.CachedCells() }

func (s *Session) emit(p Progress) {
	if s.obs != nil {
		s.obs.Observe(p)
	}
}

// counts snapshots the done/total progress counters.
func (s *Session) counts() (done, total int) {
	s.progress.Lock()
	defer s.progress.Unlock()
	return s.progress.done, s.progress.total
}

// beginBatch grows the planned-cell total, credits cells the cache
// already holds (they never surface as cell events, so Done jumps for
// them immediately), and emits run-start.
func (s *Session) beginBatch(cells []engine.Cell) {
	cached := s.runner.CachedOf(cells)
	s.progress.Lock()
	s.progress.total += len(cells)
	s.progress.done += cached
	s.progress.Unlock()
	done, total := s.counts()
	s.emit(Progress{Kind: KindRunStart, Done: done, Total: total})
}

func (s *Session) endBatch(start time.Time) {
	done, total := s.counts()
	s.emit(Progress{Kind: KindRunDone, Elapsed: time.Since(start), Done: done, Total: total})
}

// cellProgress renders one cell event, resolving the cell's defaults so
// the event reports the coordinates that actually simulated.
func (s *Session) cellProgress(kind ProgressKind, cell engine.Cell, elapsed time.Duration, res *Result) Progress {
	done, total := s.counts()
	p := Progress{
		Kind:      kind,
		Cell:      cell.String(),
		Scheduler: cell.Scheduler,
		Capacity:  cell.Capacity,
		TraceSeed: cell.TraceSeed,
		Scenario:  cell.Scenario,
		Elapsed:   elapsed,
		Result:    res,
		Done:      done,
		Total:     total,
	}
	return p
}

// cell maps the session configuration onto one engine cell for the given
// scheduler.
func (s *Session) cell(scheduler string) engine.Cell {
	return engine.Cell{
		Scheduler:  scheduler,
		Capacity:   s.servers * s.gpusPer,
		GPUsPer:    s.gpusPer,
		Shape:      s.shape,
		TraceSeed:  s.traceSeed,
		Scenario:   s.scenario,
		Autoscaler: s.autoscaler,
	}
}

// Run simulates the session's configured trace under its configured
// scheduler, scenario and topology. The context cancels pending work at
// cell boundaries; the session's workers drain before Run returns.
// Results are memoized: a second identical Run returns instantly.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	start := time.Now()
	cell := s.cell(s.scheduler)
	s.beginBatch([]engine.Cell{cell})
	defer s.endBatch(start)
	res, err := s.runner.Result(ctx, cell)
	if err != nil {
		return nil, err
	}
	return newResult(cell, s.params, res), nil
}

// Compare simulates each named scheduler against the session's identical
// trace, scenario and capacity timeline — the paired comparison the
// paper's Wilcoxon analysis requires. Results come back in argument
// order. Unknown names fail (wrapping ErrUnknownScheduler) before any
// simulation starts.
func (s *Session) Compare(ctx context.Context, schedulerNames ...string) ([]*Result, error) {
	if len(schedulerNames) == 0 {
		schedulerNames = PaperSchedulers()
	}
	cells := make([]engine.Cell, len(schedulerNames))
	for i, name := range schedulerNames {
		if !schedulers.Has(name) {
			return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownScheduler, name, Schedulers())
		}
		cells[i] = s.cell(name)
	}
	start := time.Now()
	s.beginBatch(cells)
	defer s.endBatch(start)
	raw, err := s.runner.Results(ctx, cells)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(raw))
	for i, r := range raw {
		out[i] = newResult(cells[i], s.params, r)
	}
	return out, nil
}

// ExperimentResult is one rendered experiment.
type ExperimentResult struct {
	Name   string
	Title  string
	Output string
}

// RunExperiment regenerates one registered figure or table of the
// paper's evaluation and returns its rendered text. Unknown names fail
// wrapping ErrUnknownExperiment.
func (s *Session) RunExperiment(ctx context.Context, name string) (string, error) {
	out, err := s.RunExperiments(ctx, name)
	if err != nil {
		return "", err
	}
	return out[0].Output, nil
}

// RunExperiments regenerates the named experiments in order. Their
// declared simulation cells are deduplicated and prewarmed across the
// worker pool first — experiments sharing runs (fig15, table4, fig17,
// fig18) execute them once — and each experiment then renders from the
// warm cache. All names validate (wrapping ErrUnknownExperiment) before
// any simulation starts.
func (s *Session) RunExperiments(ctx context.Context, names ...string) ([]ExperimentResult, error) {
	exps := make([]engine.Experiment, len(names))
	for i, name := range names {
		e, err := engine.GetExperiment(name)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	start := time.Now()
	cells := engine.DeclaredCells(exps, s.params)
	s.beginBatch(cells)
	defer s.endBatch(start)
	if len(cells) > 0 {
		if _, err := s.runner.Results(ctx, cells); err != nil {
			return nil, err
		}
	}
	out := make([]ExperimentResult, len(exps))
	for i, e := range exps {
		expStart := time.Now()
		s.emit(Progress{Kind: KindExperimentStart, Experiment: e.Name})
		text, err := e.Run(ctx, s.runner)
		if err != nil {
			return nil, fmt.Errorf("ones: experiment %s: %w", e.Name, err)
		}
		s.emit(Progress{Kind: KindExperimentDone, Experiment: e.Name, Elapsed: time.Since(expStart)})
		out[i] = ExperimentResult{Name: e.Name, Title: e.Title, Output: text}
	}
	return out, nil
}

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	Name  string
	Title string
}

// Experiments lists the registered experiments in paper (registration)
// order.
func Experiments() []ExperimentInfo {
	exps := engine.Experiments()
	out := make([]ExperimentInfo, len(exps))
	for i, e := range exps {
		out[i] = ExperimentInfo{Name: e.Name, Title: e.Title}
	}
	return out
}

// Schedulers lists the registered scheduler names, sorted.
func Schedulers() []string { return schedulers.Names() }

// PaperSchedulers lists the schedulers the paper's headline comparison
// (Figure 15) evaluates: ONES and its three baselines.
func PaperSchedulers() []string { return engine.PaperSchedulers() }

// ScenarioInfo describes one registered scenario.
type ScenarioInfo struct {
	Name    string
	Title   string
	Arrival string // human description of the arrival process
	// ElasticCapacity is true when the scenario mutates cluster capacity
	// during the run (failures, preemptions, planned scaling).
	ElasticCapacity bool
}

// Scenarios lists the registered scenarios sorted by name. Any "+"
// composition of these names (e.g. "diurnal+spot") is also accepted by
// WithScenario, provided the parts claim disjoint world dimensions.
func Scenarios() []ScenarioInfo {
	specs := scenario.Specs()
	out := make([]ScenarioInfo, len(specs))
	for i, sp := range specs {
		out[i] = ScenarioInfo{
			Name:            sp.Name,
			Title:           sp.Title,
			Arrival:         sp.Arrival.String(),
			ElasticCapacity: !sp.Capacity.IsStatic(),
		}
	}
	return out
}

// AutoscalerInfo describes one registered autoscaler policy.
type AutoscalerInfo struct {
	Name  string
	Title string
}

// Autoscalers lists the registered reactive autoscaler policies sorted
// by name. Any of these names is accepted by WithAutoscaler.
func Autoscalers() []AutoscalerInfo {
	policies := autoscale.Policies()
	out := make([]AutoscalerInfo, len(policies))
	for i, p := range policies {
		out[i] = AutoscalerInfo{Name: p.Name, Title: p.Title}
	}
	return out
}
