package ones

import (
	"sync"
	"time"
)

// ProgressKind classifies a progress event.
type ProgressKind string

// Progress event kinds, in the order a run emits them.
const (
	// KindRunStart opens a batch of simulation work; Total counts the
	// cells the batch plans to touch (cached cells may never surface as
	// cell events).
	KindRunStart ProgressKind = "run-start"
	// KindCellStart marks one simulation cell beginning to execute on a
	// worker (cache hits emit no cell events).
	KindCellStart ProgressKind = "cell-start"
	// KindCellDone marks one simulation cell finishing; Result carries
	// its live metrics and Elapsed its wall time.
	KindCellDone ProgressKind = "cell-done"
	// KindExperimentStart and KindExperimentDone bracket the rendering
	// of one named experiment.
	KindExperimentStart ProgressKind = "experiment-start"
	KindExperimentDone  ProgressKind = "experiment-done"
	// KindRunDone closes the batch opened by KindRunStart.
	KindRunDone ProgressKind = "run-done"
)

// Progress is one streamed progress event. Fields beyond Kind are
// populated where meaningful: cell events carry the cell coordinates
// (and, on completion, live metrics); experiment events carry the
// experiment name; Done/Total count executed cells against the batch
// plan.
type Progress struct {
	Kind ProgressKind

	// Cell coordinates (cell-start, cell-done).
	Cell      string // compact render, e.g. "ones/64gpu/trace1/steady"
	Scheduler string
	Capacity  int
	TraceSeed int64
	Scenario  string

	// Experiment name (experiment-start, experiment-done).
	Experiment string

	// Elapsed wall time (cell-done, experiment-done, run-done).
	Elapsed time.Duration

	// Result carries the finished cell's metrics (cell-done only) — the
	// live view a dashboard renders while the batch is still running.
	Result *Result

	// Done counts cells executed so far; Total the cells the current
	// batch planned (0 when unknown). Cached cells count as done
	// immediately, so Done can jump.
	Done, Total int
}

// Observer receives streamed progress events. Callbacks may arrive from
// multiple goroutines concurrently (one per busy worker) but all
// complete before the Session method that triggered them returns, so an
// Observer needs no draining protocol of its own.
type Observer interface {
	Observe(p Progress)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(p Progress)

// Observe calls f.
func (f ObserverFunc) Observe(p Progress) { f(p) }

// multiObserver fans events to several observers in order.
type multiObserver []Observer

func (m multiObserver) Observe(p Progress) {
	for _, o := range m {
		o.Observe(p)
	}
}

// MultiObserver combines observers; each event is delivered to every
// observer in argument order. Nil observers are skipped.
func MultiObserver(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}

// Stream adapts the Observer interface to a channel, for consumers that
// prefer ranging over events to registering callbacks:
//
//	stream := ones.NewStream(16)
//	s, _ := ones.New(ones.WithObserver(stream))
//	go func() { defer stream.Close(); s.Run(ctx) }()
//	for p := range stream.Events() { ... }
//
// Sends block when the buffer is full, throttling the engine to the
// consumer rather than dropping events. Close ends the Events range
// (after buffered events drain) and is safe at any time, even while the
// run is still emitting: senders blocked on a full buffer unblock and
// discard their event, so an early-exiting consumer can Close without
// deadlocking the engine. Close is idempotent.
type Stream struct {
	mu       sync.Mutex
	ch       chan Progress
	done     chan struct{}
	sending  int
	closed   bool
	chClosed bool
}

// NewStream returns a Stream whose channel buffers up to buffer events
// (minimum 1).
func NewStream(buffer int) *Stream {
	if buffer < 1 {
		buffer = 1
	}
	return &Stream{ch: make(chan Progress, buffer), done: make(chan struct{})}
}

// Observe forwards the event into the channel, blocking while the
// buffer is full (or until the stream closes).
func (s *Stream) Observe(p Progress) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.sending++
	s.mu.Unlock()
	select {
	case s.ch <- p:
	case <-s.done: // closed mid-send: drop the event
	}
	s.mu.Lock()
	s.sending--
	s.closeChLocked()
	s.mu.Unlock()
}

// Events returns the receive side of the stream.
func (s *Stream) Events() <-chan Progress { return s.ch }

// Close ends the stream: blocked senders unblock, later Observe calls
// are discarded, and the Events channel closes once buffered events are
// consumed and in-flight sends retire.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.done)
	s.closeChLocked()
}

// closeChLocked closes the event channel once the stream is closed and
// the last in-flight send has retired. Callers hold s.mu.
func (s *Stream) closeChLocked() {
	if s.closed && s.sending == 0 && !s.chClosed {
		s.chClosed = true
		close(s.ch)
	}
}
