package ones

import (
	"repro/internal/autoscale"
	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/schedulers"
)

// Typed sentinel errors. Errors returned by New, Session methods and
// GenerateTrace wrap these; match them with errors.Is. The returned
// error text additionally lists the known names.
var (
	// ErrUnknownScheduler marks a scheduler name absent from the
	// registry (see Schedulers for the known names).
	ErrUnknownScheduler = schedulers.ErrUnknown
	// ErrUnknownScenario marks a scenario name absent from the registry
	// (see Scenarios). Composed names ("diurnal+spot") report the
	// missing part.
	ErrUnknownScenario = scenario.ErrUnknown
	// ErrIncompatibleScenarios marks a "+"-composed scenario whose parts
	// claim the same dimension of the world (two arrival processes, two
	// failure processes, …).
	ErrIncompatibleScenarios = scenario.ErrIncompatible
	// ErrUnknownAutoscaler marks an autoscaler policy name absent from
	// the registry (see Autoscalers).
	ErrUnknownAutoscaler = autoscale.ErrUnknown
	// ErrUnknownExperiment marks an experiment name absent from the
	// registry (see Session.Experiments).
	ErrUnknownExperiment = engine.ErrUnknownExperiment
)
