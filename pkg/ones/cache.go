package ones

import (
	"time"

	"repro/internal/servecache"
)

// Cache is a shared simulation-result cache: plug one Cache into any
// number of Sessions (ones.WithCache) and every distinct simulation cell
// computes at most once across all of them, with concurrent requests for
// the same cell deduplicated (singleflight). Built with a directory, the
// cache also persists each completed cell to disk, so a restarted
// process — a daemon coming back up, a CLI invoked again — serves warm
// cells without recomputation, byte-identical to the cold result.
//
// A cancelled run never reaches the cache, in memory or on disk, and a
// corrupt, torn or version-mismatched cache file is discarded with a
// warning and recomputed — a Cache can change performance, never
// results.
type Cache struct {
	impl *servecache.Cache
}

// CacheStats counts cache outcomes since construction.
type CacheStats struct {
	// Computes is how many cells were actually simulated.
	Computes int `json:"computes"`
	// MemoryHits served from the in-process memo, DiskHits from a
	// persisted file.
	MemoryHits int `json:"memory_hits"`
	DiskHits   int `json:"disk_hits"`
	// DedupWaits piggybacked on another caller's in-flight computation.
	DedupWaits int `json:"dedup_waits"`
	// Discards counts bad cache files thrown away (warned, recomputed).
	Discards int `json:"discards"`
	// MemoEvictions counts completed memo entries dropped by the bounded-
	// state sweeps (see CacheLimits); DiskEvictions counts persisted
	// files removed to keep the cache directory under its byte cap.
	MemoEvictions int `json:"memo_evictions"`
	DiskEvictions int `json:"disk_evictions"`
	// Entries is the current in-memory memo size.
	Entries int `json:"entries"`
}

// CacheLimits bounds a shared cache's state so a long-lived process
// cannot grow without bound. The zero value disables all eviction.
// Eviction only ever touches completed entries — in-flight computations
// and their waiters are untouched — and an evicted entry that was
// persisted reloads from disk on next use, so limits change
// performance, never results.
type CacheLimits struct {
	// MaxEntries caps the in-memory memo; beyond it the least-recently-
	// used completed entries are evicted. 0 ⇒ unbounded.
	MaxEntries int
	// TTL evicts completed memo entries idle for at least this long.
	// 0 ⇒ entries never expire.
	TTL time.Duration
	// MaxDiskBytes caps the persistence directory; beyond it the oldest
	// files are removed. 0 ⇒ unbounded.
	MaxDiskBytes int64
}

// SetLimits installs (or replaces) the cache's state bounds and sweeps
// immediately, returning how many entries/files were evicted. Safe to
// call at any point in the cache's life, concurrently with use.
func (c *Cache) SetLimits(l CacheLimits) int {
	return c.impl.SetLimits(servecache.Limits{
		MaxEntries:   l.MaxEntries,
		TTL:          l.TTL,
		MaxDiskBytes: l.MaxDiskBytes,
	})
}

// Sweep applies the configured CacheLimits now — TTL expiry and LRU cap
// on the memo, byte cap on the disk directory — and returns how many
// entries/files were evicted. The cache also sweeps itself after every
// insert; call Sweep periodically (onesd does) so idle entries expire
// even with no traffic to trigger it.
func (c *Cache) Sweep() int { return c.impl.Sweep() }

// NewCache returns a shared result cache. dir == "" keeps it memory-only
// (cross-session sharing and deduplication without persistence);
// otherwise completed cells are persisted under dir, which is created if
// missing. warn receives non-fatal cache problems (nil ⇒ the standard
// logger).
func NewCache(dir string, warn func(format string, args ...any)) (*Cache, error) {
	impl, err := servecache.New(dir, warn)
	if err != nil {
		return nil, err
	}
	return &Cache{impl: impl}, nil
}

// Dir returns the persistence directory ("" when memory-only).
func (c *Cache) Dir() string { return c.impl.Dir() }

// Reset drops every completed entry from the in-memory memo and returns
// how many were dropped. In-flight computations finish undisturbed, and
// persisted disk files are untouched — a dropped entry that was written
// through reloads from disk on next use instead of recomputing. Use it
// to bound a long-lived daemon's memory (see onesd's DELETE /v1/cache).
func (c *Cache) Reset() int { return c.impl.Reset() }

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	s := c.impl.Stats()
	return CacheStats{
		Computes:      s.Computes,
		MemoryHits:    s.MemoryHits,
		DiskHits:      s.DiskHits,
		DedupWaits:    s.DedupWaits,
		Discards:      s.Discards,
		MemoEvictions: s.MemoEvictions,
		DiskEvictions: s.DiskEvictions,
		Entries:       s.Entries,
	}
}

// Instrument registers the cache's out-of-band telemetry with m and
// starts recording: hits by source, computes, singleflight dedupes, disk
// writes, corrupt-file discards, plus live gauges for the memo size and
// bytes on disk. Sessions built with both WithCache and WithMetrics call
// this automatically; call it directly when the cache is used without a
// Session (onesd does, so cache series exist before the first run). Safe
// on a nil Metrics; telemetry never changes what the cache returns.
func (c *Cache) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	c.impl.Instrument(m.reg)
}

// WithCache plugs a shared (and optionally persistent) result cache into
// the Session. Sessions sharing one Cache share results: a cell any of
// them has computed — in this process or, with persistence, a previous
// one — is recalled instead of resimulated. Cache hits recalled from
// outside the Session's own memo do not emit cell progress events (like
// in-session memo hits, they execute nothing).
func WithCache(c *Cache) Option {
	return func(s *settings) {
		s.cache = c
	}
}
