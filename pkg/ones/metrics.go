package ones

import (
	"context"
	"io"

	"repro/internal/obs"
)

// Metrics is an opt-in, process-wide telemetry sink for Sessions: a
// metrics registry rendering the Prometheus text exposition format plus
// a bounded in-memory trace buffer recording per-run cell lifecycles
// (queued → trace-gen → simulate → evolution intervals → done).
//
// Plug one Metrics into any number of Sessions with WithMetrics; they
// aggregate into it. Telemetry is strictly out of band: a Session's
// results are byte-identical with metrics enabled or disabled (the
// determinism test in this package pins that), and the disabled path
// costs one nil check per recording site.
type Metrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer
}

// NewMetrics returns an empty Metrics sink with the default trace-buffer
// bounds (64 traces of 512 spans each).
func NewMetrics() *Metrics {
	return &Metrics{reg: obs.NewRegistry(), tracer: obs.NewTracer(0, 0)}
}

// WritePrometheus renders every metric family in the Prometheus text
// exposition format (version 0.0.4). Rendering is deterministic for a
// given state: families sorted by name, series by label values. Safe on
// a nil Metrics (writes nothing).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	return m.reg.WritePrometheus(w)
}

// StartTrace opens a trace under id (onesd uses run IDs) rooted at a
// span named name, and returns a context carrying it plus a function
// closing the root span. Session work invoked with the returned context
// records its cell lifecycle spans into the trace; read it back with
// TraceTree. Re-using an id replaces the old trace, and when the buffer
// is full the oldest trace is evicted. Safe on a nil Metrics (returns
// ctx unchanged and a no-op closer).
func (m *Metrics) StartTrace(ctx context.Context, id, name string) (context.Context, func()) {
	if m == nil {
		return ctx, func() {}
	}
	ctx, span := m.tracer.Start(ctx, id, name)
	return ctx, span.End
}

// TraceTree returns the recorded span tree for a trace id, or false when
// the id is unknown or already evicted. Safe on a nil Metrics.
func (m *Metrics) TraceTree(id string) (*TraceNode, bool) {
	if m == nil {
		return nil, false
	}
	node, ok := m.tracer.Tree(id)
	if !ok {
		return nil, false
	}
	return newTraceNode(node), true
}

// TraceNode is one span in a recorded trace tree. Times are milliseconds
// relative to the trace start.
type TraceNode struct {
	// Name is the span name (e.g. "run", "cell ones/64gpu/trace1/steady",
	// "queued", "simulate", "evolution-interval").
	Name string `json:"name"`
	// StartMS is the span's start offset from the trace start.
	StartMS float64 `json:"start_ms"`
	// DurationMS is the span's length (0 while InProgress).
	DurationMS float64 `json:"duration_ms"`
	// InProgress marks a span not yet ended at render time.
	InProgress bool `json:"in_progress,omitempty"`
	// Attrs holds the span's key=value annotations (scheduler, error,
	// cancelled).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are the span's sub-spans, in creation order.
	Children []*TraceNode `json:"children,omitempty"`
	// DroppedSpans (root only) counts spans the bounded buffer refused.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// newTraceNode mirrors an internal span tree into the public type.
func newTraceNode(n *obs.SpanNode) *TraceNode {
	out := &TraceNode{
		Name:         n.Name,
		StartMS:      n.StartMS,
		DurationMS:   n.DurationMS,
		InProgress:   n.InProgress,
		Attrs:        n.Attrs,
		DroppedSpans: n.DroppedSpans,
	}
	if len(n.Children) > 0 {
		out.Children = make([]*TraceNode, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = newTraceNode(c)
		}
	}
	return out
}

// Registry exposes the underlying internal/obs registry for in-module
// consumers (the onesd server mounts HTTP middleware and daemon gauges
// on it). External importers cannot name the returned type and should
// treat Metrics as opaque.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// MetricsSnapshot is a point-in-time reading of the headline series, for
// in-process consumers that want numbers without parsing Prometheus
// text. Fields read zero until the relevant subsystem has recorded.
type MetricsSnapshot struct {
	// Engine cell lifecycle (cache hits excluded throughout).
	CellsStarted   uint64  `json:"cells_started"`
	CellsCompleted uint64  `json:"cells_completed"`
	CellsCancelled uint64  `json:"cells_cancelled"`
	CellsFailed    uint64  `json:"cells_failed"`
	CellSeconds    float64 `json:"cell_seconds"` // total wall time simulating

	// Shared result cache (see WithCache).
	CacheMemoryHits uint64 `json:"cache_memory_hits"`
	CacheDiskHits   uint64 `json:"cache_disk_hits"`
	CacheComputes   uint64 `json:"cache_computes"`

	// ONES evolutionary search.
	Generations uint64 `json:"generations"`
	Candidates  uint64 `json:"candidates"`
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	Decisions   uint64 `json:"decisions"`
	Deployments uint64 `json:"deployments"`
}

// Snapshot reads the current values of the headline series. Reads are
// per-series atomic (not a registry-wide consistent cut, which the hot
// paths never pause for). Safe on a nil Metrics (all zeros).
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	r := m.reg
	return MetricsSnapshot{
		CellsStarted:    r.CounterValue("engine_cells_started_total"),
		CellsCompleted:  r.CounterValue("engine_cells_completed_total"),
		CellsCancelled:  r.CounterValue("engine_cells_cancelled_total"),
		CellsFailed:     r.CounterValue("engine_cells_failed_total"),
		CellSeconds:     r.HistogramSum("engine_cell_seconds"),
		CacheMemoryHits: r.CounterValue("servecache_hits_total", "memory"),
		CacheDiskHits:   r.CounterValue("servecache_hits_total", "disk"),
		CacheComputes:   r.CounterValue("servecache_computes_total"),
		Generations:     r.CounterValue("evolution_generations_total"),
		Candidates:      r.CounterValue("evolution_candidates_total"),
		MemoHits:        r.CounterValue("evolution_memo_hits_total"),
		MemoMisses:      r.CounterValue("evolution_memo_misses_total"),
		Decisions:       r.CounterValue("ones_decisions_total"),
		Deployments:     r.CounterValue("ones_deployments_total"),
	}
}

// WithMetrics wires a telemetry sink into the Session: the engine, the
// ONES search and — when a WithCache cache is also configured — the
// cache record into it, and runs invoked under a StartTrace context
// record span trees. Many Sessions may share one Metrics; their series
// aggregate. Telemetry never changes results (see Metrics).
func WithMetrics(m *Metrics) Option {
	return func(s *settings) { s.metrics = m }
}

// Metrics returns the sink configured with WithMetrics (nil without
// one).
func (s *Session) Metrics() *Metrics { return s.metrics }

// Snapshot reads the current values of the session's headline telemetry
// series (all zeros without WithMetrics). Sessions sharing one Metrics
// share series, so the snapshot spans all of them.
func (s *Session) Snapshot() MetricsSnapshot { return s.metrics.Snapshot() }
