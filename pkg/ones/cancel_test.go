package ones

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// cancelSession builds a session whose fig15-style comparison has enough
// cells that cancelling after the first completed one always leaves work
// pending.
func cancelSession(t *testing.T, workers int, extra ...Option) *Session {
	t.Helper()
	opts := append([]Option{
		WithQuickScale(),
		WithTrace(Trace{Jobs: 8, MeanInterarrival: 25}),
		WithPopulation(4),
		WithSeed(5),
		WithWorkers(workers),
	}, extra...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCancelMidRunAllWorkerCounts cancels a comparison after its first
// completed cell at every worker count the determinism contract pins,
// and checks prompt return, a clean context.Canceled, full drain (no
// events after return) and that the cancellation never reaches the
// memo cache: an uncancelled rerun is identical to an untouched
// session's.
func TestCancelMidRunAllWorkerCounts(t *testing.T) {
	schedulers := []string{"fifo", "sjf", "tiresias", "optimus", "drl"}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ctx, cancel := context.WithCancel(context.Background())
		var (
			mu    sync.Mutex
			seen  int
			first sync.Once
		)
		s := cancelSession(t, workers, WithObserver(ObserverFunc(func(p Progress) {
			if p.Kind == KindCellDone {
				mu.Lock()
				seen++
				mu.Unlock()
				first.Do(cancel)
			}
		})))
		_, err := s.Compare(ctx, schedulers...)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Compare after cancel = %v, want context.Canceled", workers, err)
		}
		mu.Lock()
		atReturn := seen
		mu.Unlock()
		if maxRan := workers + 1; atReturn > maxRan {
			t.Errorf("workers=%d: %d cells completed after mid-run cancel, want ≤ %d", workers, atReturn, maxRan)
		}
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		after := seen
		mu.Unlock()
		if after != atReturn {
			t.Errorf("workers=%d: workers not drained: %d cells completed after Compare returned", workers, after-atReturn)
		}

		// Uncancelled rerun on the same session vs an untouched session.
		rerun, err := s.Compare(context.Background(), schedulers...)
		if err != nil {
			t.Fatalf("workers=%d: rerun: %v", workers, err)
		}
		fresh, err := cancelSession(t, workers).Compare(context.Background(), schedulers...)
		if err != nil {
			t.Fatalf("workers=%d: fresh: %v", workers, err)
		}
		for i := range rerun {
			if rerun[i].MeanJCT != fresh[i].MeanJCT || rerun[i].Makespan != fresh[i].Makespan ||
				len(rerun[i].Jobs) != len(fresh[i].Jobs) {
				t.Errorf("workers=%d: %s: rerun after cancel differs from untouched session",
					workers, schedulers[i])
			}
		}
	}
}

// TestRunExperimentCancel cancels the experiment prewarm and verifies
// the rendered output of a later uncancelled run is byte-identical to an
// untouched session's.
func TestRunExperimentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var first sync.Once
	s := cancelSession(t, 2, WithObserver(ObserverFunc(func(p Progress) {
		if p.Kind == KindCellDone {
			first.Do(cancel)
		}
	})))
	_, err := s.RunExperiment(ctx, "fig15")
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunExperiment after cancel = %v, want context.Canceled", err)
	}
	out, err := s.RunExperiment(context.Background(), "fig15")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cancelSession(t, 2).RunExperiment(context.Background(), "fig15")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Error("fig15 rendered after a cancelled attempt differs from an untouched session's")
	}
}

// TestCancelAbortsMidCell: cancelling while ONES is deep inside a single
// long evolutionary cell returns promptly — the simulator polls the
// context and the evolution loop short-circuits — instead of running the
// cell to completion. The cancelled cell must not be cached (rerun
// byte-identity after a cancel is pinned at quick scale by
// TestCancelMidRunAllWorkerCounts above).
func TestCancelAbortsMidCell(t *testing.T) {
	mk := func(obs Observer) *Session {
		opts := []Option{
			WithScheduler("ones"),
			WithTrace(Trace{Jobs: 40, MeanInterarrival: 10}),
			WithPopulation(24),
			WithSeed(3),
			WithWorkers(1),
		}
		if obs != nil {
			opts = append(opts, WithObserver(obs))
		}
		s, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	started := make(chan struct{})
	var once sync.Once
	s := mk(ObserverFunc(func(p Progress) {
		if p.Kind == KindCellStart {
			once.Do(func() { close(started) })
		}
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		time.Sleep(200 * time.Millisecond) // let the cell get deep into the run
		cancel()
	}()
	start := time.Now()
	_, err := s.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after mid-cell cancel = %v, want context.Canceled", err)
	}
	// The uncancelled cell takes tens of seconds; sub-second abort is the
	// contract, with generous slack for a loaded CI machine.
	if elapsed > 3*time.Second {
		t.Errorf("mid-cell cancellation took %v, want well under the full cell", elapsed)
	}
	if got := s.SimulatedCells(); got != 0 {
		t.Errorf("SimulatedCells = %d after a cancelled cell, want 0 (not cached)", got)
	}
}

// TestCancelBeforeStart: a dead context simulates nothing.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := cancelSession(t, 2)
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.SimulatedCells(); got != 0 {
		t.Errorf("SimulatedCells = %d under a pre-cancelled context, want 0", got)
	}
}
