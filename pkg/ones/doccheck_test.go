package ones

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestEveryExportedSymbolIsDocumented enforces the public surface's
// documentation contract: every exported symbol in pkg/ones,
// pkg/ones/serve and internal/obs (the telemetry layer other packages
// build on) — types, functions, methods, constructors, consts and
// vars — carries a doc comment, and each package has a package comment.
// CI runs this as part of the docs job, so an undocumented addition to
// the SDK fails the build rather than shipping dark.
func TestEveryExportedSymbolIsDocumented(t *testing.T) {
	for _, dir := range []string{".", "serve", "../../internal/obs"} {
		checkPackageDocs(t, dir)
	}
}

func checkPackageDocs(t *testing.T, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	for _, p := range pkgs {
		d := doc.New(p, "./", 0)
		undocumented := func(kind, name, docText string) {
			if docText == "" {
				t.Errorf("%s: %s %s has no doc comment", dir, kind, name)
			}
		}
		if d.Doc == "" {
			t.Errorf("%s: package %s has no package comment", dir, d.Name)
		}
		for _, f := range d.Funcs {
			if ast.IsExported(f.Name) {
				undocumented("func", f.Name, f.Doc)
			}
		}
		for _, typ := range d.Types {
			if ast.IsExported(typ.Name) {
				undocumented("type", typ.Name, typ.Doc)
			}
			for _, f := range typ.Funcs { // constructors grouped under the type
				if ast.IsExported(f.Name) {
					undocumented("func", f.Name, f.Doc)
				}
			}
			for _, m := range typ.Methods {
				if ast.IsExported(m.Name) {
					undocumented("method", typ.Name+"."+m.Name, m.Doc)
				}
			}
		}
		for _, grp := range append(d.Consts, d.Vars...) {
			exported := false
			for _, name := range grp.Names {
				if ast.IsExported(name) {
					exported = true
				}
			}
			if exported {
				undocumented("const/var group", strings.Join(grp.Names, ","), grp.Doc)
			}
		}
	}
}
