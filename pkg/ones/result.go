package ones

import (
	"repro/internal/engine"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Job is the public view of one completed job's metrics.
type Job struct {
	ID     int     `json:"id"`
	Name   string  `json:"name"`
	Submit float64 `json:"submit_s"`
	Start  float64 `json:"start_s"` // first time the job held a GPU (-1 if it never ran)
	Done   float64 `json:"done_s"`
	JCT    float64 `json:"jct_s"`   // Done − Submit
	Exec   float64 `json:"exec_s"`  // seconds holding GPUs
	Queue  float64 `json:"queue_s"` // JCT − Exec
}

// Event is one entry of the optional scheduling event log (see
// WithEventLog). Kinds: "arrive", "start", "rescale", "preempt",
// "complete", "evict", "capacity".
type Event struct {
	Time  float64 `json:"time_s"`
	Kind  string  `json:"kind"`
	Job   int     `json:"job"`
	GPUs  int     `json:"gpus"`  // allocation after the event
	Batch int     `json:"batch"` // global batch after the event
}

// Distribution summarizes a per-job duration: the five-number box
// statistics of the paper's Figure 15d–f.
type Distribution struct {
	Min    float64 `json:"min"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Max    float64 `json:"max"`
}

// RackCapacity summarizes one rack (failure domain) of the initial
// cluster topology.
type RackCapacity struct {
	Rack    int `json:"rack"`
	Servers int `json:"servers"`
	GPUs    int `json:"gpus"`
}

// Result is the stable public view of one simulation run. It marshals
// cleanly to JSON (see cmd/onesim -json) and carries both per-job
// metrics and the summary statistics the paper's figures report.
type Result struct {
	Scheduler string `json:"scheduler"` // display name, e.g. "ONES"
	Scenario  string `json:"scenario"`
	// Autoscaler is the reactive controller policy the run was under (see
	// WithAutoscaler); empty when no controller ran.
	Autoscaler string `json:"autoscaler,omitempty"`
	Capacity   int    `json:"capacity_gpus"` // initial cluster capacity
	// Shape is the heterogeneous cluster shape the run simulated (see
	// WithShape); empty for homogeneous topologies.
	Shape string `json:"shape,omitempty"`
	// Racks is the initial per-rack capacity, ascending by rack id. A
	// homogeneous WithTopology cluster is one rack.
	Racks     []RackCapacity `json:"racks,omitempty"`
	TraceSeed int64          `json:"trace_seed"`

	Jobs []Job `json:"jobs"`

	Makespan  float64      `json:"makespan_s"`
	MeanJCT   float64      `json:"mean_jct_s"`
	MeanExec  float64      `json:"mean_exec_s"`
	MeanQueue float64      `json:"mean_queue_s"`
	JCT       Distribution `json:"jct_distribution"`

	// Utilization is the average busy fraction of the capacity actually
	// available at each instant (elastic scenarios shrink the
	// denominator while servers are away).
	Utilization        float64 `json:"utilization"`
	BusyGPUSeconds     float64 `json:"busy_gpu_seconds"`
	CapacityGPUSeconds float64 `json:"capacity_gpu_seconds,omitempty"`

	// Reconfigs counts deployed allocation changes (start/rescale/preempt).
	Reconfigs int `json:"reconfigs"`
	// Evictions counts jobs forced off their GPUs by server losses (the
	// scenario's failures, preemptions and drains), each later requeued.
	Evictions int `json:"evictions,omitempty"`
	// RackDrainEvictions is the subset of Evictions caused by rack-level
	// drains — whole failure domains going away at once.
	RackDrainEvictions int `json:"rack_drain_evictions,omitempty"`
	// CapacityEvents counts applied cluster topology changes.
	CapacityEvents int `json:"capacity_events,omitempty"`
	// ScaleUps / ScaleDowns count the autoscaling controller's applied
	// grow / shrink actions; AutoscaleEvents is their sum. All zero when
	// no autoscaler ran (scenario-driven capacity changes count only in
	// CapacityEvents).
	ScaleUps        int `json:"scale_ups,omitempty"`
	ScaleDowns      int `json:"scale_downs,omitempty"`
	AutoscaleEvents int `json:"autoscale_events,omitempty"`

	// Truncated is true when the simulation's time cap elapsed with jobs
	// still unfinished; their metrics are absent from Jobs.
	Truncated  bool `json:"truncated,omitempty"`
	Unfinished int  `json:"unfinished,omitempty"`

	// Events is the scheduling event log (only with WithEventLog).
	Events []Event `json:"events,omitempty"`
}

// FractionDoneWithin returns the fraction of completed jobs whose JCT is
// at most the given number of seconds (the paper's "jobs completed
// within 200 s" headline).
func (r *Result) FractionDoneWithin(seconds float64) float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range r.Jobs {
		if j.JCT <= seconds {
			n++
		}
	}
	return float64(n) / float64(len(r.Jobs))
}

// newResult converts an internal simulation result into the public view.
func newResult(cell engine.Cell, p engine.Params, res *simulator.Result) *Result {
	seed := cell.TraceSeed
	if seed == 0 {
		seed = p.Seed
	}
	scenarioName := cell.Scenario
	if scenarioName == "" {
		scenarioName = "steady"
	}
	capacity := cell.Capacity
	if capacity <= 0 {
		capacity = res.TotalGPUs
	}
	out := &Result{
		Scheduler:          res.Scheduler,
		Scenario:           scenarioName,
		Autoscaler:         cell.Autoscaler,
		Capacity:           capacity,
		Shape:              cell.Shape,
		TraceSeed:          seed,
		Jobs:               make([]Job, len(res.Jobs)),
		Makespan:           res.Makespan,
		MeanJCT:            res.MeanJCT(),
		MeanExec:           res.MeanExec(),
		MeanQueue:          res.MeanQueue(),
		Utilization:        res.Utilization(),
		BusyGPUSeconds:     res.BusyGPUSeconds,
		CapacityGPUSeconds: res.CapacityGPUSeconds,
		Reconfigs:          res.Reconfigs,
		Evictions:          res.Evictions,
		RackDrainEvictions: res.RackDrainEvictions,
		CapacityEvents:     res.CapacityEvents,
		ScaleUps:           res.ScaleUps,
		ScaleDowns:         res.ScaleDowns,
		AutoscaleEvents:    res.AutoscaleEvents,
		Truncated:          res.Truncated,
		Unfinished:         res.Unfinished,
	}
	// Resolve the cell's defaulted capacity before deriving the rack
	// summary, so a default-topology session still reports its one rack.
	rcell := cell
	rcell.Capacity = capacity
	if topo, err := rcell.Topology(); err == nil && topo.NumServers() > 0 {
		for _, rc := range topo.RackSummary() {
			out.Racks = append(out.Racks, RackCapacity{Rack: rc.Rack, Servers: rc.Servers, GPUs: rc.GPUs})
		}
	}
	for i, j := range res.Jobs {
		out.Jobs[i] = Job{
			ID:     int(j.ID),
			Name:   j.Name,
			Submit: j.Submit,
			Start:  j.Start,
			Done:   j.Done,
			JCT:    j.JCT,
			Exec:   j.Exec,
			Queue:  j.Queue,
		}
	}
	box := stats.Box(res.JCTs())
	out.JCT = Distribution{Min: box.Min, Q1: box.Q1, Median: box.Median, Q3: box.Q3, Max: box.Max}
	for _, ev := range res.Events {
		out.Events = append(out.Events, Event{
			Time:  ev.Time,
			Kind:  string(ev.Kind),
			Job:   int(ev.Job),
			GPUs:  ev.GPUs,
			Batch: ev.Batch,
		})
	}
	return out
}
