// Package ones is the public SDK of the ONES reproduction — the single
// supported way for other programs to embed and drive the scheduler,
// simulator and experiment suite. The internal packages behind it may
// change freely between versions; this surface is stable.
//
// A Session is configured once with functional options and then runs any
// number of simulations through a shared, memoized worker pool:
//
//	s, err := ones.New(
//		ones.WithScheduler("ones"),
//		ones.WithScenario("diurnal+spot"),
//		ones.WithTopology(4, 4),
//		ones.WithTrace(ones.Trace{Jobs: 12, MeanInterarrival: 30, MaxGPUs: 4}),
//		ones.WithSeed(7),
//	)
//	if err != nil { ... }
//	res, err := s.Run(ctx)
//
// Clusters are homogeneous by default (WithTopology); WithShape
// describes a mixed fleet — per-server GPU counts in rack-level failure
// domains, e.g. "4x8,2x4" — that rack-aware scenarios ("rack-drain")
// can break realistically, with Result.Racks and
// Result.RackDrainEvictions reporting the damage. The package's
// Example functions (run by go test) are the maintained walkthroughs of
// these paths.
//
// Every run takes a context.Context. Cancellation is observed at cell
// boundaries: queued simulations never start, in-flight ones finish, and
// the call returns only once its workers have drained — no goroutine
// outlives a cancelled call, and rerunning with a live context yields
// exactly the results the uncancelled run would have (results are
// byte-identical for a given seed at any worker count).
//
// Progress and live metrics stream through the Observer interface (see
// WithObserver); NewStream adapts an Observer to a channel. Lookup
// failures wrap the typed sentinel errors ErrUnknownScheduler,
// ErrUnknownScenario and ErrUnknownExperiment, so callers can
// errors.Is-match them without parsing messages.
//
// Session.RunExperiment regenerates any of the paper's registered
// figures and tables ("fig15", "table4", …); Experiments, Schedulers and
// Scenarios enumerate what a session can run. GenerateTrace exposes the
// workload generator for scripting, and StartLiveJob the goroutine
// mini-cluster behind the paper's elastic-scaling measurements.
package ones
