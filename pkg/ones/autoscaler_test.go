package ones

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestNewRejectsUnknownAutoscaler(t *testing.T) {
	_, err := New(WithAutoscaler("no-such-controller"))
	if !errors.Is(err, ErrUnknownAutoscaler) {
		t.Fatalf("err = %v, want ErrUnknownAutoscaler", err)
	}
	if !strings.Contains(err.Error(), "reactive-conservative") {
		t.Errorf("error does not list known autoscalers: %v", err)
	}
}

func TestAutoscalersListing(t *testing.T) {
	infos := Autoscalers()
	if len(infos) < 3 {
		t.Fatalf("Autoscalers() = %v", infos)
	}
	names := map[string]bool{}
	for _, info := range infos {
		if info.Name == "" || info.Title == "" {
			t.Errorf("autoscaler info incomplete: %+v", info)
		}
		names[info.Name] = true
	}
	for _, want := range []string{"reactive-conservative", "reactive-aggressive", "reactive-emergency"} {
		if !names[want] {
			t.Errorf("Autoscalers() missing %q: %v", want, infos)
		}
	}
}

// reactiveSession mirrors the engine acceptance cell through the SDK: a
// burst of jobs overloading a 2-server cluster, so the controller must
// both grow and later shrink the fleet.
func reactiveSession(t *testing.T, extra ...Option) *Session {
	t.Helper()
	opts := append([]Option{
		WithScheduler("tiresias"),
		WithTopology(2, 4),
		WithScenario("burst"),
		WithTrace(Trace{Jobs: 10, MeanInterarrival: 8, MaxGPUs: 4}),
		WithSeed(7),
	}, extra...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAutoscalerRunThroughSDK(t *testing.T) {
	res, err := reactiveSession(t, WithAutoscaler("reactive-aggressive")).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Autoscaler != "reactive-aggressive" {
		t.Errorf("Autoscaler = %q", res.Autoscaler)
	}
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Errorf("closed loop inert through the SDK: ups=%d downs=%d events=%d",
			res.ScaleUps, res.ScaleDowns, res.CapacityEvents)
	}
	if res.AutoscaleEvents != res.ScaleUps+res.ScaleDowns {
		t.Errorf("AutoscaleEvents %d != %d + %d", res.AutoscaleEvents, res.ScaleUps, res.ScaleDowns)
	}

	baseline, err := reactiveSession(t).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Autoscaler != "" || baseline.ScaleUps != 0 || baseline.ScaleDowns != 0 || baseline.AutoscaleEvents != 0 {
		t.Errorf("controller-free baseline reports autoscaler state: %+v", baseline)
	}
	if reflect.DeepEqual(baseline.Jobs, res.Jobs) {
		t.Error("controller had no effect on per-job outcomes")
	}
}

func TestAutoscalerRunDeterministic(t *testing.T) {
	a, err := reactiveSession(t, WithAutoscaler("reactive-conservative"), WithWorkers(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := reactiveSession(t, WithAutoscaler("reactive-conservative"), WithWorkers(4)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reactive SDK runs differ across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}
