package ones

import (
	"context"
	"sync"
	"testing"
	"time"
)

// recorder collects progress events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Progress
}

func (r *recorder) Observe(p Progress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, p)
}

func (r *recorder) byKind() map[ProgressKind][]Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ProgressKind][]Progress)
	for _, p := range r.events {
		out[p.Kind] = append(out[p.Kind], p)
	}
	return out
}

func TestObserverStreamsCellProgress(t *testing.T) {
	rec := &recorder{}
	s := quickSession(t, WithObserver(rec))
	if _, err := s.Compare(context.Background(), "fifo", "sjf"); err != nil {
		t.Fatal(err)
	}
	got := rec.byKind()
	if n := len(got[KindRunStart]); n != 1 {
		t.Errorf("run-start events = %d, want 1", n)
	}
	if n := len(got[KindRunDone]); n != 1 {
		t.Errorf("run-done events = %d, want 1", n)
	}
	if n := len(got[KindCellStart]); n != 2 {
		t.Errorf("cell-start events = %d, want 2", n)
	}
	done := got[KindCellDone]
	if len(done) != 2 {
		t.Fatalf("cell-done events = %d, want 2", len(done))
	}
	for _, p := range done {
		if p.Cell == "" || p.Scheduler == "" || p.Capacity != 16 || p.Scenario != "steady" {
			t.Errorf("cell-done event missing coordinates: %+v", p)
		}
		if p.Elapsed <= 0 {
			t.Errorf("cell-done event without elapsed time: %+v", p)
		}
		if p.Done < 1 || p.Total != 2 {
			t.Errorf("cell-done progress counters wrong: done=%d total=%d", p.Done, p.Total)
		}
		// Live metrics ride on the event.
		if p.Result == nil {
			t.Fatalf("cell-done event without Result: %+v", p)
		}
		if p.Result.MeanJCT <= 0 || len(p.Result.Jobs) == 0 || p.Result.Scenario != "steady" {
			t.Errorf("cell-done Result incomplete: %+v", p.Result)
		}
	}
	// A memoized re-run emits the batch bracket but no cell events, and
	// the cached cells count as done immediately: the closing run-done
	// must show a completed batch, not one stuck below Total.
	if _, err := s.Compare(context.Background(), "fifo", "sjf"); err != nil {
		t.Fatal(err)
	}
	got = rec.byKind()
	if n := len(got[KindCellDone]); n != 2 {
		t.Errorf("cache hits re-emitted cell events: %d total", n)
	}
	last := got[KindRunDone][len(got[KindRunDone])-1]
	if last.Done != last.Total || last.Total != 4 {
		t.Errorf("cached batch left progress incomplete: done=%d total=%d, want 4/4", last.Done, last.Total)
	}
}

// TestStreamCloseWhileBlocked: a consumer that stops reading and closes
// the stream must unblock a sender stuck on the full buffer — the
// engine can never deadlock on an abandoned stream.
func TestStreamCloseWhileBlocked(t *testing.T) {
	stream := NewStream(1)
	stream.Observe(Progress{Kind: KindRunStart}) // fills the buffer
	sent := make(chan struct{})
	go func() {
		stream.Observe(Progress{Kind: KindCellDone}) // blocks: buffer full
		close(sent)
	}()
	stream.Close()
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("Observe still blocked after Close: engine would deadlock")
	}
	// The channel still drains the buffered event, then ends the range.
	n := 0
	for range stream.Events() {
		n++
	}
	if n != 1 {
		t.Errorf("drained %d buffered events, want 1", n)
	}
}

func TestObserverExperimentEvents(t *testing.T) {
	rec := &recorder{}
	s, err := New(WithQuickScale(), WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	// fig2 needs no simulation cells: only experiment + batch events.
	if _, err := s.RunExperiment(context.Background(), "fig2"); err != nil {
		t.Fatal(err)
	}
	got := rec.byKind()
	if len(got[KindExperimentStart]) != 1 || len(got[KindExperimentDone]) != 1 {
		t.Fatalf("experiment events missing: %v", got)
	}
	if got[KindExperimentDone][0].Experiment != "fig2" {
		t.Errorf("experiment-done names %q", got[KindExperimentDone][0].Experiment)
	}
}

func TestStreamDeliversAndCloses(t *testing.T) {
	stream := NewStream(4)
	s := quickSession(t, WithObserver(stream))

	var (
		wg     sync.WaitGroup
		events []Progress
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for p := range stream.Events() {
			events = append(events, p)
		}
	}()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	wg.Wait()

	if len(events) < 3 { // run-start, cell-start, cell-done, run-done
		t.Fatalf("stream delivered %d events, want ≥ 3: %+v", len(events), events)
	}
	if events[0].Kind != KindRunStart || events[len(events)-1].Kind != KindRunDone {
		t.Errorf("stream order wrong: first %s, last %s", events[0].Kind, events[len(events)-1].Kind)
	}
	// Close is idempotent and post-Close observes are discarded.
	stream.Close()
	stream.Observe(Progress{Kind: KindRunStart})
}

func TestMultiObserverFansOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	s := quickSession(t, WithObserver(MultiObserver(a, nil, b)))
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(a.events) == 0 || len(a.events) != len(b.events) {
		t.Errorf("fan-out uneven: %d vs %d events", len(a.events), len(b.events))
	}
}
