package ones

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func cacheSession(t *testing.T, c *Cache, extra ...Option) *Session {
	t.Helper()
	opts := []Option{
		WithQuickScale(),
		WithTrace(Trace{Jobs: 8, MeanInterarrival: 25}),
		WithScheduler("tiresias"),
		WithSeed(9),
	}
	if c != nil {
		opts = append(opts, WithCache(c))
	}
	s, err := New(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWithCacheWarmRestart: a second session over the same cache
// directory — the restarted-daemon / re-invoked-CLI path — serves the
// run from disk, simulating nothing, byte-identical to the cold result.
func TestWithCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cacheSession(t, c1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Computes != 1 {
		t.Fatalf("cold stats = %+v, want 1 compute", st)
	}

	c2, err := NewCache(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	simulated := 0
	warm, err := cacheSession(t, c2, WithObserver(ObserverFunc(func(p Progress) {
		if p.Kind == KindCellStart {
			mu.Lock()
			simulated++
			mu.Unlock()
		}
	}))).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 {
		t.Errorf("warm restart simulated %d cells, want 0", simulated)
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Errorf("warm stats = %+v, want 1 disk hit and 0 computes", st)
	}
	cb, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(cb) != string(wb) {
		t.Error("warm result is not byte-identical to the cold one")
	}
}

// TestWithCacheSharedAcrossSessions: two sessions sharing one in-memory
// cache compute the identical run once between them.
func TestWithCacheSharedAcrossSessions(t *testing.T) {
	c, err := NewCache("", nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cacheSession(t, c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cacheSession(t, c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Computes != 1 || st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want the second session's run served from memory", st)
	}
	if a.MeanJCT != b.MeanJCT || a.Makespan != b.Makespan {
		t.Error("shared-cache sessions disagree on the identical run")
	}
}

// TestWithCacheDoesNotChangeResults: a cached session's result equals an
// uncached one's — the cache is a performance layer, never a semantic one.
func TestWithCacheDoesNotChangeResults(t *testing.T) {
	c, err := NewCache(t.TempDir(), func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := cacheSession(t, c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cacheSession(t, nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(cb) {
		t.Error("cached session's result differs from an uncached session's")
	}
}
