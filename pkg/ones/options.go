package ones

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// settings accumulate the functional options into the engine parameters
// plus the session-level simulation shape.
type settings struct {
	params     engine.Params
	scheduler  string
	scenario   string
	autoscaler string
	servers    int
	gpusPer    int
	shape      string
	trace      Trace
	observer   Observer
	cache      *Cache
	metrics    *Metrics
	err        error // first option-validation failure, surfaced by New
}

// Option configures a Session under construction. Options are applied in
// order; later options override earlier ones.
type Option func(*settings)

func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithScheduler selects the scheduling policy by registry name ("ones",
// "drl", "tiresias", "optimus", "fifo", "sjf" — see Schedulers). The
// default is "ones".
func WithScheduler(name string) Option {
	return func(s *settings) { s.scheduler = name }
}

// WithScenario selects the world model by registry name (see Scenarios).
// Names joined with "+" compose: "diurnal+spot" simulates a spot-market
// day — diurnal arrivals over preemptible capacity. The default is
// "steady", the paper's fixed testbed.
func WithScenario(name string) Option {
	return func(s *settings) { s.scenario = name }
}

// WithAutoscaler attaches a reactive autoscaling controller by registry
// name (see Autoscalers). The controller observes cluster pressure at a
// fixed cadence and grows or shrinks the server fleet in a closed loop —
// no pre-planned capacity timeline. The default is "" (no controller).
func WithAutoscaler(name string) Option {
	return func(s *settings) { s.autoscaler = name }
}

// WithTopology shapes the cluster: servers homogeneous servers of
// gpusPerServer GPUs each. The default is the paper's Longhorn testbed,
// 16 servers × 4 GPUs. For mixed fleets — different GPU counts per
// server, rack-level failure domains — use WithShape instead; the later
// of the two options wins.
func WithTopology(servers, gpusPerServer int) Option {
	return func(s *settings) {
		if servers <= 0 || gpusPerServer <= 0 {
			s.fail(fmt.Errorf("ones: WithTopology(%d, %d): both dimensions must be positive", servers, gpusPerServer))
			return
		}
		s.servers = servers
		s.gpusPer = gpusPerServer
		s.shape = ""
	}
}

// WithShape shapes a heterogeneous cluster from a shape string like
// "4x8,2x4": comma-separated COUNTxGPUS groups of identical servers,
// each group forming one rack (failure domain). Group order is
// significant — it fixes the GPU axis and the rack ids, so "4x8,2x4"
// and "2x4,4x8" are distinct clusters with distinct results. Rack-aware
// scenarios (e.g. "rack-drain") can take a whole group down at once;
// Result.Racks reports the per-rack capacity. WithShape overrides an
// earlier WithTopology (and vice versa — the later option wins).
func WithShape(shape string) Option {
	return func(s *settings) {
		topo, err := cluster.ParseShape(shape)
		if err != nil {
			s.fail(fmt.Errorf("ones: WithShape(%q): %w", shape, err))
			return
		}
		// Store the canonical rendering so spelling variants of one
		// topology ("4x8, 2x4" vs "4x8,2x4") share a simulation cell and
		// a cache entry. Group order is preserved — it is semantic.
		s.shape = topo.Shape()
		s.servers, s.gpusPer = 0, 0
	}
}

// WithTrace shapes the generated workload (see Trace). Zero fields keep
// their defaults.
func WithTrace(t Trace) Option {
	return func(s *settings) {
		if t.Jobs < 0 || t.MeanInterarrival < 0 || t.MaxGPUs < 0 {
			s.fail(fmt.Errorf("ones: WithTrace(%+v): negative field", t))
			return
		}
		s.trace = t
	}
}

// WithSeed sets the master RNG seed (default 1). Traces and per-run
// scheduler seeds derive from it deterministically: the same seed yields
// byte-identical results at any worker count.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.params.Seed = seed }
}

// WithWorkers bounds how many simulations run concurrently (0 or unset ⇒
// GOMAXPROCS). Purely a throughput knob — results are identical at any
// setting.
func WithWorkers(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail(fmt.Errorf("ones: WithWorkers(%d): negative worker count", n))
			return
		}
		s.params.Workers = n
	}
}

// WithEvolutionParallelism bounds the goroutines ONES's evolutionary
// search uses inside one simulation cell (0 or unset ⇒ derive from the
// worker slots free when the cell starts; n ⇒ exactly n). Like
// WithWorkers this is purely a throughput knob — candidate randomness is
// pre-seeded serially before the fan-out, so results are byte-identical
// at any setting and cached cells are shared across settings.
func WithEvolutionParallelism(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail(fmt.Errorf("ones: WithEvolutionParallelism(%d): negative parallelism", n))
			return
		}
		s.params.EvolutionParallelism = n
	}
}

// WithPopulation overrides ONES's evolutionary population size K.
// Smaller populations run faster with slightly noisier search.
func WithPopulation(k int) Option {
	return func(s *settings) {
		if k < 0 {
			s.fail(fmt.Errorf("ones: WithPopulation(%d): negative population", k))
			return
		}
		s.params.Population = k
	}
}

// WithMutationRate overrides ONES's mutation rate θ (0 keeps the
// scheduler default).
func WithMutationRate(theta float64) Option {
	return func(s *settings) {
		if theta < 0 || theta > 1 {
			s.fail(fmt.Errorf("ones: WithMutationRate(%v): want 0 ≤ θ ≤ 1", theta))
			return
		}
		s.params.MutationRate = theta
	}
}

// WithCapacities sets the GPU counts the capacity-sweep experiments
// (fig17, fig18) simulate. Ignored by single runs, which size the
// cluster from WithTopology.
func WithCapacities(gpus ...int) Option {
	return func(s *settings) {
		for _, g := range gpus {
			if g <= 0 {
				s.fail(fmt.Errorf("ones: WithCapacities(%v): capacities must be positive", gpus))
				return
			}
		}
		s.params.Capacities = append([]int(nil), gpus...)
	}
}

// WithEventLog retains the per-job scheduling event log on every Result
// (off by default: the log is bulky).
func WithEventLog(record bool) Option {
	return func(s *settings) { s.params.RecordEvents = record }
}

// WithObserver streams progress and live metrics to obs (see Observer).
// Observer callbacks may come from multiple goroutines but all complete
// before the triggering Session method returns.
func WithObserver(obs Observer) Option {
	return func(s *settings) { s.observer = obs }
}

// WithQuickScale switches the experiment scale to smoke-test size: short
// traces, small populations, two sweep capacities. Like any option,
// later options override it field by field (and it overrides earlier
// WithTrace/WithPopulation/WithCapacities settings).
func WithQuickScale() Option {
	return func(s *settings) {
		q := engine.QuickParams()
		s.params.Jobs = q.Jobs
		s.params.Interarrival = q.Interarrival
		s.params.Population = q.Population
		s.params.Capacities = q.Capacities
		s.params.ParamScale = q.ParamScale
		s.params.CFPoints = q.CFPoints
		s.trace = Trace{}
	}
}
