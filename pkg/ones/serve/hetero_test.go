package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDaemonMixedShapeRun drives a heterogeneous-topology run spec end
// to end: the shape reaches the SDK, the result reports per-rack
// capacity, and an invalid shape is rejected at create time.
func TestDaemonMixedShapeRun(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := RunSpec{Scheduler: "fifo", Shape: "2x4,1x8", Scenario: "rack-drain",
		Jobs: 10, Interarrival: 25, Seed: 7, Quick: true}
	st := createRun(t, ts.URL, spec)
	st = waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
	if st.Result == nil {
		t.Fatal("done run has no result")
	}
	if st.Result.Shape != "2x4,1x8" || st.Result.Capacity != 16 {
		t.Errorf("result shape/capacity = %q/%d", st.Result.Shape, st.Result.Capacity)
	}
	if len(st.Result.Racks) != 2 {
		t.Errorf("result racks = %+v", st.Result.Racks)
	}

	doJSON(t, "POST", ts.URL+"/v1/runs", RunSpec{Shape: "zzz", Quick: true}, http.StatusBadRequest)
}

// TestDaemonCacheReset exercises DELETE /v1/cache: completed entries are
// dropped and reported, and the endpoint is safe to call repeatedly.
func TestDaemonCacheReset(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	var info struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Entries int `json:"entries"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/cache", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || info.Stats.Entries == 0 {
		t.Fatalf("expected a populated cache, got %+v", info)
	}

	var reset struct {
		Enabled bool `json:"enabled"`
		Dropped int  `json:"dropped"`
	}
	if err := json.Unmarshal(doJSON(t, "DELETE", ts.URL+"/v1/cache", nil, http.StatusOK), &reset); err != nil {
		t.Fatal(err)
	}
	if !reset.Enabled || reset.Dropped != info.Stats.Entries {
		t.Fatalf("reset dropped %d, want %d", reset.Dropped, info.Stats.Entries)
	}

	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/cache", nil, http.StatusOK), &info); err != nil {
		t.Fatal(err)
	}
	if info.Stats.Entries != 0 {
		t.Fatalf("entries after reset = %d, want 0", info.Stats.Entries)
	}
	// Idempotent: a second reset drops nothing.
	if err := json.Unmarshal(doJSON(t, "DELETE", ts.URL+"/v1/cache", nil, http.StatusOK), &reset); err != nil {
		t.Fatal(err)
	}
	if reset.Dropped != 0 {
		t.Fatalf("second reset dropped %d, want 0", reset.Dropped)
	}
}

// TestDaemonCacheResetDisabled covers the cache-less daemon.
func TestDaemonCacheResetDisabled(t *testing.T) {
	srv := New(nil, nil)
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var reset struct {
		Enabled bool `json:"enabled"`
		Dropped int  `json:"dropped"`
	}
	if err := json.Unmarshal(doJSON(t, "DELETE", ts.URL+"/v1/cache", nil, http.StatusOK), &reset); err != nil {
		t.Fatal(err)
	}
	if reset.Enabled || reset.Dropped != 0 {
		t.Fatalf("cache-less reset = %+v", reset)
	}
}
