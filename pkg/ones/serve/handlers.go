package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/pkg/ones"
)

// RunStatus is the JSON view of one run (POST /v1/runs response and
// GET /v1/runs/{id}).
type RunStatus struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"` // running | done | failed | cancelled
	Created time.Time `json:"created"`
	Spec    RunSpec   `json:"spec"`
	// CellsDone/CellsTotal mirror the latest progress event (0/0 before
	// the first event arrives).
	CellsDone  int          `json:"cells_done"`
	CellsTotal int          `json:"cells_total"`
	Result     *ones.Result `json:"result,omitempty"` // status "done" only
	Error      string       `json:"error,omitempty"`  // status "failed"/"cancelled"
}

// streamEvent is one NDJSON line of GET /v1/runs/{id}/stream: the
// progress events a ones.Observer sees, plus a terminal "end" line
// carrying the run's final status.
type streamEvent struct {
	Kind       string       `json:"kind"`
	Cell       string       `json:"cell,omitempty"`
	Scheduler  string       `json:"scheduler,omitempty"`
	Capacity   int          `json:"capacity,omitempty"`
	TraceSeed  int64        `json:"trace_seed,omitempty"`
	Scenario   string       `json:"scenario,omitempty"`
	Experiment string       `json:"experiment,omitempty"`
	ElapsedS   float64      `json:"elapsed_s,omitempty"`
	Result     *ones.Result `json:"result,omitempty"`
	Done       int          `json:"done"`
	Total      int          `json:"total"`
	// Terminal "end" line only.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

func toStreamEvent(p ones.Progress) streamEvent {
	return streamEvent{
		Kind:       string(p.Kind),
		Cell:       p.Cell,
		Scheduler:  p.Scheduler,
		Capacity:   p.Capacity,
		TraceSeed:  p.TraceSeed,
		Scenario:   p.Scenario,
		Experiment: p.Experiment,
		ElapsedS:   p.Elapsed.Seconds(),
		Result:     p.Result,
		Done:       p.Done,
		Total:      p.Total,
	}
}

// Handler returns the daemon's route table. Every /v1 route runs behind
// the admission chain — bearer auth, then its own token-bucket rate
// limit, and (run creation only) the compute-backlog breaker — each a
// no-op when its Config field is unset. The probe endpoints (/healthz,
// /readyz) and /metrics bypass admission so load balancers and scrapers
// need no credentials and are never shed. Every route except /metrics
// is wrapped with the per-endpoint HTTP metrics when the server was
// built WithMetrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	auth := s.authMiddleware()
	route := func(pattern string, h http.HandlerFunc, extra ...middleware) {
		mws := append([]middleware{auth, s.rateLimitMiddleware(pattern)}, extra...)
		mux.Handle(pattern, s.instrumented(pattern, chain(h, mws...)))
	}
	open := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrumented(pattern, h))
	}
	route("POST /v1/runs", s.handleCreate, s.breakerMiddleware())
	route("GET /v1/runs", s.handleList)
	route("GET /v1/runs/{id}", s.handleGet)
	route("DELETE /v1/runs/{id}", s.handleCancel)
	route("GET /v1/runs/{id}/stream", s.handleStream)
	route("GET /v1/runs/{id}/trace", s.handleTrace)
	route("GET /v1/schedulers", s.handleSchedulers)
	route("GET /v1/scenarios", s.handleScenarios)
	route("GET /v1/autoscalers", s.handleAutoscalers)
	route("GET /v1/experiments", s.handleExperiments)
	route("GET /v1/cache", s.handleCache)
	route("DELETE /v1/cache", s.handleCacheReset)
	open("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	open("GET /readyz", s.handleReady)
	// /metrics is deliberately NOT instrumented: scrapes every few
	// seconds would dominate the request series it reports.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (r *run) statusView() RunStatus {
	status, res, errMsg, done, total := r.snapshot()
	return RunStatus{
		ID:         r.ID,
		Status:     status,
		Created:    r.Created,
		Spec:       r.Spec,
		CellsDone:  done,
		CellsTotal: total,
		Result:     res,
		Error:      errMsg,
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad run spec: %w", err))
		return
	}
	r, err := s.start(spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ones.ErrUnknownScheduler), errors.Is(err, ones.ErrUnknownScenario),
			errors.Is(err, ones.ErrUnknownAutoscaler):
			code = http.StatusUnprocessableEntity
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, r.statusView())
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	runs := s.list()
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.statusView()
		// Listing stays O(#runs): the full Result (per-job metrics, event
		// logs) is only served by GET /v1/runs/{id}.
		out[i].Result = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, r.statusView())
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	r.cancel() // idempotent; a finished run is unaffected
	writeJSON(w, http.StatusAccepted, r.statusView())
}

// handleStream replays the run's progress history and follows it live as
// NDJSON (one JSON object per line, flushed per event), ending with a
// terminal {"kind":"end",...} line once the run finishes. All clients
// following one run share its broadcast hub — each event is recorded
// once and fanned out through bounded per-client buffers, so a slow
// client is disconnected (its buffer overflows) instead of wedging the
// hub, and a client that disconnects itself just stops receiving; the
// run is unaffected either way.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Atomic against the broadcast: the snapshot holds every event so
	// far, the subscription every later one — no gap, no duplicate.
	history, sub := r.hub.subscribe()
	if sub != nil {
		defer r.hub.unsubscribe(sub)
	}
	for _, p := range history {
		if err := enc.Encode(toStreamEvent(p)); err != nil {
			return
		}
	}
	if len(history) > 0 && flusher != nil {
		flusher.Flush()
	}
	writeEnd := func() {
		status, _, errMsg, done, total := r.snapshot()
		enc.Encode(streamEvent{Kind: "end", Status: status, Error: errMsg, Done: done, Total: total})
		if flusher != nil {
			flusher.Flush()
		}
	}
	if sub == nil {
		// The run had already finished: the snapshot was the whole story.
		writeEnd()
		return
	}
	clientGone := req.Context().Done()
	for {
		select {
		case <-clientGone:
			return
		case p, ok := <-sub.ch:
			if !ok {
				if r.hub.wasDropped(sub) {
					// Too slow: the hub already disconnected us. Cut the
					// response without a terminal line — the client sees
					// a truncated stream, the run sees nothing at all.
					return
				}
				writeEnd()
				return
			}
			if err := enc.Encode(toStreamEvent(p)); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleSchedulers(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"schedulers": ones.Schedulers(),
		"paper":      ones.PaperSchedulers(),
	})
}

// scenarioInfo is the JSON view of one registered scenario.
type scenarioInfo struct {
	Name            string `json:"name"`
	Title           string `json:"title"`
	Arrival         string `json:"arrival"`
	ElasticCapacity bool   `json:"elastic_capacity"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, req *http.Request) {
	specs := ones.Scenarios()
	out := make([]scenarioInfo, len(specs))
	for i, sp := range specs {
		out[i] = scenarioInfo{Name: sp.Name, Title: sp.Title, Arrival: sp.Arrival, ElasticCapacity: sp.ElasticCapacity}
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}

// autoscalerInfo is the JSON view of one registered autoscaler policy.
type autoscalerInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

func (s *Server) handleAutoscalers(w http.ResponseWriter, req *http.Request) {
	policies := ones.Autoscalers()
	out := make([]autoscalerInfo, len(policies))
	for i, p := range policies {
		out[i] = autoscalerInfo{Name: p.Name, Title: p.Title}
	}
	writeJSON(w, http.StatusOK, map[string]any{"autoscalers": out})
}

// experimentInfo is the JSON view of one registered experiment.
type experimentInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, req *http.Request) {
	exps := ones.Experiments()
	out := make([]experimentInfo, len(exps))
	for i, e := range exps {
		out[i] = experimentInfo{Name: e.Name, Title: e.Title}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleCache(w http.ResponseWriter, req *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"dir":     s.cache.Dir(),
		"stats":   s.cache.Stats(),
	})
}

// handleCacheReset (DELETE /v1/cache) clears the shared in-memory memo
// and reports how many completed entries were dropped — the admin
// pressure valve for long-lived daemons. In-flight computations finish
// undisturbed and persisted cell files stay on disk, so the reset can
// cost recomputation (memory-only cache) or a disk reload, never
// correctness.
func (s *Server) handleCacheReset(w http.ResponseWriter, req *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "dropped": 0})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"dropped": s.cache.Reset(),
	})
}
