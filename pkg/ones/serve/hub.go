package serve

import (
	"sync"

	"repro/internal/obs"
	"repro/pkg/ones"
)

// hub fans one run's progress events out to any number of stream
// clients over a single observer subscription. The run's Observe call
// appends each event to the shared history exactly once and pushes it
// into every subscriber's bounded buffer — N clients following one run
// cost one history append plus N non-blocking channel sends per event,
// instead of the N independent replay loops the pre-hub handler ran.
//
// A subscriber that cannot keep up (its buffer is full when the next
// event arrives) is dropped on the spot: its channel is closed, it is
// counted in onesd_stream_slow_disconnects_total, and the broadcast
// moves on — the engine and every other client are never blocked by one
// slow reader.
//
// Lock discipline: hub.mu is a leaf lock — nothing is called while
// holding it except channel operations, and it is never held together
// with Server.mu or run.mu.
type hub struct {
	bufCap int

	mu      sync.Mutex
	history []ones.Progress
	subs    map[*subscriber]struct{}
	closed  bool

	// Nil-safe obs handles (nil without WithMetrics).
	events    *obs.Counter // one inc per event, regardless of subscriber count
	slowDrops *obs.Counter
	clients   *obs.Gauge
}

// subscriber is one stream client's bounded mailbox. dropped is guarded
// by hub.mu and separates "closed because the run finished" (emit the
// terminal line) from "closed because the client was too slow"
// (disconnect).
type subscriber struct {
	ch      chan ones.Progress
	dropped bool
}

// defaultStreamBuffer is the per-client event buffer when Config leaves
// StreamBuffer zero: deep enough to absorb flushing hiccups, small
// enough that a wedged client is detected within one burst.
const defaultStreamBuffer = 256

func newHub(bufCap int, events, slowDrops *obs.Counter, clients *obs.Gauge) *hub {
	if bufCap <= 0 {
		bufCap = defaultStreamBuffer
	}
	return &hub{
		bufCap:    bufCap,
		subs:      make(map[*subscriber]struct{}),
		events:    events,
		slowDrops: slowDrops,
		clients:   clients,
	}
}

// broadcast appends one event to the shared history and offers it to
// every live subscriber without ever blocking: a subscriber whose
// buffer is full is dropped (channel closed, counted) rather than
// wedging the hub.
func (h *hub) broadcast(p ones.Progress) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, p)
	h.events.Inc()
	for sub := range h.subs {
		select {
		case sub.ch <- p:
		default:
			sub.dropped = true
			delete(h.subs, sub)
			close(sub.ch)
			h.slowDrops.Inc()
			h.clients.Dec()
		}
	}
}

// subscribe registers a new client atomically against the history: the
// returned snapshot holds every event broadcast so far, and the
// subscriber's channel receives every later one — no gap, no overlap.
// On a closed (finished) hub the subscriber is nil: the snapshot is the
// complete history and there is nothing to follow.
func (h *hub) subscribe() ([]ones.Progress, *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	snapshot := h.history[:len(h.history):len(h.history)]
	if h.closed {
		return snapshot, nil
	}
	sub := &subscriber{ch: make(chan ones.Progress, h.bufCap)}
	h.subs[sub] = struct{}{}
	h.clients.Inc()
	return snapshot, sub
}

// unsubscribe removes a client (idempotent: a subscriber already dropped
// or closed out is a no-op).
func (h *hub) unsubscribe(sub *subscriber) {
	if sub == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.clients.Dec()
	}
}

// close ends the broadcast: every live subscriber's channel is closed
// (they drain their buffers and then see the run's terminal state) and
// later subscribe calls replay history only. Called after the run's
// terminal status is recorded, so a client waking on the closed channel
// always observes finished == true.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
		h.clients.Dec()
	}
}

// wasDropped reports whether the subscriber was disconnected for being
// too slow (as opposed to its channel closing because the run finished).
func (h *hub) wasDropped(sub *subscriber) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return sub.dropped
}

// latest returns the most recent event's Done/Total progress (0/0
// before the first event).
func (h *hub) latest() (done, total int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.history); n > 0 {
		return h.history[n-1].Done, h.history[n-1].Total
	}
	return 0, 0
}
