package serve

import (
	"crypto/subtle"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// middleware wraps a handler with one admission concern. The chain
// helper composes them outermost-first; a nil middleware (a disabled
// concern) composes as the identity, so the route table never branches
// on configuration.
type middleware func(http.Handler) http.Handler

// chain applies mws to h, first element outermost. Nil entries are
// skipped.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			h = mws[i](h)
		}
	}
	return h
}

// authMiddleware enforces bearer-token auth when Config.AuthToken is
// set: every /v1 request must carry "Authorization: Bearer <token>" or
// is answered 401 (constant-time comparison; failures counted in
// onesd_auth_failures_total). The probe endpoints — /healthz, /readyz —
// and /metrics stay exempt so load balancers and scrapers need no
// credentials. Nil (identity) when auth is disabled.
func (s *Server) authMiddleware() middleware {
	token := s.cfg.AuthToken
	if token == "" {
		return nil
	}
	want := []byte("Bearer " + token)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			got := []byte(req.Header.Get("Authorization"))
			if subtle.ConstantTimeCompare(got, want) != 1 {
				s.authFails.Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="onesd"`)
				writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid bearer token"))
				return
			}
			next.ServeHTTP(w, req)
		})
	}
}

// bucket is one endpoint's token bucket: tokens refill continuously at
// rate per second up to burst; each admitted request spends one.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// take spends one token, reporting success and — on refusal — how long
// until the next token accrues (the Retry-After hint).
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// rateLimitMiddleware applies a per-endpoint token bucket when
// Config.RatePerSec is positive. Each route owns an independent bucket
// (created here, at registration), so a burst against one endpoint
// never starves another. Refusals are 429 with an integer Retry-After
// (seconds, rounded up, at least 1) and counted per endpoint in
// onesd_rate_limited_total. Nil (identity) when rate limiting is
// disabled.
func (s *Server) rateLimitMiddleware(pattern string) middleware {
	if s.cfg.RatePerSec <= 0 {
		return nil
	}
	burst := float64(s.cfg.RateBurst)
	if burst < 1 {
		burst = s.cfg.RatePerSec // default burst: one second's worth, min 1
		if burst < 1 {
			burst = 1
		}
	}
	b := &bucket{rate: s.cfg.RatePerSec, burst: burst, tokens: burst}
	limited := s.rateLimited.With(pattern)
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			// s.now is read at request time so tests can inject a clock
			// after construction.
			ok, retry := b.take(s.now())
			if !ok {
				limited.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
				writeError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded for %s", pattern))
				return
			}
			next.ServeHTTP(w, req)
		})
	}
}

// retryAfterSeconds renders a wait as the integer seconds HTTP wants:
// rounded up, never below 1 (a 0 would invite an immediate retry).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Breaker states. Closed admits; open sheds; half-open admits a single
// probe after the cooldown to test whether compute has drained.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the run-creation circuit breaker: it watches the compute
// backlog (runs currently executing) and sheds new-run load with 503s
// once the backlog reaches maxBacklog, instead of letting every burst
// stack goroutines behind a saturated worker pool. After cooldown the
// breaker goes half-open and the next request probes: if the backlog
// has drained it closes and admits, otherwise it re-opens and the
// cooldown restarts.
type breaker struct {
	maxBacklog int
	cooldown   time.Duration
	now        func() time.Time
	backlog    func() int

	mu       sync.Mutex
	state    int
	openedAt time.Time

	// Nil-safe obs handles.
	rejected    *obs.Counter
	transitions *obs.CounterVec
	stateGauge  *obs.Gauge
}

// breakerStateName renders a breaker state for the transition counter's
// label.
func breakerStateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// setStateLocked records a state change and its telemetry (gauge value:
// 0 closed, 1 half-open, 2 open). Caller holds b.mu.
func (b *breaker) setStateLocked(state int) {
	if b.state == state {
		return
	}
	b.state = state
	b.transitions.With(breakerStateName(state)).Inc()
	switch state {
	case breakerOpen:
		b.stateGauge.Set(2)
	case breakerHalfOpen:
		b.stateGauge.Set(1)
	default:
		b.stateGauge.Set(0)
	}
}

// allow decides one admission: true admits the request; false sheds it
// with the suggested Retry-After.
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.state == breakerOpen {
		if waited := now.Sub(b.openedAt); waited < b.cooldown {
			b.rejected.Inc()
			return false, b.cooldown - waited
		}
		b.setStateLocked(breakerHalfOpen)
	}
	// Closed or half-open: probe the live backlog.
	if b.backlog() >= b.maxBacklog {
		b.setStateLocked(breakerOpen)
		b.openedAt = now
		b.rejected.Inc()
		return false, b.cooldown
	}
	if b.state == breakerHalfOpen {
		b.setStateLocked(breakerClosed) // probe succeeded: compute drained
	}
	return true, 0
}

// breakerMiddleware sheds run creation while compute is backed up
// (Config.BreakerBacklog in-flight runs): 503 + Retry-After, counted in
// onesd_breaker_rejected_total. Only POST /v1/runs is wrapped — reads,
// streams and cancellations must keep working while the daemon sheds
// new work. Nil (identity) when the breaker is disabled.
func (s *Server) breakerMiddleware() middleware {
	if s.breaker == nil {
		return nil
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			ok, retry := s.breaker.allow()
			if !ok {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("compute backlog full; retry later"))
				return
			}
			next.ServeHTTP(w, req)
		})
	}
}
