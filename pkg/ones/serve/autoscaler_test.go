package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// reactiveSpec overloads a 2-server cluster so the controller must grow
// and later shrink the fleet (the engine acceptance cell over HTTP).
func reactiveSpec() RunSpec {
	return RunSpec{
		Scheduler:    "tiresias",
		Scenario:     "burst",
		Autoscaler:   "reactive-aggressive",
		Servers:      2,
		Jobs:         10,
		Interarrival: 8,
		Seed:         7,
	}
}

// TestDaemonReactiveRun: a reactive autoscaler run over HTTP reports the
// controller's activity in the final Result, and the registry endpoint
// lists the policy the run used.
func TestDaemonReactiveRun(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	var list struct {
		Autoscalers []autoscalerInfo `json:"autoscalers"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/autoscalers", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Autoscalers) < 3 {
		t.Fatalf("autoscalers = %+v", list.Autoscalers)
	}
	seen := false
	for _, a := range list.Autoscalers {
		if a.Name == "" || a.Title == "" {
			t.Errorf("autoscaler info incomplete: %+v", a)
		}
		seen = seen || a.Name == "reactive-aggressive"
	}
	if !seen {
		t.Fatalf("reactive-aggressive missing from %+v", list.Autoscalers)
	}

	st := createRun(t, ts.URL, reactiveSpec())
	st = waitStatus(t, ts.URL, st.ID, StatusDone, 60*time.Second)
	if st.Result == nil {
		t.Fatal("done run has no result")
	}
	if st.Result.Autoscaler != "reactive-aggressive" {
		t.Errorf("Result.Autoscaler = %q", st.Result.Autoscaler)
	}
	if st.Result.ScaleUps == 0 || st.Result.ScaleDowns == 0 {
		t.Errorf("closed loop inert over HTTP: ups=%d downs=%d", st.Result.ScaleUps, st.Result.ScaleDowns)
	}
	if st.Result.AutoscaleEvents != st.Result.ScaleUps+st.Result.ScaleDowns {
		t.Errorf("AutoscaleEvents %d != %d + %d", st.Result.AutoscaleEvents, st.Result.ScaleUps, st.Result.ScaleDowns)
	}
}

// TestDaemonUnknownAutoscaler: a bad policy name is a 422, like unknown
// schedulers and scenarios.
func TestDaemonUnknownAutoscaler(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()
	doJSON(t, "POST", ts.URL+"/v1/runs", RunSpec{Autoscaler: "bogus"}, http.StatusUnprocessableEntity)
}
