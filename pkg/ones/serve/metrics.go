package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// instrumented wraps a handler with the per-endpoint HTTP metrics:
// request count by status code, latency histogram and the in-flight
// gauge. The endpoint label is the route pattern ("GET /v1/runs/{id}"),
// so path parameters never explode the series cardinality. Without
// WithMetrics the handler is returned untouched.
func (s *Server) instrumented(pattern string, h http.Handler) http.Handler {
	if s.metrics == nil {
		return h
	}
	reqs := s.httpReqs
	lat := s.httpLat.With(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.httpInFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, req)
		s.httpInFlight.Dec()
		lat.Observe(time.Since(start).Seconds())
		reqs.With(pattern, strconv.Itoa(rec.code)).Inc()
	})
}

// statusRecorder captures the response status code for the request
// counter. It forwards Flush so NDJSON streaming (GET /v1/runs/{id}/
// stream) keeps flushing per event through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics (GET /metrics) renders the registry in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if s.metrics == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("metrics not enabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.WritePrometheus(w)
}

// handleReady (GET /readyz) reports readiness: 200 while accepting runs,
// 503 once Shutdown has begun — load balancers stop routing to a
// draining daemon while GET /healthz keeps answering 200 (alive, just
// leaving).
func (s *Server) handleReady(w http.ResponseWriter, req *http.Request) {
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleTrace (GET /v1/runs/{id}/trace) serves the run's recorded span
// tree: the cell lifecycle (queued → trace-gen → simulate → evolution
// intervals) with millisecond timings, in progress while the run is
// live. Old traces rotate out of the bounded buffer (404).
func (s *Server) handleTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if s.metrics == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing not enabled"))
		return
	}
	if _, ok := s.get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	tree, ok := s.metrics.TraceTree(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace for %q evicted (the buffer keeps the most recent runs)", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "trace": tree})
}
