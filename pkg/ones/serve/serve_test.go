package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/ones"
)

// quickSpec is a fast deterministic run every concurrency test shares:
// identical specs must hit one cache entry.
func quickSpec() RunSpec {
	return RunSpec{Scheduler: "tiresias", Jobs: 8, Interarrival: 25, Seed: 9, Quick: true}
}

// slowSpec is a run long enough to be caught mid-cell and cancelled.
func slowSpec() RunSpec {
	return RunSpec{Scheduler: "ones", Jobs: 40, Interarrival: 10, Population: 24, Seed: 3}
}

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := ones.NewCache(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cache, nil)
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any, wantCode int) []byte {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, buf.String())
	}
	return buf.Bytes()
}

func createRun(t *testing.T, base string, spec RunSpec) RunStatus {
	t.Helper()
	var st RunStatus
	if err := json.Unmarshal(doJSON(t, "POST", base+"/v1/runs", spec, http.StatusCreated), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getRun(t *testing.T, base, id string) RunStatus {
	t.Helper()
	var st RunStatus
	if err := json.Unmarshal(doJSON(t, "GET", base+"/v1/runs/"+id, nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamRun consumes the NDJSON stream to its terminal line and returns
// every event kind seen plus the final status.
func streamRun(t *testing.T, base, id string) (kinds []string, final streamEvent) {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "end" {
			return kinds, ev
		}
	}
	t.Fatalf("stream ended without a terminal event (saw %v): %v", kinds, sc.Err())
	return nil, streamEvent{}
}

func waitStatus(t *testing.T, base, id, want string, timeout time.Duration) RunStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getRun(t, base, id)
		if st.Status == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %q (want %q)", id, st.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonConcurrentClients is the tentpole's -race exercise: many
// concurrent HTTP clients create, stream, poll and cancel runs against
// one daemon. Identical requests are served by a single simulation
// (shared singleflight cache), the cancelled run aborts mid-cell in
// about a second, and shutdown leaves no goroutines behind.
func TestDaemonConcurrentClients(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, ts := newTestServer(t, "")

	const clients = 5
	var wg sync.WaitGroup
	results := make([]*ones.Result, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := createRun(t, ts.URL, quickSpec())
			kinds, final := streamRun(t, ts.URL, st.ID)
			if final.Status != StatusDone {
				t.Errorf("client %d: stream ended %q: %s", i, final.Status, final.Error)
				return
			}
			if len(kinds) < 2 || kinds[0] != string(ones.KindRunStart) {
				t.Errorf("client %d: malformed event stream %v", i, kinds)
			}
			done := waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
			results[i] = done.Result
		}(i)
	}

	// A sixth concurrent client starts a long run and cancels it mid-cell.
	wg.Add(1)
	var cancelLatency time.Duration
	go func() {
		defer wg.Done()
		st := createRun(t, ts.URL, slowSpec())
		// Give the cell time to be genuinely mid-flight.
		time.Sleep(300 * time.Millisecond)
		start := time.Now()
		doJSON(t, "DELETE", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusAccepted)
		got := waitStatus(t, ts.URL, st.ID, StatusCancelled, 10*time.Second)
		cancelLatency = time.Since(start)
		if got.Result != nil {
			t.Errorf("cancelled run carries a result")
		}
	}()
	wg.Wait()

	// Identical requests deduplicated: one simulation, shared by all.
	if st := srv.Cache().Stats(); st.Computes != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 compute for %d identical runs", st, clients)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("client %d: no result", i)
		}
		if r.MeanJCT != results[0].MeanJCT || r.Makespan != results[0].Makespan {
			t.Errorf("client %d saw a different result than client 0", i)
		}
	}
	if cancelLatency > 3*time.Second {
		t.Errorf("DELETE-to-cancelled took %v, want sub-second-ish mid-cell abort", cancelLatency)
	}

	// Shutdown drains every run goroutine; the HTTP server closes its
	// handlers; nothing may leak.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after shutdown: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonWarmRestart: a second server over the same cache directory
// serves an identical run from disk — no simulation — byte-identical to
// the cold result.
func TestDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newTestServer(t, dir)
	st := createRun(t, ts1.URL, quickSpec())
	cold := waitStatus(t, ts1.URL, st.ID, StatusDone, 30*time.Second)
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2, ts2 := newTestServer(t, dir)
	defer func() {
		srv2.Shutdown(context.Background())
		ts2.Close()
	}()
	st2 := createRun(t, ts2.URL, quickSpec())
	warm := waitStatus(t, ts2.URL, st2.ID, StatusDone, 30*time.Second)
	cs := srv2.Cache().Stats()
	if cs.Computes != 0 || cs.DiskHits != 1 {
		t.Errorf("restarted daemon stats = %+v, want a pure disk hit", cs)
	}
	cb, err := json.Marshal(cold.Result)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(warm.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(cb) != string(wb) {
		t.Error("warm-restart result not byte-identical to the cold one")
	}
}

// TestDaemonErrorPaths: bad specs and unknown runs come back as JSON
// error objects with the right status codes.
func TestDaemonErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	body := doJSON(t, "POST", ts.URL+"/v1/runs", RunSpec{Scheduler: "bogus"}, http.StatusUnprocessableEntity)
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Errorf("unknown scheduler error body %q, want {\"error\": ...}", body)
	}
	if !strings.Contains(e["error"], "bogus") {
		t.Errorf("error %q does not name the offending scheduler", e["error"])
	}
	doJSON(t, "POST", ts.URL+"/v1/runs", RunSpec{Scenario: "bogus"}, http.StatusUnprocessableEntity)
	doJSON(t, "GET", ts.URL+"/v1/runs/run-999999", nil, http.StatusNotFound)
	doJSON(t, "DELETE", ts.URL+"/v1/runs/run-999999", nil, http.StatusNotFound)
	// Unknown spec fields are rejected, not silently ignored — typos in
	// scripts must not silently run the default simulation.
	req, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"schedulr":"ones"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Body.Close()
	if req.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted with %d, want 400", req.StatusCode)
	}
}

// TestDaemonRegistries: the discovery endpoints expose the SDK
// registries.
func TestDaemonRegistries(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	var scheds struct {
		Schedulers []string `json:"schedulers"`
		Paper      []string `json:"paper"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/schedulers", nil, http.StatusOK), &scheds); err != nil {
		t.Fatal(err)
	}
	if len(scheds.Schedulers) == 0 || len(scheds.Paper) != 4 {
		t.Errorf("schedulers = %+v", scheds)
	}
	var scns struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/scenarios", nil, http.StatusOK), &scns); err != nil {
		t.Fatal(err)
	}
	if len(scns.Scenarios) == 0 {
		t.Error("no scenarios listed")
	}
	var exps struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/experiments", nil, http.StatusOK), &exps); err != nil {
		t.Fatal(err)
	}
	if len(exps.Experiments) == 0 {
		t.Error("no experiments listed")
	}
	var cache struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/cache", nil, http.StatusOK), &cache); err != nil {
		t.Fatal(err)
	}
	if !cache.Enabled {
		t.Error("cache endpoint reports disabled on a cache-backed server")
	}
	var list struct {
		Runs []RunStatus `json:"runs"`
	}
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/runs", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 0 {
		t.Errorf("fresh server lists %d runs", len(list.Runs))
	}
	// Listing a finished run returns its status but not the bulky Result.
	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
	if err := json.Unmarshal(doJSON(t, "GET", ts.URL+"/v1/runs", nil, http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].Status != StatusDone {
		t.Fatalf("list after a run = %+v", list.Runs)
	}
	if list.Runs[0].Result != nil {
		t.Error("list endpoint embeds the full Result; it belongs to GET /v1/runs/{id} only")
	}
}

// TestStreamLateSubscriber: a stream opened after the run finished
// replays the full history and terminates.
func TestStreamLateSubscriber(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()
	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
	kinds, final := streamRun(t, ts.URL, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("late stream final = %+v", final)
	}
	want := []string{string(ones.KindRunStart), string(ones.KindCellStart), string(ones.KindCellDone), string(ones.KindRunDone), "end"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("late stream kinds = %v, want %v", kinds, want)
	}
}

// TestShutdownRejectsNewRuns: after Shutdown begins, POST /v1/runs
// returns 503.
func TestShutdownRejectsNewRuns(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "POST", ts.URL+"/v1/runs", quickSpec(), http.StatusServiceUnavailable)
}
