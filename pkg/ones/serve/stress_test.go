package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/ones"
)

// fakeClock is an injectable, manually advanced time source shared by
// the TTL, rate-limit and breaker tests (assigned to Server.now before
// the httptest server starts, so no handler races the assignment).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// newHardenedServer builds a metrics-instrumented server under the given
// hardening Config. mutate (optional) runs before the HTTP listener
// starts — the hook tests use to inject a fake clock.
func newHardenedServer(t *testing.T, dir string, cfg Config, mutate func(*Server)) (*Server, *ones.Metrics, *httptest.Server) {
	t.Helper()
	cache, err := ones.NewCache(dir, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	m := ones.NewMetrics()
	srv := New(cache, nil, WithMetrics(m), WithConfig(cfg))
	if mutate != nil {
		mutate(srv)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, m, ts
}

// streamRunTolerant is streamRun for runs that may already have been
// evicted: a 404 reports found == false instead of failing the test.
func streamRunTolerant(t *testing.T, base, id string) (found bool, final streamEvent) {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return false, streamEvent{}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "end" {
			return true, ev
		}
	}
	t.Fatalf("stream for %s ended without a terminal event: %v", id, sc.Err())
	return false, streamEvent{}
}

// TestHubSharedFanout is the tentpole's fan-out acceptance check: 50
// clients streaming ONE run cost exactly one simulation and one history
// append per event — onesd_hub_events_total counts events, not
// events × clients.
func TestHubSharedFanout(t *testing.T) {
	srv, m, ts := newHardenedServer(t, "", Config{}, nil)
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()
	st := createRun(t, ts.URL, quickSpec())

	const clients = 50
	var wg sync.WaitGroup
	kinds := make([][]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ks, final := streamRun(t, ts.URL, st.ID)
			if final.Status != StatusDone {
				t.Errorf("client %d: stream ended %q: %s", i, final.Status, final.Error)
			}
			kinds[i] = ks
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if fmt.Sprint(kinds[i]) != fmt.Sprint(kinds[0]) {
			t.Errorf("client %d saw %v, client 0 saw %v", i, kinds[i], kinds[0])
		}
	}
	if cs := srv.Cache().Stats(); cs.Computes != 1 {
		t.Errorf("50 clients of one run cost %d computes, want 1", cs.Computes)
	}
	// kinds includes the synthetic "end" line; everything before it was a
	// broadcast event, recorded exactly once however many clients follow.
	events := uint64(len(kinds[0]) - 1)
	if got := m.Registry().CounterValue("onesd_hub_events_total"); got != events {
		t.Errorf("onesd_hub_events_total = %d, want %d (one per event, not per client)", got, events)
	}
	if got := m.Registry().GaugeValue("onesd_stream_clients"); got != 0 {
		t.Errorf("onesd_stream_clients = %v after all streams closed, want 0", got)
	}
}

// TestDaemonStressHardened hammers a capped daemon with 50 concurrent
// clients — most create+stream identical quick runs (singleflight: one
// simulation), some create-and-cancel independent slow runs — under the
// MaxRuns bound, then checks the table stayed bounded, evicted runs 404
// on every endpoint, and shutdown leaks no goroutines. Run with -race.
func TestDaemonStressHardened(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, m, ts := newHardenedServer(t, "", Config{MaxRuns: 10}, nil)

	const clients = 50
	var (
		wg  sync.WaitGroup
		idm sync.Mutex
		ids []string
	)
	record := func(id string) {
		idm.Lock()
		ids = append(ids, id)
		idm.Unlock()
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%10 == 0 {
				// Canceller: an independent slow run, killed mid-cell.
				spec := slowSpec()
				spec.Seed = int64(100 + i)
				st := createRun(t, ts.URL, spec)
				record(st.ID)
				time.Sleep(100 * time.Millisecond)
				doJSON(t, "DELETE", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusAccepted)
				return
			}
			st := createRun(t, ts.URL, quickSpec())
			record(st.ID)
			// The capped table may evict this run the moment it finishes
			// (cap pressure from 49 siblings): a 404 here is the eviction
			// contract working, not a failure.
			if found, final := streamRunTolerant(t, ts.URL, st.ID); found && final.Status != StatusDone {
				t.Errorf("client %d: stream ended %q: %s", i, final.Status, final.Error)
			}
		}(i)
	}
	wg.Wait()

	// Drain the cancelled runs to terminal state so the table settles,
	// tolerating eviction of already-finished ones.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if srv.countRuns(StatusRunning) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled runs never drained")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if n := len(srv.list()); n > 10 {
		t.Errorf("run table holds %d runs after the storm, want ≤ MaxRuns=10", n)
	}
	if got := m.Registry().CounterValue("cache_evictions_total", "runtable", "cap"); got == 0 {
		t.Error("no runtable cap evictions counted after 50 runs against MaxRuns=10")
	}
	// All 45 identical quick runs shared one simulation.
	if cs := srv.Cache().Stats(); cs.Computes < 1 || cs.Computes > 1+clients/10 {
		t.Errorf("cache computes = %d, want 1 shared quick compute (+ at most %d cancelled slow stragglers)", cs.Computes, clients/10)
	}
	// Every endpoint 404s an evicted run.
	live := map[string]bool{}
	for _, r := range srv.list() {
		live[r.ID] = true
	}
	evicted := ""
	idm.Lock()
	for _, id := range ids {
		if !live[id] {
			evicted = id
			break
		}
	}
	idm.Unlock()
	if evicted == "" {
		t.Fatal("no evicted run found among 50 creations against MaxRuns=10")
	}
	doJSON(t, "GET", ts.URL+"/v1/runs/"+evicted, nil, http.StatusNotFound)
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+evicted, nil, http.StatusNotFound)
	doJSON(t, "GET", ts.URL+"/v1/runs/"+evicted+"/trace", nil, http.StatusNotFound)
	doJSON(t, "GET", ts.URL+"/v1/runs/"+evicted+"/stream", nil, http.StatusNotFound)

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after shutdown: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunTableEvictionPreservesInFlight pins the cap-eviction contract:
// only FINISHED runs are evicted — a run still executing survives any
// cap pressure — and an evicted run 404s everywhere while attached
// streams are unaffected.
func TestRunTableEvictionPreservesInFlight(t *testing.T) {
	srv, m, ts := newHardenedServer(t, "", Config{MaxRuns: 2}, nil)
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	slow := createRun(t, ts.URL, slowSpec()) // stays running throughout
	var quicks []RunStatus
	for i := 0; i < 3; i++ {
		st := createRun(t, ts.URL, quickSpec())
		waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)
		quicks = append(quicks, st)
	}

	// The slow run is over-cap the whole time but never evicted.
	if got := getRun(t, ts.URL, slow.ID); got.Status != StatusRunning {
		t.Fatalf("in-flight run = %q, want still running despite cap pressure", got.Status)
	}
	// The two oldest finished quick runs were evicted to make room.
	for _, st := range quicks[:2] {
		doJSON(t, "GET", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusNotFound)
		doJSON(t, "GET", ts.URL+"/v1/runs/"+st.ID+"/trace", nil, http.StatusNotFound)
		doJSON(t, "DELETE", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusNotFound)
	}
	if got := getRun(t, ts.URL, quicks[2].ID); got.Status != StatusDone {
		t.Errorf("newest finished run = %q, want retained", got.Status)
	}
	if got := m.Registry().CounterValue("cache_evictions_total", "runtable", "cap"); got != 2 {
		t.Errorf("runtable cap evictions = %d, want 2", got)
	}

	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+slow.ID, nil, http.StatusAccepted)
	waitStatus(t, ts.URL, slow.ID, StatusCancelled, 10*time.Second)
}

// TestRunTTLEviction drives the finished-run TTL with an injected clock:
// a done run stays addressable within its TTL and 404s (counted as a
// runtable/ttl eviction) once the clock passes it.
func TestRunTTLEviction(t *testing.T) {
	fc := newFakeClock()
	srv, m, ts := newHardenedServer(t, "", Config{RunTTL: time.Hour}, func(s *Server) { s.now = fc.now })
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	fc.advance(30 * time.Minute)
	if got := getRun(t, ts.URL, st.ID); got.Status != StatusDone {
		t.Fatalf("run %q within TTL, want done and addressable", got.Status)
	}
	fc.advance(45 * time.Minute) // 75 min since finish ≥ 1h TTL
	doJSON(t, "GET", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusNotFound)
	if got := m.Registry().CounterValue("cache_evictions_total", "runtable", "ttl"); got != 1 {
		t.Errorf("runtable ttl evictions = %d, want 1", got)
	}
}

// TestCancelFinishedRunKeepsResult pins the DELETE-on-finished contract
// the lock audit established: cancelling a run that already finished is
// an idempotent 202 that changes nothing — the status stays done, the
// result stays served, and a concurrent late stream still replays the
// full history with a done terminal line.
func TestCancelFinishedRunKeepsResult(t *testing.T) {
	srv, ts := newTestServer(t, "")
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()
	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				var got RunStatus
				if err := json.Unmarshal(doJSON(t, "DELETE", ts.URL+"/v1/runs/"+st.ID, nil, http.StatusAccepted), &got); err != nil {
					t.Error(err)
					return
				}
				if got.Status != StatusDone {
					t.Errorf("DELETE on a finished run reports %q, want status unchanged (done)", got.Status)
				}
			} else {
				_, final := streamRun(t, ts.URL, st.ID)
				if final.Status != StatusDone {
					t.Errorf("stream racing DELETE ended %q, want done", final.Status)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := getRun(t, ts.URL, st.ID); got.Status != StatusDone || got.Result == nil {
		t.Errorf("after DELETE races: status %q result %v, want done with result", got.Status, got.Result != nil)
	}
}

// TestHubDropsSlowSubscriber unit-tests the bounded fan-out: a
// subscriber that stops draining is disconnected the moment its buffer
// overflows — counted, channel closed, flagged as dropped — while
// keeping-up subscribers and the broadcast itself are untouched.
func TestHubDropsSlowSubscriber(t *testing.T) {
	reg := obs.NewRegistry()
	events := reg.Counter("ev", "test")
	drops := reg.Counter("drops", "test")
	clients := reg.Gauge("clients", "test")
	h := newHub(2, events, drops, clients)

	_, fast := h.subscribe()
	_, slow := h.subscribe()
	if clients.Value() != 2 {
		t.Fatalf("clients gauge = %v, want 2", clients.Value())
	}
	for i := 0; i < 5; i++ {
		h.broadcast(ones.Progress{Done: i + 1, Total: 5})
		<-fast.ch // fast keeps up; slow never reads
	}
	if got := events.Value(); got != 5 {
		t.Errorf("event counter = %d, want 5", got)
	}
	if got := drops.Value(); got != 1 {
		t.Errorf("slow-drop counter = %d, want 1", got)
	}
	if !h.wasDropped(slow) {
		t.Error("slow subscriber not flagged as dropped")
	}
	if h.wasDropped(fast) {
		t.Error("fast subscriber flagged as dropped")
	}
	if clients.Value() != 1 {
		t.Errorf("clients gauge = %v after drop, want 1", clients.Value())
	}
	// The slow channel holds its buffered prefix, then closes.
	for i := 0; i < 2; i++ {
		if _, ok := <-slow.ch; !ok {
			t.Fatalf("slow channel closed after %d buffered events, want 2", i)
		}
	}
	if _, ok := <-slow.ch; ok {
		t.Error("slow channel still open past its buffer")
	}

	h.close()
	if _, ok := <-fast.ch; ok {
		t.Error("fast channel open after hub close")
	}
	if clients.Value() != 0 {
		t.Errorf("clients gauge = %v after close, want 0", clients.Value())
	}
	if hist, sub := h.subscribe(); sub != nil || len(hist) != 5 {
		t.Errorf("subscribe after close = (%d events, sub %v), want full history and nil sub", len(hist), sub)
	}
	if done, total := h.latest(); done != 5 || total != 5 {
		t.Errorf("latest = %d/%d, want 5/5", done, total)
	}
}

// TestNeverReadingClientDoesNotWedgeRun attaches a stream client that
// never reads its response and checks the run (and the rest of the
// daemon) completes regardless — the hub's bounded buffer plus the
// kernel's socket buffer absorb or drop it, never block it.
func TestNeverReadingClientDoesNotWedgeRun(t *testing.T) {
	srv, _, ts := newHardenedServer(t, "", Config{StreamBuffer: 1}, nil)
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()
	st := createRun(t, ts.URL, quickSpec())
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // deliberately never read
	if got := waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second); got.Result == nil {
		t.Error("run wedged by a non-reading stream client")
	}
}
