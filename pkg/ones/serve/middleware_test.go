package serve

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// doAuth issues one request with an optional bearer token and returns
// the response (body closed) for status/header checks.
func doAuth(t *testing.T, method, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestAuthMiddleware tables the bearer-token contract: every /v1 route
// demands the exact token (401 otherwise, counted), while the probe and
// scrape endpoints stay open.
func TestAuthMiddleware(t *testing.T) {
	srv, m, ts := newHardenedServer(t, "", Config{AuthToken: "sekrit"}, nil)
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	cases := []struct {
		name   string
		method string
		path   string
		token  string
		want   int
	}{
		{"v1 no token", "GET", "/v1/schedulers", "", http.StatusUnauthorized},
		{"v1 wrong token", "GET", "/v1/schedulers", "wrong", http.StatusUnauthorized},
		{"v1 right token", "GET", "/v1/schedulers", "sekrit", http.StatusOK},
		{"create no token", "POST", "/v1/runs", "", http.StatusUnauthorized},
		{"list right token", "GET", "/v1/runs", "sekrit", http.StatusOK},
		{"healthz open", "GET", "/healthz", "", http.StatusOK},
		{"readyz open", "GET", "/readyz", "", http.StatusOK},
		{"metrics open", "GET", "/metrics", "", http.StatusOK},
	}
	wantFails := uint64(0)
	for _, tc := range cases {
		resp := doAuth(t, tc.method, ts.URL+tc.path, tc.token)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusUnauthorized {
			wantFails++
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s: 401 without a WWW-Authenticate challenge", tc.name)
			}
		}
	}
	if got := m.Registry().CounterValue("onesd_auth_failures_total"); got != wantFails {
		t.Errorf("onesd_auth_failures_total = %d, want %d", got, wantFails)
	}
}

// TestRateLimitMiddleware tables the per-endpoint token bucket: the
// burst admits, the next request 429s with a sane Retry-After and a
// counted rejection, other endpoints keep their own untouched bucket,
// and the bucket refills as the (injected) clock advances.
func TestRateLimitMiddleware(t *testing.T) {
	fc := newFakeClock()
	srv, m, ts := newHardenedServer(t, "", Config{RatePerSec: 1, RateBurst: 2},
		func(s *Server) { s.now = fc.now })
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	for i := 0; i < 2; i++ {
		if resp := doAuth(t, "GET", ts.URL+"/v1/schedulers", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := doAuth(t, "GET", ts.URL+"/v1/schedulers", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("429 Retry-After = %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	// Buckets are per endpoint: a sibling route is unaffected by the burst.
	if resp := doAuth(t, "GET", ts.URL+"/v1/scenarios", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("sibling endpoint rate-limited by another endpoint's burst: %d", resp.StatusCode)
	}
	// Probes are never rate limited.
	for i := 0; i < 5; i++ {
		if resp := doAuth(t, "GET", ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz rate-limited: %d", resp.StatusCode)
		}
	}
	if got := m.Registry().CounterValue("onesd_rate_limited_total", "GET /v1/schedulers"); got != 1 {
		t.Errorf("onesd_rate_limited_total{GET /v1/schedulers} = %d, want 1", got)
	}
	if got := m.Registry().CounterValue("onesd_rate_limited_total", "GET /v1/scenarios"); got != 0 {
		t.Errorf("onesd_rate_limited_total{GET /v1/scenarios} = %d, want 0", got)
	}
	// One token accrues per second of clock.
	fc.advance(1500 * time.Millisecond)
	if resp := doAuth(t, "GET", ts.URL+"/v1/schedulers", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("post-refill status %d, want 200", resp.StatusCode)
	}
}

// TestBreakerStateMachine unit-tests the circuit breaker against an
// injected clock and backlog: closed admits, a full backlog opens it,
// the open state sheds without probing until the cooldown lapses, a
// failed half-open probe re-opens, a successful one closes.
func TestBreakerStateMachine(t *testing.T) {
	fc := newFakeClock()
	backlog := 0
	reg := obs.NewRegistry()
	b := &breaker{
		maxBacklog:  2,
		cooldown:    time.Minute,
		now:         fc.now,
		backlog:     func() int { return backlog },
		rejected:    reg.Counter("rej", "test"),
		transitions: reg.CounterVec("trans", "test", "to"),
		stateGauge:  reg.Gauge("state", "test"),
	}

	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker with empty backlog rejected")
	}
	backlog = 2
	ok, retry := b.allow()
	if ok || retry != time.Minute {
		t.Fatalf("full backlog: allow = (%v, %v), want shed with the full cooldown", ok, retry)
	}
	if g := reg.GaugeValue("state"); g != 2 {
		t.Errorf("state gauge = %v after opening, want 2", g)
	}
	// Open sheds WITHOUT probing: even a drained backlog waits out the
	// cooldown (that hold time is what lets compute actually drain).
	backlog = 0
	fc.advance(30 * time.Second)
	ok, retry = b.allow()
	if ok || retry != 30*time.Second {
		t.Fatalf("mid-cooldown: allow = (%v, %v), want shed with the remaining 30s", ok, retry)
	}
	// Cooldown over, backlog full again: the half-open probe fails and
	// the breaker re-opens for a fresh cooldown.
	backlog = 2
	fc.advance(31 * time.Second)
	if ok, _ = b.allow(); ok {
		t.Fatal("failed half-open probe admitted")
	}
	if got := reg.CounterValue("trans", "half-open"); got != 1 {
		t.Errorf("half-open transitions = %d, want 1", got)
	}
	if got := reg.CounterValue("trans", "open"); got != 2 {
		t.Errorf("open transitions = %d, want 2", got)
	}
	// Drained after the second cooldown: probe succeeds, breaker closes.
	backlog = 0
	fc.advance(2 * time.Minute)
	if ok, _ = b.allow(); !ok {
		t.Fatal("successful half-open probe rejected")
	}
	if g := reg.GaugeValue("state"); g != 0 {
		t.Errorf("state gauge = %v after recovery, want 0 (closed)", g)
	}
	if got := reg.CounterValue("trans", "closed"); got != 1 {
		t.Errorf("closed transitions = %d, want 1", got)
	}
	if got := reg.CounterValue("rej"); got != 3 {
		t.Errorf("rejected counter = %d, want 3", got)
	}
}

// TestBreakerShedsRunCreation exercises the breaker end-to-end: with one
// run executing against BreakerBacklog=1, a second POST /v1/runs is shed
// 503 + Retry-After, reads and cancellation keep working while shedding,
// and once the backlog drains and the cooldown lapses creation recovers.
func TestBreakerShedsRunCreation(t *testing.T) {
	fc := newFakeClock()
	srv, m, ts := newHardenedServer(t, "", Config{BreakerBacklog: 1, BreakerCooldown: time.Minute},
		func(s *Server) { s.now = fc.now })
	defer func() {
		srv.Shutdown(context.Background())
		ts.Close()
	}()

	slow := createRun(t, ts.URL, slowSpec())
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST against a full backlog: status %d, want 503", resp.StatusCode)
	}
	if retry, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || retry < 1 {
		t.Errorf("503 Retry-After = %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	// Reads and cancellation are never shed — that is how the backlog drains.
	getRun(t, ts.URL, slow.ID)
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+slow.ID, nil, http.StatusAccepted)
	waitStatus(t, ts.URL, slow.ID, StatusCancelled, 10*time.Second)

	fc.advance(2 * time.Minute) // past the cooldown: half-open probe sees a drained backlog
	st := createRun(t, ts.URL, quickSpec())
	waitStatus(t, ts.URL, st.ID, StatusDone, 30*time.Second)

	if got := m.Registry().CounterValue("onesd_breaker_rejected_total"); got != 1 {
		t.Errorf("onesd_breaker_rejected_total = %d, want 1", got)
	}
	if got := m.Registry().CounterValue("onesd_breaker_transitions_total", "closed"); got != 1 {
		t.Errorf("breaker closed transitions = %d, want 1", got)
	}
}
