// Package serve is the HTTP control plane of cmd/onesd — public so the daemon can
// be embedded in other processes; it multiplexes
// many client sessions over one process, one shared (and optionally
// persistent) result cache, and one run table. Each POST /v1/runs builds
// a ones.Session from the request body, runs it on its own goroutine
// under a per-run context, and exposes the run's lifecycle over JSON:
// poll it, stream its progress events as NDJSON, cancel it (the context
// aborts the simulation mid-cell), list the registries.
//
// The package is plain net/http + encoding/json — no dependencies — and
// is exercised end-to-end (with -race) by serve_test.go.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/ones"
)

// ErrShuttingDown rejects new runs once Shutdown has begun.
var ErrShuttingDown = errors.New("server is shutting down")

// Option configures a Server under construction (see New).
type Option func(*Server)

// WithMetrics wires a telemetry sink into the server: every run's
// Session records into it (engine, cache and evolution series), each run
// is traced under its run ID (served by GET /v1/runs/{id}/trace), the
// HTTP mux is instrumented per endpoint, and GET /metrics renders the
// whole registry as Prometheus text. The shared cache, when present, is
// instrumented at construction so its series exist before the first run.
func WithMetrics(m *ones.Metrics) Option {
	return func(s *Server) { s.metrics = m }
}

// RunSpec is the POST /v1/runs request body. Zero fields keep the SDK
// defaults (scheduler "ones", scenario "steady", the 16×4 Longhorn
// topology, seed 1). Quick shrinks the workload to smoke-test scale
// before the other fields apply. Shape requests a heterogeneous cluster
// ("4x8,2x4": per-server GPU counts, one rack per comma group — see
// ones.WithShape) and overrides Servers/GPUsPerServer when set.
type RunSpec struct {
	Scheduler string `json:"scheduler,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	// Autoscaler attaches a reactive autoscaling controller by registry
	// name (see GET /v1/autoscalers and ones.WithAutoscaler).
	Autoscaler    string  `json:"autoscaler,omitempty"`
	Servers       int     `json:"servers,omitempty"`
	GPUsPerServer int     `json:"gpus_per_server,omitempty"`
	Shape         string  `json:"shape,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Jobs          int     `json:"jobs,omitempty"`
	Interarrival  float64 `json:"interarrival_s,omitempty"`
	MaxGPUs       int     `json:"max_gpus,omitempty"`
	Population    int     `json:"population,omitempty"`
	MutationRate  float64 `json:"mutation_rate,omitempty"`
	// EvolutionParallelism bounds ONES's intra-cell evolution goroutines
	// (0 ⇒ auto-derive from free workers). Purely a throughput knob:
	// results and cache keys are identical at any setting.
	EvolutionParallelism int  `json:"evolution_parallelism,omitempty"`
	RecordEvents         bool `json:"record_events,omitempty"`
	Quick                bool `json:"quick,omitempty"`
}

// options maps the spec onto SDK options (validated by ones.New).
func (sp RunSpec) options(obs ones.Observer, cache *ones.Cache) []ones.Option {
	var opts []ones.Option
	if sp.Quick {
		opts = append(opts, ones.WithQuickScale())
	}
	if sp.Scheduler != "" {
		opts = append(opts, ones.WithScheduler(sp.Scheduler))
	}
	if sp.Scenario != "" {
		opts = append(opts, ones.WithScenario(sp.Scenario))
	}
	if sp.Autoscaler != "" {
		opts = append(opts, ones.WithAutoscaler(sp.Autoscaler))
	}
	if sp.Servers != 0 || sp.GPUsPerServer != 0 {
		servers, per := sp.Servers, sp.GPUsPerServer
		if servers == 0 {
			servers = 16
		}
		if per == 0 {
			per = 4
		}
		opts = append(opts, ones.WithTopology(servers, per))
	}
	if sp.Shape != "" {
		opts = append(opts, ones.WithShape(sp.Shape))
	}
	if sp.Jobs != 0 || sp.Interarrival != 0 || sp.MaxGPUs != 0 || sp.Seed != 0 {
		opts = append(opts, ones.WithTrace(ones.Trace{
			Jobs:             sp.Jobs,
			MeanInterarrival: sp.Interarrival,
			MaxGPUs:          sp.MaxGPUs,
			Seed:             sp.Seed,
		}))
	}
	if sp.Seed != 0 {
		opts = append(opts, ones.WithSeed(sp.Seed))
	}
	if sp.Population != 0 {
		opts = append(opts, ones.WithPopulation(sp.Population))
	}
	if sp.MutationRate != 0 {
		opts = append(opts, ones.WithMutationRate(sp.MutationRate))
	}
	if sp.EvolutionParallelism != 0 {
		opts = append(opts, ones.WithEvolutionParallelism(sp.EvolutionParallelism))
	}
	if sp.RecordEvents {
		opts = append(opts, ones.WithEventLog(true))
	}
	if cache != nil {
		opts = append(opts, ones.WithCache(cache))
	}
	if obs != nil {
		opts = append(opts, ones.WithObserver(obs))
	}
	return opts
}

// Run statuses, in lifecycle order.
const (
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// run is one client-submitted simulation: a session executing on its own
// goroutine, an append-only progress log, and a condition variable that
// wakes pollers and streamers as events arrive. Subscribers read the log
// by index (replay + follow), so late subscribers see the full history
// and the engine never blocks on a slow client.
type run struct {
	ID      string
	Spec    RunSpec
	Created time.Time
	cancel  context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	events   []ones.Progress
	status   string
	result   *ones.Result
	errMsg   string
	finished bool
}

func newRun(id string, spec RunSpec, cancel context.CancelFunc) *run {
	r := &run{
		ID:      id,
		Spec:    spec,
		Created: time.Now(),
		cancel:  cancel,
		status:  StatusRunning,
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Observe implements ones.Observer: append and wake followers.
func (r *run) Observe(p ones.Progress) {
	r.mu.Lock()
	r.events = append(r.events, p)
	r.mu.Unlock()
	r.cond.Broadcast()
}

// finish records the terminal state. wasCancelled separates a client
// cancellation from a genuine failure.
func (r *run) finish(res *ones.Result, err error, wasCancelled bool) {
	r.mu.Lock()
	switch {
	case err == nil:
		r.status = StatusDone
		r.result = res
	case wasCancelled:
		r.status = StatusCancelled
		r.errMsg = err.Error()
	default:
		r.status = StatusFailed
		r.errMsg = err.Error()
	}
	r.finished = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// snapshot returns the run's status fields under one lock acquisition.
func (r *run) snapshot() (status string, res *ones.Result, errMsg string, done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.events); n > 0 {
		done, total = r.events[n-1].Done, r.events[n-1].Total
	}
	return r.status, r.result, r.errMsg, done, total
}

// Server owns the run table, the shared cache and the lifecycle context
// every run inherits. Shutdown cancels that context (aborting every
// in-flight simulation mid-cell) and drains the run goroutines.
type Server struct {
	cache   *ones.Cache
	log     *log.Logger
	metrics *ones.Metrics

	// HTTP middleware handles (nil without WithMetrics; all nil-safe).
	httpReqs     *obs.CounterVec
	httpLat      *obs.HistogramVec
	httpInFlight *obs.Gauge

	base context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // creation order, for stable listings
	seq    int
	closed bool

	wg sync.WaitGroup
}

// New builds a Server over a shared cache (nil ⇒ runs are independent:
// no cross-run dedup, no persistence) and a logger (nil ⇒ the standard
// logger). Options add observability (see WithMetrics); a bare New is
// unchanged from earlier releases.
func New(cache *ones.Cache, logger *log.Logger, opts ...Option) *Server {
	if logger == nil {
		logger = log.Default()
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cache: cache,
		log:   logger,
		base:  base,
		stop:  stop,
		runs:  make(map[string]*run),
	}
	for _, o := range opts {
		o(s)
	}
	if s.metrics != nil {
		if s.cache != nil {
			s.cache.Instrument(s.metrics)
		}
		reg := s.metrics.Registry()
		s.httpReqs = reg.CounterVec("http_requests_total", "HTTP requests served, by route pattern and status code.", "endpoint", "code")
		s.httpLat = reg.HistogramVec("http_request_seconds", "HTTP request latency, by route pattern.", nil, "endpoint")
		s.httpInFlight = reg.Gauge("http_in_flight", "HTTP requests currently being served.")
		for _, state := range []string{StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
			reg.GaugeFunc("onesd_runs", "Runs in the run table, by lifecycle state.",
				func() float64 { return float64(s.countRuns(state)) }, "state", state)
		}
	}
	return s
}

// countRuns reports how many runs are currently in the given state.
func (s *Server) countRuns(state string) int {
	n := 0
	for _, r := range s.list() {
		st, _, _, _, _ := r.snapshot()
		if st == state {
			n++
		}
	}
	return n
}

// draining reports whether Shutdown has begun (GET /readyz turns 503).
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Cache returns the shared cache (may be nil).
func (s *Server) Cache() *ones.Cache { return s.cache }

// start validates the spec, registers a run and launches its goroutine.
func (s *Server) start(spec RunSpec) (*run, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	runCtx, cancel := context.WithCancel(s.base)
	r := newRun(id, spec, cancel)
	sessOpts := spec.options(r, s.cache)
	if s.metrics != nil {
		sessOpts = append(sessOpts, ones.WithMetrics(s.metrics))
	}
	sess, err := ones.New(sessOpts...)
	if err != nil {
		s.seq-- // the id was never exposed
		s.mu.Unlock()
		cancel()
		return nil, err
	}
	s.runs[id] = r
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	// Trace the run under its ID; GET /v1/runs/{id}/trace serves the tree.
	// A nil metrics sink passes runCtx through untouched.
	traceCtx, endTrace := s.metrics.StartTrace(runCtx, id, "run "+id)
	go func() {
		defer s.wg.Done()
		defer cancel()
		res, err := sess.Run(traceCtx)
		endTrace()
		r.finish(res, err, runCtx.Err() != nil)
		if err != nil && runCtx.Err() == nil {
			s.log.Printf("serve: %s failed: %v", id, err)
		}
	}()
	return r, nil
}

// get looks up a run by ID.
func (s *Server) get(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// list returns the runs in creation order.
func (s *Server) list() []*run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id])
	}
	return out
}

// Shutdown stops accepting runs, cancels every in-flight run (they abort
// mid-cell) and waits — up to ctx — for the run goroutines to retire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}
