// Package serve is the HTTP control plane of cmd/onesd — public so the daemon can
// be embedded in other processes; it multiplexes
// many client sessions over one process, one shared (and optionally
// persistent) result cache, and one run table. Each POST /v1/runs builds
// a ones.Session from the request body, runs it on its own goroutine
// under a per-run context, and exposes the run's lifecycle over JSON:
// poll it, stream its progress events as NDJSON, cancel it (the context
// aborts the simulation mid-cell), list the registries.
//
// The package is plain net/http + encoding/json — no dependencies — and
// is exercised end-to-end (with -race) by serve_test.go.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/ones"
)

// ErrShuttingDown rejects new runs once Shutdown has begun.
var ErrShuttingDown = errors.New("server is shutting down")

// Option configures a Server under construction (see New).
type Option func(*Server)

// WithMetrics wires a telemetry sink into the server: every run's
// Session records into it (engine, cache and evolution series), each run
// is traced under its run ID (served by GET /v1/runs/{id}/trace), the
// HTTP mux is instrumented per endpoint, and GET /metrics renders the
// whole registry as Prometheus text. The shared cache, when present, is
// instrumented at construction so its series exist before the first run.
func WithMetrics(m *ones.Metrics) Option {
	return func(s *Server) { s.metrics = m }
}

// Config bounds the daemon's state and configures admission control.
// The zero value disables everything — unbounded run table, no auth, no
// rate limit, no breaker — which is the pre-hardening behavior; each
// field opts one protection in independently.
type Config struct {
	// MaxRuns caps the run table: when a new run would push it past the
	// cap, the oldest FINISHED runs are evicted first (evicted runs 404;
	// in-flight runs are never evicted, so the table can transiently
	// exceed the cap under a burst of live work — that is what the
	// breaker is for). 0 ⇒ unbounded.
	MaxRuns int
	// RunTTL evicts finished runs this long after they finish. 0 ⇒
	// finished runs are kept until MaxRuns pressure (or forever).
	RunTTL time.Duration
	// StreamBuffer is the per-stream-client event buffer; a client whose
	// buffer overflows is disconnected rather than wedging the broadcast
	// hub. 0 ⇒ a 256-event default.
	StreamBuffer int
	// AuthToken, when set, requires "Authorization: Bearer <AuthToken>"
	// on every /v1 endpoint (401 otherwise). /healthz, /readyz and
	// /metrics stay open for probes and scrapers.
	AuthToken string
	// RatePerSec, when positive, applies an independent token-bucket
	// rate limit of this many requests/second to each /v1 endpoint
	// (429 + Retry-After beyond it). RateBurst is the bucket depth
	// (0 ⇒ one second's worth, minimum 1).
	RatePerSec float64
	RateBurst  int
	// BreakerBacklog, when positive, arms the run-creation circuit
	// breaker: once this many runs are executing concurrently, new POST
	// /v1/runs are shed with 503 + Retry-After until the backlog drains
	// and a half-open probe succeeds. BreakerCooldown is the open-state
	// hold time before that probe (0 ⇒ 5s).
	BreakerBacklog  int
	BreakerCooldown time.Duration
}

// WithConfig installs the bounded-state and admission configuration
// (see Config). Without it the server behaves exactly as before the
// hardening pass.
func WithConfig(cfg Config) Option {
	return func(s *Server) { s.cfg = cfg }
}

// RunSpec is the POST /v1/runs request body. Zero fields keep the SDK
// defaults (scheduler "ones", scenario "steady", the 16×4 Longhorn
// topology, seed 1). Quick shrinks the workload to smoke-test scale
// before the other fields apply. Shape requests a heterogeneous cluster
// ("4x8,2x4": per-server GPU counts, one rack per comma group — see
// ones.WithShape) and overrides Servers/GPUsPerServer when set.
type RunSpec struct {
	Scheduler string `json:"scheduler,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	// Autoscaler attaches a reactive autoscaling controller by registry
	// name (see GET /v1/autoscalers and ones.WithAutoscaler).
	Autoscaler    string  `json:"autoscaler,omitempty"`
	Servers       int     `json:"servers,omitempty"`
	GPUsPerServer int     `json:"gpus_per_server,omitempty"`
	Shape         string  `json:"shape,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Jobs          int     `json:"jobs,omitempty"`
	Interarrival  float64 `json:"interarrival_s,omitempty"`
	MaxGPUs       int     `json:"max_gpus,omitempty"`
	Population    int     `json:"population,omitempty"`
	MutationRate  float64 `json:"mutation_rate,omitempty"`
	// EvolutionParallelism bounds ONES's intra-cell evolution goroutines
	// (0 ⇒ auto-derive from free workers). Purely a throughput knob:
	// results and cache keys are identical at any setting.
	EvolutionParallelism int  `json:"evolution_parallelism,omitempty"`
	RecordEvents         bool `json:"record_events,omitempty"`
	Quick                bool `json:"quick,omitempty"`
}

// options maps the spec onto SDK options (validated by ones.New).
func (sp RunSpec) options(obs ones.Observer, cache *ones.Cache) []ones.Option {
	var opts []ones.Option
	if sp.Quick {
		opts = append(opts, ones.WithQuickScale())
	}
	if sp.Scheduler != "" {
		opts = append(opts, ones.WithScheduler(sp.Scheduler))
	}
	if sp.Scenario != "" {
		opts = append(opts, ones.WithScenario(sp.Scenario))
	}
	if sp.Autoscaler != "" {
		opts = append(opts, ones.WithAutoscaler(sp.Autoscaler))
	}
	if sp.Servers != 0 || sp.GPUsPerServer != 0 {
		servers, per := sp.Servers, sp.GPUsPerServer
		if servers == 0 {
			servers = 16
		}
		if per == 0 {
			per = 4
		}
		opts = append(opts, ones.WithTopology(servers, per))
	}
	if sp.Shape != "" {
		opts = append(opts, ones.WithShape(sp.Shape))
	}
	if sp.Jobs != 0 || sp.Interarrival != 0 || sp.MaxGPUs != 0 || sp.Seed != 0 {
		opts = append(opts, ones.WithTrace(ones.Trace{
			Jobs:             sp.Jobs,
			MeanInterarrival: sp.Interarrival,
			MaxGPUs:          sp.MaxGPUs,
			Seed:             sp.Seed,
		}))
	}
	if sp.Seed != 0 {
		opts = append(opts, ones.WithSeed(sp.Seed))
	}
	if sp.Population != 0 {
		opts = append(opts, ones.WithPopulation(sp.Population))
	}
	if sp.MutationRate != 0 {
		opts = append(opts, ones.WithMutationRate(sp.MutationRate))
	}
	if sp.EvolutionParallelism != 0 {
		opts = append(opts, ones.WithEvolutionParallelism(sp.EvolutionParallelism))
	}
	if sp.RecordEvents {
		opts = append(opts, ones.WithEventLog(true))
	}
	if cache != nil {
		opts = append(opts, ones.WithCache(cache))
	}
	if obs != nil {
		opts = append(opts, ones.WithObserver(obs))
	}
	return opts
}

// Run statuses, in lifecycle order.
const (
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// run is one client-submitted simulation: a session executing on its own
// goroutine, with its progress events fanned out to stream clients by a
// per-run broadcast hub (see hub.go). All clients following the run
// share the hub's single observer subscription — each event is appended
// to the shared history once, and the engine never blocks on (or even
// sees) a slow client.
//
// Lock discipline (the order is Server.mu → run.mu, and hub.mu is a
// leaf): run.mu guards only the terminal-status fields; event history
// and subscriptions live behind hub.mu. Nothing acquires Server.mu
// while holding run.mu, and finish sets the terminal status before
// closing the hub so a subscriber waking on the closed channel always
// observes finished == true.
type run struct {
	ID      string
	Spec    RunSpec
	Created time.Time
	cancel  context.CancelFunc
	hub     *hub

	mu         sync.Mutex
	status     string
	result     *ones.Result
	errMsg     string
	finished   bool
	finishedAt time.Time // run-table TTL eviction anchor
}

func newRun(id string, spec RunSpec, cancel context.CancelFunc, created time.Time, h *hub) *run {
	return &run{
		ID:      id,
		Spec:    spec,
		Created: created,
		cancel:  cancel,
		hub:     h,
		status:  StatusRunning,
	}
}

// Observe implements ones.Observer: one append to the shared history,
// one non-blocking send per subscriber.
func (r *run) Observe(p ones.Progress) { r.hub.broadcast(p) }

// finish records the terminal state, then closes the hub so every
// stream client drains its buffer and sees the terminal status.
// wasCancelled separates a client cancellation from a genuine failure.
func (r *run) finish(res *ones.Result, err error, wasCancelled bool, at time.Time) {
	r.mu.Lock()
	switch {
	case err == nil:
		r.status = StatusDone
		r.result = res
	case wasCancelled:
		r.status = StatusCancelled
		r.errMsg = err.Error()
	default:
		r.status = StatusFailed
		r.errMsg = err.Error()
	}
	r.finished = true
	r.finishedAt = at
	r.mu.Unlock()
	r.hub.close()
}

// snapshot returns the run's status fields under one lock acquisition.
func (r *run) snapshot() (status string, res *ones.Result, errMsg string, done, total int) {
	r.mu.Lock()
	status, res, errMsg = r.status, r.result, r.errMsg
	r.mu.Unlock()
	done, total = r.hub.latest()
	return status, res, errMsg, done, total
}

// expired reports whether the run is finished and its TTL has lapsed.
// Called with Server.mu held; the brief run.mu acquisition inside
// respects the Server.mu → run.mu lock order.
func (r *run) expired(ttl time.Duration, now time.Time) bool {
	if ttl <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished && now.Sub(r.finishedAt) >= ttl
}

// isFinished reports whether the run has reached a terminal state.
func (r *run) isFinished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// Server owns the run table, the shared cache and the lifecycle context
// every run inherits. Shutdown cancels that context (aborting every
// in-flight simulation mid-cell) and drains the run goroutines.
//
// Lock order: Server.mu → run.mu (hub.mu and breaker.mu are leaves,
// never held together with either). Helpers suffixed *Locked run under
// Server.mu; oneslint's lockedconv analyzer pins their callers.
type Server struct {
	cache   *ones.Cache
	log     *log.Logger
	metrics *ones.Metrics
	cfg     Config
	now     func() time.Time // injectable for TTL/rate/breaker tests

	// HTTP middleware handles (nil without WithMetrics; all nil-safe).
	httpReqs     *obs.CounterVec
	httpLat      *obs.HistogramVec
	httpInFlight *obs.Gauge
	evictions    *obs.CounterVec // cache_evictions_total{store,reason}
	hubEvents    *obs.Counter
	hubSlowDrops *obs.Counter
	hubClients   *obs.Gauge
	authFails    *obs.Counter
	rateLimited  *obs.CounterVec

	breaker *breaker // nil unless Config.BreakerBacklog > 0

	base context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // creation order, for stable listings
	seq    int
	closed bool

	wg sync.WaitGroup
}

// New builds a Server over a shared cache (nil ⇒ runs are independent:
// no cross-run dedup, no persistence) and a logger (nil ⇒ the standard
// logger). Options add observability (see WithMetrics); a bare New is
// unchanged from earlier releases.
func New(cache *ones.Cache, logger *log.Logger, opts ...Option) *Server {
	if logger == nil {
		logger = log.Default()
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cache: cache,
		log:   logger,
		now:   time.Now,
		base:  base,
		stop:  stop,
		runs:  make(map[string]*run),
	}
	for _, o := range opts {
		o(s)
	}
	if s.metrics != nil {
		if s.cache != nil {
			s.cache.Instrument(s.metrics)
		}
		reg := s.metrics.Registry()
		s.httpReqs = reg.CounterVec("http_requests_total", "HTTP requests served, by route pattern and status code.", "endpoint", "code")
		s.httpLat = reg.HistogramVec("http_request_seconds", "HTTP request latency, by route pattern.", nil, "endpoint")
		s.httpInFlight = reg.Gauge("http_in_flight", "HTTP requests currently being served.")
		s.evictions = reg.CounterVec("cache_evictions_total", "Entries evicted from the daemon's bounded stores, by store and reason.", "store", "reason")
		s.hubEvents = reg.Counter("onesd_hub_events_total", "Progress events broadcast by per-run hubs (one per event, however many clients follow).")
		s.hubSlowDrops = reg.Counter("onesd_stream_slow_disconnects_total", "Stream clients disconnected because their send buffer overflowed.")
		s.hubClients = reg.Gauge("onesd_stream_clients", "Stream clients currently subscribed across all runs.")
		s.authFails = reg.Counter("onesd_auth_failures_total", "Requests rejected 401 for a missing or invalid bearer token.")
		s.rateLimited = reg.CounterVec("onesd_rate_limited_total", "Requests rejected 429 by the per-endpoint token buckets.", "endpoint")
		reg.GaugeFunc("onesd_run_table_size", "Runs currently held in the run table (all states).",
			func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.runs)) })
		for _, state := range []string{StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
			reg.GaugeFunc("onesd_runs", "Runs in the run table, by lifecycle state.",
				func() float64 { return float64(s.countRuns(state)) }, "state", state)
		}
	}
	if s.cfg.BreakerBacklog > 0 {
		cooldown := s.cfg.BreakerCooldown
		if cooldown <= 0 {
			cooldown = 5 * time.Second
		}
		var transitions *obs.CounterVec
		var rejected *obs.Counter
		var stateGauge *obs.Gauge
		if s.metrics != nil {
			reg := s.metrics.Registry()
			rejected = reg.Counter("onesd_breaker_rejected_total", "Run creations shed 503 by the compute-backlog circuit breaker.")
			transitions = reg.CounterVec("onesd_breaker_transitions_total", "Circuit-breaker state transitions, by destination state.", "to")
			stateGauge = reg.Gauge("onesd_breaker_state", "Circuit-breaker state: 0 closed, 1 half-open, 2 open.")
		}
		s.breaker = &breaker{
			maxBacklog:  s.cfg.BreakerBacklog,
			cooldown:    cooldown,
			now:         func() time.Time { return s.now() },
			backlog:     func() int { return s.countRuns(StatusRunning) },
			rejected:    rejected,
			transitions: transitions,
			stateGauge:  stateGauge,
		}
	}
	return s
}

// countRuns reports how many runs are currently in the given state.
func (s *Server) countRuns(state string) int {
	n := 0
	for _, r := range s.list() {
		st, _, _, _, _ := r.snapshot()
		if st == state {
			n++
		}
	}
	return n
}

// draining reports whether Shutdown has begun (GET /readyz turns 503).
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Cache returns the shared cache (may be nil).
func (s *Server) Cache() *ones.Cache { return s.cache }

// start validates the spec, registers a run and launches its goroutine.
// Registering also sweeps the bounded run table, so a capped daemon
// evicts old finished runs exactly when new work arrives.
func (s *Server) start(spec RunSpec) (*run, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	runCtx, cancel := context.WithCancel(s.base)
	h := newHub(s.cfg.StreamBuffer, s.hubEvents, s.hubSlowDrops, s.hubClients)
	r := newRun(id, spec, cancel, s.now(), h)
	sessOpts := spec.options(r, s.cache)
	if s.metrics != nil {
		sessOpts = append(sessOpts, ones.WithMetrics(s.metrics))
	}
	sess, err := ones.New(sessOpts...)
	if err != nil {
		s.seq-- // the id was never exposed
		s.mu.Unlock()
		cancel()
		return nil, err
	}
	s.runs[id] = r
	s.order = append(s.order, id)
	s.sweepRunsLocked()
	s.wg.Add(1)
	s.mu.Unlock()

	// Trace the run under its ID; GET /v1/runs/{id}/trace serves the tree.
	// A nil metrics sink passes runCtx through untouched.
	traceCtx, endTrace := s.metrics.StartTrace(runCtx, id, "run "+id)
	go func() {
		defer s.wg.Done()
		defer cancel()
		res, err := sess.Run(traceCtx)
		endTrace()
		r.finish(res, err, runCtx.Err() != nil, s.now())
		if err != nil && runCtx.Err() == nil {
			s.log.Printf("serve: %s failed: %v", id, err)
		}
	}()
	return r, nil
}

// sweepRunsLocked applies the run-table bounds under Server.mu: finished
// runs past their TTL go first, then — while the table exceeds MaxRuns —
// the oldest finished runs. In-flight runs are NEVER evicted (cancelling
// live work to make room would turn a burst into data loss), so the
// table can transiently exceed the cap while every excess run is still
// executing; the admission breaker is the backstop for that regime.
func (s *Server) sweepRunsLocked() {
	now := s.now()
	if ttl := s.cfg.RunTTL; ttl > 0 {
		// Snapshot the ids: dropRunLocked rewrites s.order in place.
		ids := append([]string(nil), s.order...)
		for _, id := range ids {
			if r, ok := s.runs[id]; ok && r.expired(ttl, now) {
				s.dropRunLocked(id, "ttl")
			}
		}
	}
	if max := s.cfg.MaxRuns; max > 0 && len(s.runs) > max {
		ids := append([]string(nil), s.order...)
		for _, id := range ids { // creation order: oldest finished first
			if len(s.runs) <= max {
				break
			}
			if r, ok := s.runs[id]; ok && r.isFinished() {
				s.dropRunLocked(id, "cap")
			}
		}
	}
}

// dropRunLocked removes one run from the table (Server.mu held) and
// counts the eviction. Streams already attached keep their run pointer
// and finish their replay undisturbed; new lookups 404.
func (s *Server) dropRunLocked(id, reason string) {
	delete(s.runs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.evictions.With("runtable", reason).Inc()
}

// get looks up a run by ID, first sweeping the bounded table so a
// finished run past its TTL 404s on the read path too — not only when
// new work happens to arrive.
func (s *Server) get(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepRunsLocked()
	r, ok := s.runs[id]
	return r, ok
}

// list returns the runs in creation order (sweeping the bounded table
// first, like get).
func (s *Server) list() []*run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepRunsLocked()
	out := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id])
	}
	return out
}

// Shutdown stops accepting runs, cancels every in-flight run (they abort
// mid-cell) and waits — up to ctx — for the run goroutines to retire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}
