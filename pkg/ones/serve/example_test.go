package serve_test

import (
	"context"
	"log"
	"net/http"
	"time"

	"repro/pkg/ones"
	"repro/pkg/ones/serve"
)

// Example embeds the daemon's control plane in another process: build a
// Server over a shared persistent cache, mount its routes, and drain it
// gracefully on the way out. (Compiled by go test; not executed.)
func Example() {
	cache, err := ones.NewCache("/var/cache/onesd", nil)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(cache, nil)
	httpServer := &http.Server{Addr: ":8080", Handler: srv.Handler()}
	go httpServer.ListenAndServe()

	// ... serve traffic: POST /v1/runs, GET /v1/runs/{id}/stream, ...

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)        // cancel in-flight runs mid-cell, drain goroutines
	httpServer.Shutdown(ctx) // then close the listener
}
